"""Chrome trace-event export: spans -> a Perfetto-loadable JSON object.

The `trace event format`_ is the de-facto interchange format for timeline
viewers (chrome://tracing, https://ui.perfetto.dev). Each closed span becomes
one *complete* event (``"ph": "X"``); each tracer becomes one process (pid),
each track one thread (tid), both named through metadata events.

Everything is emitted with sorted keys and compact separators, so the same
trace serialises to the same bytes — the determinism tests diff the files.

.. _trace event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from pathlib import Path

from ..common.report import to_jsonable
from .spans import SpanTracer

__all__ = ["chrome_trace", "dump_chrome_trace", "write_chrome_trace"]

#: sim-seconds -> trace microseconds (the format's time unit)
_US = 1e6


def chrome_trace(tracers: dict[str, SpanTracer]) -> dict:
    """Build the trace object for one or more tracers.

    ``tracers`` maps a process name (e.g. ``"squirrel"``, ``"baseline"``) to
    its tracer; processes get pids in sorted-name order, tracks get tids in
    sorted-track order — both independent of dict insertion order.
    """
    events: list[dict] = []
    for pid, process_name in enumerate(sorted(tracers), start=1):
        tracer = tracers[process_name]
        spans = tracer.spans()
        tid_of = {
            track: tid
            for tid, track in enumerate(sorted({s.track for s in spans}), start=1)
        }
        events.append({
            "args": {"name": process_name}, "name": "process_name",
            "ph": "M", "pid": pid, "tid": 0,
        })
        for track, tid in tid_of.items():
            events.append({
                "args": {"name": track}, "name": "thread_name",
                "ph": "M", "pid": pid, "tid": tid,
            })
        for span in spans:
            end_s = span.end_s if span.end_s is not None else tracer.now
            args = {str(k): to_jsonable(v) for k, v in sorted(span.attrs.items())}
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            events.append({
                "args": args,
                "dur": (end_s - span.start_s) * _US,
                "name": span.name,
                "ph": "X",
                "pid": pid,
                "tid": tid_of[span.track],
                "ts": span.start_s * _US,
            })
    return {"displayTimeUnit": "ms", "traceEvents": events}


def dump_chrome_trace(tracers: dict[str, SpanTracer]) -> str:
    """The trace as a canonical JSON string (sorted keys, compact)."""
    return json.dumps(chrome_trace(tracers), sort_keys=True,
                      separators=(",", ":"))


def write_chrome_trace(path: str | Path, tracers: dict[str, SpanTracer]) -> Path:
    """Write the trace file; open it at https://ui.perfetto.dev."""
    path = Path(path)
    path.write_text(dump_chrome_trace(tracers) + "\n")
    return path
