"""Trace analytics: critical-path extraction, blame tables, trace diffing.

This module turns a span corpus — a live :class:`~repro.obs.SpanTracer` or a
``write_chrome_trace`` file on disk — into queryable evidence:

* **Critical path per boot.** Each boot's span tree is walked backwards from
  the root's finish ("last finisher" rule): at every frontier instant the
  child whose end reaches it is the span the boot was actually waiting on,
  gaps between children are the parent's own time, and ties (two children
  ending at the same instant) break deterministically toward the larger
  ``span_id`` (the later-minted span wins). The resulting segments form an
  exact partition of the boot interval, so per boot
  ``critical_s + slack_s == latency`` — where ``critical_s`` is time spent
  inside descendant spans on the chain and ``slack_s`` is root self-time
  (the regression-tested invariant, mirroring BootAttribution's).

* **Fleet blame table.** Critical seconds aggregate per span name across all
  boots, with path-composition percentiles (p50/p95/max of each name's share
  of its boot's latency). Composition also folds into the four
  BootAttribution tiers (``cache_s``/``net_s``/``disk_s``/``wait_s``) using
  the queue-wait vs service annotations the scenario driver attaches to span
  ``args`` — the same fields Perfetto shows.

* **Wall buckets.** Independently of the chain, depth-1 child spans rebuild
  the BootAttribution partition from the trace alone; the analyzer's bucket
  sums reconcile with the report's ``attribution`` block (tested on warm,
  cold and faulted runs).

Determinism contract: all arithmetic happens in the chrome-trace microsecond
domain (``seconds * 1e6`` — the very floats ``write_chrome_trace`` emits), so
analyzing a live tracer and re-analyzing its exported file produce
byte-identical payloads, and identical seeds produce identical bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from ..common.errors import ConfigError
from .spans import SpanTracer

__all__ = [
    "SpanRecord",
    "records_from_tracer",
    "records_from_chrome",
    "load_trace_sources",
    "boot_paths",
    "analyze_sources",
    "analyze_tracers",
    "critical_path_block",
    "diff_analyses",
    "render_analysis",
    "render_trace_diff",
]

#: schema tag stamped into every analysis payload
SCHEMA = "repro.trace-analyze/1"

#: the four attribution tiers (import-free copy of attribution.BUCKETS)
TIERS = ("cache_s", "net_s", "disk_s", "wait_s")

#: span name -> attribution tier for spans without a queue/service split
TIER_OF_SPAN = {
    "boot": "wait_s",
    "fault.wait": "wait_s",
    "arc.lookup": "cache_s",
    "zio.decompress": "cache_s",
    "disk.read": "disk_s",
    "disk.write": "disk_s",
    "gluster.fetch": "net_s",
    "gluster.transfer": "net_s",
    "nic.transfer": "net_s",
    "placement.redirect": "net_s",
    "placement.adopt": "net_s",
}

#: root-span name that marks a boot (other roots: register/resync/gc/fault.*)
_BOOT = "boot"

#: microseconds below which a diff delta is float noise, not a regression
_DIFF_FLOOR_S = 1e-6


@dataclass
class SpanRecord:
    """One span in the chrome-trace microsecond domain.

    ``start_us``/``dur_us`` are computed with the exact expressions the
    chrome exporter uses (``start_s * 1e6``, ``(end_s - start_s) * 1e6``),
    so a record built from a live span and one parsed back from the exported
    JSON hold bit-identical floats.
    """

    span_id: int
    parent_id: int | None
    name: str
    track: str
    start_us: float
    dur_us: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.dur_us


def records_from_tracer(tracer: SpanTracer) -> list[SpanRecord]:
    """Convert a live tracer's spans (open spans measure to ``now``)."""
    records = []
    for span in tracer.spans():
        end_s = span.end_s if span.end_s is not None else tracer.now
        records.append(SpanRecord(
            span_id=span.span_id,
            parent_id=span.parent_id,
            name=span.name,
            track=span.track,
            start_us=span.start_s * 1e6,
            dur_us=(end_s - span.start_s) * 1e6,
            attrs=dict(span.attrs),
        ))
    return records


def records_from_chrome(payload: dict) -> dict[str, list[SpanRecord]]:
    """Parse a ``write_chrome_trace`` payload back into per-process records.

    Process names come from ``process_name`` metadata events, tracks from
    ``thread_name``; span ids/parent ids ride in each complete event's
    ``args`` (and are stripped back out of ``attrs``).
    """
    try:
        events = payload["traceEvents"]
    except (TypeError, KeyError):
        raise ConfigError("not a chrome trace: no traceEvents") from None
    process_of: dict[int, str] = {}
    track_of: dict[tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") != "M":
            continue
        if event.get("name") == "process_name":
            process_of[event["pid"]] = event["args"]["name"]
        elif event.get("name") == "thread_name":
            track_of[(event["pid"], event["tid"])] = event["args"]["name"]
    processes: dict[str, list[SpanRecord]] = {
        name: [] for name in process_of.values()
    }
    for event in events:
        if event.get("ph") != "X":
            continue
        pid = event["pid"]
        process = process_of.get(pid, f"pid{pid}")
        attrs = dict(event.get("args", {}))
        span_id = attrs.pop("span_id", None)
        parent_id = attrs.pop("parent_id", None)
        if span_id is None:
            raise ConfigError(
                "trace lacks span_id args (not written by this repo?)"
            )
        processes.setdefault(process, []).append(SpanRecord(
            span_id=int(span_id),
            parent_id=None if parent_id is None else int(parent_id),
            name=event["name"],
            track=track_of.get((pid, event["tid"]), str(event["tid"])),
            start_us=float(event["ts"]),
            dur_us=float(event["dur"]),
            attrs=attrs,
        ))
    for records in processes.values():
        records.sort(key=lambda r: r.span_id)
    return processes


def load_trace_sources(path: str | Path) -> list[dict[str, list[SpanRecord]]]:
    """Load one trace file, a sweep store (``<dir>/traces/*.json``), or a
    directory of trace files into a list of per-process record maps.

    Sources are read in sorted-filename order so the merged analysis is
    independent of filesystem enumeration order.
    """
    path = Path(path)
    if path.is_file():
        files = [path]
    elif path.is_dir():
        trace_dir = path / "traces" if (path / "traces").is_dir() else path
        files = sorted(p for p in trace_dir.glob("*.json") if p.is_file())
        if not files:
            raise ConfigError(
                f"no trace files under {path} (expected traces/*.json in a "
                "sweep store, or *.json trace files)"
            )
    else:
        raise ConfigError(f"no such trace file or store: {path}")
    sources = []
    for file in files:
        try:
            payload = json.loads(file.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot read trace {file}: {exc}") from None
        sources.append(records_from_chrome(payload))
    return sources


# -- critical-path extraction ---------------------------------------------------


@dataclass
class BootPath:
    """One boot's critical-path decomposition (all values in µs)."""

    root: SpanRecord
    #: exact partition of the boot interval: (record, stack-of-names, a, b)
    segments: list[tuple[SpanRecord, tuple[str, ...], float, float]]
    latency_us: float
    critical_us: float  #: time inside descendant spans on the chain
    slack_us: float  #: root self-time on the chain
    by_name_us: dict[str, float]  #: critical µs per descendant span name
    tiers_us: dict[str, float]  #: chain composition folded into TIERS
    buckets_us: dict[str, float]  #: wall BootAttribution rebuild (depth-1)


def _chain(
    span: SpanRecord,
    frontier: float,
    stack: tuple[str, ...],
    children: dict[int, list[SpanRecord]],
    out: list[tuple[SpanRecord, tuple[str, ...], float, float]],
) -> None:
    """Append the last-finisher segments covering [span.start, frontier].

    Children are visited largest-end first; ties on (end, start) break
    toward the larger span_id — deterministic because ids are minted in
    start order by the tracer.
    """
    t = min(frontier, span.end_us)
    kids = sorted(
        children.get(span.span_id, ()),
        key=lambda c: (c.end_us, c.start_us, c.span_id),
        reverse=True,
    )
    for child in kids:
        if t <= span.start_us:
            break
        if child.dur_us <= 0 or child.start_us >= t:
            continue
        reach = min(child.end_us, t)
        if reach < t:
            out.append((span, stack, reach, t))  # gap: parent's own time
        _chain(child, reach, stack + (child.name,), children, out)
        t = max(span.start_us, child.start_us)
    if t > span.start_us:
        out.append((span, stack, span.start_us, t))


def _segment_tier(record: SpanRecord, a: float, b: float,
                  root: SpanRecord) -> list[tuple[str, float]]:
    """Fold one chain segment into attribution tiers.

    Queue-wait vs service annotations localise the split in time: a disk
    span serves during its final ``service_s``, a zio span queues for a core
    during its initial ``queue_s`` — so a chain segment lands in the right
    tier even when it covers only part of the span.
    """
    width = b - a
    if record is root:
        return [("wait_s", width)]
    if "interrupted" in record.attrs:
        return [("wait_s", width)]
    name = record.name
    if name in ("disk.read", "disk.write"):
        service_us = min(
            max(0.0, float(record.attrs.get("service_s", 0.0)) * 1e6),
            record.dur_us,
        )
        service_start = record.end_us - service_us
        served = max(0.0, min(b, record.end_us) - max(a, service_start))
        return [("disk_s", served), ("wait_s", width - served)]
    if name == "zio.decompress":
        queue_us = min(
            max(0.0, float(record.attrs.get("queue_s", 0.0)) * 1e6),
            record.dur_us,
        )
        queue_end = record.start_us + queue_us
        queued = max(0.0, min(b, queue_end) - max(a, record.start_us))
        return [("wait_s", queued), ("cache_s", width - queued)]
    return [(TIER_OF_SPAN.get(name, "wait_s"), width)]


def _wall_buckets(root: SpanRecord,
                  children: dict[int, list[SpanRecord]]) -> dict[str, float]:
    """Rebuild the BootAttribution partition from depth-1 child spans."""
    buckets = dict.fromkeys(TIERS, 0.0)
    covered = 0.0
    for child in children.get(root.span_id, ()):
        dur = child.dur_us
        covered += dur
        if "interrupted" in child.attrs:
            buckets["wait_s"] += dur
        elif child.name in ("disk.read", "disk.write"):
            service = min(
                max(0.0, float(child.attrs.get("service_s", 0.0)) * 1e6), dur
            )
            buckets["disk_s"] += service
            buckets["wait_s"] += dur - service
        elif child.name == "zio.decompress":
            queue = min(
                max(0.0, float(child.attrs.get("queue_s", 0.0)) * 1e6), dur
            )
            buckets["wait_s"] += queue
            buckets["cache_s"] += dur - queue
        else:
            buckets[TIER_OF_SPAN.get(child.name, "wait_s")] += dur
    buckets["wait_s"] += max(0.0, root.dur_us - covered)
    return buckets


def boot_paths(records: Iterable[SpanRecord]) -> list[BootPath]:
    """Critical-path decomposition of every boot in one process's records."""
    records = list(records)
    children: dict[int, list[SpanRecord]] = {}
    for record in records:
        if record.parent_id is not None:
            children.setdefault(record.parent_id, []).append(record)
    for kids in children.values():
        kids.sort(key=lambda r: r.span_id)
    paths = []
    for root in records:
        if root.parent_id is not None or root.name != _BOOT:
            continue
        segments: list[tuple[SpanRecord, tuple[str, ...], float, float]] = []
        _chain(root, root.end_us, (root.name,), children, segments)
        critical = slack = 0.0
        by_name: dict[str, float] = {}
        tiers = dict.fromkeys(TIERS, 0.0)
        for record, _stack, a, b in segments:
            width = b - a
            if record is root:
                slack += width
            else:
                critical += width
                by_name[record.name] = by_name.get(record.name, 0.0) + width
            for tier, amount in _segment_tier(record, a, b, root):
                tiers[tier] += amount
        paths.append(BootPath(
            root=root,
            segments=segments,
            latency_us=root.dur_us,
            critical_us=critical,
            slack_us=slack,
            by_name_us=by_name,
            tiers_us=tiers,
            buckets_us=_wall_buckets(root, children),
        ))
    return paths


# -- fleet aggregation ----------------------------------------------------------


def _percentiles(values: list[float]) -> dict[str, float]:
    arr = np.asarray(values, dtype=float)
    p50, p95, p99 = np.percentile(arr, (50, 95, 99))
    return {
        "count": len(values),
        "total": float(arr.sum()),
        "mean": float(arr.mean()),
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "max": float(arr.max()),
    }


def _span_aggregates(records: Iterable[SpanRecord]) -> dict[str, dict]:
    by_name: dict[str, dict] = {}
    for record in records:
        entry = by_name.setdefault(
            record.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        dur_s = record.dur_us / 1e6
        entry["total_s"] += dur_s
        entry["max_s"] = max(entry["max_s"], dur_s)
    return {name: by_name[name] for name in sorted(by_name)}


def _merge_span_aggregates(into: dict[str, dict], add: dict[str, dict]) -> None:
    for name, entry in add.items():
        slot = into.setdefault(
            name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        slot["count"] += entry["count"]
        slot["total_s"] += entry["total_s"]
        slot["max_s"] = max(slot["max_s"], entry["max_s"])


def _analyze_boots(paths: list[BootPath], spans: dict[str, dict]) -> dict:
    """The per-process analysis block from pooled boot paths."""
    if not paths:
        return {
            "boots": 0,
            "latency_s": None,
            "critical_s": 0.0,
            "slack_s": 0.0,
            "critical_shares": dict.fromkeys(TIERS, 0.0),
            "buckets": dict.fromkeys(TIERS, 0.0),
            "blame": [],
            "spans": spans,
        }
    latency_total = sum(p.latency_us for p in paths)
    critical_total = sum(p.critical_us for p in paths)
    slack_total = sum(p.slack_us for p in paths)
    tiers_total = {
        tier: sum(p.tiers_us[tier] for p in paths) for tier in TIERS
    }
    buckets_total = {
        tier: sum(p.buckets_us[tier] for p in paths) for tier in TIERS
    }
    names = sorted({name for p in paths for name in p.by_name_us})
    blame = []
    for name in names:
        shares = [
            p.by_name_us.get(name, 0.0) / p.latency_us
            for p in paths if p.latency_us > 0
        ]
        total_us = sum(p.by_name_us.get(name, 0.0) for p in paths)
        stats = _percentiles(shares) if shares else None
        blame.append({
            "span": name,
            "critical_s": total_us / 1e6,
            "share": total_us / latency_total if latency_total else 0.0,
            "boots": sum(1 for p in paths if p.by_name_us.get(name, 0.0) > 0),
            "share_p50": stats["p50"] if stats else 0.0,
            "share_p95": stats["p95"] if stats else 0.0,
            "share_max": stats["max"] if stats else 0.0,
        })
    blame.sort(key=lambda row: (-row["critical_s"], row["span"]))
    return {
        "boots": len(paths),
        "latency_s": _percentiles([p.latency_us / 1e6 for p in paths]),
        "critical_s": critical_total / 1e6,
        "slack_s": slack_total / 1e6,
        "critical_shares": {
            tier: tiers_total[tier] / latency_total if latency_total else 0.0
            for tier in TIERS
        },
        "buckets": {tier: buckets_total[tier] / 1e6 for tier in TIERS},
        "blame": blame,
        "spans": spans,
    }


def analyze_sources(sources: list[dict[str, list[SpanRecord]]]) -> dict:
    """The full analysis payload for one or more trace sources.

    Boots pool per process name across sources (a sweep store's per-point
    traces merge into one fleet view); ``totals`` pools across processes.
    """
    pooled_paths: dict[str, list[BootPath]] = {}
    pooled_spans: dict[str, dict[str, dict]] = {}
    for processes in sources:
        for process in sorted(processes):
            records = processes[process]
            pooled_paths.setdefault(process, []).extend(boot_paths(records))
            _merge_span_aggregates(
                pooled_spans.setdefault(process, {}),
                _span_aggregates(records),
            )
    process_blocks = {
        process: _analyze_boots(pooled_paths[process], pooled_spans[process])
        for process in sorted(pooled_paths)
    }
    all_paths = [p for process in sorted(pooled_paths)
                 for p in pooled_paths[process]]
    all_spans: dict[str, dict] = {}
    for process in sorted(pooled_spans):
        _merge_span_aggregates(all_spans, pooled_spans[process])
    return {
        "schema": SCHEMA,
        "sources": len(sources),
        "processes": process_blocks,
        "totals": _analyze_boots(all_paths, all_spans),
    }


def analyze_tracers(tracers: dict[str, SpanTracer]) -> dict:
    """Analyze live tracers — byte-identical to analyzing their export."""
    return analyze_sources([
        {name: records_from_tracer(tracer)
         for name, tracer in tracers.items()}
    ])


def critical_path_block(tracer: SpanTracer) -> dict:
    """The compact per-run block embedded in timed reports.

    Computed in the chrome-µs domain, so ``trace analyze`` on the exported
    file reproduces these numbers (and the full blame table) exactly.
    """
    paths = boot_paths(records_from_tracer(tracer))
    block = _analyze_boots(paths, {})
    return {
        "boots": block["boots"],
        "critical_s": block["critical_s"],
        "slack_s": block["slack_s"],
        "shares": block["critical_shares"],
        "blame": {
            row["span"]: row["critical_s"] for row in block["blame"]
        },
    }


# -- cross-run diffing ----------------------------------------------------------


def diff_analyses(old: dict, new: dict, *, tolerance: float) -> list[dict]:
    """Span-name-aligned diff of two analysis payloads.

    Compares, per process present on both sides: total critical seconds,
    slack, total latency, and every blame entry (span names missing on one
    side count as 0 — a newly expensive span *is* a regression). Lower is
    better for every metric; a move past ``tolerance`` (relative, with a
    1 µs absolute floor) flags a regression. Rows sort largest absolute
    critical-seconds delta first.
    """
    rows: list[dict] = []

    def compare(process: str, metric: str, span: str | None,
                before: float, after: float) -> None:
        delta = after - before
        if before == after:
            return
        rel = delta / before if before else None  # None: new vs a 0 baseline
        moved = abs(delta) > _DIFF_FLOOR_S and (
            rel is None or abs(rel) > tolerance
        )
        rows.append({
            "process": process,
            "metric": metric,
            "span": span,
            "old_s": before,
            "new_s": after,
            "delta_s": delta,
            "rel": rel,
            "regression": moved and delta > 0,
            "improvement": moved and delta < 0,
        })

    old_procs = old.get("processes", {})
    new_procs = new.get("processes", {})
    for process in sorted(old_procs.keys() & new_procs.keys()):
        a, b = old_procs[process], new_procs[process]
        compare(process, "critical_s", None, a["critical_s"], b["critical_s"])
        compare(process, "slack_s", None, a["slack_s"], b["slack_s"])
        old_latency = (a["latency_s"] or {}).get("total", 0.0)
        new_latency = (b["latency_s"] or {}).get("total", 0.0)
        compare(process, "latency_total_s", None, old_latency, new_latency)
        old_blame = {row["span"]: row["critical_s"] for row in a["blame"]}
        new_blame = {row["span"]: row["critical_s"] for row in b["blame"]}
        for span in sorted(old_blame.keys() | new_blame.keys()):
            compare(process, "blame", span,
                    old_blame.get(span, 0.0), new_blame.get(span, 0.0))
    rows.sort(key=lambda r: (
        -abs(r["delta_s"]), r["process"], r["metric"], r["span"] or ""
    ))
    return rows


def render_trace_diff(rows: list[dict], *, tolerance: float) -> str:
    """Human-readable diff lines plus the one-line gate summary."""
    lines = []
    for row in rows:
        if row["regression"]:
            status = "REGRESSION"
        elif row["improvement"]:
            status = "improved"
        else:
            status = "changed"
        where = (
            f"{row['process']} {row['metric']}[{row['span']}]"
            if row["span"] else f"{row['process']} {row['metric']}"
        )
        rel = row["rel"]
        rel_text = f"{rel:+.1%}" if rel is not None else "from 0"
        lines.append(
            f"{status} {where}: {row['old_s']:.6g} -> {row['new_s']:.6g} s "
            f"({rel_text})"
        )
    regressions = sum(1 for row in rows if row["regression"])
    if regressions:
        lines.append(
            f"trace diff: {regressions} regression(s) past "
            f"{tolerance:.0%} tolerance"
        )
    else:
        lines.append(
            f"trace diff: no regressions past {tolerance:.0%} tolerance "
            f"({len(rows)} other change(s))"
        )
    return "\n".join(lines)


def render_analysis(payload: dict) -> str:
    """The human-readable blame report for ``python -m repro trace analyze``."""
    lines = [
        f"trace analytics: {payload['sources']} source(s), "
        f"{payload['totals']['boots']} boot(s), "
        f"{len(payload['processes'])} process(es)"
    ]
    for process, block in payload["processes"].items():
        if not block["boots"]:
            lines.append(f"\nprocess {process}: no boots traced")
            continue
        latency = block["latency_s"]
        lines.append(
            f"\nprocess {process}: {block['boots']} boots, latency total "
            f"{latency['total']:.3f} s (mean {latency['mean']:.4f}, "
            f"p99 {latency['p99']:.4f}), critical {block['critical_s']:.3f} s "
            f"+ slack {block['slack_s']:.3f} s"
        )
        shares = block["critical_shares"]
        lines.append(
            "  critical composition: "
            + "  ".join(
                f"{tier[:-2]} {shares[tier]:.1%}" for tier in TIERS
            )
        )
        lines.append(
            f"  {'span':<22} {'critical s':>11} {'share':>7} "
            f"{'boots':>6} {'p50':>7} {'p95':>7}"
        )
        for row in block["blame"]:
            lines.append(
                f"  {row['span']:<22} {row['critical_s']:>11.4f} "
                f"{row['share']:>7.1%} {row['boots']:>6} "
                f"{row['share_p50']:>7.1%} {row['share_p95']:>7.1%}"
            )
    return "\n".join(lines)
