"""Latency attribution: where each boot's seconds went.

The boot path charges every elapsed sim-second of a boot to exactly one of
four tiers, by marking the clock at each resume point:

* ``cache_s`` — local cache-engine work: ARC lookups, the per-block ZFS
  pipeline (block-pointer walk + DDT lookup), and decompression,
* ``net_s``  — glusterfs brick + NIC transfer time (including the share lost
  to contending flows — fair-shared pipes make queueing indistinguishable
  from service),
* ``disk_s`` — local disk *service* time (positioning + transfer at the
  platter),
* ``wait_s`` — everything else: queueing for the disk actuator or a
  decompression core, waiting out a crashed host's rejoin, and time lost in
  attempts a fault preempted.

The invariant (regression-tested): per boot,
``cache_s + net_s + disk_s + wait_s`` equals the boot's end-to-end latency —
the buckets are a partition of the boot interval, not estimates.

:class:`BootAttribution` is the per-boot accumulator the scenario driver
charges into; :func:`attribution_block` folds a run's per-boot observations
and ARC tier counters into the report/JSON block.
"""

from __future__ import annotations

from ..sim import Engine, Timeline

__all__ = ["BUCKETS", "ARC_COUNTERS", "BootAttribution", "attribution_block"]

#: the four attribution tiers, in report order
BUCKETS = ("cache_s", "net_s", "disk_s", "wait_s")

#: per-tier ARC counters surfaced through the Timeline
ARC_COUNTERS = (
    "arc_t1_hits",
    "arc_t2_hits",
    "arc_b1_ghost_hits",
    "arc_b2_ghost_hits",
    "arc_misses",
    "arc_evictions",
)


class BootAttribution:
    """Charges elapsed sim-time to tiers by advancing a clock mark."""

    __slots__ = ("engine", "buckets", "_mark")

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.buckets = dict.fromkeys(BUCKETS, 0.0)
        self._mark = engine.now

    def charge(self, bucket: str) -> float:
        """Charge everything since the last mark to ``bucket``."""
        elapsed = self.engine.now - self._mark
        self.buckets[bucket] += elapsed
        self._mark = self.engine.now
        return elapsed

    def charge_split(self, service_s: float, bucket: str,
                     rest: str = "wait_s") -> None:
        """Charge ``service_s`` of the elapsed interval to ``bucket`` and the
        remainder (queueing ahead of the service) to ``rest`` — how disk time
        is split: the platter reports its service time, the actuator queue
        accounts for the difference."""
        elapsed = self.engine.now - self._mark
        service_s = min(max(0.0, service_s), elapsed)
        self.buckets[bucket] += service_s
        self.buckets[rest] += elapsed - service_s
        self._mark = self.engine.now

    def observe(self, timeline: Timeline) -> None:
        """Flush: charge any residual to wait and record one observation per
        bucket (same index order as ``boot_latency_s``)."""
        self.charge("wait_s")
        for bucket in BUCKETS:
            timeline.observe(f"attr_{bucket}", self.buckets[bucket])

    @property
    def total_s(self) -> float:
        return sum(self.buckets.values())


def attribution_block(timeline: Timeline) -> dict:
    """The per-run attribution summary for reports and ``--json``.

    ``tiers`` carries per-boot percentile stats of each bucket; ``arc``
    carries the run's per-tier ARC counters; ``hit_tier_fractions`` divides
    all ARC lookups into t1 / t2 / miss shares (ghost hits are a subset of
    the misses — a ghost remembers the key, not the data).
    """
    tiers = {
        bucket: timeline.stats(f"attr_{bucket}").as_dict() for bucket in BUCKETS
    }
    arc = {name: int(timeline.counter(name)) for name in ARC_COUNTERS}
    lookups = arc["arc_t1_hits"] + arc["arc_t2_hits"] + arc["arc_misses"]
    fractions = {
        "t1": arc["arc_t1_hits"] / lookups if lookups else 0.0,
        "t2": arc["arc_t2_hits"] / lookups if lookups else 0.0,
        "miss": arc["arc_misses"] / lookups if lookups else 0.0,
    }
    return {"arc": arc, "hit_tier_fractions": fractions, "tiers": tiers}
