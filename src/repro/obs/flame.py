"""Flame-graph export: collapsed folded-stack output from a span corpus.

Folded stacks are the interchange format of ``flamegraph.pl`` and speedscope:
one ``frame;frame;... value`` line per unique stack, values in integer
microseconds. Two weightings:

* ``wall`` — every span contributes its *self* time (duration minus the
  merged coverage of its children): the classic "where did wall-clock go"
  flame graph over all spans, boot or not.
* ``critical`` — only critical-path segments contribute (see
  :mod:`repro.obs.analyze`): the flame graph of what boots actually waited
  on, weighted by chain microseconds.

Lines are emitted in sorted order and values derived from the deterministic
µs domain, so same-seed exports are byte-identical.
"""

from __future__ import annotations

from .analyze import SpanRecord, boot_paths

__all__ = ["folded_stacks", "WEIGHTS"]

WEIGHTS = ("wall", "critical")


def _self_times(records: list[SpanRecord]) -> dict[int, float]:
    """Per-span self µs: duration minus merged child coverage (clipped)."""
    children: dict[int, list[SpanRecord]] = {}
    for record in records:
        if record.parent_id is not None:
            children.setdefault(record.parent_id, []).append(record)
    selfs: dict[int, float] = {}
    for record in records:
        intervals = sorted(
            (max(record.start_us, kid.start_us),
             min(record.end_us, kid.end_us))
            for kid in children.get(record.span_id, ())
        )
        covered = 0.0
        cursor = record.start_us
        for a, b in intervals:
            if b <= cursor:
                continue
            covered += b - max(a, cursor)
            cursor = b
        selfs[record.span_id] = max(0.0, record.dur_us - covered)
    return selfs


def _stack_of(record: SpanRecord,
              by_id: dict[int, SpanRecord]) -> tuple[str, ...]:
    names: list[str] = []
    cursor: SpanRecord | None = record
    while cursor is not None:
        names.append(cursor.name)
        cursor = (
            by_id.get(cursor.parent_id)
            if cursor.parent_id is not None else None
        )
    return tuple(reversed(names))


def folded_stacks(sources: list[dict[str, list[SpanRecord]]],
                  weight: str = "wall") -> str:
    """Collapsed folded-stack text for one or more trace sources.

    Stacks are rooted at the process name (``squirrel;boot;disk.read``);
    values are integer microseconds summed across sources.
    """
    if weight not in WEIGHTS:
        raise ValueError(f"weight must be one of {WEIGHTS}, got {weight!r}")
    totals: dict[tuple[str, ...], float] = {}
    for processes in sources:
        for process in sorted(processes):
            records = processes[process]
            if weight == "wall":
                by_id = {record.span_id: record for record in records}
                selfs = _self_times(records)
                for record in records:
                    amount = selfs[record.span_id]
                    if amount <= 0:
                        continue
                    stack = (process,) + _stack_of(record, by_id)
                    totals[stack] = totals.get(stack, 0.0) + amount
            else:
                for path in boot_paths(records):
                    for _record, names, a, b in path.segments:
                        stack = (process,) + names
                        totals[stack] = totals.get(stack, 0.0) + (b - a)
    lines = []
    for stack in sorted(totals):
        value = int(round(totals[stack]))
        if value > 0:
            lines.append(";".join(stack) + f" {value}")
    return "\n".join(lines) + ("\n" if lines else "")
