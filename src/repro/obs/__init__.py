"""Observability: deterministic span tracing + cache-tier latency attribution."""

from .attribution import ARC_COUNTERS, BUCKETS, BootAttribution, attribution_block
from .chrome import chrome_trace, dump_chrome_trace, write_chrome_trace
from .spans import Span, SpanTracer

__all__ = [
    "ARC_COUNTERS",
    "BUCKETS",
    "BootAttribution",
    "Span",
    "SpanTracer",
    "attribution_block",
    "chrome_trace",
    "dump_chrome_trace",
    "write_chrome_trace",
]
