"""Observability: deterministic span tracing, cache-tier latency
attribution, and host-side runtime telemetry (:mod:`.runtime`)."""

from .attribution import ARC_COUNTERS, BUCKETS, BootAttribution, attribution_block
from .chrome import chrome_trace, dump_chrome_trace, write_chrome_trace
from .runtime import ProgressReporter, RuntimeProfiler
from .spans import Span, SpanTracer

__all__ = [
    "ARC_COUNTERS",
    "BUCKETS",
    "BootAttribution",
    "ProgressReporter",
    "RuntimeProfiler",
    "Span",
    "SpanTracer",
    "attribution_block",
    "chrome_trace",
    "dump_chrome_trace",
    "write_chrome_trace",
]
