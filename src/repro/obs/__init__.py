"""Observability: deterministic span tracing, cache-tier latency
attribution, host-side runtime telemetry (:mod:`.runtime`), and trace
analytics — critical-path extraction, blame tables, flame-graph export
(:mod:`.analyze`, :mod:`.flame`)."""

from .analyze import (
    analyze_sources,
    analyze_tracers,
    boot_paths,
    critical_path_block,
    diff_analyses,
    load_trace_sources,
    records_from_chrome,
    records_from_tracer,
    render_analysis,
    render_trace_diff,
)
from .attribution import ARC_COUNTERS, BUCKETS, BootAttribution, attribution_block
from .chrome import chrome_trace, dump_chrome_trace, write_chrome_trace
from .flame import folded_stacks
from .runtime import ProgressReporter, RuntimeProfiler
from .spans import Span, SpanTracer

__all__ = [
    "ARC_COUNTERS",
    "BUCKETS",
    "BootAttribution",
    "ProgressReporter",
    "RuntimeProfiler",
    "Span",
    "SpanTracer",
    "analyze_sources",
    "analyze_tracers",
    "attribution_block",
    "boot_paths",
    "chrome_trace",
    "critical_path_block",
    "diff_analyses",
    "dump_chrome_trace",
    "folded_stacks",
    "load_trace_sources",
    "records_from_chrome",
    "records_from_tracer",
    "render_analysis",
    "render_trace_diff",
    "write_chrome_trace",
]
