"""Deterministic span tracing on the simulation clock.

A :class:`Span` is one causally-scoped interval of simulated time: it has a
name, a deterministic integer id, an optional parent, a *track* (the Perfetto
swimlane it renders on — one per cluster node by convention), start/end
sim-times, and a dict of typed attributes. A :class:`SpanTracer` mints spans
against an :class:`~repro.sim.Engine` clock.

Determinism contract: span ids are allocated by a monotonic counter in span
*start* order, and the engine's event order is already a pure function of the
seed — so two same-seed runs produce byte-identical exports. Nothing here
schedules events or draws randomness; tracing never perturbs the simulation.

The tracer deliberately has **no implicit "current span" stack**: simulation
processes are interleaved generators, so ambient context would attribute
children to whichever process happened to run last. Parents are always passed
explicitly.
"""

from __future__ import annotations

from typing import Any

from ..sim import Engine

__all__ = ["Span", "SpanTracer"]


class Span:
    """One timed interval; ``end()`` closes it at the current sim-time."""

    __slots__ = ("name", "span_id", "parent_id", "track", "start_s", "end_s",
                 "attrs", "_tracer")

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        track: str,
        start_s: float,
        attrs: dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.track = track
        self.start_s = start_s
        self.end_s: float | None = None
        self.attrs = attrs

    @property
    def open(self) -> bool:
        return self.end_s is None

    @property
    def duration_s(self) -> float:
        """Elapsed sim-time; an open span measures up to the clock's now."""
        end = self.end_s if self.end_s is not None else self._tracer.now
        return end - self.start_s

    def annotate(self, **attrs: Any) -> "Span":
        """Attach attributes (e.g. the fault that killed this span)."""
        self.attrs.update(attrs)
        return self

    def end(self, **attrs: Any) -> "Span":
        """Close the span at the current sim-time; idempotent."""
        self.attrs.update(attrs)
        if self.end_s is None:
            self.end_s = self._tracer.now
        return self

    def encloses(self, other: "Span") -> bool:
        """Whether ``other``'s interval nests inside this span's."""
        if self.end_s is None or other.end_s is None:
            return False
        return self.start_s <= other.start_s and other.end_s <= self.end_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end_s:.6f}" if self.end_s is not None else "open"
        return (
            f"Span(#{self.span_id} {self.name!r} track={self.track!r} "
            f"[{self.start_s:.6f}, {end}])"
        )


class SpanTracer:
    """Mints and records spans against one engine's clock."""

    def __init__(self, engine: Engine | None = None) -> None:
        self.engine = engine
        self._spans: list[Span] = []
        self._next_id = 1

    @property
    def now(self) -> float:
        return self.engine.now if self.engine is not None else 0.0

    def span(
        self,
        name: str,
        *,
        parent: Span | None = None,
        track: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span starting now. ``track`` defaults to the parent's (a
        child renders on its parent's swimlane), else to the span name."""
        if track is None:
            track = parent.track if parent is not None else name
        span = Span(
            self,
            name,
            self._next_id,
            parent.span_id if parent is not None else None,
            track,
            self.now,
            dict(attrs),
        )
        self._next_id += 1
        self._spans.append(span)
        return span

    # -- queries ------------------------------------------------------------------

    def spans(self, name: str | None = None) -> list[Span]:
        """All spans in start order, optionally filtered by name."""
        if name is None:
            return list(self._spans)
        return [span for span in self._spans if span.name == name]

    def get(self, span_id: int) -> Span:
        """Span by id (ids are 1-based and dense, in start order)."""
        span = self._spans[span_id - 1]
        assert span.span_id == span_id
        return span

    def close_open_spans(self) -> int:
        """End every still-open span at the current sim-time (end-of-run
        flush: a crashed run's spans still export well-formed). Returns how
        many were closed."""
        closed = 0
        for span in self._spans:
            if span.open:
                span.end(unfinished=True)
                closed += 1
        return closed

    # -- deterministic rendering ----------------------------------------------------

    def summary(self) -> dict:
        """Per-name aggregates with sorted keys — the determinism
        fingerprint of the trace (and the compact ``--json`` view)."""
        by_name: dict[str, dict[str, float]] = {}
        for span in self._spans:
            entry = by_name.setdefault(
                span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            entry["count"] += 1
            duration = span.duration_s
            entry["total_s"] += duration
            entry["max_s"] = max(entry["max_s"], duration)
        return {name: by_name[name] for name in sorted(by_name)}
