"""Runtime health telemetry: observe the *simulator*, not the simulation.

Everything else in :mod:`repro.obs` observes the modelled cluster on the
simulated clock. This module observes the host process running it: how
long each phase of a run took in wall-clock terms, how fast the event
engine is chewing through its queue (events/second and simulated-seconds
per wall-second), the RSS high-water mark, and — for sweeps — how long
each point took. Two consumers:

* the ``runtime`` block (:meth:`RuntimeProfiler.block`): a JSON-able
  summary emitted *next to* reports (``runtime.json`` in ``--metrics`` and
  sweep store directories, a tagged trailer line in sweep manifests, a
  stderr line from the CLI). It is **never** embedded in the canonical
  report payload: wall-clock numbers differ run to run, and the pinned
  byte-identity invariants (same-seed exports, ``--workers`` 1-vs-N) must
  keep holding with profiling enabled. The block's *shape* is
  deterministic — stable keys, sorted phases — only its values are
  measurements.
* the live progress heartbeat (:class:`ProgressReporter`, CLI
  ``--progress``): stderr-only lines with the current phase, percent of
  horizon (when the scenario published one), events/s, ETA, and sweep
  points done/total. stdout is untouched, so ``--json`` output stays
  byte-identical with the heartbeat on.

Engines pick the profiler up through the **active-profiler registry**:
the CLI activates one per invocation (:func:`profiled`), rig builders call
:func:`attach` on each :class:`~repro.sim.engine.Engine` they create, and
the engine's run loop drives the observer protocol (``run_started`` /
``tick`` / ``run_ended``). With no active profiler every hook is a no-op
and the engine runs its fast path.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Any, Callable

__all__ = [
    "ProgressReporter",
    "RuntimeProfiler",
    "attach",
    "current",
    "phase",
    "profiled",
    "rss_high_water_bytes",
    "set_fraction",
]

#: engine events between heartbeat ticks — coarse enough that the
#: per-event cost is one integer decrement, fine enough that a stalled
#: run is visible within a second or two
TICK_EVERY = 20_000


def rss_high_water_bytes() -> int | None:
    """The process' resident-set high-water mark in bytes, or ``None``
    when the platform doesn't expose one (``resource`` is POSIX-only).

    Linux reports ``ru_maxrss`` in kilobytes, macOS in bytes; both are
    normalised to bytes here.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:  # pragma: no cover - platform returned nothing useful
        return None
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return int(peak)
    return int(peak) * 1024


class ProgressReporter:
    """Throttled stderr heartbeat for long runs and sweeps.

    All output goes to ``stream`` (default ``sys.stderr``) as whole lines,
    at most one per ``min_interval_s`` of wall time — safe for CI logs and
    invisible to anything consuming stdout.
    """

    def __init__(
        self,
        stream=None,
        *,
        min_interval_s: float = 0.5,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = float(min_interval_s)
        self._clock = clock
        self._last_emit = -float("inf")
        self._phase: str | None = None
        self._fraction: Callable[[], float | None] | None = None
        #: (wall, events) of the previous tick, for the ev/s window
        self._window: tuple[float, int] | None = None
        #: lines emitted (tests pin that the heartbeat actually beats)
        self.emitted = 0

    # -- context published by the run/sweep drivers -------------------------------

    def phase(self, name: str) -> None:
        """A new phase began; resets the horizon fraction."""
        self._phase = name
        self._fraction = None
        self._window = None

    def set_fraction(self, fraction: Callable[[], float | None]) -> None:
        """Publish a fraction-of-horizon callable for the current phase
        (e.g. boots completed / boots planned); enables ``%`` and ETA."""
        self._fraction = fraction

    # -- emission -----------------------------------------------------------------

    def _emit(self, text: str, *, force: bool = False) -> None:
        now = self._clock()
        if not force and now - self._last_emit < self.min_interval_s:
            return
        self._last_emit = now
        self.emitted += 1
        print(f"[progress] {text}", file=self.stream, flush=True)

    def engine_tick(self, engine, run_wall_s: float, events: int) -> None:
        """One heartbeat from inside :meth:`Engine.run` (via the
        profiler): sim clock, events/s over the last window, and — when a
        fraction is published — percent of horizon and a wall-clock ETA."""
        now = self._clock()
        if now - self._last_emit < self.min_interval_s:
            return
        window = self._window
        self._window = (now, events)
        rate = None
        if window is not None and now > window[0]:
            rate = (events - window[1]) / (now - window[0])
        parts = []
        if self._phase:
            parts.append(self._phase)
        fraction = self._fraction() if self._fraction is not None else None
        if fraction is not None:
            fraction = min(max(fraction, 0.0), 1.0)
            parts.append(f"{100.0 * fraction:.0f}%")
            if fraction > 0 and run_wall_s > 0:
                eta = run_wall_s * (1.0 - fraction) / fraction
                parts.append(f"eta {eta:.0f}s")
        parts.append(f"sim {engine.now:.1f}s")
        if rate is not None:
            parts.append(f"{rate / 1e3:.1f}k ev/s")
        self._emit(" ".join(parts), force=True)

    def point_done(
        self, done: int, total: int, wall_s: float, *, workers: int = 1,
        busy: int | None = None,
    ) -> None:
        """One sweep point finished: done/total, mean point wall, ETA at
        the current concurrency, and worker utilisation."""
        parts = [f"sweep {done}/{total} points"]
        if done:
            mean = wall_s / done
            remaining = total - done
            parts.append(f"avg {mean:.1f}s/pt")
            if remaining:
                parts.append(f"eta {mean * remaining / max(1, workers):.0f}s")
        if busy is not None and workers > 1:
            parts.append(f"workers {busy}/{workers} busy")
        self._emit(" ".join(parts), force=done >= total)


class RuntimeProfiler:
    """Wall-clock phase timers + engine throughput + memory high-water.

    Implements the engine-observer protocol (:attr:`tick_every`,
    :meth:`run_started`, :meth:`tick`, :meth:`run_ended`); scenario and
    CLI layers add named phases (:meth:`phase`) and sweep points
    (:meth:`point`). :meth:`block` renders everything as the JSON-able
    ``runtime`` block.
    """

    tick_every = TICK_EVERY

    def __init__(
        self,
        *,
        progress: ProgressReporter | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.progress = progress
        self._clock = clock
        self._born = clock()
        self._phases: dict[str, dict[str, float]] = {}
        self._points: list[dict[str, Any]] = []
        self._engine_runs = 0
        self._engine_events = 0
        self._engine_wall_s = 0.0
        self._engine_sim_s = 0.0
        #: live-run state between run_started and run_ended
        self._run_t0: float | None = None
        self._run_events0 = 0
        self._run_now0 = 0.0

    # -- phases -------------------------------------------------------------------

    @contextmanager
    def phase(self, name: str):
        """Time one named phase; re-entering a name accumulates into it."""
        if self.progress is not None:
            self.progress.phase(name)
        t0 = self._clock()
        try:
            yield self
        finally:
            elapsed = self._clock() - t0
            entry = self._phases.setdefault(name, {"wall_s": 0.0, "count": 0})
            entry["wall_s"] += elapsed
            entry["count"] += 1

    # -- engine observer protocol --------------------------------------------------

    def run_started(self, engine) -> None:
        """:meth:`Engine.run` entered: snapshot the wall/sim/event clocks."""
        self._run_t0 = self._clock()
        self._run_events0 = engine.events_processed
        self._run_now0 = engine.now

    def tick(self, engine) -> None:
        """Periodic heartbeat from the run loop (every ``tick_every``
        processed events); forwards to the progress reporter, if any."""
        if self.progress is not None and self._run_t0 is not None:
            self.progress.engine_tick(
                engine,
                self._clock() - self._run_t0,
                engine.events_processed - self._run_events0,
            )

    def run_ended(self, engine) -> None:
        """:meth:`Engine.run` returned: fold the run into the totals."""
        if self._run_t0 is None:
            return
        self._engine_runs += 1
        self._engine_wall_s += self._clock() - self._run_t0
        self._engine_events += engine.events_processed - self._run_events0
        self._engine_sim_s += engine.now - self._run_now0
        self._run_t0 = None

    # -- sweep points --------------------------------------------------------------

    def point(self, label: str, wall_s: float, *, status: str = "run") -> None:
        """Record one sweep point's wall time (``status`` is ``"run"`` or
        ``"cached"`` for resume replays, which took no fresh work)."""
        self._points.append(
            {"label": label, "status": status, "wall_s": float(wall_s)}
        )

    # -- the runtime block ---------------------------------------------------------

    def engine_stats(self) -> dict[str, float]:
        """Aggregate engine throughput across every profiled ``run()``."""
        wall = self._engine_wall_s
        return {
            "runs": self._engine_runs,
            "events": self._engine_events,
            "wall_s": wall,
            "sim_s": self._engine_sim_s,
            "events_per_s": self._engine_events / wall if wall > 0 else 0.0,
            "sim_s_per_wall_s": self._engine_sim_s / wall if wall > 0 else 0.0,
        }

    def block(self) -> dict[str, Any]:
        """The ``runtime`` block: deterministic shape, measured values.

        Lives *next to* canonical reports (``runtime.json``, manifest
        trailer, stderr) and is excluded from byte-identical comparisons.
        """
        return {
            "schema": "repro.runtime/1",
            "wall_s": self._clock() - self._born,
            "phases": {
                name: dict(entry)
                for name, entry in sorted(self._phases.items())
            },
            "engine": self.engine_stats(),
            "rss_high_water_bytes": rss_high_water_bytes(),
            "points": list(self._points),
        }

    def render(self) -> str:
        """One human line for stderr: phases, throughput, memory."""
        stats = self.engine_stats()
        parts = [f"wall {self._clock() - self._born:.1f}s"]
        if stats["runs"]:
            parts.append(f"engine {stats['events_per_s'] / 1e3:.0f}k ev/s")
            parts.append(f"sim x{stats['sim_s_per_wall_s']:.0f} wall")
        peak = rss_high_water_bytes()
        if peak is not None:
            parts.append(f"rss {peak / (1 << 20):.0f} MiB")
        if self._phases:
            slowest = max(self._phases.items(), key=lambda kv: kv[1]["wall_s"])
            parts.append(f"slowest phase {slowest[0]} {slowest[1]['wall_s']:.1f}s")
        return "[runtime] " + ", ".join(parts)


#: the active-profiler stack — module state, like a contextvar but
#: shareable with sweep workers' inline path (single-threaded use only)
_ACTIVE: list[RuntimeProfiler] = []


def current() -> RuntimeProfiler | None:
    """The innermost active profiler, or ``None`` outside :func:`profiled`."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def profiled(profiler: RuntimeProfiler):
    """Make ``profiler`` the active profiler for the dynamic extent."""
    _ACTIVE.append(profiler)
    try:
        yield profiler
    finally:
        _ACTIVE.pop()


def attach(engine) -> None:
    """Point ``engine`` at the active profiler (no-op without one).

    Rig builders call this on every engine they create; the engine's run
    loop then reports through the observer protocol.
    """
    profiler = current()
    if profiler is not None:
        engine.observer = profiler


def set_fraction(fraction: Callable[[], float | None]) -> None:
    """Publish the current phase's fraction-of-horizon callable to the
    active progress reporter (no-op without ``--progress``)."""
    profiler = current()
    if profiler is not None and profiler.progress is not None:
        profiler.progress.set_fraction(fraction)


@contextmanager
def phase(name: str):
    """Module-level phase timer against the active profiler; a cheap
    no-op when none is active, so library code can annotate phases
    unconditionally."""
    profiler = current()
    if profiler is None:
        yield None
    else:
        with profiler.phase(name):
            yield profiler
