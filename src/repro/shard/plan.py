"""Shard plans: deterministic grouping of images into dedup shards.

Two grouping modes:

* ``similarity`` — greedy threshold clustering over the analytic
  similarity weights (:mod:`repro.shard.similarity`). Images are visited
  in catalogue order; each joins the open group whose *anchor* (first
  member) it matches best, or opens a new group while shard slots remain
  and no anchor clears the threshold. Ties break toward the least-loaded
  (then lowest-index) group. The result depends only on the spec list —
  no RNG — so plans are byte-stable per seed.
* ``tenant`` — isolation by ownership: the image's owning tenant
  (:meth:`~repro.workload.tenants.TenantPopulation.image_owners`) modulo
  the shard count.

``shards=1`` always yields the trivial plan (every image in ``s00``),
which the router maps onto the pool's existing global dedup domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import ConfigError
from ..vmi.image import ImageSpec
from .similarity import hoard_grains, weight

__all__ = ["ShardPlan", "build_plan", "shard_name", "GROUPING_MODES"]

GROUPING_MODES = ("similarity", "tenant")

#: default similarity threshold: above typical cross-family package overlap
#: (~0.1-0.2), below same-family cross-release weights scaled by
#: ``family_share`` (~0.4+), so families cluster and strangers don't
DEFAULT_THRESHOLD = 0.3


def shard_name(index: int) -> str:
    return f"s{index:02d}"


@dataclass(frozen=True)
class ShardPlan:
    """An immutable image → shard assignment."""

    mode: str
    names: tuple[str, ...]
    assignment: dict[int, str] = field(default_factory=dict)
    threshold: float = 0.0

    @property
    def n_shards(self) -> int:
        return len(self.names)

    def shard_of(self, image_id: int) -> str:
        shard = self.assignment.get(image_id)
        if shard is None:
            # images outside the planned catalogue slice still need a
            # deterministic home (e.g. late registrations)
            shard = self.names[image_id % len(self.names)]
        return shard

    def members(self, shard: str) -> list[int]:
        return sorted(i for i, s in self.assignment.items() if s == shard)

    def to_dict(self) -> dict:
        groups = {
            shard: len(self.members(shard)) for shard in self.names
        }
        return {
            "mode": self.mode,
            "threshold": self.threshold,
            "shards": list(self.names),
            "images": len(self.assignment),
            "group_sizes": groups,
        }


def _similarity_groups(
    specs: list[ImageSpec], n_shards: int, threshold: float
) -> list[list[int]]:
    """Greedy anchor clustering; returns per-group spec indices."""
    groups: list[dict] = []  # {"anchor": spec, "members": [idx], "load": grains}
    for index, spec in enumerate(specs):
        best_group = None
        best_weight = -1.0
        for g_index, group in enumerate(groups):
            w = weight(spec, group["anchor"])
            better = w > best_weight or (
                w == best_weight
                and best_group is not None
                and (
                    group["load"] < groups[best_group]["load"]
                    or (
                        group["load"] == groups[best_group]["load"]
                        and g_index < best_group
                    )
                )
            )
            if better:
                best_group = g_index
                best_weight = w
        if len(groups) < n_shards and best_weight < threshold:
            groups.append({"anchor": spec, "members": [index], "load": 0.0})
            best_group = len(groups) - 1
        else:
            groups[best_group]["members"].append(index)
        groups[best_group]["load"] += hoard_grains(spec)
    return [group["members"] for group in groups]


def build_plan(
    specs: list[ImageSpec],
    n_shards: int,
    mode: str = "similarity",
    *,
    owners=None,
    threshold: float = DEFAULT_THRESHOLD,
) -> ShardPlan:
    """Group ``specs`` into ``n_shards`` shards."""
    if n_shards < 1:
        raise ConfigError("need at least one shard")
    if mode not in GROUPING_MODES:
        raise ConfigError(
            f"unknown grouping mode {mode!r} (choose from {GROUPING_MODES})"
        )
    names = tuple(shard_name(i) for i in range(n_shards))
    assignment: dict[int, str] = {}
    if n_shards == 1:
        assignment = {spec.image_id: names[0] for spec in specs}
        return ShardPlan(
            mode=mode, names=names, assignment=assignment, threshold=threshold
        )
    if mode == "tenant":
        if owners is None:
            raise ConfigError("tenant grouping needs an image -> owner map")
        for spec in specs:
            owner = int(owners[spec.image_id])
            assignment[spec.image_id] = names[owner % n_shards]
    else:
        for g_index, members in enumerate(
            _similarity_groups(list(specs), n_shards, threshold)
        ):
            for index in members:
                assignment[specs[index].image_id] = names[g_index]
    return ShardPlan(
        mode=mode, names=names, assignment=assignment, threshold=threshold
    )
