"""Pairwise shared-grain weights between synthesised images.

The synthesiser builds image content from structured grain pools
(:mod:`repro.vmi.pools`): a per-release master (boot region + base body),
family-wide shared runs within the master (``release.family_share``), one
global package pool feeding the user region, and image-private grains. The
expected shared-grain count between two images is therefore a closed-form
function of their :class:`~repro.vmi.image.ImageSpec` metadata — no streams
need to be materialised, so grouping a 10k-image catalogue stays cheap and
exactly deterministic.

Model, in grains (expectations over the synthesiser's random draws):

* same release — both images copy the release master; a master grain
  survives in an image with probability ``1 - mutation rate``, so the
  joint overlap of the boot and base-body regions scales by the product
  of the two survival rates;
* same family, different release — as above, scaled by the release's
  ``family_share`` (the fraction of master grains drawn from the
  family-wide pool rather than minted per release);
* any pair — user regions draw ``package_fraction`` of their grains from
  the one global package pool with Zipf-ish popularity; two draws overlap
  in roughly :data:`PACKAGE_POOL_OVERLAP` of the smaller draw.

Weights normalise shared grains by the smaller image's hoardable content,
giving a symmetric similarity in ``[0, 1]``.
"""

from __future__ import annotations

from ..vmi.image import ImageSpec

__all__ = ["SimilarityGraph", "hoard_grains", "shared_grains", "weight"]

#: expected fraction of the smaller of two package-pool draws that the
#: larger draw also contains (popular packages dominate both draws)
PACKAGE_POOL_OVERLAP = 0.5


def _package_grains(spec: ImageSpec) -> float:
    return spec.user_grains * spec.package_fraction


def hoard_grains(spec: ImageSpec) -> float:
    """Grains of an image that can deduplicate against *some* other image:
    the boot cache, the base body, and the package-pool share of the user
    region (image-private grains never dedup, so they don't count)."""
    return spec.cache_grains + spec.base_body_grains + _package_grains(spec)


def shared_grains(a: ImageSpec, b: ImageSpec) -> float:
    """Expected grains images ``a`` and ``b`` have in common."""
    if a.image_id == b.image_id:
        return hoard_grains(a)
    master = 0.0
    if a.release.family == b.release.family:
        boot = (
            min(a.cache_grains, b.cache_grains)
            * (1.0 - a.mutation.boot_rate)
            * (1.0 - b.mutation.boot_rate)
        )
        body = (
            min(a.base_body_grains, b.base_body_grains)
            * (1.0 - a.mutation.body_rate)
            * (1.0 - b.mutation.body_rate)
        )
        master = boot + body
        if a.release.name != b.release.name:
            master *= a.release.family_share
    packages = PACKAGE_POOL_OVERLAP * min(_package_grains(a), _package_grains(b))
    return master + packages


def weight(a: ImageSpec, b: ImageSpec) -> float:
    """Symmetric similarity in ``[0, 1]``: shared grains over the smaller
    image's hoardable grains."""
    floor = min(hoard_grains(a), hoard_grains(b))
    if floor <= 0:
        return 0.0
    return min(1.0, shared_grains(a, b) / floor)


class SimilarityGraph:
    """Dense pairwise weights over a spec list (index-addressed)."""

    def __init__(self, specs: list[ImageSpec]) -> None:
        self.specs = list(specs)

    def __len__(self) -> int:
        return len(self.specs)

    def weight(self, i: int, j: int) -> float:
        return weight(self.specs[i], self.specs[j])

    def edges(self, threshold: float = 0.0) -> list[tuple[int, int, float]]:
        """All pairs ``(i, j, w)`` with ``i < j`` and ``w >= threshold``."""
        out = []
        for i in range(len(self.specs)):
            for j in range(i + 1, len(self.specs)):
                w = self.weight(i, j)
                if w >= threshold:
                    out.append((i, j, w))
        return out
