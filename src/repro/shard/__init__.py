"""Semantics-aware cVolume sharding (the Fig 12 similarity structure).

* :mod:`~repro.shard.similarity` — analytic pairwise shared-grain weights
  between synthesised images,
* :mod:`~repro.shard.plan` — deterministic grouping into
  :class:`ShardPlan`\\ s (``similarity`` or ``tenant`` mode),
* :mod:`~repro.shard.router` — the :class:`ShardRouter` Squirrel consults
  for shard routing, per-shard snapshot chains, quotas, and per-tenant
  accounting.
"""

from .plan import GROUPING_MODES, ShardPlan, build_plan, shard_name
from .router import ShardRouter
from .similarity import SimilarityGraph, hoard_grains, shared_grains, weight

__all__ = [
    "GROUPING_MODES",
    "ShardPlan",
    "ShardRouter",
    "SimilarityGraph",
    "build_plan",
    "hoard_grains",
    "shard_name",
    "shared_grains",
    "weight",
]
