"""ShardRouter — the state Squirrel consults when the cVolume is sharded.

Attached as ``squirrel.sharding`` (``None`` keeps every code path
byte-identical to the global-domain baseline). The router owns:

* the :class:`~repro.shard.plan.ShardPlan` (image → shard),
* the storage-side :class:`~repro.zfs.ShardedPool` over the scVolume,
  including per-shard quotas and eviction,
* per-shard snapshot serial counters and snapshot ages (each shard has
  its own incremental chain),
* per-(node, shard) sync state (replacing ``ComputeNode.synced_snapshot``
  while sharded — kept off the interned replicas on purpose: sync state
  is per node, pool state is per replica),
* per-tenant boot/ARC tallies feeding the per-tenant hit-rate gauges and
  the noisy-neighbor report block.

With a single shard the router *adopts* the existing scVolume/ccVolume
datasets and the global DDT: no new datasets, no new domains — only quota
enforcement and tenant accounting on top. That is the "global domain with
quota" contrast side of the ``shards`` experiment.
"""

from __future__ import annotations

from ..common.errors import ConfigError
from ..core.cluster import CCVOLUME, SCVOLUME
from ..zfs import ShardedPool
from .plan import ShardPlan

__all__ = ["ShardRouter"]


class ShardRouter:
    """Routing + accounting state for a sharded cVolume."""

    def __init__(
        self,
        plan: ShardPlan,
        *,
        quota_bytes: int = 0,
        arc_bytes_per_shard: int | None = None,
        tenants: tuple[int, ...] = (),
    ) -> None:
        self.plan = plan
        self.quota_bytes = int(quota_bytes)
        #: per-shard ARC slice for TimedSquirrel's per-node caches; ``None``
        #: falls back to an even split of the node budget
        self.arc_bytes_per_shard = arc_bytes_per_shard
        #: known tenant ids (lets the rig pre-create per-tenant metric
        #: children so expositions cover every tenant from the first scrape)
        self.tenants = tuple(int(t) for t in tenants)
        self.scvol: ShardedPool | None = None
        self._serials = {shard: 0 for shard in plan.names}
        self.snapshot_days: dict[str, dict[str, float]] = {
            shard: {} for shard in plan.names
        }
        self._synced: dict[str, dict[str, str | None]] = {}
        self.evicted_images: dict[int, str] = {}
        self._tenants: dict[int, dict[str, int]] = {}

    @property
    def names(self) -> tuple[str, ...]:
        return self.plan.names

    @property
    def n_shards(self) -> int:
        return self.plan.n_shards

    def shard_of(self, image_id: int) -> str:
        return self.plan.shard_of(image_id)

    # -- installation ---------------------------------------------------------

    def cc_name(self, shard: str) -> str:
        """Node-side dataset name for a shard."""
        if self.n_shards == 1:
            return CCVOLUME
        return f"{CCVOLUME}/{shard}"

    def install(self, squirrel) -> None:
        """Create the shard datasets (storage + every node's pool).

        Must run before any registration. Single shard adopts the existing
        volumes; multi-shard creates ``scvol/<s>``/``ccvol/<s>`` datasets,
        each writing through its own dedup domain.
        """
        if self.scvol is not None:
            raise ConfigError("sharding already installed")
        if getattr(squirrel, "placement", None) is not None:
            raise ConfigError(
                "sharding and placement policies cannot be combined"
            )
        cluster = squirrel.cluster
        pool = cluster.storage.pool
        template = cluster.storage.scvolume
        if self.n_shards == 1:
            self.scvol = ShardedPool.adopt(
                pool, SCVOLUME, self.names[0], quota_bytes=self.quota_bytes
            )
            return
        self.scvol = ShardedPool.create(
            pool,
            SCVOLUME,
            self.names,
            record_size=template.record_size,
            compression=template.compression,
            quota_bytes=self.quota_bytes,
        )
        names = self.names
        record_size = template.record_size
        compression = template.compression

        def init(node_pool) -> None:
            for shard in names:
                node_pool.create_dataset(
                    f"{CCVOLUME}/{shard}",
                    record_size=record_size,
                    compression=compression,
                    domain=shard,
                )

        squirrel._apply_replica(
            cluster.compute, ("shardinit",) + names, init,
            when=lambda node_pool: not node_pool.has_dataset(
                f"{CCVOLUME}/{names[0]}"
            ),
        )

    # -- snapshot chains ------------------------------------------------------

    def next_snapshot(self, shard: str) -> str:
        self._serials[shard] += 1
        return f"v{self._serials[shard]:05d}"

    # -- per-(node, shard) sync state -----------------------------------------

    def synced_of(self, node_name: str, shard: str) -> str | None:
        return self._synced.get(node_name, {}).get(shard)

    def set_synced(self, node_name: str, shard: str, snap: str | None) -> None:
        self._synced.setdefault(node_name, {})[shard] = snap

    def reset_node(self, node_name: str) -> None:
        self._synced[node_name] = {shard: None for shard in self.names}

    def in_sync(self, node_name: str, shard: str) -> bool:
        """Whether the node can apply the shard's next incremental."""
        if self.scvol is None:
            return False
        latest = self.scvol.dataset(shard).latest_snapshot()
        target = latest.name if latest else None
        return self.synced_of(node_name, shard) == target

    # -- eviction bookkeeping -------------------------------------------------

    def note_evicted(self, shard: str, image_ids: list[int]) -> None:
        for image_id in image_ids:
            self.evicted_images[image_id] = shard

    def note_rehoarded(self, image_id: int) -> None:
        self.evicted_images.pop(image_id, None)

    # -- tenant accounting ----------------------------------------------------

    def _tenant(self, tenant_id: int) -> dict[str, int]:
        entry = self._tenants.get(tenant_id)
        if entry is None:
            entry = self._tenants[tenant_id] = {
                "boots": 0,
                "cache_hits": 0,
                "arc_hits": 0,
                "arc_misses": 0,
            }
        return entry

    def note_tenant_boot(self, tenant_id: int, cache_hit: bool) -> None:
        entry = self._tenant(tenant_id)
        entry["boots"] += 1
        if cache_hit:
            entry["cache_hits"] += 1

    def note_tenant_arc(self, tenant_id: int, hits: int, misses: int) -> None:
        entry = self._tenant(tenant_id)
        entry["arc_hits"] += hits
        entry["arc_misses"] += misses

    def tenant_hit_rate(self, tenant_id: int) -> float:
        entry = self._tenants.get(tenant_id)
        if not entry:
            return 0.0
        lookups = entry["arc_hits"] + entry["arc_misses"]
        return entry["arc_hits"] / lookups if lookups else 0.0

    def tenant_stats(self) -> dict[int, dict]:
        """Per-tenant tallies plus the derived ARC hit rate."""
        out: dict[int, dict] = {}
        for tenant_id in sorted(self._tenants):
            entry = dict(self._tenants[tenant_id])
            entry["hit_rate"] = self.tenant_hit_rate(tenant_id)
            out[tenant_id] = entry
        return out

    # -- reporting ------------------------------------------------------------

    def shard_block(self) -> dict:
        """The canonical ``sharding`` report block."""
        scvol = self.scvol
        block = {
            "plan": self.plan.to_dict(),
            "quota_bytes": self.quota_bytes,
            "evicted_images": len(self.evicted_images),
        }
        if scvol is not None:
            block["scvolume"] = scvol.shard_stats()
            block["dedup_loss_bytes"] = scvol.dedup_loss_bytes()
            block["duplicate_entries"] = scvol.duplicate_entries()
        return block
