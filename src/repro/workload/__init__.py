"""Multi-tenant workload engine: who boots what, when — and how long it takes."""

from .arrivals import (
    DAY_S,
    diurnal_arrivals,
    flash_crowd_arrivals,
    poisson_arrivals,
)
from .scenarios import (
    ChurnConfig,
    ChurnReport,
    DayConfig,
    DayReport,
    StormConfig,
    StormReport,
    StormSide,
    TimedSquirrel,
    boot_storm,
    register_churn,
    steady_state_day,
    storm_image_count,
)
from .sharding import ShardStormOutcome, shard_storm
from .tenants import Tenant, TenantPopulation

__all__ = [
    "DAY_S",
    "ChurnConfig",
    "ChurnReport",
    "DayConfig",
    "DayReport",
    "StormConfig",
    "ShardStormOutcome",
    "StormReport",
    "StormSide",
    "Tenant",
    "TenantPopulation",
    "TimedSquirrel",
    "boot_storm",
    "shard_storm",
    "diurnal_arrivals",
    "flash_crowd_arrivals",
    "poisson_arrivals",
    "register_churn",
    "steady_state_day",
    "storm_image_count",
]
