"""Sharded boot storm: semantic cVolume shards vs one global dedup domain.

The noisy-neighbor scenario the ``shards`` experiment reports: the same
flash crowd runs twice against the *same* aggregate storage quota and the
same aggregate node RAM —

* **grouped**: the cVolume is split into ``n`` shards (by image similarity
  or by tenant ownership), each with its own dedup table, its own byte
  quota, and its own slice of every node's boot ARC. A tenant whose images
  churn through one shard can only thrash that shard.
* **global**: a single shard adopting the pre-sharding global domain, with
  ``n×`` the per-shard quota and ``n×`` the per-shard ARC slice — identical
  totals, but shared, so a hot tenant's working set evicts everyone's.

Both sides replay the identical arrival trace at the identical engine seed;
the only difference is the partitioning. The *victim* is the tenant whose
ARC hit rate gains the most from isolation — the figure the committed
``slo/shards.toml`` rules gate in CI.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigError
from ..common.hashing import derive_seed
from ..common.report import ReportBase
from ..shard import ShardRouter, build_plan
from ..vmi import (
    AzureCommunityDataset,
    DatasetConfig,
    ImageCatalog,
    LazyImageCatalog,
    as_catalog,
    make_estimator,
)
from .scenarios import (
    StormConfig,
    StormReport,
    StormSide,
    _run_storm_side,
    _storm_trace,
    boot_storm,
)
from .tenants import TenantPopulation

__all__ = ["ShardStormOutcome", "shard_storm"]

MiB = 1 << 20

#: a tenant must have booted at least this often (grouped side) to qualify
#: as the victim — one-boot tenants have degenerate hit rates
VICTIM_MIN_BOOTS = 3


@dataclass(frozen=True)
class ShardStormOutcome(ReportBase):
    """Both partitionings of one storm plus the derived victim figures."""

    report: StormReport  #: the grouped run (both storm sides)
    global_side: StormSide  #: the global-domain contrast (Squirrel side only)
    sharding: dict  #: grouped/global router blocks + victim


def _owners(config: StormConfig, n_images: int) -> tuple[int, ...]:
    """Tenant owner per image, from the same population (same seed) that
    generates the arrival trace — tenant-mode plans group what the trace
    actually boots."""
    population = TenantPopulation(
        config.n_tenants,
        n_images,
        seed=derive_seed("workload-storm-tenants", config.seed),
        zipf_exponent=config.zipf_exponent,
    )
    return tuple(int(t) for t in population.image_owners())


def _victim(grouped: dict, global_: dict) -> dict:
    """The tenant isolation helped most: max grouped−global ARC hit-rate
    delta among tenants with enough grouped boots (lowest id on ties)."""
    best_id = None
    best_delta = 0.0
    for tenant_id, entry in sorted(grouped.items()):
        if entry["boots"] < VICTIM_MIN_BOOTS:
            continue
        other = global_.get(tenant_id)
        delta = entry["hit_rate"] - (other["hit_rate"] if other else 0.0)
        if best_id is None or delta > best_delta:
            best_id = tenant_id
            best_delta = delta
    if best_id is None:
        return {"tenant": None, "grouped_hit_rate": 0.0,
                "global_hit_rate": 0.0, "delta": 0.0}
    other = global_.get(best_id)
    return {
        "tenant": int(best_id),
        "grouped_hit_rate": grouped[best_id]["hit_rate"],
        "global_hit_rate": other["hit_rate"] if other else 0.0,
        "delta": best_delta,
    }


def shard_storm(
    config: StormConfig = StormConfig(),
    *,
    shards: int,
    grouping: str = "tenant",
    quota_mb: int = 0,
    threshold: float | None = None,
    dataset: AzureCommunityDataset | ImageCatalog | None = None,
    estimator=None,
    trace_path=None,
) -> ShardStormOutcome:
    """Run the grouped-vs-global sharding comparison.

    ``quota_mb`` is the **per-shard** cVolume quota in paper-scale MiB (0
    disables eviction); the global contrast side gets ``shards × quota_mb``
    — the same aggregate budget, unpartitioned. The per-shard ARC slice on
    every node follows the quota (or an even split when unquota'd), and the
    global side's single slice is again the exact sum.
    """
    if shards < 2:
        raise ConfigError("shard_storm needs >= 2 shards (1 is the plain storm)")
    catalog = as_catalog(dataset) or LazyImageCatalog(
        DatasetConfig(scale=config.scale)
    )
    estimator = estimator or make_estimator(
        "gzip6", (config.block_size,), samples_per_point=2
    )
    n_images = min(config.n_nodes * config.vms_per_node, len(catalog))
    plan = _storm_trace(config, n_images)
    n_registered = max(image_id for _, _, image_id, _ in plan) + 1
    specs = catalog.specs[:n_registered]
    owners = _owners(config, n_images)
    kwargs = {"threshold": threshold} if threshold is not None else {}
    shard_plan = build_plan(specs, shards, grouping, owners=owners, **kwargs)
    global_plan = build_plan(specs, 1, grouping, owners=owners, **kwargs)
    # quotas: the storage datasets hold size-scaled bytes, the node ARCs
    # charge paper-scale bytes — convert once here, at the boundary
    quota_scaled = int(quota_mb * MiB * config.scale)
    arc_slice = quota_mb * MiB if quota_mb > 0 else None
    tenants = tuple(range(config.n_tenants))

    grouped_sink: list[ShardRouter] = []
    report = boot_storm(
        config,
        dataset=catalog,
        estimator=estimator,
        trace_path=trace_path,
        sharding_factory=lambda _squirrel: ShardRouter(
            shard_plan,
            quota_bytes=quota_scaled,
            arc_bytes_per_shard=arc_slice,
            tenants=tenants,
        ),
        sharding_sink=grouped_sink.append,
    )
    global_sink: list[ShardRouter] = []
    global_side, _tracer = _run_storm_side(
        config,
        with_caches=True,
        catalog=catalog,
        estimator=estimator,
        plan=plan,
        sharding_factory=lambda _squirrel: ShardRouter(
            global_plan,
            quota_bytes=quota_scaled * shards,
            arc_bytes_per_shard=(
                arc_slice * shards if arc_slice is not None else None
            ),
            tenants=tenants,
        ),
        sharding_sink=global_sink.append,
    )
    grouped_router, global_router = grouped_sink[0], global_sink[0]
    grouped_tenants = grouped_router.tenant_stats()
    global_tenants = global_router.tenant_stats()
    grouped_block = grouped_router.shard_block()
    grouped_block["tenants"] = {
        f"t{t:02d}": entry for t, entry in grouped_tenants.items()
    }
    global_block = global_router.shard_block()
    global_block["tenants"] = {
        f"t{t:02d}": entry for t, entry in global_tenants.items()
    }
    sharding = {
        "shards": shards,
        "grouping": grouping,
        "quota_mb": quota_mb,
        "grouped": grouped_block,
        "global": global_block,
        "victim": _victim(grouped_tenants, global_tenants),
    }
    return ShardStormOutcome(
        report=report, global_side=global_side, sharding=sharding
    )
