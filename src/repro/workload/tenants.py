"""Multi-tenant population model.

An IaaS data center's VM arrivals are not one homogeneous stream: a few
large tenants dominate the request volume (lognormal tenant sizes), and each
tenant favours a small set of images — the aggregate image popularity is
Zipf-like, which is what makes cache-replacement policies thrash and
Squirrel's replicate-everything approach shine (paper Section 1).

The model is deliberately simple and fully deterministic per seed:

* tenant request weights ~ lognormal, normalised,
* every tenant ranks the image catalogue by its own permutation and draws
  from a Zipf(``zipf_exponent``) over those ranks,
* :meth:`TenantPopulation.sample` yields (tenant, image) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigError
from ..common.rng import stream as rng_stream

__all__ = ["Tenant", "TenantPopulation"]


@dataclass(frozen=True)
class Tenant:
    """One tenant: request weight plus a private image-preference order."""

    tenant_id: int
    weight: float  #: share of the cluster's VM arrivals
    image_order: np.ndarray  #: catalogue permutation; rank r → image id

    def __repr__(self) -> str:  # ndarray default repr is noise
        return f"Tenant({self.tenant_id}, weight={self.weight:.4f})"


class TenantPopulation:
    """``n_tenants`` tenants over a catalogue of ``n_images`` images."""

    def __init__(
        self,
        n_tenants: int,
        n_images: int,
        *,
        seed: int | str = 0,
        zipf_exponent: float = 0.9,
        weight_sigma: float = 1.2,
    ) -> None:
        if n_tenants < 1 or n_images < 1:
            raise ConfigError("need at least one tenant and one image")
        if zipf_exponent < 0:
            raise ConfigError("zipf exponent must be non-negative")
        self.n_images = n_images
        self.zipf_exponent = zipf_exponent
        build_rng = rng_stream("workload-tenants", seed)
        raw = build_rng.lognormal(0.0, weight_sigma, size=n_tenants)
        weights = raw / raw.sum()
        self.tenants = [
            Tenant(
                tenant_id=i,
                weight=float(weights[i]),
                image_order=build_rng.permutation(n_images),
            )
            for i in range(n_tenants)
        ]
        self._tenant_weights = weights
        ranks = np.arange(1, n_images + 1, dtype=np.float64)
        zipf = 1.0 / ranks**zipf_exponent
        self._image_rank_p = zipf / zipf.sum()

    def sample_tenant(self, rng: np.random.Generator) -> Tenant:
        index = int(rng.choice(len(self.tenants), p=self._tenant_weights))
        return self.tenants[index]

    def sample_image(self, tenant: Tenant, rng: np.random.Generator) -> int:
        rank = int(rng.choice(self.n_images, p=self._image_rank_p))
        return int(tenant.image_order[rank])

    def sample(self, rng: np.random.Generator) -> tuple[Tenant, int]:
        """One arrival: weighted tenant, then that tenant's Zipf image."""
        tenant = self.sample_tenant(rng)
        return tenant, self.sample_image(tenant, rng)

    def aggregate_popularity(self, n_samples: int, *, seed: int | str = 0) -> np.ndarray:
        """Empirical image-request frequencies (diagnostics/tests)."""
        rng = rng_stream("workload-popularity", seed)
        counts = np.zeros(self.n_images, dtype=np.int64)
        for _ in range(n_samples):
            _tenant, image_id = self.sample(rng)
            counts[image_id] += 1
        return counts / max(1, n_samples)

    def expected_popularity(self) -> np.ndarray:
        """Exact per-image request probability implied by the model.

        The weighted mixture of every tenant's Zipf pmf pushed through that
        tenant's catalogue permutation — no sampling involved, so placement
        policies built on it stay deterministic per seed.
        """
        popularity = np.zeros(self.n_images, dtype=np.float64)
        for tenant in self.tenants:
            popularity[tenant.image_order] += tenant.weight * self._image_rank_p
        return popularity

    def image_owners(self) -> np.ndarray:
        """Owning tenant per image id.

        The owner is the tenant contributing the largest expected request
        share for the image; ties break toward the lower tenant id (strict
        ``>`` comparison in tenant order), keeping the mapping deterministic.
        """
        best_tenant = np.zeros(self.n_images, dtype=np.int64)
        best_share = np.full(self.n_images, -1.0, dtype=np.float64)
        for tenant in self.tenants:
            share = np.zeros(self.n_images, dtype=np.float64)
            share[tenant.image_order] = tenant.weight * self._image_rank_p
            better = share > best_share
            best_tenant[better] = tenant.tenant_id
            best_share[better] = share[better]
        return best_tenant

    @property
    def tenant_weights(self) -> np.ndarray:
        """Normalised tenant request weights, indexed by tenant id."""
        return self._tenant_weights
