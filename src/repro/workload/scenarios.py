"""Scenario drivers: Squirrel operations as timed processes.

The accounting layer answers *how many bytes* a boot storm moves; this
module answers *how long it takes* when those bytes contend for NIC links,
glusterfs brick uplinks, local disks, and decompression CPU. It wires a
:class:`repro.sim.Engine` onto an :class:`~repro.core.cluster.IaaSCluster`:

* every compute node gets an ingress NIC :class:`~repro.sim.Pipe`, a
  :class:`~repro.disk.TimedDisk` (DAS-4 RAID-0 profile) and a decompression
  CPU :class:`~repro.sim.Resource`,
* every storage node's uplink is a shared brick Pipe,
* Squirrel ``register`` / ``boot`` / ``resync`` / GC run as generator
  processes: the accounting call executes at its scheduled instant (so all
  byte counts stay identical to the untimed system) and the bytes it moved
  are then driven through the contended resources.

Because the dataset is size-scaled to fit in memory, all *timed* byte
counts are scaled back up by ``1/scale`` before hitting a pipe or disk —
latencies come out in real-cluster seconds while ledger accounting keeps
the scaled units every other experiment uses.

Scenarios: :func:`boot_storm` (flash crowd, the timed generalisation of
Figure 18), :func:`steady_state_day` (diurnal multi-tenant load), and
:func:`register_churn` (registration pressure + node downtime + GC, which
exercises offline-propagation catch-up under time).

Fault tolerance: a :class:`~repro.faults.FaultPlan` on :class:`StormConfig`
runs the storm under injected node crashes, link flaps and brick failures.
Preempted boots cancel their half-done transfers, wait for the crashed host
to rejoin (offline catch-up included), retry, and **always complete**; the
report carries recovery-time percentiles next to the boot-time ones.

Observability: every boot opens a root span on a :class:`~repro.obs.
SpanTracer` with children for the ARC lookup, DDT/zio work, glusterfs
transfers (tagged with the chosen replica and degraded state), NIC transfer
and disk reads/writes; faults annotate the spans they kill. Each node runs
an in-memory :class:`~repro.zfs.AdaptiveReplacementCache` over its cVolume
blocks (a node crash wipes it), and every elapsed second of every boot is
charged to exactly one of ``cache_s`` / ``net_s`` / ``disk_s`` / ``wait_s``
(see :mod:`repro.obs.attribution`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..boot.backends import ZfsCostModel
from ..common.errors import ConfigError
from ..common.hashing import derive_seed
from ..common.report import ReportBase
from ..common.rng import stream as rng_stream
from ..core import IaaSCluster, Squirrel
from ..core.cluster import ComputeNode
from ..core.squirrel import (
    REGISTRATION_BOOT_SECONDS,
    SNAPSHOT_CREATE_SECONDS,
    cold_read_bytes,
)
from ..disk import DAS4_RAID0, DiskModel, TimedDisk
from ..faults import FaultInjector, FaultPlan
from ..metrics import MetricsRegistry, Sampler, TimeSeriesStore, metrics_block
from ..net import GBE_1, LinkProfile
from ..obs import (
    BootAttribution,
    SpanTracer,
    attribution_block,
    critical_path_block,
    write_chrome_trace,
)
from ..obs import runtime as obs_runtime
from ..sim import Engine, Event, HistogramStats, Interrupted, Pipe, Resource, Timeline
from ..vmi import (
    AzureCommunityDataset,
    DatasetConfig,
    ImageCatalog,
    LazyImageCatalog,
    as_catalog,
    make_estimator,
)
from ..zfs import AdaptiveReplacementCache, ArcStats
from ..placement import (
    TRANSPORT_NAMES,
    PlacementContext,
    PlacementSpec,
    build_coordinator,
)
from .arrivals import DAY_S, diurnal_arrivals, flash_crowd_arrivals, poisson_arrivals
from .tenants import TenantPopulation

__all__ = [
    "StormConfig",
    "StormSide",
    "StormReport",
    "DayConfig",
    "DayReport",
    "ChurnConfig",
    "ChurnReport",
    "TimedSquirrel",
    "boot_storm",
    "steady_state_day",
    "register_churn",
    "storm_image_count",
]

#: decompression throughput of one node core (gzip-6; matches repro.boot)
DECOMPRESS_BYTES_PER_S = 250e6
#: disk span the scattered cache/working-set offsets are drawn over
DISK_SPAN_BYTES = 1 << 40
#: in-memory ARC budget per compute node (matches the cVolume boot backend)
ARC_BYTES_PER_NODE = 256 << 20
#: fixed bucket layout (seconds) shared by every latency histogram family —
#: declared, never data-derived, so expositions diff cleanly across runs
LATENCY_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
    120.0, 300.0, 600.0, 1800.0, 3600.0,
)
#: ring capacity of the per-run time-series store (samples per series)
METRICS_RING = 4096
#: per-node metric series are exported for at most this many compute nodes
#: (the paper's 64-node cluster): beyond it, counters fold into a "_other"
#: series (fleet sums stay exact) and per-node gauges are replaced by one
#: "_fleet" aggregate. Without the cap a 10k-node storm is quadratic in the
#: sampler — O(nodes) series per scrape times an O(nodes) horizon.
METRICS_NODE_DETAIL = 64


def _disk_offset(size: int, *key) -> int:
    """Deterministic platter position of one piece of data."""
    span = max(1, DISK_SPAN_BYTES - size)
    return derive_seed("disk-offset", *key) % span


class _InflightBoot:
    """Book-keeping handle for one boot in flight: what the fault injector
    needs to preempt it (the process) and to target it (which bricks or
    peer holders its current fetch is streaming from)."""

    __slots__ = ("node_name", "process", "bricks", "peers")

    def __init__(self, node_name: str) -> None:
        self.node_name = node_name
        self.process = None  #: set right after engine.process() creates it
        self.bricks: set[str] = set()
        self.peers: set[str] = set()  #: placement peer(s) serving this fetch


class _BootTrace:
    """One boot's tracing context: the root span, the attribution ledger,
    and the child spans a fault interrupt must annotate and close."""

    __slots__ = ("tracer", "att", "root", "open_spans")

    def __init__(self, tracer: SpanTracer, att: BootAttribution, root) -> None:
        self.tracer = tracer
        self.att = att
        self.root = root
        self.open_spans: list = []

    def child(self, name: str, *, parent=None, **attrs):
        """Open a child span on the boot's track, tracked for fault kills."""
        span = self.tracer.span(
            name, parent=parent or self.root, track=self.root.track, **attrs
        )
        self.open_spans.append(span)
        return span

    def kill(self, cause) -> None:
        """A fault preempted this boot: close every span it left open,
        recording what killed it."""
        for span in self.open_spans:
            if span.open:
                span.end(interrupted=str(cause))
        self.open_spans.clear()


class _ShardedNodeArc:
    """A node's boot ARC partitioned by shard: one independent
    :class:`~repro.zfs.AdaptiveReplacementCache` per shard, keyed through the
    shard plan. This is the RAM half of noisy-neighbor isolation — a tenant
    whose images all land in one shard can only thrash that shard's slice.

    The aggregate surface (``stats``/``p``/``resident_bytes``/``clear``)
    matches the plain ARC, so timeline gauges, the ``_fleet`` sweep, and the
    fault injector's crash-wipe work unchanged."""

    __slots__ = ("plan", "shards")

    def __init__(self, plan, bytes_per_shard: int) -> None:
        self.plan = plan
        self.shards: dict[str, AdaptiveReplacementCache] = {
            shard: AdaptiveReplacementCache(bytes_per_shard)
            for shard in plan.names
        }

    def _arc(self, key) -> AdaptiveReplacementCache:
        # boot ARC keys are (image_id, block_index); route by image
        return self.shards[self.plan.shard_of(key[0])]

    def get(self, key):
        return self._arc(key).get(key)

    def put(self, key, value, size: int) -> None:
        self._arc(key).put(key, value, size)

    def clear(self) -> None:
        for arc in self.shards.values():
            arc.clear()

    @property
    def p(self) -> int:
        return sum(arc.p for arc in self.shards.values())

    @property
    def resident_bytes(self) -> int:
        return sum(arc.resident_bytes for arc in self.shards.values())

    @property
    def stats(self) -> ArcStats:
        total = ArcStats()
        for arc in self.shards.values():
            s = arc.stats
            total.hits += s.hits
            total.misses += s.misses
            total.t1_hits += s.t1_hits
            total.t2_hits += s.t2_hits
            total.b1_ghost_hits += s.b1_ghost_hits
            total.b2_ghost_hits += s.b2_ghost_hits
            total.t1_evictions += s.t1_evictions
            total.t2_evictions += s.t2_evictions
        return total


def _node_shard_ddt_core(pool, shard: str, single: bool) -> float:
    """Resident DDT bytes of one shard's dedup domain on a node pool,
    without creating the domain (scrapes must never mutate)."""
    if single:
        return float(pool.ddt.in_core_bytes)
    ddt = pool.peek_domain_ddt(shard)
    return float(ddt.in_core_bytes) if ddt is not None else 0.0


class TimedSquirrel:
    """Drives Squirrel operations through the event engine's resources."""

    def __init__(
        self,
        squirrel: Squirrel,
        dataset: AzureCommunityDataset | ImageCatalog,
        engine: Engine,
        timeline: Timeline,
        *,
        tracer: SpanTracer | None = None,
        metrics: MetricsRegistry | None = None,
        cpu_cores_per_node: int = 2,
        arc_bytes_per_node: int = ARC_BYTES_PER_NODE,
    ) -> None:
        self.squirrel = squirrel
        #: eager datasets are adapted (specs shared, nothing recomputed)
        self.catalog = as_catalog(dataset)
        self.engine = engine
        self.timeline = timeline
        self.tracer = tracer or SpanTracer(engine)
        self.metrics = metrics or MetricsRegistry()
        #: timed transfers replay the paper-scale byte counts
        self.scale_up = self.catalog.scaled_up
        cluster = squirrel.cluster
        self.nic: dict[str, Pipe] = {
            node.name: node.node.link.make_pipe(
                engine, name=f"nic:{node.name}", timeline=timeline
            )
            for node in cluster.compute
        }
        self.brick: dict[str, Pipe] = {
            node.name: node.link.make_pipe(
                engine, name=f"brick:{node.name}", timeline=timeline
            )
            for node in cluster.storage.nodes
        }
        self.disk: dict[str, TimedDisk] = {
            node.name: TimedDisk(
                engine, DiskModel(DAS4_RAID0), name=f"disk:{node.name}",
                timeline=timeline,
            )
            for node in cluster.compute
        }
        self.cpu: dict[str, Resource] = {
            node.name: Resource(
                engine, cpu_cores_per_node, name=f"cpu:{node.name}",
                timeline=timeline,
            )
            for node in cluster.compute
        }
        #: per-node in-memory ARC over cVolume blocks (decompressed records,
        #: charged at paper-scale bytes); a node crash wipes it. Sharded rigs
        #: partition each node's ARC per shard (quota paper bytes when a
        #: quota is set, else an even split of the node budget) so one
        #: tenant's churn cannot evict another shard's residents.
        sharding = squirrel.sharding
        if sharding is None:
            self.arc: dict[str, AdaptiveReplacementCache] = {
                node.name: AdaptiveReplacementCache(arc_bytes_per_node)
                for node in cluster.compute
            }
        else:
            per_shard = sharding.arc_bytes_per_shard or max(
                1, arc_bytes_per_node // sharding.n_shards
            )
            self.arc = {
                node.name: _ShardedNodeArc(sharding.plan, per_shard)
                for node in cluster.compute
            }
        #: per-block ZFS pipeline costs (shared with the Figure 11 backend)
        self.zfs_costs = ZfsCostModel()
        #: fault-injection hooks: the injector attaches itself here and
        #: consults the in-flight boot registry to preempt work
        self.faults: FaultInjector | None = None
        #: insertion-ordered (dict-as-set): preemption must walk boots in a
        #: deterministic order or same-seed runs diverge
        self._inflight: dict[str, dict[_InflightBoot, None]] = {
            node.name: {} for node in cluster.compute
        }
        self._instrument()

    def _instrument(self) -> None:
        """Declare every metric family this rig exports.

        Per-node children are pre-created so the exposition covers the whole
        fleet (at zero) from the first scrape; callback gauges read live
        simulation state — ARC geometry, DDT footprint, pipe utilisation —
        at scrape time without the hot paths pushing updates. Scraping never
        mutates anything, so metrics cannot perturb byte accounting.

        Fleets larger than :data:`METRICS_NODE_DETAIL` export per-node
        series for the first ``METRICS_NODE_DETAIL`` nodes only; the rest
        share a "_other" counter child and a "_fleet" aggregate gauge, so
        the scrape cost is bounded while fleet-wide sums stay exact.
        """
        m = self.metrics
        cluster = self.squirrel.cluster
        all_names = [node.name for node in cluster.compute]
        names = all_names[:METRICS_NODE_DETAIL]
        self._node_detail = frozenset(names)
        self._capped = len(all_names) > len(names)
        self._m_boots = m.counter(
            "squirrel_boots_total", "Completed VM boots", labels=("node",)
        )
        self._m_cache_hits = m.counter(
            "squirrel_boot_cache_hits_total",
            "Boots served from the node's cVolume cache",
            labels=("node",),
        )
        self._m_cold = m.counter(
            "squirrel_boot_cold_total",
            "Boots that streamed their boot set from storage",
            labels=("node",),
        )
        self._m_cold_bytes = m.counter(
            "squirrel_cold_read_bytes_total",
            "Paper-scale bytes cold boots pulled over the network",
            labels=("node",),
        )
        self._m_interrupts = m.counter(
            "squirrel_boot_interrupts_total",
            "Boot attempts preempted by a fault",
            labels=("node",),
        )
        self._m_registrations = m.counter(
            "squirrel_registrations_total", "Image registrations completed"
        )
        self._m_resyncs = m.counter(
            "squirrel_resyncs_total",
            "Offline-propagation catch-ups that moved data",
            labels=("kind",),
        )
        self._m_resync_bytes = m.counter(
            "squirrel_resync_bytes_total", "Bytes moved by resyncs (scaled units)"
        )
        self._m_gc_runs = m.counter(
            "squirrel_gc_runs_total", "Garbage-collection sweeps"
        )
        self._m_gc_victims = m.counter(
            "squirrel_gc_victims_total", "Snapshots reclaimed by GC"
        )
        self._m_arc_hits = m.counter(
            "zfs_arc_hits_total", "ARC hits by tier", labels=("node", "tier")
        )
        self._m_arc_ghosts = m.counter(
            "zfs_arc_ghost_hits_total",
            "ARC ghost-list hits by tier",
            labels=("node", "tier"),
        )
        self._m_arc_misses = m.counter(
            "zfs_arc_misses_total", "ARC misses", labels=("node",)
        )
        self._m_arc_evictions = m.counter(
            "zfs_arc_evictions_total",
            "ARC evictions by tier",
            labels=("node", "tier"),
        )
        self._m_boot_latency = m.histogram(
            "squirrel_boot_latency_seconds",
            "End-to-end boot latency",
            buckets=LATENCY_BUCKETS,
        )
        self._m_recovery = m.histogram(
            "squirrel_recovery_seconds",
            "First fault impact to boot completion",
            buckets=LATENCY_BUCKETS,
        )
        self._m_register_latency = m.histogram(
            "squirrel_register_latency_seconds",
            "Registration latency (boot-once + snapshot + multicast)",
            buckets=LATENCY_BUCKETS,
        )
        self._m_resync_latency = m.histogram(
            "squirrel_resync_latency_seconds",
            "Offline-propagation catch-up latency",
            buckets=LATENCY_BUCKETS,
        )
        for name in names + (["_other"] if self._capped else []):
            for family in (
                self._m_boots, self._m_cache_hits, self._m_cold,
                self._m_cold_bytes, self._m_interrupts, self._m_arc_misses,
            ):
                family.labels(node=name)
            for tier in ("t1", "t2"):
                self._m_arc_hits.labels(node=name, tier=tier)
                self._m_arc_evictions.labels(node=name, tier=tier)
            for tier in ("b1", "b2"):
                self._m_arc_ghosts.labels(node=name, tier=tier)
        arc_p = m.gauge(
            "zfs_arc_p_bytes",
            "ARC adaptive target for T1 (paper-scale bytes)",
            labels=("node",),
        )
        arc_resident = m.gauge(
            "zfs_arc_resident_bytes",
            "Bytes resident in the node's boot ARC (paper-scale)",
            labels=("node",),
        )
        arc_rate = m.gauge(
            "zfs_arc_hit_rate", "Lifetime ARC hit rate", labels=("node",)
        )
        for name in names:
            arc = self.arc[name]
            arc_p.labels(node=name).set_function(lambda a=arc: float(a.p))
            arc_resident.labels(node=name).set_function(
                lambda a=arc: float(a.resident_bytes)
            )
            arc_rate.labels(node=name).set_function(
                lambda a=arc: float(a.stats.hit_rate)
            )
        ddt_entries = m.gauge(
            "zfs_ddt_entries", "Dedup-table entries", labels=("node", "tier")
        )
        ddt_core = m.gauge(
            "zfs_ddt_core_bytes", "DDT resident RAM", labels=("node", "tier")
        )
        pool_data = m.gauge(
            "zfs_pool_allocated_bytes",
            "Pool data bytes allocated after dedup",
            labels=("node", "tier"),
        )
        # compute gauges read through the node: replica sharing repoints
        # ``node.pool`` to a different ZPool object on copy-on-write splits,
        # so binding the pool at instrument time would scrape stale state
        for node in cluster.compute[:METRICS_NODE_DETAIL]:
            ddt_entries.labels(node=node.name, tier="compute").set_function(
                lambda n=node: float(n.pool.ddt.entry_count)
            )
            ddt_core.labels(node=node.name, tier="compute").set_function(
                lambda n=node: float(n.pool.ddt.in_core_bytes)
            )
            pool_data.labels(node=node.name, tier="compute").set_function(
                lambda n=node: float(n.pool.data_bytes)
            )
        spool = cluster.storage.pool
        ddt_entries.labels(node=spool.name, tier="storage").set_function(
            lambda p=spool: float(p.ddt.entry_count)
        )
        ddt_core.labels(node=spool.name, tier="storage").set_function(
            lambda p=spool: float(p.ddt.in_core_bytes)
        )
        pool_data.labels(node=spool.name, tier="storage").set_function(
            lambda p=spool: float(p.data_bytes)
        )
        if self._capped:
            # one whole-fleet aggregate replaces the dropped per-node gauge
            # series; the four sums share a single per-timestamp sweep so a
            # scrape walks the fleet once, not once per gauge
            sweep_cache: dict = {"now": None, "vals": (0.0, 0.0, 0.0, 0.0)}

            def _fleet(idx, cache=sweep_cache, nodes=cluster.compute,
                       arcs=self.arc, engine=self.engine):
                if cache["now"] != engine.now:
                    entries = core = data = 0.0
                    for node in nodes:
                        pool = node.pool
                        entries += pool.ddt.entry_count
                        core += pool.ddt.in_core_bytes
                        data += pool.data_bytes
                    resident = float(
                        sum(a.resident_bytes for a in arcs.values())
                    )
                    cache["now"] = engine.now
                    cache["vals"] = (entries, core, data, resident)
                return cache["vals"][idx]

            ddt_entries.labels(node="_fleet", tier="compute").set_function(
                lambda: _fleet(0)
            )
            ddt_core.labels(node="_fleet", tier="compute").set_function(
                lambda: _fleet(1)
            )
            pool_data.labels(node="_fleet", tier="compute").set_function(
                lambda: _fleet(2)
            )
            arc_resident.labels(node="_fleet").set_function(
                lambda: _fleet(3)
            )
        utilization = m.gauge(
            "net_pipe_utilization",
            "Lifetime busy fraction of a link",
            labels=("link", "tier"),
        )
        queue_depth = m.gauge(
            "net_pipe_queue_depth",
            "Concurrent flows sharing a link",
            labels=("link", "tier"),
        )
        moved_bytes = m.gauge(
            "net_pipe_moved_bytes",
            "Lifetime bytes admitted to a link (paper-scale)",
            labels=("link", "tier"),
        )
        nic_detail = {
            name: self.nic[name] for name in names if name in self.nic
        }
        for tier, pipes in (("nic", nic_detail), ("brick", self.brick)):
            for name, pipe in pipes.items():
                utilization.labels(link=name, tier=tier).set_function(
                    lambda p=pipe: p.busy_fraction()
                )
                queue_depth.labels(link=name, tier=tier).set_function(
                    lambda p=pipe: float(p.active_flows)
                )
                moved_bytes.labels(link=name, tier=tier).set_function(
                    lambda p=pipe: float(p.total_bytes)
                )
        gluster = cluster.storage.gluster
        m.gauge(
            "net_gluster_degraded",
            "1 while any brick is out of the read rotation",
        ).set_function(lambda g=gluster: float(g.degraded))
        served = m.gauge(
            "net_brick_served_bytes",
            "Bytes served by a brick (scaled units)",
            labels=("node",),
        )
        for node in cluster.storage.nodes:
            served.labels(node=node.name).set_function(
                lambda g=gluster, n=node.name: float(g.served_bytes(n))
            )
        cpu_queue = m.gauge(
            "sim_cpu_queue_depth",
            "Boots queued for a decompression core",
            labels=("node",),
        )
        inflight = m.gauge(
            "squirrel_boots_in_flight",
            "Boots currently in flight",
            labels=("node",),
        )
        for name in names:
            cpu_queue.labels(node=name).set_function(
                lambda r=self.cpu[name]: float(r.queue_length)
            )
            inflight.labels(node=name).set_function(
                lambda b=self._inflight[name]: float(len(b))
            )
        # placement instruments exist only when a coordinator is attached —
        # a placement-free rig's metrics block stays byte-identical to
        # pre-placement builds.
        placement = self.squirrel.placement
        if placement is not None:
            self._m_redirects = m.counter(
                "placement_peer_redirects_total",
                "Boot misses served by a peer holder instead of the origin",
                labels=("node",),
            )
            self._m_redirect_bytes = m.counter(
                "placement_redirect_bytes_total",
                "Paper-scale bytes moved by peer redirects",
            )
            self._m_fallbacks = m.counter(
                "placement_origin_fallbacks_total",
                "Misses that fell back to glusterfs (no live holder)",
            )
            self._m_adoptions = m.counter(
                "placement_adoptions_total",
                "Promote-on-miss adoptions",
                labels=("node",),
            )
            self._m_adopted_bytes = m.counter(
                "placement_adopted_bytes_total",
                "Paper-scale bytes installed by adoptions",
            )
            self._m_seed_bytes = m.counter(
                "placement_seed_bytes_total",
                "Paper-scale receiver-ingress bytes moved by seeding",
                labels=("transport",),
            )
            for name in names + (["_other"] if self._capped else []):
                self._m_redirects.labels(node=name)
                self._m_adoptions.labels(node=name)
            for transport in TRANSPORT_NAMES:
                self._m_seed_bytes.labels(transport=transport)
            directory = placement.directory
            hoarded = m.gauge(
                "placement_hoarded_bytes",
                "Logical cache bytes hoarded on a node (scaled units)",
                labels=("node",),
            )
            images_hoarded = m.gauge(
                "placement_images_hoarded",
                "Images whose cache a node holds",
                labels=("node",),
            )
            for name in names:
                hoarded.labels(node=name).set_function(
                    lambda d=directory, n=name: float(d.hoarded_bytes(n))
                )
                images_hoarded.labels(node=name).set_function(
                    lambda d=directory, n=name: float(len(d.images_of(n)))
                )
            m.gauge(
                "placement_images_tracked",
                "Images tracked by the placement directory",
            ).set_function(lambda d=directory: float(len(d.images())))
        # sharding instruments exist only when a ShardRouter is attached —
        # an unsharded rig's metrics block stays byte-identical to
        # pre-sharding builds.
        sharding = self.squirrel.sharding
        if sharding is not None:
            shards = list(sharding.names)
            single = sharding.n_shards == 1
            # per-tenant families: the tenant axis is capped the same way
            # the node axis is — detail children for the first
            # METRICS_NODE_DETAIL tenants, a shared "_other" child beyond
            # (fleet sums stay exact), and no gauge series past the cap.
            tenant_ids = [int(t) for t in getattr(sharding, "tenants", ())]
            detail_ids = tenant_ids[:METRICS_NODE_DETAIL]
            self._tenant_detail = frozenset(
                f"t{t:02d}" for t in detail_ids
            )
            self._tenant_capped = len(tenant_ids) > len(detail_ids)
            self._m_tenant_boots = m.counter(
                "squirrel_tenant_boots_total",
                "Completed VM boots per tenant",
                labels=("tenant",),
            )
            self._m_tenant_cache_hits = m.counter(
                "squirrel_tenant_cache_hits_total",
                "Per-tenant boots served from the node's cVolume cache",
                labels=("tenant",),
            )
            self._m_tenant_arc_hits = m.counter(
                "squirrel_tenant_arc_hits_total",
                "Per-tenant ARC record hits during warm boots",
                labels=("tenant",),
            )
            self._m_tenant_arc_misses = m.counter(
                "squirrel_tenant_arc_misses_total",
                "Per-tenant ARC record misses during warm boots",
                labels=("tenant",),
            )
            tenant_labels = [f"t{t:02d}" for t in detail_ids]
            for label in tenant_labels + (
                ["_other"] if self._tenant_capped else []
            ):
                for family in (
                    self._m_tenant_boots, self._m_tenant_cache_hits,
                    self._m_tenant_arc_hits, self._m_tenant_arc_misses,
                ):
                    family.labels(tenant=label)
            tenant_rate = m.gauge(
                "squirrel_tenant_hit_rate",
                "Lifetime per-tenant ARC hit rate (the noisy-neighbor SLO)",
                labels=("tenant",),
            )
            for t in detail_ids:
                tenant_rate.labels(tenant=f"t{t:02d}").set_function(
                    lambda s=sharding, t=t: float(s.tenant_hit_rate(t))
                )
            # per-(node, shard) ARC counters, folded past the node cap
            self._m_shard_arc_hits = m.counter(
                "zfs_shard_arc_hits_total",
                "ARC hits within one shard's slice of a node ARC",
                labels=("node", "shard"),
            )
            self._m_shard_arc_misses = m.counter(
                "zfs_shard_arc_misses_total",
                "ARC misses within one shard's slice of a node ARC",
                labels=("node", "shard"),
            )
            for name in names + (["_other"] if self._capped else []):
                for shard in shards:
                    self._m_shard_arc_hits.labels(node=name, shard=shard)
                    self._m_shard_arc_misses.labels(node=name, shard=shard)
            shard_resident = m.gauge(
                "zfs_shard_arc_resident_bytes",
                "Bytes resident in one shard's ARC slice (paper-scale)",
                labels=("node", "shard"),
            )
            shard_rate = m.gauge(
                "zfs_shard_arc_hit_rate",
                "Lifetime hit rate of one shard's ARC slice",
                labels=("node", "shard"),
            )
            shard_node_core = m.gauge(
                "zfs_shard_node_ddt_core_bytes",
                "Resident DDT bytes of a shard's dedup domain on a node",
                labels=("node", "shard"),
            )
            for node in cluster.compute[:METRICS_NODE_DETAIL]:
                arcs = self.arc[node.name].shards
                for shard in shards:
                    arc = arcs[shard]
                    shard_resident.labels(
                        node=node.name, shard=shard
                    ).set_function(lambda a=arc: float(a.resident_bytes))
                    shard_rate.labels(
                        node=node.name, shard=shard
                    ).set_function(lambda a=arc: float(a.stats.hit_rate))
                    shard_node_core.labels(
                        node=node.name, shard=shard
                    ).set_function(
                        lambda n=node, s=shard, single=single:
                        _node_shard_ddt_core(n.pool, s, single)
                    )
            if self._capped:
                # one per-shard fleet aggregate replaces the dropped
                # per-node series; both sums share one per-timestamp sweep
                shard_sweep: dict = {"now": None, "vals": {}}

                def _shard_fleet(idx, shard, cache=shard_sweep,
                                 nodes=cluster.compute, arcs=self.arc,
                                 engine=self.engine, shards=tuple(shards),
                                 single=single):
                    if cache["now"] != engine.now:
                        vals = {}
                        for s in shards:
                            resident = float(sum(
                                arcs[n.name].shards[s].resident_bytes
                                for n in nodes
                            ))
                            core = float(sum(
                                _node_shard_ddt_core(n.pool, s, single)
                                for n in nodes
                            ))
                            vals[s] = (resident, core)
                        cache["now"] = engine.now
                        cache["vals"] = vals
                    return cache["vals"][shard][idx]

                for shard in shards:
                    shard_resident.labels(
                        node="_fleet", shard=shard
                    ).set_function(lambda s=shard: _shard_fleet(0, s))
                    shard_node_core.labels(
                        node="_fleet", shard=shard
                    ).set_function(lambda s=shard: _shard_fleet(1, s))
            # storage-side per-shard families over the scVolume's domains
            sp = sharding.scvol
            shard_entries = m.gauge(
                "zfs_shard_ddt_entries",
                "scVolume DDT entries in one shard's dedup domain",
                labels=("shard",),
            )
            shard_core = m.gauge(
                "zfs_shard_ddt_core_bytes",
                "scVolume DDT resident RAM per shard",
                labels=("shard",),
            )
            shard_core_high = m.gauge(
                "zfs_shard_ddt_core_high_bytes",
                "High-water mark of a shard DDT's resident RAM",
                labels=("shard",),
            )
            shard_pressure = m.gauge(
                "zfs_shard_quota_pressure",
                "Shard referenced bytes over its byte quota",
                labels=("shard",),
            )
            # lifetime totals read off the router (callback gauges, like
            # net_pipe_moved_bytes): evictions happen inside untimed setup
            # registrations too, which manual counters would miss
            shard_evictions = m.gauge(
                "zfs_shard_quota_evictions_total",
                "Lifetime hoards evicted to honour a shard quota",
                labels=("shard",),
            )
            shard_evicted_bytes = m.gauge(
                "zfs_shard_quota_evicted_bytes_total",
                "Lifetime bytes reclaimed by shard-quota evictions "
                "(scaled units)",
                labels=("shard",),
            )
            for shard in shards:
                shard_entries.labels(shard=shard).set_function(
                    lambda sp=sp, s=shard: float(sp.ddt(s).entry_count)
                )
                shard_core.labels(shard=shard).set_function(
                    lambda sp=sp, s=shard: float(sp.ddt(s).in_core_bytes)
                )
                # the stored high-water only advances on refresh(); fold in
                # the live value so scrapes between refreshes stay monotone
                # without mutating router state
                shard_core_high.labels(shard=shard).set_function(
                    lambda sp=sp, s=shard: float(max(
                        sp.ddt_core_high_bytes(s), sp.ddt(s).in_core_bytes
                    ))
                )
                shard_pressure.labels(shard=shard).set_function(
                    lambda sp=sp, s=shard: float(sp.quota_pressure(s))
                )
                shard_evictions.labels(shard=shard).set_function(
                    lambda sp=sp, s=shard: float(sp.evictions(s))
                )
                shard_evicted_bytes.labels(shard=shard).set_function(
                    lambda sp=sp, s=shard: float(sp.evicted_bytes(s))
                )
            m.gauge(
                "zfs_shard_dedup_loss_bytes",
                "Bytes stored once per shard that a global DDT would share",
            ).set_function(lambda sp=sp: float(sp.dedup_loss_bytes()))

    def _tenant_label(self, tenant_id: int) -> str:
        """Metric label for a tenant, folded past the detail cap the same
        way node labels are."""
        label = f"t{tenant_id:02d}"
        return label if label in self._tenant_detail else "_other"

    def _node_label(self, node_name: str) -> str:
        """Metric label for a compute node: its own name inside the
        per-node detail set, the shared "_other" child beyond it (fleet
        totals across children stay exact either way)."""
        return node_name if node_name in self._node_detail else "_other"

    # -- fault-injector queries ----------------------------------------------------

    def inflight(self, node_name: str) -> list[_InflightBoot]:
        """Boots currently in flight on one compute node (snapshot)."""
        return list(self._inflight.get(node_name, ()))

    def inflight_on_brick(self, brick_name: str) -> list[_InflightBoot]:
        """Boots with a fetch currently streaming from one brick (snapshot)."""
        return [
            boot
            for boots in self._inflight.values()
            for boot in boots
            if brick_name in boot.bricks
        ]

    def inflight_from_peer(self, peer_name: str) -> list[_InflightBoot]:
        """Boots currently streaming a redirect from one peer holder
        (snapshot) — what a crash of that holder must preempt."""
        return [
            boot
            for boots in self._inflight.values()
            for boot in boots
            if peer_name in boot.peers
        ]

    # -- timed operations (each returns a yieldable Process) ----------------------

    def boot(self, image_id: int, node_name: str, *, force_cold: bool = False,
             tenant: int | None = None):
        """One timed VM boot; observes ``boot_latency_s`` (and, when a fault
        got in the way, ``recovery_s``). Registered with the in-flight
        registry so the fault injector can preempt it. ``tenant`` feeds the
        per-tenant accounting of a sharded rig and is ignored otherwise."""
        handle = _InflightBoot(node_name)
        process = self.engine.process(
            self._boot(image_id, node_name, force_cold, handle, tenant),
            label=f"boot:{node_name}:{image_id}",
        )
        handle.process = process
        self._inflight[node_name][handle] = None
        return process

    def _boot(self, image_id: int, node_name: str, force_cold: bool, handle,
              tenant: int | None = None):
        engine = self.engine
        t0 = engine.now
        self.timeline.count("boots")
        bt = _BootTrace(
            self.tracer,
            BootAttribution(engine),
            self.tracer.span(
                "boot", track=node_name, node=node_name, image_id=image_id
            ),
        )
        first_fail: float | None = None
        interrupts = 0
        try:
            while True:
                try:
                    if self.faults is not None and self.faults.is_down(node_name):
                        # the host is dark: nothing can boot until it rejoins
                        # (reboot + offline catch-up), so queue on that
                        if first_fail is None:
                            first_fail = engine.now
                            self.timeline.count("boots_delayed")
                        wait_span = bt.child("fault.wait", cause="node-down")
                        yield self.faults.rejoin_event(node_name)
                        bt.att.charge("wait_s")
                        wait_span.end()
                    cache_hit = yield from self._attempt(
                        image_id, node_name, force_cold, handle, bt, tenant
                    )
                    break
                except Interrupted as fault:
                    # preempted (node crash / brick failure): loop — either
                    # wait for the rejoin or re-plan around the dead brick.
                    # Time sunk into the killed attempt is recovery wait.
                    bt.att.charge("wait_s")
                    bt.kill(fault.cause)
                    interrupts += 1
                    if first_fail is None:
                        first_fail = engine.now
                    self.timeline.count("boot_interrupts")
                    self._m_interrupts.labels(node=self._node_label(node_name)).inc()
        finally:
            self._inflight[node_name].pop(handle, None)
        self.timeline.count("cache_hits" if cache_hit else "cold_boots")
        self.timeline.observe("boot_latency_s", engine.now - t0)
        self._m_boots.labels(node=self._node_label(node_name)).inc()
        (self._m_cache_hits if cache_hit else self._m_cold).labels(
            node=self._node_label(node_name)
        ).inc()
        sharding = self.squirrel.sharding
        if sharding is not None and tenant is not None:
            sharding.note_tenant_boot(tenant, cache_hit)
            label = self._tenant_label(tenant)
            self._m_tenant_boots.labels(tenant=label).inc()
            if cache_hit:
                self._m_tenant_cache_hits.labels(tenant=label).inc()
        self._m_boot_latency.observe(engine.now - t0)
        bt.att.observe(self.timeline)
        bt.root.end(
            cache_hit=cache_hit, interrupts=interrupts, **bt.att.buckets
        )
        if first_fail is not None:
            self.timeline.observe("recovery_s", engine.now - first_fail)
            self._m_recovery.observe(engine.now - first_fail)
        return engine.now - t0

    def _attempt(self, image_id, node_name, force_cold: bool, handle, bt,
                 tenant: int | None = None):
        """One boot attempt (the pre-fault boot path, verbatim)."""
        outcome = None
        if force_cold:
            # the "w/o caches" baseline: the boot set crosses the network
            # even when a cache exists (Figure 18's comparison series)
            spec = self.catalog.spec(image_id)
            moved, plan = self.squirrel.cluster.storage.gluster.read_with_plan(
                f"vmi-{image_id:05d}", 0, cold_read_bytes(spec),
                reader=node_name, purpose="boot-read",
            )
            cache_hit = False
        else:
            outcome, plan = self.squirrel.boot_with_plan(image_id, node_name)
            moved = outcome.network_bytes
            cache_hit = outcome.cache_hit
        if cache_hit:
            yield from self._warm_read(image_id, node_name, bt, tenant)
        elif outcome is not None and outcome.source == "peer":
            yield from self._peer_fetch(outcome, node_name, handle, bt)
        else:
            if outcome is not None and self.squirrel.placement is not None:
                # placement active but no live holder: glusterfs fallback
                self.timeline.count("origin_fallbacks")
                self._m_fallbacks.inc()
            yield from self._cold_fetch(node_name, moved, plan, handle, bt)
        return cache_hit

    def _paper_blocks(self, logical_bytes: int) -> int:
        """Paper-scale record count behind ``logical_bytes`` of scaled data
        (the unit the per-block ZFS pipeline costs are charged against)."""
        if logical_bytes <= 0:
            return 0
        record = self.squirrel.cluster.storage.scvolume.record_size
        return max(1, int(self.scale_up(logical_bytes)) // record)

    def _warm_read(self, image_id: int, node_name: str, bt,
                   tenant: int | None = None):
        """Cache hit: resolve each cVolume block through the node's ARC;
        misses read the compressed record off the local pool and decompress
        it — zero network involvement either way."""
        node = self.squirrel.cluster.node(node_name)
        sharding = self.squirrel.sharding
        if sharding is None:
            shard = None
            cache = node.ccvolume.file(self.squirrel.cache_file_of(image_id))
        else:
            shard = sharding.shard_of(image_id)
            cache = node.pool.dataset(sharding.cc_name(shard)).file(
                self.squirrel.cache_file_of(image_id)
            )
        arc = self.arc[node_name]
        before = arc.stats.as_dict()
        lookup = bt.child("arc.lookup", image_id=image_id)
        total_logical = 0
        missed_physical = missed_logical = 0
        blocks = misses = 0
        for index, bp in enumerate(cache.blocks):
            if bp.is_hole:
                continue
            blocks += 1
            total_logical += bp.lsize
            if arc.get((image_id, index)) is not None:
                continue  # decompressed record resident in T1/T2: free
            misses += 1
            missed_physical += bp.psize
            missed_logical += bp.lsize
            arc.put(
                (image_id, index), True, max(1, int(self.scale_up(bp.lsize)))
            )
        after = arc.stats.as_dict()
        delta = {key: after[key] - before[key] for key in after}
        self.timeline.count("arc_t1_hits", delta["t1_hits"])
        self.timeline.count("arc_t2_hits", delta["t2_hits"])
        self.timeline.count("arc_b1_ghost_hits", delta["b1_ghost_hits"])
        self.timeline.count("arc_b2_ghost_hits", delta["b2_ghost_hits"])
        self.timeline.count("arc_misses", delta["misses"])
        self.timeline.count(
            "arc_evictions", delta["t1_evictions"] + delta["t2_evictions"]
        )
        node_label = self._node_label(node_name)
        self._m_arc_hits.labels(node=node_label, tier="t1").inc(delta["t1_hits"])
        self._m_arc_hits.labels(node=node_label, tier="t2").inc(delta["t2_hits"])
        self._m_arc_ghosts.labels(node=node_label, tier="b1").inc(
            delta["b1_ghost_hits"]
        )
        self._m_arc_ghosts.labels(node=node_label, tier="b2").inc(
            delta["b2_ghost_hits"]
        )
        self._m_arc_misses.labels(node=node_label).inc(delta["misses"])
        self._m_arc_evictions.labels(node=node_label, tier="t1").inc(
            delta["t1_evictions"]
        )
        self._m_arc_evictions.labels(node=node_label, tier="t2").inc(
            delta["t2_evictions"]
        )
        if shard is not None:
            shard_hits = delta["t1_hits"] + delta["t2_hits"]
            self._m_shard_arc_hits.labels(
                node=node_label, shard=shard
            ).inc(shard_hits)
            self._m_shard_arc_misses.labels(
                node=node_label, shard=shard
            ).inc(delta["misses"])
            if tenant is not None:
                sharding.note_tenant_arc(tenant, shard_hits, delta["misses"])
                tenant_label = self._tenant_label(tenant)
                self._m_tenant_arc_hits.labels(tenant=tenant_label).inc(
                    shard_hits
                )
                self._m_tenant_arc_misses.labels(tenant=tenant_label).inc(
                    delta["misses"]
                )
        self.timeline.gauge(f"arc_p:{node_name}", arc.p)
        self.timeline.gauge(f"arc_resident:{node_name}", arc.resident_bytes)
        # the block-pointer walk + DDT/ZAP lookup for every record of the
        # paper-scale cache file
        yield self.engine.timeout(
            self._paper_blocks(total_logical) * self.zfs_costs.ddt_lookup_s
        )
        bt.att.charge("cache_s")
        lookup.end(
            t1_hits=delta["t1_hits"], t2_hits=delta["t2_hits"], misses=misses,
            ghost_hits=delta["b1_ghost_hits"] + delta["b2_ghost_hits"],
        )
        if misses == 0:
            return  # pure memory boot: every record was ARC-resident
        physical = int(self.scale_up(missed_physical))
        logical = int(self.scale_up(missed_logical))
        disk_span = bt.child("disk.read", n_bytes=physical)
        service = yield self.disk[node_name].read(
            _disk_offset(physical, image_id), physical
        )
        bt.att.charge_split(service, "disk_s")
        disk_span.end(
            service_s=service,
            queue_s=max(0.0, self.engine.now - disk_span.start_s - service),
        )
        zio = bt.child("zio.decompress", n_bytes=logical)
        grant = self.cpu[node_name].request()
        try:
            yield grant
        except Interrupted:
            # preempted while queued for (or holding) a core: give it back
            self.cpu[node_name].cancel(grant)
            raise
        queue_s = bt.att.charge("wait_s")
        try:
            yield self.engine.timeout(
                self._paper_blocks(missed_logical) * self.zfs_costs.per_block_cpu_s
                + logical / DECOMPRESS_BYTES_PER_S
            )
            bt.att.charge("cache_s")
        finally:
            self.cpu[node_name].release()
        zio.end(queue_s=queue_s)

    def _cold_fetch(self, node_name: str, moved: int, plan, handle, bt):
        """Cache miss: the boot set streams from the bricks through the
        node's NIC, then lands on the local disk (copy-on-read)."""
        gluster = self.squirrel.cluster.storage.gluster
        total = int(self.scale_up(moved))
        self._m_cold_bytes.labels(node=self._node_label(node_name)).inc(total)
        fetch = bt.child(
            "gluster.fetch", n_bytes=total, degraded=gluster.degraded
        )
        flows: list[tuple[Pipe, Event]] = []
        try:
            for node, n_bytes in plan:
                pipe = self.brick[node.name]
                n_scaled = int(self.scale_up(n_bytes))
                span = bt.child(
                    "gluster.transfer", parent=fetch, replica=node.name,
                    n_bytes=n_scaled, degraded=gluster.degraded,
                )
                event = pipe.transfer(n_scaled)
                event._wait(lambda _e, s=span: s.end())
                flows.append((pipe, event))
                handle.bricks.add(node.name)
            nic = self.nic[node_name]
            nic_span = bt.child("nic.transfer", parent=fetch, n_bytes=total)
            nic_event = nic.transfer(total)
            nic_event._wait(lambda _e, s=nic_span: s.end())
            flows.append((nic, nic_event))
            yield self.engine.all_of([event for _pipe, event in flows])
            bt.att.charge("net_s")
            fetch.end()
            disk_span = bt.child("disk.write", n_bytes=total)
            service = yield self.disk[node_name].write(
                _disk_offset(total, node_name), total
            )
            bt.att.charge_split(service, "disk_s")
            disk_span.end(
                service_s=service,
                queue_s=max(
                    0.0, self.engine.now - disk_span.start_s - service
                ),
            )
        except Interrupted:
            # the fetch died with the node/brick: withdraw the half-done
            # flows so surviving transfers get their bandwidth share back
            for pipe, event in flows:
                pipe.cancel(event)
            raise
        finally:
            handle.bricks.clear()

    def _peer_fetch(self, outcome, node_name: str, handle, bt):
        """Placement redirect: the cache slice streams from the holder's NIC
        into the reader's NIC, then lands on the local disk — the glusterfs
        bricks never see the read. A crash of the holder preempts the flow
        (via :meth:`inflight_from_peer`); the retry re-picks a survivor."""
        peer_name = outcome.peer
        total = int(self.scale_up(outcome.network_bytes))
        self.timeline.count("peer_redirects")
        self.timeline.count("redirect_bytes", outcome.network_bytes)
        self._m_redirects.labels(node=self._node_label(node_name)).inc()
        self._m_redirect_bytes.inc(total)
        redirect = bt.child(
            "placement.redirect", peer=peer_name, n_bytes=total
        )
        flows: list[tuple[Pipe, Event]] = []
        try:
            peer_pipe = self.nic[peer_name]
            peer_span = bt.child(
                "nic.transfer", parent=redirect, n_bytes=total, role="peer"
            )
            peer_event = peer_pipe.transfer(total)
            peer_event._wait(lambda _e, s=peer_span: s.end())
            flows.append((peer_pipe, peer_event))
            handle.peers.add(peer_name)
            nic = self.nic[node_name]
            nic_span = bt.child(
                "nic.transfer", parent=redirect, n_bytes=total, role="reader"
            )
            nic_event = nic.transfer(total)
            nic_event._wait(lambda _e, s=nic_span: s.end())
            flows.append((nic, nic_event))
            yield self.engine.all_of([event for _pipe, event in flows])
            bt.att.charge("net_s")
            redirect.end()
            disk_span = bt.child("disk.write", n_bytes=total)
            service = yield self.disk[node_name].write(
                _disk_offset(total, node_name), total
            )
            bt.att.charge_split(service, "disk_s")
            disk_span.end(
                service_s=service,
                queue_s=max(
                    0.0, self.engine.now - disk_span.start_s - service
                ),
            )
            if outcome.adopted:
                adopt = bt.child(
                    "placement.adopt", image_id=outcome.image_id,
                    n_bytes=total,
                )
                self.timeline.count("adoptions")
                self._m_adoptions.labels(node=self._node_label(node_name)).inc()
                self._m_adopted_bytes.inc(total)
                adopt.end()
        except Interrupted:
            # the redirect died with the reader or its peer: withdraw the
            # half-done flows; the retry consults the directory again
            for pipe, event in flows:
                pipe.cancel(event)
            raise
        finally:
            handle.peers.clear()

    def register(self, spec):
        """One timed registration; observes ``register_latency_s``."""
        return self.engine.process(
            self._register(spec), label=f"register:{spec.image_id}"
        )

    def _register(self, spec):
        engine = self.engine
        t0 = engine.now
        span = self.tracer.span(
            "register", track="control", image_id=spec.image_id
        )
        # boot-once on a storage node + snapshot, then the accounting call
        yield engine.timeout(REGISTRATION_BOOT_SECONDS + SNAPSHOT_CREATE_SECONDS)
        self._sync_clock()
        sharding = self.squirrel.sharding
        if sharding is not None:
            shard = sharding.shard_of(spec.image_id)
            ev0 = sharding.scvol.evictions(shard)
        record = self.squirrel.register(spec)
        if sharding is not None:
            evicted = sharding.scvol.evictions(shard) - ev0
            if evicted:
                self.timeline.count("shard_quota_evictions", evicted)
        placement = self.squirrel.placement
        if placement is not None and placement.last_seed is not None:
            yield from self._seed_flows(spec, placement, span)
        else:
            # multicast: the diff crosses the primary's uplink once and
            # lands on every online node's NIC concurrently
            diff = int(self.scale_up(record.diff_bytes))
            primary = self.squirrel.cluster.storage.primary.name
            transfers = [self.brick[primary].transfer(diff)]
            transfers += [
                self.nic[node.name].transfer(diff)
                for node in self.squirrel.cluster.online_nodes()
            ]
            yield engine.all_of(transfers)
        span.end(diff_bytes=int(self.scale_up(record.diff_bytes)))
        self.timeline.count("registrations")
        self.timeline.observe("register_latency_s", engine.now - t0)
        self._m_registrations.inc()
        self._m_register_latency.observe(engine.now - t0)
        return record

    def _seed_flows(self, spec, placement, parent_span):
        """Drive one seeding round through the contended links.

        The accounting call (:meth:`PlacementCoordinator.seed_image`) already
        ran inside ``Squirrel.register``; this charges its bytes to the
        pipes, shaped like the transport: the origin's brick uplink carries
        the transport's origin bytes (n copies for unicast, ~1 for
        multicast, ~log n for swarm), every online holder's NIC ingests one
        payload, and swarm holders additionally upload their peer share.
        """
        seed = placement.last_seed
        cluster = self.squirrel.cluster
        holders = [
            name
            for name in placement.directory.holders(spec.image_id)
            if cluster.node(name).online
        ]
        payload = int(self.scale_up(seed.n_bytes))
        span = self.tracer.span(
            f"seed.{seed.transport}", parent=parent_span, track="control",
            image_id=spec.image_id, n_receivers=len(holders),
            n_bytes=payload,
        )
        if holders:
            primary = cluster.storage.primary.name
            origin_bytes = int(self.scale_up(seed.origin_bytes))
            transfers = []
            if origin_bytes > 0:
                transfers.append(self.brick[primary].transfer(origin_bytes))
            upload_share = (
                int(self.scale_up(seed.peer_upload_bytes)) // len(holders)
                if seed.peer_upload_bytes > 0
                else 0
            )
            for name in holders:
                transfers.append(self.nic[name].transfer(payload))
                if upload_share > 0:
                    transfers.append(self.nic[name].transfer(upload_share))
            yield self.engine.all_of(transfers)
            self._m_seed_bytes.labels(transport=seed.transport).inc(
                payload * len(holders)
            )
            self.timeline.count("seed_receiver_bytes", seed.receiver_bytes)
        span.end()

    def resync(self, node_name: str):
        """One timed offline-propagation catch-up; observes
        ``resync_latency_s`` and counts full re-replications."""
        return self.engine.process(
            self._resync(node_name), label=f"resync:{node_name}"
        )

    def _resync(self, node_name: str):
        engine = self.engine
        t0 = engine.now
        span = self.tracer.span("resync", track=node_name, node=node_name)
        self._sync_clock()
        node = self.squirrel.cluster.node(node_name)
        scvol = self.squirrel.cluster.storage.scvolume
        sharding = self.squirrel.sharding
        if sharding is not None:
            # incremental iff every shard with history can replay its own
            # chain from this node's per-shard sync point
            states = []
            for shard in sharding.names:
                scds = sharding.scvol.dataset(shard)
                if scds.latest_snapshot() is None:
                    continue
                base = sharding.synced_of(node_name, shard)
                states.append(base is not None and scds.has_snapshot(base))
            incremental = bool(states) and all(states)
        else:
            base = node.synced_snapshot
            incremental = base is not None and scvol.has_snapshot(base)
        moved = self.squirrel.resync_node(node_name)
        if moved:
            self.timeline.count("resync_bytes", moved)
            if self.squirrel.placement is not None:
                # placement reseed: the directory's assigned slices, not a
                # snapshot-chain replay
                self.timeline.count("placement_reseeds")
                self._m_resyncs.labels(kind="reseed").inc()
            else:
                self.timeline.count(
                    "incremental_resyncs" if incremental else "full_replications"
                )
                self._m_resyncs.labels(
                    kind="incremental" if incremental else "full"
                ).inc()
            self._m_resync_bytes.inc(moved)
            scaled = int(self.scale_up(moved))
            primary = self.squirrel.cluster.storage.primary.name
            yield engine.all_of([
                self.brick[primary].transfer(scaled),
                self.nic[node_name].transfer(scaled),
            ])
        span.end(n_bytes=moved, incremental=incremental if moved else None)
        self.timeline.observe("resync_latency_s", engine.now - t0)
        self._m_resync_latency.observe(engine.now - t0)
        return moved

    def collect_garbage(self):
        """GC is metadata-only: instantaneous, but clock-synced."""
        self._sync_clock()
        span = self.tracer.span("gc", track="control")
        victims = self.squirrel.collect_garbage()
        span.end(victims=len(victims))
        self.timeline.count("gc_runs")
        self.timeline.count("gc_victims", len(victims))
        self._m_gc_runs.inc()
        self._m_gc_victims.inc(len(victims))
        return victims

    def _sync_clock(self) -> None:
        """Propagate the engine clock into Squirrel's day-granular clock."""
        days = self.engine.now / DAY_S
        if days > self.squirrel.clock_days:
            self.squirrel.advance_time(days - self.squirrel.clock_days)


# -- shared rig construction ----------------------------------------------------------


@dataclass
class _Rig:
    """One scenario's fully-wired simulation: cluster, engine, telemetry."""

    catalog: ImageCatalog
    squirrel: Squirrel
    engine: Engine
    timeline: Timeline
    timed: TimedSquirrel
    metrics: MetricsRegistry
    store: TimeSeriesStore
    sampler: Sampler

    @property
    def dataset(self) -> AzureCommunityDataset:
        """Eager-dataset facade over the catalog's (shared) spec list."""
        return self.catalog.dataset

    def metrics_block(self) -> dict:
        """The canonical metrics block for this run (embed in the report)."""
        return metrics_block(
            self.metrics,
            self.store,
            interval_s=self.sampler.interval_s,
            scrapes=self.sampler.scrapes,
        )


def _build_rig(
    *,
    n_compute: int,
    n_storage: int,
    block_size: int,
    scale: float,
    link: LinkProfile,
    seed,
    trace: bool,
    metrics_interval_s: float = 5.0,
    dataset: AzureCommunityDataset | ImageCatalog | None = None,
    estimator=None,
    placement_factory=None,
    sharding_factory=None,
) -> _Rig:
    catalog = as_catalog(dataset) or LazyImageCatalog(DatasetConfig(scale=scale))
    cluster = IaaSCluster.build(
        n_compute=n_compute, n_storage=n_storage, block_size=block_size, link=link
    )
    estimator = estimator or make_estimator(
        "gzip6", (block_size,), samples_per_point=2
    )
    squirrel = Squirrel(cluster=cluster, estimator=estimator, catalog=catalog)
    if placement_factory is not None:
        # attach before TimedSquirrel so _instrument sees the coordinator
        squirrel.placement = placement_factory(squirrel)
    if sharding_factory is not None:
        # attach + install before TimedSquirrel: _instrument reads the
        # router's shard datasets, and the per-node ARC layout depends on it
        router = sharding_factory(squirrel)
        squirrel.sharding = router
        router.install(squirrel)
    engine = Engine(seed=seed, trace=trace)
    # runtime telemetry (read-only observer; no-op without an active
    # profiler): phase timers + events/s + the --progress heartbeat
    obs_runtime.attach(engine)
    timeline = Timeline(engine)
    metrics = MetricsRegistry()
    timed = TimedSquirrel(squirrel, catalog, engine, timeline, metrics=metrics)
    store = TimeSeriesStore(capacity=METRICS_RING)
    sampler = Sampler(engine, metrics, store, interval_s=metrics_interval_s)
    sampler.start()
    return _Rig(catalog, squirrel, engine, timeline, timed, metrics, store, sampler)


# -- boot storm -----------------------------------------------------------------------


@dataclass(frozen=True)
class StormConfig:
    """A flash-crowd boot storm (the timed Figure 18)."""

    n_nodes: int = 64
    vms_per_node: int = 8
    n_storage: int = 4
    block_size: int = 65536
    scale: float = 1.0 / 512.0
    #: window the flash crowd's arrivals are compressed into
    ramp_s: float = 30.0
    n_tenants: int = 32
    zipf_exponent: float = 0.9
    link: LinkProfile = GBE_1
    seed: int = 0
    trace: bool = False
    #: injected faults (node crashes, link flaps, brick failures); both
    #: sides of the storm run the identical plan
    faults: FaultPlan | None = None
    #: gauge-scrape cadence of the metrics sampler (simulated seconds)
    metrics_interval_s: float = 5.0

    @classmethod
    def from_params(
        cls,
        *,
        nodes: int = 64,
        vms_per_node: int = 8,
        seed: int = 0,
        faults: str | None = None,
    ) -> "StormConfig":
        """Build a config from the validated experiment params the CLI and
        sweep runner hand to the storm/recovery scenarios (``faults`` is
        the comma-separated plan DSL, parsed here)."""
        return cls(
            n_nodes=nodes,
            vms_per_node=vms_per_node,
            seed=seed,
            faults=FaultPlan.parse(faults) if faults else None,
        )


@dataclass(frozen=True)
class StormSide:
    """One storm run (Squirrel or the no-cache baseline)."""

    boots: int
    cache_hits: int
    interrupted_boots: int  #: boot attempts preempted by a fault
    delayed_boots: int  #: boots that queued on a crashed host
    compute_ingress_bytes: int
    #: when the engine settled: boots + fault recovery + the sampler's
    #: final snapshot (so it rounds up to the metrics cadence)
    horizon_s: float
    latency: HistogramStats
    recovery: HistogramStats  #: per-boot: first fault impact -> completion
    node_recovery: HistogramStats  #: per-crash: crash -> rebooted + resynced
    #: latency attribution: per-boot cache/net/disk/wait stats + ARC tiers
    attribution: dict = field(repr=False)
    #: per-span-name aggregates from the run's tracer
    spans: dict = field(repr=False)
    #: critical-path rollup: per-boot longest dependency chain, folded into
    #: a blame table + tier shares (``trace analyze`` reproduces it exactly)
    critical_path: dict = field(repr=False)
    summary: dict = field(repr=False)
    #: canonical metrics block: instrument snapshot + sampled series
    metrics: dict = field(repr=False)


@dataclass(frozen=True)
class StormReport(ReportBase):
    """Both sides of one storm, driven by the identical arrival trace."""

    n_nodes: int
    vms_per_node: int
    seed: int
    squirrel: StormSide
    baseline: StormSide


def _storm_trace(config: StormConfig, n_images: int):
    """The (arrival, node, image, tenant) trace — shared by both sides.

    The tenant id rides along so sharded runs can attribute per-tenant
    hit rates; unsharded consumers ignore it (the sampling sequence is
    unchanged, so existing reports stay byte-identical)."""
    n_vms = config.n_nodes * config.vms_per_node
    rng = rng_stream("workload-storm", config.seed)
    times = flash_crowd_arrivals(rng, n_vms=n_vms, ramp_s=config.ramp_s)
    tenants = TenantPopulation(
        config.n_tenants,
        n_images,
        seed=derive_seed("workload-storm-tenants", config.seed),
        zipf_exponent=config.zipf_exponent,
    )
    plan = []
    for index, t in enumerate(times):
        tenant, image_id = tenants.sample(rng)
        node_name = f"compute{index % config.n_nodes}"
        plan.append((float(t), node_name, image_id, int(tenant.tenant_id)))
    return plan


def _placement_factory(config: StormConfig, spec: PlacementSpec, n_images: int):
    """Coordinator factory for a storm: the placement context is derived
    from the same tenant population (same seed) that generates the arrival
    trace, so the hoard map is a pure function of (config, spec)."""

    def factory(squirrel):
        population = TenantPopulation(
            config.n_tenants,
            n_images,
            seed=derive_seed("workload-storm-tenants", config.seed),
            zipf_exponent=config.zipf_exponent,
        )
        context = PlacementContext(
            nodes=tuple(node.name for node in squirrel.cluster.compute),
            popularity=tuple(
                float(p) for p in population.expected_popularity()
            ),
            owners=tuple(int(t) for t in population.image_owners()),
            tenant_weights=tuple(
                float(w) for w in population.tenant_weights
            ),
        )
        return build_coordinator(spec, squirrel.cluster, context)

    return factory


def storm_image_count(
    config: StormConfig, dataset: AzureCommunityDataset | ImageCatalog
) -> int:
    """Images the storm registers: the arrival trace's highest image id + 1.

    Both storm sides register the first ``storm_image_count(...)`` specs,
    so analytic per-image accounting (e.g. the placement experiment's
    full-replication reference) must use this count, not the VM count.
    ``dataset`` may be an eager dataset or a catalog (only its length is
    needed, so no streams materialise)."""
    plan = _storm_trace(
        config, min(config.n_nodes * config.vms_per_node, len(dataset))
    )
    return max(image_id for _, _, image_id, _ in plan) + 1


def _run_storm_side(
    config: StormConfig,
    *,
    with_caches: bool,
    catalog: ImageCatalog,
    estimator,
    plan,
    placement: PlacementSpec | None = None,
    placement_sink=None,
    sharding_factory=None,
    sharding_sink=None,
) -> tuple[StormSide, SpanTracer]:
    n_images = max(image_id for _, _, image_id, _ in plan) + 1
    side_name = "squirrel" if with_caches else "baseline"
    with obs_runtime.phase(f"storm.setup.{side_name}"):
        rig = _build_rig(
            n_compute=config.n_nodes,
            n_storage=config.n_storage,
            block_size=config.block_size,
            scale=config.scale,
            link=config.link,
            seed=derive_seed("storm", config.seed, side_name),
            trace=config.trace,
            metrics_interval_s=config.metrics_interval_s,
            dataset=catalog,
            estimator=estimator,
            placement_factory=(
                _placement_factory(config, placement, n_images)
                if with_caches and placement is not None
                else None
            ),
            sharding_factory=(
                sharding_factory if with_caches else None
            ),
        )
        squirrel, engine, timeline, timed = (
            rig.squirrel, rig.engine, rig.timeline, rig.timed,
        )
        gluster = squirrel.cluster.storage.gluster
        if with_caches:
            for spec in catalog.specs[:n_images]:
                squirrel.register(spec)  # setup: instant, before the storm
        else:
            # the baseline never registers: only the base VMIs exist on the FS
            for spec in catalog.specs[:n_images]:
                gluster.create_file(f"vmi-{spec.image_id:05d}", spec.nonzero_bytes)
        squirrel.cluster.ledger.clear()
        if config.faults is not None:
            FaultInjector(timed, config.faults).start()

        def vm(at, node_name, image_id, tenant):
            yield engine.timeout(at)
            yield timed.boot(
                image_id, node_name, force_cold=not with_caches,
                tenant=tenant,
            )

        for at, node_name, image_id, tenant in plan:
            engine.process(
                vm(at, node_name, image_id, tenant),
                label=f"vm:{node_name}:{image_id}",
            )
    with obs_runtime.phase(f"storm.run.{side_name}"):
        # the heartbeat's horizon: boots completed over boots planned
        obs_runtime.set_fraction(
            lambda: timeline.counter("boots") / len(plan) if plan else None
        )
        horizon = engine.run()
    timed.tracer.close_open_spans()
    side = StormSide(
        boots=int(timeline.counter("boots")),
        cache_hits=int(timeline.counter("cache_hits")),
        interrupted_boots=int(timeline.counter("boot_interrupts")),
        delayed_boots=int(timeline.counter("boots_delayed")),
        compute_ingress_bytes=squirrel.cluster.compute_ingress_bytes(
            purpose="boot-read"
        ),
        horizon_s=horizon,
        latency=timeline.stats("boot_latency_s"),
        recovery=timeline.stats("recovery_s"),
        node_recovery=timeline.stats("node_recovery_s"),
        attribution=attribution_block(timeline),
        spans=timed.tracer.summary(),
        critical_path=critical_path_block(timed.tracer),
        summary=timeline.summary(),
        metrics=rig.metrics_block(),
    )
    if placement_sink is not None and squirrel.placement is not None:
        placement_sink(squirrel.placement)
    if sharding_sink is not None and squirrel.sharding is not None:
        sharding_sink(squirrel.sharding)
    return side, timed.tracer


def boot_storm(
    config: StormConfig = StormConfig(),
    *,
    dataset: AzureCommunityDataset | ImageCatalog | None = None,
    estimator=None,
    trace_path=None,
    placement: PlacementSpec | None = None,
    placement_sink=None,
    sharding_factory=None,
    sharding_sink=None,
) -> StormReport:
    """Run the same flash crowd with Squirrel and without caches.

    ``dataset``/``estimator`` let a caller that already owns them (the
    experiment registry's shared context) avoid rebuilding the full image
    dataset per run; they must match ``config.scale``/``config.block_size``.
    With a ``trace_path``, both sides' spans are exported there as one
    Chrome trace-event JSON file (processes ``squirrel``/``baseline``).

    ``placement`` attaches a partial-hoarding coordinator to the Squirrel
    side (the no-cache baseline is unaffected); ``placement_sink``, if
    given, receives that side's coordinator after the run so callers can
    read its tallies. ``placement=None`` is the paper baseline and is
    byte-identical to pre-placement behaviour.

    ``sharding_factory`` (``squirrel -> ShardRouter``) shards the Squirrel
    side's cVolume; ``sharding_sink`` receives the router after that side
    runs. ``sharding_factory=None`` keeps the run byte-identical to the
    unsharded storm.
    """
    if config.n_nodes < 1 or config.vms_per_node < 1:
        raise ConfigError("storm needs at least one node and one VM")
    # one catalog for both sides: they register the same specs, so the
    # Squirrel side's cache views come out of the shared memo for free
    catalog = as_catalog(dataset) or LazyImageCatalog(
        DatasetConfig(scale=config.scale)
    )
    estimator = estimator or make_estimator(
        "gzip6", (config.block_size,), samples_per_point=2
    )
    n_images = len(catalog)
    plan = _storm_trace(config, min(config.n_nodes * config.vms_per_node, n_images))
    sides = {}
    tracers = {}
    for with_caches in (True, False):
        side, tracer = _run_storm_side(
            config, with_caches=with_caches, catalog=catalog,
            estimator=estimator, plan=plan, placement=placement,
            placement_sink=placement_sink,
            sharding_factory=sharding_factory, sharding_sink=sharding_sink,
        )
        sides[with_caches] = side
        tracers["squirrel" if with_caches else "baseline"] = tracer
    if trace_path is not None:
        write_chrome_trace(trace_path, tracers)
    return StormReport(
        n_nodes=config.n_nodes,
        vms_per_node=config.vms_per_node,
        seed=config.seed,
        squirrel=sides[True],
        baseline=sides[False],
    )


# -- steady-state day -----------------------------------------------------------------


@dataclass(frozen=True)
class DayConfig:
    """A diurnal multi-tenant day: boots all day, a trickle of new images."""

    n_nodes: int = 16
    n_storage: int = 4
    block_size: int = 65536
    scale: float = 1.0 / 512.0
    n_boots: int = 400  #: expected boots over the day
    n_initial_images: int = 64
    n_new_registrations: int = 8
    n_tenants: int = 16
    zipf_exponent: float = 0.9
    link: LinkProfile = GBE_1
    seed: int = 0
    trace: bool = False
    #: injected faults running alongside the diurnal load
    faults: FaultPlan | None = None
    #: gauge-scrape cadence (5 simulated minutes over a 24 h horizon)
    metrics_interval_s: float = 300.0

    @classmethod
    def from_params(
        cls,
        *,
        nodes: int = 16,
        boots: int = 400,
        tenants: int = 16,
        registrations: int = 8,
        seed: int = 0,
        faults: str | None = None,
    ) -> "DayConfig":
        """Build a config from the validated experiment params (the ``day``
        experiment's CLI/sweep surface; ``faults`` is the plan DSL)."""
        return cls(
            n_nodes=nodes,
            n_boots=boots,
            n_tenants=tenants,
            n_new_registrations=registrations,
            seed=seed,
            faults=FaultPlan.parse(faults) if faults else None,
        )


@dataclass(frozen=True)
class DayReport(ReportBase):
    boots: int
    cache_hits: int
    registrations: int
    compute_ingress_bytes: int
    boot_latency: HistogramStats
    register_latency: HistogramStats
    summary: dict = field(repr=False)
    #: canonical metrics block: instrument snapshot + sampled series
    metrics: dict = field(repr=False)


def steady_state_day(
    config: DayConfig = DayConfig(), *, trace_path=None
) -> DayReport:
    """24 simulated hours of diurnal load against one cluster.

    With a ``trace_path``, the run's spans are exported there as a Chrome
    trace-event JSON file; ``config.faults`` runs the day under injected
    node crashes / link flaps / brick failures.
    """
    rig = _build_rig(
        n_compute=config.n_nodes,
        n_storage=config.n_storage,
        block_size=config.block_size,
        scale=config.scale,
        link=config.link,
        seed=derive_seed("day", config.seed),
        trace=config.trace,
        metrics_interval_s=config.metrics_interval_s,
    )
    dataset, squirrel, engine, timeline, timed = (
        rig.dataset, rig.squirrel, rig.engine, rig.timeline, rig.timed,
    )
    catalogue = config.n_initial_images + config.n_new_registrations
    if catalogue > len(dataset.images):
        raise ConfigError("catalogue larger than the dataset")
    for spec in dataset.images[: config.n_initial_images]:
        squirrel.register(spec)  # overnight backlog: instant setup
    squirrel.cluster.ledger.clear()
    if config.faults is not None:
        FaultInjector(timed, config.faults).start()

    rng = rng_stream("workload-day", config.seed)
    boot_times = diurnal_arrivals(
        rng, mean_rate_per_s=config.n_boots / DAY_S, horizon_s=DAY_S
    )
    tenants = TenantPopulation(
        config.n_tenants, catalogue,
        seed=derive_seed("workload-day-tenants", config.seed),
        zipf_exponent=config.zipf_exponent,
    )
    node_names = [node.name for node in squirrel.cluster.compute]

    def vm(at, node_name, image_id):
        yield engine.timeout(at)
        if not squirrel.is_registered(image_id):
            # image not registered yet today: fall back to a warm one
            registered = squirrel.registered_ids()
            image_id = registered[image_id % len(registered)]
            timeline.count("fallback_boots")
        yield timed.boot(image_id, node_name)

    for at in boot_times:
        _tenant, image_id = tenants.sample(rng)
        node_name = node_names[int(rng.integers(len(node_names)))]
        engine.process(vm(float(at), node_name, image_id))

    register_times = poisson_arrivals(
        rng, rate_per_s=config.n_new_registrations / DAY_S, horizon_s=DAY_S
    )
    new_specs = dataset.images[config.n_initial_images : catalogue]

    def registration(at, spec):
        yield engine.timeout(at)
        yield timed.register(spec)

    for at, spec in zip(register_times, new_specs):
        engine.process(registration(float(at), spec))

    def nightly_gc():
        yield engine.timeout(DAY_S - 1.0)
        timed.collect_garbage()

    engine.process(nightly_gc())
    with obs_runtime.phase("day.run"):
        # heartbeat horizon: the day ends at DAY_S on the sim clock
        obs_runtime.set_fraction(lambda: min(1.0, engine.now / DAY_S))
        engine.run()
    timed.tracer.close_open_spans()
    if trace_path is not None:
        write_chrome_trace(trace_path, {"day": timed.tracer})
    return DayReport(
        boots=int(timeline.counter("boots")),
        cache_hits=int(timeline.counter("cache_hits")),
        registrations=int(timeline.counter("registrations")),
        compute_ingress_bytes=squirrel.cluster.compute_ingress_bytes(
            purpose="boot-read"
        ),
        boot_latency=timeline.stats("boot_latency_s"),
        register_latency=timeline.stats("register_latency_s"),
        summary=timeline.summary(),
        metrics=rig.metrics_block(),
    )


# -- registration churn ---------------------------------------------------------------


@dataclass(frozen=True)
class ChurnConfig:
    """Registration pressure with node downtime: offline propagation under
    time, including GC-forced full re-replications."""

    n_nodes: int = 8
    n_storage: int = 4
    block_size: int = 65536
    scale: float = 1.0 / 512.0
    horizon_days: float = 7.0
    registrations_per_day: float = 6.0
    #: per-node expected downtimes over the horizon
    downtimes_per_node: float = 2.0
    mean_downtime_days: float = 0.8
    gc_window_days: float = 2.0
    link: LinkProfile = GBE_1
    seed: int = 0
    trace: bool = False
    #: injected faults running alongside the churn (on top of the planned
    #: downtime windows the scenario itself schedules)
    faults: FaultPlan | None = None
    #: gauge-scrape cadence (30 simulated minutes over a week-long horizon)
    metrics_interval_s: float = 1800.0

    @classmethod
    def from_params(
        cls,
        *,
        nodes: int = 8,
        days: float = 7.0,
        registrations_per_day: float = 6.0,
        downtimes_per_node: float = 2.0,
        seed: int = 0,
        faults: str | None = None,
    ) -> "ChurnConfig":
        """Build a config from the validated experiment params (the ``churn``
        experiment's CLI/sweep surface; ``faults`` is the plan DSL)."""
        return cls(
            n_nodes=nodes,
            horizon_days=days,
            registrations_per_day=registrations_per_day,
            downtimes_per_node=downtimes_per_node,
            seed=seed,
            faults=FaultPlan.parse(faults) if faults else None,
        )


@dataclass(frozen=True)
class ChurnReport(ReportBase):
    registrations: int
    resyncs: int
    incremental_resyncs: int
    full_replications: int
    resync_bytes: int
    register_latency: HistogramStats
    resync_latency: HistogramStats
    summary: dict = field(repr=False)
    #: canonical metrics block: instrument snapshot + sampled series
    metrics: dict = field(repr=False)


def register_churn(
    config: ChurnConfig = ChurnConfig(), *, trace_path=None
) -> ChurnReport:
    """A week of registrations while nodes come and go.

    With a ``trace_path``, the run's spans are exported there as a Chrome
    trace-event JSON file; ``config.faults`` adds injected faults on top of
    the scenario's own planned downtime windows.
    """
    rig = _build_rig(
        n_compute=config.n_nodes,
        n_storage=config.n_storage,
        block_size=config.block_size,
        scale=config.scale,
        link=config.link,
        seed=derive_seed("churn", config.seed),
        trace=config.trace,
        metrics_interval_s=config.metrics_interval_s,
    )
    dataset, squirrel, engine, timeline, timed = (
        rig.dataset, rig.squirrel, rig.engine, rig.timeline, rig.timed,
    )
    squirrel.gc_window_days = config.gc_window_days
    horizon_s = config.horizon_days * DAY_S
    if config.faults is not None:
        FaultInjector(timed, config.faults).start()
    rng = rng_stream("workload-churn", config.seed)

    register_times = poisson_arrivals(
        rng, rate_per_s=config.registrations_per_day / DAY_S, horizon_s=horizon_s
    )
    specs = dataset.images[: len(register_times)]

    def registration(at, spec):
        yield engine.timeout(at)
        yield timed.register(spec)

    for at, spec in zip(register_times, specs):
        engine.process(registration(float(at), spec))

    def downtime(node: ComputeNode, start, duration):
        yield engine.timeout(start)
        node.online = False
        timeline.count("downtimes")
        yield engine.timeout(duration)
        yield timed.resync(node.name)

    for node in squirrel.cluster.compute:
        n_windows = int(
            rng.poisson(config.downtimes_per_node)
        )
        starts = sorted(rng.uniform(0.0, horizon_s, size=n_windows))
        last_end = 0.0
        for start in starts:
            start = max(float(start), last_end + 60.0)
            duration = float(
                rng.exponential(config.mean_downtime_days * DAY_S)
            )
            if start + duration >= horizon_s:
                break
            engine.process(downtime(node, start, duration))
            last_end = start + duration

    def daily_gc():
        for day in range(1, int(config.horizon_days) + 1):
            yield engine.timeout(day * DAY_S - engine.now)
            timed.collect_garbage()

    engine.process(daily_gc())
    with obs_runtime.phase("churn.run"):
        # heartbeat horizon: registrations + downtime all land inside it
        obs_runtime.set_fraction(lambda: min(1.0, engine.now / horizon_s))
        engine.run()
    timed.tracer.close_open_spans()
    if trace_path is not None:
        write_chrome_trace(trace_path, {"churn": timed.tracer})
    return ChurnReport(
        registrations=int(timeline.counter("registrations")),
        resyncs=int(
            timeline.counter("incremental_resyncs")
            + timeline.counter("full_replications")
        ),
        incremental_resyncs=int(timeline.counter("incremental_resyncs")),
        full_replications=int(timeline.counter("full_replications")),
        resync_bytes=int(timeline.counter("resync_bytes")),
        register_latency=timeline.stats("register_latency_s"),
        resync_latency=timeline.stats("resync_latency_s"),
        summary=timeline.summary(),
        metrics=rig.metrics_block(),
    )
