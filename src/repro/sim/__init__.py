"""Discrete-event simulation kernel: clock, processes, contention, metrics."""

from .engine import Engine, Event, Interrupted, Process, all_of
from .queueing import (
    QUEUE_KINDS,
    CalendarEventQueue,
    EventQueue,
    HeapEventQueue,
    make_queue,
)
from .resources import Pipe, Resource
from .timeline import HistogramStats, Timeline

__all__ = [
    "CalendarEventQueue",
    "Engine",
    "Event",
    "EventQueue",
    "HeapEventQueue",
    "HistogramStats",
    "Interrupted",
    "Pipe",
    "Process",
    "QUEUE_KINDS",
    "Resource",
    "Timeline",
    "all_of",
    "make_queue",
]
