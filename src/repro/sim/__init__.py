"""Discrete-event simulation kernel: clock, processes, contention, metrics."""

from .engine import Engine, Event, Interrupted, Process, all_of
from .resources import Pipe, Resource
from .timeline import HistogramStats, Timeline

__all__ = [
    "Engine",
    "Event",
    "HistogramStats",
    "Interrupted",
    "Pipe",
    "Process",
    "Resource",
    "Timeline",
    "all_of",
]
