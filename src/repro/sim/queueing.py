"""Pluggable event queues for the simulation engine.

The engine's total event order is the tuple ``(time, tiebreak, seq)`` —
simulated time first, then a seeded pseudo-random tie-break, then a
monotonic sequence number as the final word. Any :class:`EventQueue`
implementation must pop entries in exactly that order; the engine treats
the queue as a black box, which is what lets the queue be swapped without
touching a single determinism pin.

Two implementations ship:

* :class:`HeapEventQueue` — the original binary heap (:mod:`heapq`).
  C-accelerated, O(log n) per operation, and the default.
* :class:`CalendarEventQueue` — a calendar queue (R. Brown, CACM 1988):
  an array of time buckets of width ``w``, each bucket a list kept sorted
  on the full ``(time, tiebreak, seq)`` key. With the width tracking the
  mean event spacing, push and pop are amortised O(1). Same-timestamp
  runs land in one sorted bucket, so a batch of simultaneous events is
  dispatched from a single bucket scan — and an event scheduled *during*
  the batch bisects into its ordered place, preserving the total order
  (the hazard an engine-level pop-the-batch-then-fire scheme would hit).

Entries are 5-tuples ``(time, tiebreak, seq, event, value)``. Tuple
comparison never reaches the event object because ``seq`` is unique.
"""

from __future__ import annotations

import heapq
import math
from bisect import insort
from typing import Any, Iterator, Protocol, runtime_checkable

from ..common.errors import SimulationError

__all__ = [
    "EventQueue",
    "HeapEventQueue",
    "CalendarEventQueue",
    "QUEUE_KINDS",
    "make_queue",
]

#: one queued occurrence: (time, tiebreak, seq, event, value)
Entry = tuple


@runtime_checkable
class EventQueue(Protocol):
    """What the engine needs from a queue of ``(time, tiebreak, seq,
    event, value)`` entries: push anywhere, pop in total-key order."""

    def push(self, entry: Entry) -> None:
        """Insert one entry."""

    def pop(self) -> Entry:
        """Remove and return the entry with the smallest key."""

    def peek_time(self) -> float | None:
        """Time of the smallest entry, or ``None`` when empty."""

    def __len__(self) -> int:  # pragma: no cover - trivial
        ...


class HeapEventQueue:
    """The classic binary heap — C-fast, O(log n), the default."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[Entry] = []

    def push(self, entry: Entry) -> None:
        heapq.heappush(self._heap, entry)

    def pop(self) -> Entry:
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._heap)


#: calendar sizing bounds — powers of two so the modulo stays cheap
_MIN_BUCKETS = 16
_MAX_BUCKETS = 1 << 20


class CalendarEventQueue:
    """Calendar queue: bucketed wheel with sorted per-bucket lists.

    ``nbuckets`` and the bucket ``width`` adapt to the population (double
    above two entries per bucket, halve below one per two buckets), with
    the width re-estimated from the spacing of the queue's own entries —
    a pure function of content, so resizes are deterministic. Non-finite
    times (``inf`` timeouts) live in a sorted overflow list consulted only
    after every finite entry has drained.
    """

    __slots__ = (
        "_buckets", "_nbuckets", "_width", "_count",
        "_cursor", "_cursor_top", "_overflow",
    )

    def __init__(self, *, width: float = 1.0, nbuckets: int = _MIN_BUCKETS) -> None:
        if width <= 0:
            raise SimulationError("calendar bucket width must be positive")
        self._nbuckets = max(_MIN_BUCKETS, nbuckets)
        self._width = float(width)
        self._buckets: list[list[Entry]] = [[] for _ in range(self._nbuckets)]
        self._count = 0
        self._cursor = 0
        self._cursor_top = self._width
        self._overflow: list[Entry] = []

    # -- protocol -----------------------------------------------------------------

    def push(self, entry: Entry) -> None:
        time = entry[0]
        if not math.isfinite(time):
            insort(self._overflow, entry)
            return
        insort(self._buckets[int(time / self._width) % self._nbuckets], entry)
        self._count += 1
        if time < self._cursor_top - self._width:
            # earlier than the dequeue window (Brown's rule): rewind the
            # cursor to this entry's bucket or the next pop would scan
            # forward past it and break the total order
            self._cursor = int(time / self._width) % self._nbuckets
            self._cursor_top = (math.floor(time / self._width) + 1.0) * self._width
        if self._count > 2 * self._nbuckets and self._nbuckets < _MAX_BUCKETS:
            self._resize(self._nbuckets * 2)

    def pop(self) -> Entry:
        if self._count == 0:
            if self._overflow:
                return self._overflow.pop(0)
            raise SimulationError("pop from an empty event queue")
        entry = self._pop_finite()
        if (
            self._count < self._nbuckets // 2
            and self._nbuckets > _MIN_BUCKETS
        ):
            self._resize(self._nbuckets // 2)
        return entry

    def peek_time(self) -> float | None:
        if self._count == 0:
            return self._overflow[0][0] if self._overflow else None
        return self._min_entry()[0]

    def __len__(self) -> int:
        return self._count + len(self._overflow)

    def __iter__(self) -> Iterator[Entry]:
        for bucket in self._buckets:
            yield from bucket
        yield from self._overflow

    # -- internals ----------------------------------------------------------------

    def _pop_finite(self) -> Entry:
        buckets, width = self._buckets, self._width
        cursor, top = self._cursor, self._cursor_top
        for _ in range(self._nbuckets):
            bucket = buckets[cursor]
            if bucket and bucket[0][0] < top:
                self._cursor, self._cursor_top = cursor, top
                self._count -= 1
                return bucket.pop(0)
            cursor = (cursor + 1) % self._nbuckets
            top += width
        # a whole "year" of empty buckets: jump straight to the minimum
        entry = self._min_entry()
        self._cursor = int(entry[0] / width) % self._nbuckets
        self._cursor_top = (math.floor(entry[0] / width) + 1.0) * width
        self._count -= 1
        self._buckets[self._cursor].pop(0)
        return entry

    def _min_entry(self) -> Entry:
        # heads only: equal times always share a bucket, so comparing the
        # (time, tiebreak, seq) prefixes across heads is a total order
        return min(b[0] for b in self._buckets if b)

    def _resize(self, nbuckets: int) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        entries.sort()
        self._width = self._estimate_width(entries)
        self._nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        width = self._width
        for entry in entries:
            insort(self._buckets[int(entry[0] / width) % nbuckets], entry)
        first = entries[0][0] if entries else 0.0
        self._cursor = int(first / width) % nbuckets
        self._cursor_top = (math.floor(first / width) + 1.0) * width

    def _estimate_width(self, entries: list[Entry]) -> float:
        """Mean spacing of the (sorted) population, clamped to stay finite.

        Brown's estimator samples dequeue gaps; using the resident entries
        keeps the result a deterministic function of queue content.
        """
        if len(entries) < 2:
            return self._width
        span = entries[-1][0] - entries[0][0]
        if span <= 0.0:
            # everything simultaneous: any positive width works
            return self._width
        return max(span / (len(entries) - 1) * 2.0, 1e-12)


QUEUE_KINDS = ("heap", "calendar")


def make_queue(kind: str) -> EventQueue:
    """Instantiate a queue by config name (``heap`` or ``calendar``)."""
    if kind == "heap":
        return HeapEventQueue()
    if kind == "calendar":
        return CalendarEventQueue()
    raise SimulationError(
        f"unknown event queue {kind!r}; choose from {', '.join(QUEUE_KINDS)}"
    )
