"""Timeline — the metrics recorder of the simulation kernel.

Three instrument families, all keyed by name:

* **counters** — monotonically accumulated event counts/sums,
* **gauges**   — time-stamped samples of an instantaneous value,
* **histograms** — latency/size observations with p50/p95/p99 summaries.

Everything is deterministic: :meth:`Timeline.summary` renders the complete
state with sorted keys and exact floats, so two runs with the same seed must
produce byte-identical summaries (the determinism property tests diff them).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .engine import Engine

__all__ = ["Timeline", "HistogramStats"]

PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class HistogramStats:
    """Summary of one observation series."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class Timeline:
    """Per-run metrics store, stamped with the engine clock."""

    def __init__(self, engine: Engine | None = None) -> None:
        self.engine = engine
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, list[tuple[float, float]]] = {}
        self._observations: dict[str, list[float]] = {}

    @property
    def now(self) -> float:
        return self.engine.now if self.engine is not None else 0.0

    # -- instruments --------------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self._gauges.setdefault(name, []).append((self.now, float(value)))

    def observe(self, name: str, value: float) -> None:
        self._observations.setdefault(name, []).append(float(value))

    # -- queries ------------------------------------------------------------------

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def gauge_series(self, name: str) -> list[tuple[float, float]]:
        return list(self._gauges.get(name, []))

    def observations(self, name: str) -> list[float]:
        return list(self._observations.get(name, []))

    def stats(self, name: str) -> HistogramStats:
        samples = self._observations.get(name)
        if not samples:
            return HistogramStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(samples, dtype=np.float64)
        p50, p95, p99 = np.percentile(arr, PERCENTILES)
        return HistogramStats(
            count=len(samples),
            mean=float(arr.mean()),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            p50=float(p50),
            p95=float(p95),
            p99=float(p99),
        )

    # -- deterministic rendering --------------------------------------------------

    def summary(self) -> dict:
        """Full state with sorted keys — the determinism fingerprint."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: tuple(self._gauges[k]) for k in sorted(self._gauges)},
            "histograms": {
                k: self.stats(k).as_dict() for k in sorted(self._observations)
            },
        }

    def render(self, title: str = "timeline") -> str:
        """Human-oriented multi-line report."""
        lines = [title]
        for name in sorted(self._counters):
            lines.append(f"  {name}: {self._counters[name]:g}")
        for name in sorted(self._gauges):
            samples = self._gauges[name]
            at, last = samples[-1]
            lines.append(
                f"  {name}: last={last:g} @ {at:.3f}s (n={len(samples)})"
            )
        for name in sorted(self._observations):
            s = self.stats(name)
            lines.append(
                f"  {name}: n={s.count} mean={s.mean:.3f} "
                f"p50={s.p50:.3f} p95={s.p95:.3f} p99={s.p99:.3f} max={s.maximum:.3f}"
            )
        return "\n".join(lines)
