"""Shared contention primitives for the event engine.

* :class:`Resource` — a counted, FIFO-queued resource (CPU cores for
  decompression, a disk's single actuator, VM slots).
* :class:`Pipe` — a processor-sharing bandwidth channel (a NIC, a glusterfs
  brick's uplink): ``n`` concurrent flows each progress at ``rate / n``, and
  completion times are re-computed whenever a flow joins or leaves — the
  classic fluid model of fair-shared TCP flows on one link, which is exactly
  the contention a boot storm exercises.

Both record their interesting moments into an optional
:class:`~repro.sim.timeline.Timeline`: a named Resource observes per-grant
queue wait (``res_wait_s:<name>``), a named Pipe observes per-flow
contention overhead over the uncontended transfer time
(``pipe_wait_s:<name>``) — the raw material of queue-wait vs. service-time
attribution. Recording never schedules events, so it cannot perturb the
simulation's event order.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..common.errors import SimulationError
from .engine import Engine, Event

__all__ = ["Resource", "Pipe"]


class Resource:
    """``capacity`` slots, granted strictly in request order."""

    def __init__(
        self,
        engine: Engine,
        capacity: int = 1,
        *,
        name: str | None = None,
        timeline=None,
    ) -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.timeline = timeline
        self.in_use = 0
        self._waiting: deque[Event] = deque()
        #: request timestamps of queued grants (queue-wait telemetry)
        self._queued_at: dict[Event, float] = {}
        #: grants handed out, for utilisation reporting
        self.total_grants = 0

    def _observe_wait(self, wait_s: float) -> None:
        if self.timeline is not None and self.name is not None:
            self.timeline.observe(f"res_wait_s:{self.name}", wait_s)

    def request(self) -> Event:
        """Event that triggers when a slot is granted (yield it)."""
        grant = self.engine.event(self.name and f"{self.name}:grant")
        if self.in_use < self.capacity:
            self.in_use += 1
            self.total_grants += 1
            self._observe_wait(0.0)
            grant.succeed()
        else:
            self._waiting.append(grant)
            self._queued_at[grant] = self.engine.now
        return grant

    def release(self) -> None:
        """Return one slot; the longest-waiting request (if any) gets it."""
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiting:
            grant = self._waiting.popleft()
            self.total_grants += 1
            self._observe_wait(self.engine.now - self._queued_at.pop(grant))
            grant.succeed()
        else:
            self.in_use -= 1

    def cancel(self, grant: Event) -> None:
        """Withdraw a request (preempted holder/waiter — e.g. its process
        was interrupted by a fault). A still-queued request is removed; a
        granted one has its slot released on its behalf.
        """
        try:
            self._waiting.remove(grant)
            self._queued_at.pop(grant, None)
        except ValueError:
            self.release()

    @property
    def queue_length(self) -> int:
        return len(self._waiting)


class _Flow:
    __slots__ = ("event", "n_bytes", "started_s", "ideal_s")

    def __init__(self, n_bytes: float, event: Event, started_s: float,
                 ideal_s: float) -> None:
        self.n_bytes = n_bytes
        self.event = event
        #: admission time and uncontended drain time, for contention telemetry
        self.started_s = started_s
        self.ideal_s = ideal_s


class Pipe:
    """Fair-shared bandwidth channel: the fluid flow model.

    A transfer of ``n`` bytes on an otherwise idle pipe of rate ``r``
    completes after ``latency + n/r`` seconds; with ``k`` concurrent flows
    every flow drains at ``r/k``. Joins and departures trigger a re-plan of
    the next departure (lazy wake tokens make superseded plans inert).

    Fault hooks: :meth:`set_rate` changes the drain rate mid-flight (down to
    zero — a link flap stalls every flow until the rate comes back),
    :meth:`block`/:meth:`unblock` nest flap-on-crash cleanly, and
    :meth:`cancel` withdraws one in-flight flow (its bytes are lost; the
    remaining flows speed up) — the drain side of preempting a transfer.
    """

    def __init__(
        self,
        engine: Engine,
        rate_bytes_per_s: float,
        *,
        latency_s: float = 0.0,
        name: str | None = None,
        timeline=None,
    ) -> None:
        if rate_bytes_per_s <= 0:
            raise SimulationError("pipe rate must be positive")
        self.engine = engine
        self.rate = float(rate_bytes_per_s)
        self.latency_s = latency_s
        self.name = name
        self.timeline = timeline
        self._flows: list[_Flow] = []
        #: per-flow undrained bytes, parallel to ``_flows`` — a numpy array
        #: so the fluid updates (every flow drains by the same share) and
        #: the next-departure scan are one vectorised op each instead of a
        #: python loop; element-wise float64 arithmetic is bit-identical to
        #: the scalar loop, so this is purely a constant-factor change. At
        #: 10k nodes a boot storm holds thousands of concurrent flows per
        #: brick pipe, and the per-event python loop was quadratic overall.
        self._remaining = np.empty(0, dtype=np.float64)
        self._last_update = 0.0
        self._plan_version = 0
        #: positions of the flows the current plan expects to depart at the
        #: next wake; they are force-completed then, so float residue (a
        #: planned drain can miss zero by an ulp of a multi-GB count) can
        #: never stall the pipe. Positions are stable while the plan is
        #: valid: any join/leave bumps the version and replans.
        self._plan_head_idx: np.ndarray | tuple = ()
        #: lifetime accounting for utilisation reports
        self.total_bytes = 0
        self.total_flows = 0
        self.busy_seconds = 0.0
        #: nested block() depth and the rate to restore at depth zero
        self._blocks = 0
        self._saved_rate = self.rate

    # -- public API ---------------------------------------------------------------

    def transfer(self, n_bytes: int, label: str | None = None) -> Event:
        """Event that triggers when ``n_bytes`` have drained through the
        shared pipe (plus the fixed link latency)."""
        if n_bytes < 0:
            raise SimulationError("negative transfer size")
        done = self.engine.event(label or (self.name and f"{self.name}:done"))
        self.total_bytes += n_bytes
        self.total_flows += 1
        if n_bytes == 0:
            done.succeed(0, delay=self.latency_s)
            return done
        self._advance()
        #: uncontended drain time at the link's nominal rate (the saved rate
        #: while a fault holds the pipe blocked)
        nominal = self._saved_rate if self._blocks else self.rate
        ideal_s = n_bytes / nominal if nominal > 0 else 0.0
        self._flows.append(_Flow(n_bytes, done, self.engine.now, ideal_s))
        self._remaining = np.append(self._remaining, float(n_bytes))
        self._replan()
        return done

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    @property
    def blocked(self) -> bool:
        return self._blocks > 0

    def busy_fraction(self, now: float | None = None) -> float:
        """Lifetime utilisation in [0, 1]: busy seconds (including the
        in-progress stretch since the last fluid update) over elapsed
        simulated time. Cheap — O(1), no ledger walk — so the metrics
        sampler can scrape it every tick."""
        if now is None:
            now = self.engine.now
        if now <= 0.0:
            return 0.0
        busy = self.busy_seconds
        if self._flows and self.rate > 0.0:
            busy += max(0.0, now - self._last_update)
        return min(1.0, busy / now)

    # -- fault hooks --------------------------------------------------------------

    def set_rate(self, rate_bytes_per_s: float) -> None:
        """Change the drain rate mid-flight. Flows keep the bytes already
        drained at the old rate; a rate of zero stalls them in place until
        the rate comes back (no wake is planned while stalled)."""
        if rate_bytes_per_s < 0:
            raise SimulationError("pipe rate must be non-negative")
        self._advance()
        self.rate = float(rate_bytes_per_s)
        self._replan()

    def block(self) -> None:
        """Drop the rate to zero (a link going dark). Nests: overlapping
        faults each block once, and the pipe only resumes when every one of
        them has unblocked."""
        if self._blocks == 0:
            self._saved_rate = self.rate
            self.set_rate(0.0)
        self._blocks += 1

    def unblock(self) -> None:
        """Undo one :meth:`block`; restores the saved rate at depth zero."""
        if self._blocks <= 0:
            raise SimulationError(f"unblock of unblocked pipe {self.name!r}")
        self._blocks -= 1
        if self._blocks == 0:
            self.set_rate(self._saved_rate)

    def cancel(self, event: Event) -> bool:
        """Withdraw the flow whose completion event is ``event`` (preempted
        transfer: a crashed node's fetch). Returns False if no such flow is
        active (already completed, or never started)."""
        for i, flow in enumerate(self._flows):
            if flow.event is event:
                self._advance()
                del self._flows[i]
                self._remaining = np.delete(self._remaining, i)
                self._replan()
                return True
        return False

    # -- fluid bookkeeping --------------------------------------------------------

    def _advance(self) -> None:
        """Drain all active flows by the time elapsed since the last event."""
        now = self.engine.now
        elapsed = now - self._last_update
        self._last_update = now
        if not self._flows or elapsed <= 0.0 or self.rate <= 0.0:
            return  # a stalled pipe is not busy and drains nothing
        share = elapsed * self.rate / len(self._flows)
        self._remaining -= share
        self.busy_seconds += elapsed

    def _replan(self) -> None:
        """Schedule a wake at the next departure; invalidate older plans."""
        self._plan_version += 1
        if not self._flows or self.rate <= 0.0:
            self._plan_head_idx = ()
            return  # stalled: the next set_rate/join replans
        version = self._plan_version
        remaining = self._remaining
        head = float(remaining.min())
        tolerance = head * 1e-12 + 1e-12
        self._plan_head_idx = np.flatnonzero(remaining <= head + tolerance)
        dt = max(0.0, head * len(self._flows) / self.rate)
        wake = self.engine.event(self.name and f"{self.name}:wake")
        wake.callbacks.append(lambda _e: self._on_wake(version))
        wake.succeed(delay=dt)

    def _on_wake(self, version: int) -> None:
        if version != self._plan_version:
            return  # superseded by a join/leave since this was planned
        self._advance()
        remaining = self._remaining
        if len(self._plan_head_idx):
            remaining[self._plan_head_idx] = 0.0  # this wake IS their departure
        done_mask = remaining <= 0.0
        finished = [f for f, d in zip(self._flows, done_mask) if d]
        self._flows = [f for f, d in zip(self._flows, done_mask) if not d]
        self._remaining = remaining[~done_mask]
        for flow in finished:
            if self.timeline is not None and self.name is not None:
                overhead = (self.engine.now - flow.started_s) - flow.ideal_s
                self.timeline.observe(
                    f"pipe_wait_s:{self.name}", max(0.0, overhead)
                )
            flow.event.succeed(flow.n_bytes, delay=self.latency_s)
        self._replan()
