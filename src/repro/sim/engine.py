"""Discrete-event simulation kernel.

The accounting layer (`repro.core`, `repro.net`) answers *how many bytes*
move; this engine answers *when*. It is a from-scratch, dependency-free
kernel in the SimPy mould, specialised for what the cluster model needs:

* a monotonic simulated clock (:attr:`Engine.now`, seconds),
* a binary-heap event queue with **deterministic tie-breaking**: events
  scheduled for the same instant are ordered by a pseudo-random draw from a
  dedicated :mod:`repro.common.rng` stream keyed by the engine seed (so the
  order is reproducible bit-for-bit per seed, yet decorrelated from
  scheduling order), with a monotonic sequence number as the final word,
* lightweight generator-based processes: a process is a plain generator
  that ``yield``\\ s :class:`Event` objects and is resumed with their values,
* preemption: :meth:`Process.interrupt` throws :class:`Interrupted` into a
  process at its current yield point (the fault injector's hook — a node
  crash preempts every boot in flight on that node),
* an optional event trace for determinism tests and debugging.

Contention primitives (:class:`~repro.sim.resources.Resource`,
:class:`~repro.sim.resources.Pipe`) and metrics
(:class:`~repro.sim.timeline.Timeline`) live in sibling modules.
"""

from __future__ import annotations

import os
from typing import Any, Generator, Iterable

from ..common.errors import SimulationError
from ..common.rng import stream as rng_stream
from .queueing import EventQueue, make_queue

__all__ = ["Engine", "Event", "Interrupted", "Process", "all_of"]

#: environment override for the default event-queue implementation
QUEUE_ENV = "REPRO_SIM_QUEUE"

#: tie-break draws are taken from the rng in blocks — one vectorised call
#: per this many pushes. The block is consumed in draw order, so the
#: sequence of tie-breaks is bit-identical to one scalar draw per push.
_TIEBREAK_BLOCK = 1024


class Interrupted(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` names what preempted the process (e.g. ``"node-crash"``);
    handlers use it to pick a recovery strategy.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """One future occurrence; processes wait on it by ``yield``-ing it."""

    __slots__ = ("engine", "label", "callbacks", "_triggered", "_scheduled", "_value")

    def __init__(self, engine: "Engine", label: str | None = None) -> None:
        self.engine = engine
        self.label = label
        self.callbacks: list = []
        self._triggered = False
        self._scheduled = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"event {self.label or id(self)} not yet triggered")
        return self._value

    def succeed(self, value: Any = None, *, delay: float = 0.0) -> "Event":
        """Trigger this event ``delay`` seconds from now (default: now)."""
        self.engine._schedule_trigger(self, value, delay)
        return self

    # -- engine internals ---------------------------------------------------------

    def _fire(self, value: Any) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.label or id(self)} triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def _wait(self, callback) -> None:
        """Register ``callback``; runs immediately if already triggered."""
        if self._triggered:
            callback(self)
        else:
            self.callbacks.append(callback)


class Process(Event):
    """A running generator; itself an event that triggers on return.

    The generator yields :class:`Event` objects; each resume sends the
    triggered event's value back into the generator. ``return value`` inside
    the generator becomes the process event's value.
    """

    __slots__ = ("_generator", "_target")

    def __init__(
        self, engine: "Engine", generator: Generator, label: str | None = None
    ) -> None:
        super().__init__(engine, label)
        self._generator = generator
        self._target: Event | None = None

    def _step(self, fired: Event | None) -> None:
        if fired is not None and fired is not self._target:
            return  # stale wake: interrupted away from this event mid-fire
        self._target = None
        try:
            if fired is None:
                target = next(self._generator)
            else:
                target = self._generator.send(fired.value)
        except StopIteration as stop:
            self._fire(stop.value)
            return
        self._watch(target)

    def _watch(self, target: Event) -> None:
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.label or id(self)} yielded {type(target).__name__}; "
                "processes may only yield Event objects"
            )
        self._target = target
        target._wait(self._step)

    def interrupt(self, cause: Any = None) -> None:
        """Preempt this process: throw :class:`Interrupted` at its current
        yield point, synchronously. The event it was waiting on is left to
        fire on its own (with this process detached); the generator's
        ``except``/``finally`` blocks run immediately, and whatever it
        yields next is waited on as usual. No-op on a finished process.
        """
        if self._triggered:
            return
        target = self._target
        if target is None:
            # not yet stepped (its start event is still queued): nothing is
            # in flight to preempt — the process observes the fault's state
            # change when it does start
            return
        if not target._triggered:
            try:
                target.callbacks.remove(self._step)
            except ValueError:
                pass
        self._target = None
        try:
            follow_up = self._generator.throw(Interrupted(cause))
        except StopIteration as stop:
            self._fire(stop.value)
            return
        self._watch(follow_up)


def all_of(engine: "Engine", events: Iterable[Event], label: str | None = None) -> Event:
    """Event triggering once every event in ``events`` has; value is the
    list of their values, in input order."""
    pending = list(events)
    gathered = Event(engine, label)
    remaining = len(pending)
    if remaining == 0:
        gathered.succeed([])
        return gathered
    counter = [remaining]

    def on_done(_event: Event) -> None:
        counter[0] -= 1
        if counter[0] == 0:
            gathered._fire([e.value for e in pending])

    for event in pending:
        event._wait(on_done)
    return gathered


class Engine:
    """The event loop: clock + pluggable queue + process scheduler.

    ``queue`` selects the :class:`~repro.sim.queueing.EventQueue`
    implementation — ``"heap"`` (default) or ``"calendar"`` by name, an
    instance for anything custom; the ``REPRO_SIM_QUEUE`` environment
    variable overrides the default for a whole run. The total event order
    ``(time, seeded tie-break, sequence)`` is a property of the engine,
    not the queue, so every implementation replays the same schedule
    bit-for-bit at equal seed.
    """

    def __init__(
        self,
        *,
        seed: int | str = 0,
        trace: bool = False,
        queue: str | EventQueue | None = None,
    ) -> None:
        self.seed = seed
        self._now = 0.0
        if queue is None:
            queue = os.environ.get(QUEUE_ENV) or "heap"
        self._queue: EventQueue = (
            make_queue(queue) if isinstance(queue, str) else queue
        )
        self._seq = 0
        #: dedicated tie-break stream: same seed -> same total event order
        self._tiebreak = rng_stream("sim-engine-tiebreak", seed)
        self._tiebreak_block: list[int] = []
        self._tiebreak_next = 0
        self.trace: list[tuple[float, str]] | None = [] if trace else None
        self._events_processed = 0
        #: runtime-telemetry hook (see :mod:`repro.obs.runtime`): an object
        #: with ``tick_every``/``run_started``/``tick``/``run_ended``. It
        #: only *reads* engine state, so attaching one cannot change the
        #: event order or any simulation result.
        self.observer: Any = None

    # -- clock --------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time, seconds."""
        return self._now

    # -- event construction -------------------------------------------------------

    def event(self, label: str | None = None) -> Event:
        return Event(self, label)

    def timeout(self, delay: float, value: Any = None, label: str | None = None) -> Event:
        """Event that triggers ``delay`` seconds from now."""
        return Event(self, label).succeed(value, delay=delay)

    def process(self, generator: Generator, label: str | None = None) -> Process:
        """Start a generator as a process (first step runs at the current
        instant, through the queue, so creation order does not leak into
        execution order beyond the tie-break rule)."""
        proc = Process(self, generator, label)
        start = Event(self, label and f"start:{label}")
        start.callbacks.append(lambda _e: proc._step(None))
        self._push(start, None, 0.0)
        return proc

    def all_of(self, events: Iterable[Event], label: str | None = None) -> Event:
        return all_of(self, events, label)

    # -- scheduling ---------------------------------------------------------------

    def _schedule_trigger(self, event: Event, value: Any, delay: float) -> None:
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        if event._triggered or event._scheduled:
            raise SimulationError(f"event {event.label or id(event)} triggered twice")
        event._scheduled = True
        self._push(event, value, delay)

    def _push(self, event: Event, value: Any, delay: float) -> None:
        self._seq += 1
        if self._tiebreak_next >= len(self._tiebreak_block):
            self._tiebreak_block = self._tiebreak.integers(
                0, 1 << 62, size=_TIEBREAK_BLOCK
            ).tolist()
            self._tiebreak_next = 0
        tiebreak = self._tiebreak_block[self._tiebreak_next]
        self._tiebreak_next += 1
        self._queue.push((self._now + delay, tiebreak, self._seq, event, value))

    # -- the loop -----------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Drain the queue (or stop once the clock would pass ``until``);
        returns the final simulated time. :attr:`drained` afterwards tells
        whether the queue emptied or the run stopped at ``until`` with
        events still pending. An attached :attr:`observer` is notified
        around and periodically during the drain (read-only: it cannot
        perturb the schedule)."""
        observer = self.observer
        if observer is not None:
            observer.run_started(self)
        try:
            return self._drain(until, observer)
        finally:
            if observer is not None:
                observer.run_ended(self)

    def _drain(self, until: float | None, observer: Any) -> float:
        queue = self._queue
        trace = self.trace
        tick_every = int(getattr(observer, "tick_every", 0) or 0)
        countdown = tick_every if tick_every > 0 else -1
        processed = self._events_processed
        try:
            while len(queue):
                time = queue.peek_time()
                if until is not None and time > until:
                    self._now = until
                    return self._now
                time, _tiebreak, _seq, event, value = queue.pop()
                if time < self._now:
                    raise SimulationError("event queue went backwards in time")
                self._now = time
                if trace is not None and event.label is not None:
                    trace.append((time, event.label))
                event._fire(value)
                processed += 1
                countdown -= 1
                if countdown == 0:
                    self._events_processed = processed
                    observer.tick(self)
                    countdown = tick_every
            return self._now
        finally:
            self._events_processed = processed

    @property
    def events_processed(self) -> int:
        """Events fired by :meth:`run` so far (host-profiler fodder:
        events/second is this over wall time). Updated at run exit and at
        every observer tick, not per event."""
        return self._events_processed

    @property
    def drained(self) -> bool:
        """True when no event remains queued — :meth:`run` ran out of
        work rather than stopping at an ``until`` horizon. Inside a
        running process it answers "is anything else pending?", which is
        what periodic re-arming loops (the metrics sampler) key off."""
        return len(self._queue) == 0

    @property
    def queue_kind(self) -> str:
        """Config-style name of the active queue implementation
        (``"heap"``/``"calendar"``; a custom queue reports its class)."""
        name = type(self._queue).__name__
        if name.endswith("EventQueue"):
            return name[: -len("EventQueue")].lower()
        return name

    def peek(self) -> float | None:
        """Time of the next queued event, or None when drained."""
        return self._queue.peek_time()
