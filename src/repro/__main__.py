"""Command-line experiment runner.

Usage::

    python -m repro list                 # available experiments
    python -m repro fig02                # run one experiment, print the
                                         # paper-style table/series
    python -m repro all                  # run everything
    python -m repro fig08 --scale 64     # dataset scale 1/64
    python -m repro fig02 --quick 8      # keep every 8th image (smoke run)
    python -m repro storm --json         # machine-readable report
    python -m repro storm --faults "crash:compute1@40+45,flap:compute3@20+15"
    python -m repro recovery             # faulted storm with the default plan
    python -m repro storm --trace storm.json   # Perfetto-loadable span trace
    python -m repro sweep storm --grid "nodes=16,32 seed=0..3" --workers 4
    python -m repro sweep storm --grid "seed=0..7" --manifest sweep.jsonl
    python -m repro sweep storm --grid "seed=0..7" --resume sweep.jsonl
    python -m repro storm --metrics runs/storm   # Prometheus + JSONL exports
    python -m repro metrics runs/storm           # rollups over a stored run
    python -m repro sweep churn --grid "seed=0..3" --store nightly
                                         # persist under benchmarks/results/
    python -m repro storm --progress     # live heartbeat on stderr
    python -m repro slo check slo/storm.toml report.json
    python -m repro slo diff old.json new.json --tolerance 5%
    python -m repro sweep storm --grid "seed=0..3" --store nightly --trace
                                         # + per-point traces/point-NNNN.json
    python -m repro trace analyze storm.json     # critical-path blame table
    python -m repro trace flame storm.json --out storm.folded --weight critical
    python -m repro trace diff old.json new.json --tolerance 5%

Experiments come from :mod:`repro.experiments.registry`: importing
:mod:`repro.experiments` registers every module's ``run`` function, and
this CLI is a thin loop over the registry — id resolution (including
aliases), rendering and ``--json`` all derive from it, and every
per-experiment flag (``--nodes``, ``--seed``, ``--faults``, ``--trace``,
``--fabric``, …) is generated from the experiment's declared
:class:`~repro.experiments.params.ParamSpec` entries rather than
hard-coded here. One :class:`ExperimentContext` is shared across the whole
invocation, so ``python -m repro all`` synthesises each dataset scale
once. ``python -m repro sweep`` fans a parameter grid across worker
processes via :mod:`repro.sweep`.

Every run/sweep invocation carries a :class:`~repro.obs.runtime.
RuntimeProfiler`: phase timers, engine throughput and RSS land on stderr
(one ``[runtime]`` line) and in ``runtime.json`` next to stored exports —
never inside the canonical stdout/report payloads, which stay
byte-identical with profiling on. ``--progress`` adds a live stderr
heartbeat; ``python -m repro slo check|diff`` turns reports into CI
gates (:mod:`repro.slo`).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from .common.errors import ConfigError
from .common.report import dumps_canonical
from .experiments import ExperimentConfig, ExperimentContext
from .experiments import registry
from .experiments.params import ParamSpec, parse_bool

#: registry-derived views, kept for backwards compatibility:
#: id -> (title, Experiment), and alias -> canonical id
EXPERIMENTS = {
    exp_id: (exp.title, exp) for exp_id, exp in registry.all_experiments().items()
}
ALIASES = registry.aliases()

#: how a ParamSpec type parses one CLI token
_ARG_PARSERS = {int: int, float: float, str: str, bool: parse_bool}


def _add_spec_flags(parser: argparse.ArgumentParser, specs) -> None:
    """Add one argparse flag per distinct ParamSpec name.

    Defaults are ``None`` ("not provided"): each experiment fills in its
    own declared default during validation, so ``--faults`` can default to
    no plan for ``storm`` but to the crash+flap plan for ``recovery``.
    """
    seen: dict[str, ParamSpec] = {}
    for spec in specs:
        if spec.name in seen:
            if seen[spec.name].type is not spec.type:
                raise ConfigError(
                    f"parameter {spec.name!r} declared with conflicting "
                    "types across experiments"
                )
            continue
        seen[spec.name] = spec
        parser.add_argument(
            spec.flag,
            dest=spec.name,
            type=_ARG_PARSERS[spec.type],
            default=None,
            metavar=spec.name.upper(),
            help=spec.help or None,
        )


def _provided(args: argparse.Namespace, specs) -> dict:
    """The param values the user actually passed, keyed by spec name."""
    values = {}
    for spec in specs:
        value = getattr(args, spec.name, None)
        if value is not None:
            values[spec.name] = value
    return values


def _list_experiments() -> int:
    """The ``list`` command."""
    for exp_id, exp in registry.all_experiments().items():
        print(f"{exp_id:8s} {exp.title}")
    print(
        "aliases:",
        ", ".join(f"{k}->{v}" for k, v in registry.aliases().items()),
    )
    return 0


def _union_specs() -> list[ParamSpec]:
    """Every declared ParamSpec across the registry, first wins per name."""
    specs: list[ParamSpec] = []
    seen: set[str] = set()
    for exp in registry.all_experiments().values():
        for spec in exp.params:
            if spec.name not in seen:
                seen.add(spec.name)
                specs.append(spec)
    return specs


def _run_command(argv: list[str]) -> int:
    """``python -m repro <experiment>|all [flags]``."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Squirrel (HPDC'14) reproduction experiments"
    )
    parser.add_argument("experiment", help="experiment id, 'list', 'all', or 'sweep'")
    parser.add_argument(
        "--scale", type=float, default=32, help="dataset scale denominator (default 32)"
    )
    parser.add_argument(
        "--quick", type=int, default=1, help="keep every N-th image (default 1)"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the result as JSON on stdout (timings go to stderr)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live heartbeat on stderr (phase, %% of horizon, events/s, "
        "ETA); stdout is untouched",
    )
    union = _union_specs()
    _add_spec_flags(parser, union)
    args = parser.parse_args(argv)

    experiments = registry.all_experiments()
    wanted = list(experiments) if args.experiment == "all" else [args.experiment]

    # Validate every id and every param set *before* running anything: a
    # late failure inside the loop would discard completed experiments.
    plan = []
    for name in wanted:
        try:
            exp = registry.get(name)
        except ConfigError:
            parser.error(f"unknown experiment {name!r}; try 'list'")
        provided = _provided(args, union)
        if args.experiment == "all":
            # route each flag only to the experiments declaring it
            declared = {spec.name for spec in exp.params}
            provided = {k: v for k, v in provided.items() if k in declared}
        try:
            params = exp.validate(provided)
        except ConfigError as error:
            parser.error(str(error))
        plan.append((exp, params))

    # export destinations fail up front too: a bad --metrics dir should not
    # surface after minutes of simulation
    from .metrics import ensure_export_dir

    for _exp, params in plan:
        if params.get("metrics"):
            try:
                ensure_export_dir(params["metrics"], flag="--metrics")
            except ConfigError as error:
                parser.error(str(error))

    ctx = ExperimentContext(
        ExperimentConfig(scale=1.0 / args.scale, quick=max(1, args.quick))
    )
    from .obs import runtime as obs_runtime

    reporter = obs_runtime.ProgressReporter() if args.progress else None
    profiler = obs_runtime.RuntimeProfiler(progress=reporter)
    collected: dict[str, dict] = {}
    with obs_runtime.profiled(profiler):
        for exp, params in plan:
            started = time.perf_counter()
            with profiler.phase(f"{exp.exp_id}.run"):
                result = exp.run(ctx, **params)
            elapsed = time.perf_counter() - started
            if args.json:
                collected[exp.exp_id] = result.to_dict()
                print(f"[{exp.exp_id}: {elapsed:.1f}s]", file=sys.stderr)
            else:
                print(f"== {exp.title} ==")
                with profiler.phase(f"{exp.exp_id}.render"):
                    rendered = exp.render(result)
                print(rendered)
                print(f"[{elapsed:.1f}s]\n")
    if args.json:
        payload = collected if args.experiment == "all" else next(iter(collected.values()))
        print(dumps_canonical(payload))
    print(profiler.render(), file=sys.stderr)
    return 0


def _metrics_command(argv: list[str]) -> int:
    """``python -m repro metrics PATH``: rollups over stored exports."""
    from .metrics import render_rollups, summarize_path

    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="summarise stored metrics exports: peak link "
        "utilisation, ARC hit-rate curve, DDT RAM high-water, fault impact",
    )
    parser.add_argument(
        "path",
        help="a run directory written by --metrics DIR, a sweep result "
        "directory (--store/--out), or a report.json file",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the rollups as canonical JSON on stdout",
    )
    args = parser.parse_args(argv)
    try:
        rollups = summarize_path(args.path)
    except ConfigError as error:
        parser.error(str(error))
    if args.json:
        print(dumps_canonical(rollups))
    else:
        print(render_rollups(rollups), end="")
    return 0


def _sweep_command(argv: list[str]) -> int:
    """``python -m repro sweep <experiment> --grid ... [--workers N]``."""
    from .sweep import SweepSpec, persist_sweep, render_sweep, run_sweep

    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="fan an experiment's parameter grid across processes",
    )
    parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment id (optional when --spec names one)",
    )
    parser.add_argument(
        "--grid",
        default=None,
        metavar="AXES",
        help="grid DSL: whitespace-separated name=v1,v2 or name=a..b axes, "
        "e.g. \"nodes=16,32 seed=0..3\"",
    )
    parser.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="TOML/JSON sweep spec (experiment + grid + params)",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        dest="fixed",
        help="fix one non-gridded parameter (repeatable)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default 1)"
    )
    parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="append each completed point to this JSONL manifest",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume from this manifest: completed points are not re-run",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="persist spec.json/report.json/metrics.jsonl (and, unless "
        "--manifest/--resume names one, the manifest) into this directory; "
        "relative paths resolve against the spec file's directory",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="NAME",
        help="shorthand for --out <anchor>/benchmarks/results/NAME, where "
        "<anchor> is the spec file's directory (or the CWD without --spec)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=float(os.environ.get("REPRO_SCALE", "32")),
        help="dataset scale denominator for worker contexts (default "
        "$REPRO_SCALE or 32)",
    )
    parser.add_argument(
        "--quick",
        type=int,
        default=int(os.environ.get("REPRO_QUICK", "1")),
        help="keep every N-th image in worker contexts (default "
        "$REPRO_QUICK or 1)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the merged sweep report as JSON on stdout",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="persist each executed point's Chrome trace under "
        "<out>/traces/point-NNNN.json (requires --store/--out); "
        "'python -m repro trace analyze' accepts the store directly",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live heartbeat on stderr (points done/total, avg wall per "
        "point, ETA); stdout is untouched",
    )
    args = parser.parse_args(argv)

    if args.resume is not None and args.manifest is not None:
        parser.error("--resume already names the manifest; drop --manifest")
    if args.out is not None and args.store is not None:
        parser.error("--out and --store are mutually exclusive")
    if args.trace and args.out is None and args.store is None:
        parser.error("--trace needs a result store: add --store/--out")

    # every relative path (manifest, resume, out) anchors on the spec
    # file's directory — a sweep described by a file stores next to that
    # file no matter where the command runs from; without --spec the
    # anchor is the CWD, the pre-existing behaviour
    anchor = (
        Path(args.spec).resolve().parent
        if args.spec is not None
        else Path.cwd()
    )
    out_dir: Path | None = None
    if args.store is not None:
        out_dir = anchor / "benchmarks" / "results" / args.store
    elif args.out is not None:
        out_dir = Path(args.out)
        if not out_dir.is_absolute():
            out_dir = anchor / out_dir
    if out_dir is not None:
        # validate the store target before any point runs
        from .metrics import ensure_export_dir

        flag = "--store" if args.store is not None else "--out"
        try:
            ensure_export_dir(out_dir, flag=flag)
        except ConfigError as error:
            parser.error(str(error))
    manifest_path = args.resume if args.resume is not None else args.manifest
    if manifest_path is not None:
        resolved = Path(manifest_path)
        if not resolved.is_absolute():
            resolved = anchor / resolved
        manifest_path = str(resolved)
    elif out_dir is not None:
        manifest_path = str(out_dir / "manifest.jsonl")

    try:
        if args.spec is not None:
            spec = SweepSpec.from_file(args.spec)
            if args.experiment and registry.get(args.experiment).exp_id != spec.experiment:
                parser.error(
                    f"--spec is for {spec.experiment!r}, not {args.experiment!r}"
                )
            if args.grid or args.fixed:
                parser.error("--spec already carries the grid; drop --grid/--set")
        else:
            if args.experiment is None or args.grid is None:
                parser.error("give an experiment and --grid, or a --spec file")
            exp = registry.get(args.experiment)
            fixed = {}
            for assignment in args.fixed:
                name, eq, value = assignment.partition("=")
                if not eq:
                    parser.error(f"bad --set {assignment!r}: expected NAME=VALUE")
                fixed[name] = exp.param(name).parse(value)
            spec = SweepSpec.from_grid(args.experiment, args.grid, fixed)

        exp = registry.get(spec.experiment)

        from .obs import runtime as obs_runtime

        reporter = obs_runtime.ProgressReporter() if args.progress else None
        profiler = obs_runtime.RuntimeProfiler(progress=reporter)
        total_points = len(spec.expand())
        done = {"points": 0, "wall_s": 0.0}

        def progress(point, status, elapsed):
            label = " ".join(
                f"{axis}={point.requested[axis]}" for axis in spec.grid
            )
            if status == "cached":
                print(f"[{spec.experiment} {label}: resumed]", file=sys.stderr)
            else:
                print(
                    f"[{spec.experiment} {label}: {elapsed:.1f}s]", file=sys.stderr
                )
            done["points"] += 1
            done["wall_s"] += elapsed
            if reporter is not None:
                reporter.point_done(
                    done["points"], total_points, done["wall_s"],
                    workers=args.workers,
                )

        header = None
        if manifest_path is not None and out_dir is not None:
            # stored sweeps record resolved-path provenance in the manifest
            # header; bare --manifest files stay one line per point
            header = {
                "manifest": manifest_path,
                "out": str(out_dir),
                "spec_file": (
                    str(Path(args.spec).resolve())
                    if args.spec is not None
                    else None
                ),
            }
        started = time.perf_counter()
        with obs_runtime.profiled(profiler):
            result = run_sweep(
                spec,
                workers=args.workers,
                manifest_path=manifest_path,
                resume=args.resume is not None,
                scale=args.scale,
                quick=max(1, args.quick),
                progress=progress,
                header=header,
                trace_dir=out_dir / "traces" if args.trace else None,
            )
            elapsed = time.perf_counter() - started
            if out_dir is not None:
                with profiler.phase("sweep.store"):
                    written = persist_sweep(out_dir, spec, result)
                print(
                    f"[stored {len(written)} files under {out_dir}]",
                    file=sys.stderr,
                )
    except ConfigError as error:
        parser.error(str(error))

    if args.json:
        print(dumps_canonical(result.to_dict()))
        print(f"[sweep: {elapsed:.1f}s]", file=sys.stderr)
    else:
        print(render_sweep(result, metrics=exp.metrics))
        print(f"[sweep: {elapsed:.1f}s]", file=sys.stderr)
    print(profiler.render(), file=sys.stderr)
    return 0


def _load_json(path: str, parser: argparse.ArgumentParser) -> dict:
    """Read one JSON payload file, dying with a CLI error when unreadable."""
    import json

    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except OSError as error:
        parser.error(f"cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        parser.error(f"bad JSON in {path}: {error}")
    raise AssertionError("unreachable")  # parser.error raises SystemExit


def _slo_command(argv: list[str]) -> int:
    """``python -m repro slo check|diff``: SLO gates over JSON payloads.

    ``check`` evaluates a TOML/JSON spec against one or more payload
    files and exits 1 when any threshold is violated (or a selector
    matches nothing). ``diff`` compares two payloads' shared numeric
    leaves and exits 1 when any metric regressed past the tolerance in
    its bad direction — the CI perf gate.
    """
    from dataclasses import asdict

    from .slo import (
        SLOSpec,
        diff_payloads,
        evaluate,
        parse_tolerance,
        render_diff,
        render_verdicts,
    )

    parser = argparse.ArgumentParser(
        prog="repro slo",
        description="check SLO specs / diff perf baselines over the "
        "simulator's JSON reports",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    check = sub.add_parser(
        "check", help="evaluate an SLO spec against JSON payload files"
    )
    check.add_argument("spec", help="TOML/JSON SLO spec (a [[slo]] list)")
    check.add_argument(
        "payloads", nargs="+",
        help="JSON payloads: --json reports, stored sweep report.json, "
        "BENCH_*.json",
    )
    check.add_argument(
        "--json", action="store_true",
        help="emit machine-readable verdicts on stdout",
    )
    diff = sub.add_parser(
        "diff", help="flag perf regressions between two JSON payloads"
    )
    diff.add_argument("old", help="baseline payload (e.g. committed bench)")
    diff.add_argument("new", help="candidate payload (e.g. fresh bench)")
    diff.add_argument(
        "--tolerance", default="5%",
        help="relative change allowed before a move counts (default 5%%)",
    )
    diff.add_argument(
        "--metric", action="append", default=[], metavar="SUBSTR",
        help="restrict to paths containing SUBSTR (repeatable)",
    )
    diff.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable diff on stdout",
    )
    args = parser.parse_args(argv)

    if args.action == "check":
        try:
            spec = SLOSpec.from_file(args.spec)
        except ConfigError as error:
            parser.error(str(error))
        verdicts = []
        for path in args.payloads:
            payload = _load_json(path, parser)
            try:
                verdicts.extend(evaluate(spec, payload, source=path))
            except ConfigError as error:
                parser.error(str(error))
        ok = all(verdict.ok for verdict in verdicts)
        if args.json:
            print(
                dumps_canonical(
                    {"ok": ok, "verdicts": [asdict(v) for v in verdicts]}
                )
            )
            print(render_verdicts(verdicts), file=sys.stderr)
        else:
            print(render_verdicts(verdicts))
        return 0 if ok else 1

    try:
        tolerance = parse_tolerance(args.tolerance)
    except ConfigError as error:
        parser.error(str(error))
    entries = diff_payloads(
        _load_json(args.old, parser),
        _load_json(args.new, parser),
        tolerance=tolerance,
        metrics=args.metric or None,
    )
    regressed = any(entry.regression for entry in entries)
    if args.json:
        print(
            dumps_canonical(
                {
                    "ok": not regressed,
                    "tolerance": tolerance,
                    "changes": [asdict(entry) for entry in entries],
                }
            )
        )
        print(render_diff(entries, tolerance=tolerance), file=sys.stderr)
    else:
        print(render_diff(entries, tolerance=tolerance))
    return 0 if not regressed else 1


def _trace_command(argv: list[str]) -> int:
    """``python -m repro trace analyze|flame|diff``: trace analytics.

    ``analyze`` extracts per-boot critical paths from a Chrome trace (or a
    sweep store's ``traces/`` directory) and prints the fleet blame table;
    ``flame`` writes collapsed folded stacks (flamegraph.pl / speedscope);
    ``diff`` compares two analyses span-name by span-name and exits 1 on a
    critical-seconds regression past the tolerance — the trace twin of
    ``slo diff``.
    """
    from .obs import (
        analyze_sources,
        diff_analyses,
        folded_stacks,
        load_trace_sources,
        render_analysis,
        render_trace_diff,
    )
    from .obs.flame import WEIGHTS
    from .slo import parse_tolerance

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="critical-path analytics over stored Chrome traces "
        "(single --trace files or sweep stores with traces/)",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    analyze = sub.add_parser(
        "analyze", help="extract critical paths and print the blame table"
    )
    analyze.add_argument(
        "path",
        help="a --trace JSON file, a sweep store (--store/--out with "
        "--trace), or a directory of trace files",
    )
    analyze.add_argument(
        "--json", action="store_true",
        help="emit the canonical analysis payload on stdout",
    )
    flame = sub.add_parser(
        "flame", help="write collapsed folded stacks (flamegraph.pl input)"
    )
    flame.add_argument("path", help="trace file or sweep store")
    flame.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the folded stacks here (default: stdout)",
    )
    flame.add_argument(
        "--weight", default="wall", choices=WEIGHTS,
        help="wall = span self-time; critical = critical-path segments "
        "(default wall)",
    )
    diff = sub.add_parser(
        "diff", help="compare two traces' critical paths; exit 1 on regression"
    )
    diff.add_argument("old", help="baseline trace file or store")
    diff.add_argument("new", help="candidate trace file or store")
    diff.add_argument(
        "--tolerance", default="5%",
        help="relative critical-seconds growth allowed (default 5%%)",
    )
    diff.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable diff on stdout",
    )
    args = parser.parse_args(argv)

    try:
        if args.action == "analyze":
            payload = analyze_sources(load_trace_sources(args.path))
            if args.json:
                print(dumps_canonical(payload))
            else:
                print(render_analysis(payload))
            return 0
        if args.action == "flame":
            folded = folded_stacks(
                load_trace_sources(args.path), weight=args.weight
            )
            if args.out is None:
                print(folded, end="")
            else:
                Path(args.out).write_text(folded)
                print(
                    f"[{len(folded.splitlines())} stacks -> {args.out}]",
                    file=sys.stderr,
                )
            return 0
        tolerance = parse_tolerance(args.tolerance)
        rows = diff_analyses(
            analyze_sources(load_trace_sources(args.old)),
            analyze_sources(load_trace_sources(args.new)),
            tolerance=tolerance,
        )
    except ConfigError as error:
        parser.error(str(error))
    regressed = any(row["regression"] for row in rows)
    if args.json:
        print(
            dumps_canonical(
                {"ok": not regressed, "tolerance": tolerance, "changes": rows}
            )
        )
        print(render_trace_diff(rows, tolerance=tolerance), file=sys.stderr)
    else:
        print(render_trace_diff(rows, tolerance=tolerance))
    return 0 if not regressed else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: dispatch to list/run/sweep/metrics/slo/trace."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "list":
        return _list_experiments()
    if argv and argv[0] == "sweep":
        return _sweep_command(argv[1:])
    if argv and argv[0] == "metrics":
        return _metrics_command(argv[1:])
    if argv and argv[0] == "slo":
        return _slo_command(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_command(argv[1:])
    return _run_command(argv)


if __name__ == "__main__":
    sys.exit(main())
