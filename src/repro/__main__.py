"""Command-line experiment runner.

Usage::

    python -m repro list                 # available experiments
    python -m repro fig02                # run one experiment, print the
                                         # paper-style table/series
    python -m repro all                  # run everything
    python -m repro fig08 --scale 64     # dataset scale 1/64
    python -m repro fig02 --quick 8      # keep every 8th image (smoke run)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from .experiments import (
    ExperimentConfig,
    ExperimentContext,
    fig02_compression_ratio,
    fig03_codecs,
    fig04_ccr,
    fig08_disk_consumption,
    fig09_ddt_disk,
    fig10_ddt_memory,
    fig11_boot_time,
    fig12_cross_similarity,
    fig13_incremental,
    fig18_network_transfer,
    fits,
    storm_timeline,
    tab01_storage_chain,
    tab02_os_diversity,
)
from .workload import StormConfig


def _simple(module) -> Callable[[ExperimentContext], str]:
    return lambda ctx: module.render(module.run(ctx))


def _fits_disk(ctx: ExperimentContext) -> str:
    result = fits.run_disk(ctx)
    return "\n\n".join(
        [
            fits.render_fit_quality(result, figure="Figure 14"),
            fits.render_rmse_table(result, table="Table 3"),
            fits.render_extrapolation(result, figure="Figure 15"),
        ]
    )


def _fits_memory(ctx: ExperimentContext) -> str:
    result = fits.run_memory(ctx)
    return "\n\n".join(
        [
            fits.render_fit_quality(result, figure="Figure 16"),
            fits.render_rmse_table(result, table="Table 4"),
            fits.render_extrapolation(result, figure="Figure 17"),
        ]
    )


EXPERIMENTS: dict[str, tuple[str, Callable[[ExperimentContext], str]]] = {
    "tab01": ("Table 1: storage reduction chain @128 KB", _simple(tab01_storage_chain)),
    "tab02": ("Table 2: OS diversity census", _simple(tab02_os_diversity)),
    "fig02": ("Figure 2: dedup + gzip6 ratios", _simple(fig02_compression_ratio)),
    "fig03": ("Figure 3: cache ratio per codec", _simple(fig03_codecs)),
    "fig04": ("Figure 4: combined compression ratio", _simple(fig04_ccr)),
    "fig08": ("Figure 8: ZFS disk consumption", _simple(fig08_disk_consumption)),
    "fig09": ("Figure 9: DDT size on disk", _simple(fig09_ddt_disk)),
    "fig10": ("Figure 10: DDT memory", _simple(fig10_ddt_memory)),
    "fig11": ("Figure 11: boot times", _simple(fig11_boot_time)),
    "fig12": ("Figure 12: cross-similarity", _simple(fig12_cross_similarity)),
    "fig13": ("Figure 13: incremental consumption", _simple(fig13_incremental)),
    "fig14": ("Figures 14/15 + Table 3: disk fits", _fits_disk),
    "fig16": ("Figures 16/17 + Table 4: memory fits", _fits_memory),
    "fig18": ("Figure 18: network transfer", _simple(fig18_network_transfer)),
    "storm": ("Timed boot storm: latency percentiles", _simple(storm_timeline)),
}
#: aliases so every figure/table id resolves
ALIASES = {"fig15": "fig14", "fig17": "fig16", "tab03": "fig14", "tab04": "fig16"}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Squirrel (HPDC'14) reproduction experiments"
    )
    parser.add_argument("experiment", help="experiment id, 'list', or 'all'")
    parser.add_argument(
        "--scale", type=float, default=32, help="dataset scale denominator (default 32)"
    )
    parser.add_argument(
        "--quick", type=int, default=1, help="keep every N-th image (default 1)"
    )
    parser.add_argument(
        "--nodes", type=int, default=64, help="storm: compute nodes (default 64)"
    )
    parser.add_argument(
        "--vms-per-node", type=int, default=8, help="storm: VMs per node (default 8)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="storm: arrival-trace seed (default 0)"
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for key, (title, _) in EXPERIMENTS.items():
            print(f"{key:8s} {title}")
        print("aliases:", ", ".join(f"{k}->{v}" for k, v in ALIASES.items()))
        return 0

    ctx = ExperimentContext(
        ExperimentConfig(scale=1.0 / args.scale, quick=max(1, args.quick))
    )
    wanted = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in wanted:
        key = ALIASES.get(name, name)
        if key not in EXPERIMENTS:
            parser.error(f"unknown experiment {name!r}; try 'list'")
        title, runner = EXPERIMENTS[key]
        if key == "storm":
            storm_config = StormConfig(
                n_nodes=args.nodes, vms_per_node=args.vms_per_node, seed=args.seed
            )
            runner = lambda ctx: storm_timeline.render(  # noqa: E731
                storm_timeline.run(ctx, config=storm_config)
            )
        started = time.perf_counter()
        print(f"== {title} ==")
        print(runner(ctx))
        print(f"[{time.perf_counter() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
