"""Command-line experiment runner.

Usage::

    python -m repro list                 # available experiments
    python -m repro fig02                # run one experiment, print the
                                         # paper-style table/series
    python -m repro all                  # run everything
    python -m repro fig08 --scale 64     # dataset scale 1/64
    python -m repro fig02 --quick 8      # keep every 8th image (smoke run)
    python -m repro storm --json         # machine-readable report
    python -m repro storm --faults "crash:compute1@40+45,flap:compute3@20+15"
    python -m repro recovery             # faulted storm with the default plan
    python -m repro storm --trace storm.json   # Perfetto-loadable span trace

Experiments come from :mod:`repro.experiments.registry`: importing
:mod:`repro.experiments` registers every module's ``run`` function, and
this CLI is a thin loop over the registry — id resolution (including
aliases), per-experiment CLI options, rendering and ``--json`` all derive
from it. One :class:`ExperimentContext` is shared across the whole
invocation, so ``python -m repro all`` synthesises each dataset scale once.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .common.errors import ConfigError
from .experiments import ExperimentConfig, ExperimentContext
from .experiments import registry

#: registry-derived views, kept for backwards compatibility:
#: id -> (title, Experiment), and alias -> canonical id
EXPERIMENTS = {
    exp_id: (exp.title, exp) for exp_id, exp in registry.all_experiments().items()
}
ALIASES = registry.aliases()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Squirrel (HPDC'14) reproduction experiments"
    )
    parser.add_argument("experiment", help="experiment id, 'list', or 'all'")
    parser.add_argument(
        "--scale", type=float, default=32, help="dataset scale denominator (default 32)"
    )
    parser.add_argument(
        "--quick", type=int, default=1, help="keep every N-th image (default 1)"
    )
    parser.add_argument(
        "--nodes", type=int, default=64, help="storm: compute nodes (default 64)"
    )
    parser.add_argument(
        "--vms-per-node", type=int, default=8, help="storm: VMs per node (default 8)"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="storm: arrival-trace seed (default 0)"
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PLAN",
        help=(
            "storm/recovery: injected fault plan, comma-separated "
            "kind:target@start+duration specs, e.g. "
            "'crash:compute1@40+45,flap:compute3@20+15' "
            "(kinds: crash, flap, brick)"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "storm/recovery: write a Chrome trace-event JSON file of every "
            "boot's spans to PATH (open at https://ui.perfetto.dev)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the result as JSON on stdout (timings go to stderr)",
    )
    args = parser.parse_args(argv)

    experiments = registry.all_experiments()
    if args.experiment == "list":
        for exp_id, exp in experiments.items():
            print(f"{exp_id:8s} {exp.title}")
        print(
            "aliases:",
            ", ".join(f"{k}->{v}" for k, v in registry.aliases().items()),
        )
        return 0

    ctx = ExperimentContext(
        ExperimentConfig(scale=1.0 / args.scale, quick=max(1, args.quick))
    )
    wanted = list(experiments) if args.experiment == "all" else [args.experiment]
    collected: dict[str, dict] = {}
    for name in wanted:
        try:
            exp = registry.get(name)
        except ConfigError:
            parser.error(f"unknown experiment {name!r}; try 'list'")
        try:
            kwargs = exp.run_kwargs(args)
        except ConfigError as error:
            parser.error(str(error))
        started = time.perf_counter()
        result = exp.run(ctx, **kwargs)
        elapsed = time.perf_counter() - started
        if args.json:
            collected[exp.exp_id] = result.to_dict()
            print(f"[{exp.exp_id}: {elapsed:.1f}s]", file=sys.stderr)
        else:
            print(f"== {exp.title} ==")
            print(exp.render(result))
            print(f"[{elapsed:.1f}s]\n")
    if args.json:
        payload = collected if args.experiment == "all" else next(iter(collected.values()))
        print(json.dumps(payload, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
