"""Steady-state day — diurnal multi-tenant load as a first-class experiment.

The :func:`repro.workload.steady_state_day` scenario, promoted into the
registry: 24 simulated hours of diurnal boot arrivals from a Zipf tenant
population against one cluster, with a trickle of new registrations and a
nightly GC. Sweeps can grid over the tenant count, boot volume,
registration pressure and fault plan::

    python -m repro day --tenants 32 --faults "crash:compute2@7200+600"
    python -m repro sweep day --grid "tenants=8,32 boots=200,800" --workers 2

``--metrics DIR`` persists the run's Prometheus/JSONL exports; the sampler
scrapes the fleet every 5 simulated minutes either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.report import ReportBase
from ..common.units import GiB
from ..metrics import write_run_exports
from ..workload import DayConfig, DayReport, steady_state_day
from .context import ExperimentContext
from .params import ParamSpec
from .registry import register
from .storm_timeline import fault_param, obs_params

__all__ = [
    "DayTimelineResult",
    "day_params",
    "run",
    "render",
    "EXPERIMENT_ID",
    "DAY_METRICS",
]

EXPERIMENT_ID = "day"

#: sweep-summary metrics for the steady-state day
DAY_METRICS = (
    "report.boots",
    "report.cache_hits",
    "report.registrations",
    "report.boot_latency.p50",
    "report.boot_latency.p95",
)


def day_params() -> tuple[ParamSpec, ...]:
    """The day scenario's declarative parameters."""
    return (
        ParamSpec("nodes", int, 16, "compute nodes", gridable=True),
        ParamSpec(
            "boots", int, 400, "expected boots over the day", gridable=True
        ),
        ParamSpec("tenants", int, 16, "tenant population", gridable=True),
        ParamSpec(
            "registrations",
            int,
            8,
            "new images registered during the day",
            gridable=True,
        ),
        ParamSpec("seed", int, 0, "workload seed", gridable=True),
        fault_param(),
    ) + obs_params()


@dataclass(frozen=True)
class DayTimelineResult(ReportBase):
    """One simulated day plus the config that produced it."""

    config: DayConfig
    report: DayReport


@register(
    EXPERIMENT_ID,
    "Steady-state day: diurnal multi-tenant load",
    params=day_params(),
    metrics=DAY_METRICS,
)
def run(
    ctx: ExperimentContext | None = None,
    *,
    nodes: int = 16,
    boots: int = 400,
    tenants: int = 16,
    registrations: int = 8,
    seed: int = 0,
    faults: str | None = None,
    trace: str | None = None,
    metrics: str | None = None,
    config: DayConfig | None = None,
    trace_path: str | None = None,
    metrics_path: str | None = None,
) -> DayTimelineResult:
    """Run the day. The scenario owns its dataset (the day's catalogue is
    small), so the shared context is accepted for interface uniformity but
    unused. A programmatic caller may pass a ready-made ``config`` (which
    wins over the individual params); ``trace``/``metrics`` (aliases
    ``trace_path``/``metrics_path``) export spans and metrics."""
    if config is None:
        config = DayConfig.from_params(
            nodes=nodes,
            boots=boots,
            tenants=tenants,
            registrations=registrations,
            seed=seed,
            faults=faults,
        )
    trace_path = trace_path or trace
    metrics_path = metrics_path or metrics
    result = DayTimelineResult(
        config=config,
        report=steady_state_day(config, trace_path=trace_path),
    )
    if metrics_path is not None:
        write_run_exports(metrics_path, result)
    return result


def render(result: DayTimelineResult) -> str:
    """Summary table for the simulated day."""
    config, report = result.config, result.report
    scale_up = 1.0 / config.scale
    ingress = report.compute_ingress_bytes * scale_up / GiB
    hit_pct = 100 * report.cache_hits / report.boots if report.boots else 0.0
    lines = [
        f"Steady-state day: {config.n_nodes} nodes, "
        f"{config.n_tenants} tenants (zipf {config.zipf_exponent}), "
        f"~{config.n_boots} boots, "
        f"{config.n_new_registrations} new images, seed {config.seed}",
        f"{'boots':>6} {'hits':>6} {'hit %':>6} {'regs':>5} "
        f"{'ingress GB':>11} {'boot p50 s':>11} {'boot p95 s':>11} "
        f"{'reg p50 s':>10}",
        f"{report.boots:>6} {report.cache_hits:>6} {hit_pct:>6.1f} "
        f"{report.registrations:>5} {ingress:>11.2f} "
        f"{report.boot_latency.p50:>11.2f} {report.boot_latency.p95:>11.2f} "
        f"{report.register_latency.p50:>10.1f}",
    ]
    if config.faults is not None:
        lines.append(f"fault plan: {config.faults.render()}")
    return "\n".join(lines)
