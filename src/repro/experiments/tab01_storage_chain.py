"""Table 1 — attained storage efficiency with 128 KB block size.

The paper's reduction chain: 16.4 TB raw → 1.4 TB nonzero → 78.5 GB caches
(nonzero) → 15.1 GB after dedup + compression (CCR). The first three columns
are dataset inputs (normalised at build time, so they reproduce by
construction); the last column is *computed* by dividing the caches'
nonzero bytes by the measured CCR at 128 KB.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import TextTable
from ..common.units import ZFS_DEFAULT_BLOCK_SIZE, format_bytes
from ..common.report import ReportBase
from .context import ExperimentContext, default_context
from .registry import register

__all__ = ["Tab01Result", "run", "render"]

EXPERIMENT_ID = "tab01"


@dataclass(frozen=True)
class Tab01Result(ReportBase):
    """All byte values reported scaled-up (paper-comparable)."""

    original_bytes: float
    nonzero_bytes: float
    caches_nonzero_bytes: float
    caches_ccr_bytes: float
    ccr_at_128k: float


@register(EXPERIMENT_ID, "Table 1: storage reduction chain @128 KB")
def run(ctx: ExperimentContext | None = None) -> Tab01Result:
    """Compute this experiment's data points (see module docstring)."""
    ctx = ctx or default_context()
    dataset = ctx.dataset
    quick = ctx.config.quick
    metrics = ctx.metrics("caches", ZFS_DEFAULT_BLOCK_SIZE)
    caches_nonzero = sum(spec.cache_bytes for spec in ctx.specs)
    return Tab01Result(
        original_bytes=dataset.scaled_up(
            sum(spec.raw_bytes for spec in ctx.specs)
        ),
        nonzero_bytes=dataset.scaled_up(
            sum(spec.nonzero_bytes for spec in ctx.specs)
        ),
        caches_nonzero_bytes=dataset.scaled_up(caches_nonzero),
        caches_ccr_bytes=dataset.scaled_up(caches_nonzero / metrics.ccr),
        ccr_at_128k=metrics.ccr,
    )


def render(result: Tab01Result) -> str:
    """Render the paper-style table/series for this experiment."""
    table = TextTable(
        "Table 1: attained storage efficiency with 128 KB block size",
        ["Original", "Nonzero", "Caches (Nonzero)", "Caches/CCR"],
    )
    table.add_row(
        format_bytes(result.original_bytes),
        format_bytes(result.nonzero_bytes),
        format_bytes(result.caches_nonzero_bytes),
        format_bytes(result.caches_ccr_bytes),
    )
    return table.render() + f"\n(measured cache CCR @128 KB = {result.ccr_at_128k:.2f})"
