"""Shared experiment context: dataset, streams, estimators, metric memo.

Every figure/table experiment pulls from one :class:`ExperimentContext`, so
a full benchmark run synthesises the dataset once, folds block views once
per (subject, block size), and calibrates each codec's estimator once.

Environment knobs (read by :func:`default_context`):

* ``REPRO_SCALE``  — dataset scale denominator (default 32 → scale 1/32),
* ``REPRO_QUICK``  — when set to N>1, keep every N-th image (quick smoke
  runs; EXPERIMENTS.md numbers are produced without it).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Literal, Sequence

import numpy as np

from ..analysis import MetricsResult, dataset_metrics
from ..codecs import SizeEstimator
from ..common.units import ANALYSIS_BLOCK_SIZES
from ..vmi import (
    AzureCommunityDataset,
    DatasetConfig,
    block_view,
    cache_stream,
    image_stream,
    make_estimator,
)
from ..vmi.streams import BlockView

__all__ = ["ExperimentConfig", "ExperimentContext", "default_context", "Subject"]

Subject = Literal["caches", "images"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Experiment-wide knobs."""

    scale: float = 1.0 / 32.0
    quick: int = 1  #: keep every quick-th image (1 = all 607)
    calibration_samples: int = 4


class ExperimentContext:
    """Lazily built, memoising experiment state."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()
        self._dataset: AzureCommunityDataset | None = None
        self._scaled_datasets: dict[float, AzureCommunityDataset] = {}
        self._streams: dict[Subject, list[np.ndarray]] = {}
        self._metrics_memo: dict[tuple[Subject, str, int], MetricsResult] = {}

    # -- dataset and streams -----------------------------------------------------

    @property
    def dataset(self) -> AzureCommunityDataset:
        if self._dataset is None:
            self._dataset = AzureCommunityDataset(
                DatasetConfig(scale=self.config.scale)
            )
        return self._dataset

    def dataset_at(self, scale: float) -> AzureCommunityDataset:
        """A dataset at an arbitrary scale, memoised for the context's
        lifetime. Timed scenarios own their scale (usually 1/512, not the
        analysis scale), so without this every storm/recovery run in a
        ``python -m repro all`` sweep re-synthesised the whole image set."""
        if scale == self.config.scale:
            return self.dataset
        if scale not in self._scaled_datasets:
            self._scaled_datasets[scale] = AzureCommunityDataset(
                DatasetConfig(scale=scale)
            )
        return self._scaled_datasets[scale]

    @property
    def specs(self):
        return self.dataset.images[:: self.config.quick]

    def streams(self, subject: Subject) -> list[np.ndarray]:
        """All grain streams of a subject (built once, retained)."""
        if subject not in self._streams:
            builder = cache_stream if subject == "caches" else image_stream
            self._streams[subject] = [builder(spec) for spec in self.specs]
        return self._streams[subject]

    def views(self, subject: Subject, block_size: int) -> list[BlockView]:
        """Block views of a subject at one block size (not retained)."""
        return [block_view(s, block_size) for s in self.streams(subject)]

    # -- estimators ----------------------------------------------------------------

    def estimator(
        self, codec: str = "gzip6", block_sizes: Sequence[int] = ANALYSIS_BLOCK_SIZES
    ) -> SizeEstimator:
        return make_estimator(
            codec,
            block_sizes,
            samples_per_point=self.config.calibration_samples,
        )

    # -- memoised metrics ------------------------------------------------------------

    def metrics(
        self, subject: Subject, block_size: int, codec: str = "gzip6"
    ) -> MetricsResult:
        """dedup/compression/CCR/similarity at one sweep point (memoised)."""
        key = (subject, codec, block_size)
        if key not in self._metrics_memo:
            estimator = self.estimator(codec, (block_size,))
            views = self.views(subject, block_size)
            self._metrics_memo[key] = dataset_metrics(views, estimator)
        return self._metrics_memo[key]

    def drop_streams(self, subject: Subject) -> None:
        """Release a subject's retained streams (memory relief)."""
        self._streams.pop(subject, None)


@lru_cache(maxsize=None)
def _shared_context(denominator: float, quick: int) -> ExperimentContext:
    """Process-wide context memo, one entry per (scale, quick) pair."""
    return ExperimentContext(
        ExperimentConfig(scale=1.0 / denominator, quick=max(1, quick))
    )


def default_context() -> ExperimentContext:
    """Process-wide context honouring REPRO_SCALE / REPRO_QUICK.

    The environment is re-read on every call and the memo is keyed on the
    values, so a long-lived process (or a sweep worker) that edits
    ``REPRO_SCALE``/``REPRO_QUICK`` gets a matching context instead of the
    one frozen at first call; repeated calls under one environment still
    share a single dataset.
    """
    denominator = float(os.environ.get("REPRO_SCALE", "32"))
    quick = int(os.environ.get("REPRO_QUICK", "1"))
    return _shared_context(denominator, quick)
