"""Shared experiment context: dataset, streams, estimators, metric memo.

Every figure/table experiment pulls from one :class:`ExperimentContext`, so
a full benchmark run synthesises the dataset once, folds block views once
per (subject, block size), and calibrates each codec's estimator once.

Environment knobs (read by :func:`default_context`):

* ``REPRO_SCALE``  — dataset scale denominator (default 32 → scale 1/32),
* ``REPRO_QUICK``  — when set to N>1, keep every N-th image (quick smoke
  runs; EXPERIMENTS.md numbers are produced without it).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Literal, Sequence

import numpy as np

from ..analysis import MetricsResult, dataset_metrics
from ..codecs import SizeEstimator
from ..common.units import ANALYSIS_BLOCK_SIZES
from ..vmi import (
    AzureCommunityDataset,
    CatalogConfig,
    DatasetConfig,
    LazyImageCatalog,
    make_estimator,
)
from ..vmi.catalog import DEFAULT_BUDGET_BYTES
from ..vmi.streams import BlockView

__all__ = ["ExperimentConfig", "ExperimentContext", "default_context", "Subject"]

Subject = Literal["caches", "images"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Experiment-wide knobs."""

    scale: float = 1.0 / 32.0
    quick: int = 1  #: keep every quick-th image (1 = all 607)
    calibration_samples: int = 4
    #: byte budget of each scale's catalog memo (streams + block views)
    catalog_budget_bytes: int = DEFAULT_BUDGET_BYTES


class ExperimentContext:
    """Lazily built, memoising experiment state.

    Datasets live behind :meth:`catalog`: per scale, one
    :class:`~repro.vmi.LazyImageCatalog` whose grain streams materialise
    on first access under the config's byte budget. A catalog is a few
    hundred spec records — holding one per scale is cheap; the heavy
    stream memos inside each are budget-bounded.
    """

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()
        self._catalogs: dict[float, LazyImageCatalog] = {}
        self._metrics_memo: dict[tuple[Subject, str, int], MetricsResult] = {}

    # -- dataset and streams -----------------------------------------------------

    def catalog(self, scale: float | None = None) -> LazyImageCatalog:
        """The lazy catalog at ``scale`` (default: the analysis scale),
        memoised for the context's lifetime. Timed scenarios own their
        scale (usually 1/512, not the analysis scale), so without this
        every storm/recovery run in a ``python -m repro all`` sweep
        re-built the spec table."""
        if scale is None:
            scale = self.config.scale
        if scale not in self._catalogs:
            self._catalogs[scale] = LazyImageCatalog(
                CatalogConfig(
                    dataset=DatasetConfig(scale=scale),
                    budget_bytes=self.config.catalog_budget_bytes,
                )
            )
        return self._catalogs[scale]

    @property
    def dataset(self) -> AzureCommunityDataset:
        return self.catalog().dataset

    @property
    def specs(self):
        return self.catalog().specs[:: self.config.quick]

    def streams(self, subject: Subject) -> list[np.ndarray]:
        """All grain streams of a subject, via the catalog memo."""
        catalog = self.catalog()
        return [
            catalog.grain_stream(spec.image_id, subject)
            for spec in self.specs
        ]

    def views(self, subject: Subject, block_size: int) -> list[BlockView]:
        """Block views of a subject at one block size, via the catalog."""
        catalog = self.catalog()
        return [
            catalog.block_view(spec.image_id, block_size, subject)
            for spec in self.specs
        ]

    # -- estimators ----------------------------------------------------------------

    def estimator(
        self, codec: str = "gzip6", block_sizes: Sequence[int] = ANALYSIS_BLOCK_SIZES
    ) -> SizeEstimator:
        return make_estimator(
            codec,
            block_sizes,
            samples_per_point=self.config.calibration_samples,
        )

    # -- memoised metrics ------------------------------------------------------------

    def metrics(
        self, subject: Subject, block_size: int, codec: str = "gzip6"
    ) -> MetricsResult:
        """dedup/compression/CCR/similarity at one sweep point (memoised)."""
        key = (subject, codec, block_size)
        if key not in self._metrics_memo:
            estimator = self.estimator(codec, (block_size,))
            views = self.views(subject, block_size)
            self._metrics_memo[key] = dataset_metrics(views, estimator)
        return self._metrics_memo[key]

    def drop_streams(self, subject: Subject) -> None:
        """Release a subject's memoised streams (memory relief)."""
        self.catalog().drop(subject)


@lru_cache(maxsize=None)
def _shared_context(denominator: float, quick: int) -> ExperimentContext:
    """Process-wide context memo, one entry per (scale, quick) pair."""
    return ExperimentContext(
        ExperimentConfig(scale=1.0 / denominator, quick=max(1, quick))
    )


def default_context() -> ExperimentContext:
    """Process-wide context honouring REPRO_SCALE / REPRO_QUICK.

    The environment is re-read on every call and the memo is keyed on the
    values, so a long-lived process (or a sweep worker) that edits
    ``REPRO_SCALE``/``REPRO_QUICK`` gets a matching context instead of the
    one frozen at first call; repeated calls under one environment still
    share a single dataset.
    """
    denominator = float(os.environ.get("REPRO_SCALE", "32"))
    quick = int(os.environ.get("REPRO_QUICK", "1"))
    return _shared_context(denominator, quick)
