"""One module per paper table/figure, over a shared memoising context.

Each experiment module exposes ``run(ctx) -> result`` and
``render(result) -> str`` printing the same rows/series the paper reports,
and registers itself with :mod:`.registry` — importing this package
populates the registry the CLI dispatches from.
"""

from . import (
    churn_timeline,
    day_timeline,
    fig02_compression_ratio,
    fig03_codecs,
    fig04_ccr,
    fig08_disk_consumption,
    fig09_ddt_disk,
    fig10_ddt_memory,
    fig11_boot_time,
    fig12_cross_similarity,
    fig13_incremental,
    fig18_network_transfer,
    fits,
    placement_storm,
    recovery_timeline,
    shard_storm,
    storm_timeline,
    tab01_storage_chain,
    tab02_os_diversity,
)
from .context import ExperimentConfig, ExperimentContext, default_context
from .params import ParamSpec, validate_params
from .registry import Experiment, all_experiments, register
from .zfs_consumption import ConsumptionTrajectory, consumption

__all__ = [
    "ConsumptionTrajectory",
    "Experiment",
    "ExperimentConfig",
    "ExperimentContext",
    "ParamSpec",
    "validate_params",
    "all_experiments",
    "churn_timeline",
    "consumption",
    "day_timeline",
    "default_context",
    "recovery_timeline",
    "register",
    "fig02_compression_ratio",
    "fig03_codecs",
    "fig04_ccr",
    "fig08_disk_consumption",
    "fig09_ddt_disk",
    "fig10_ddt_memory",
    "fig11_boot_time",
    "fig12_cross_similarity",
    "fig13_incremental",
    "fig18_network_transfer",
    "fits",
    "placement_storm",
    "shard_storm",
    "storm_timeline",
    "tab01_storage_chain",
    "tab02_os_diversity",
]
