"""Figure 2 — dedup and gzip-6 compression ratio of VMIs and caches vs
block size (1 KB … 1 MB).

Expected shape: dedup ratio *rises* as the block size shrinks while gzip's
ratio *falls*; caches deduplicate better than images at every block size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import Series, render_series
from ..common.units import ANALYSIS_BLOCK_SIZES
from ..common.report import ReportBase
from .context import ExperimentContext, default_context
from .registry import register

__all__ = ["Fig02Result", "run", "render"]

EXPERIMENT_ID = "fig02"


@dataclass(frozen=True)
class Fig02Result(ReportBase):
    block_sizes: tuple[int, ...]
    caches_dedup: tuple[float, ...]
    images_dedup: tuple[float, ...]
    caches_gzip6: tuple[float, ...]
    images_gzip6: tuple[float, ...]


@register(EXPERIMENT_ID, "Figure 2: dedup + gzip6 ratios")
def run(ctx: ExperimentContext | None = None) -> Fig02Result:
    """Compute this experiment's data points (see module docstring)."""
    ctx = ctx or default_context()
    caches_dedup, images_dedup, caches_gzip, images_gzip = [], [], [], []
    for block_size in ANALYSIS_BLOCK_SIZES:
        cache_metrics = ctx.metrics("caches", block_size)
        image_metrics = ctx.metrics("images", block_size)
        caches_dedup.append(cache_metrics.dedup_ratio)
        images_dedup.append(image_metrics.dedup_ratio)
        caches_gzip.append(cache_metrics.compression_ratio)
        images_gzip.append(image_metrics.compression_ratio)
    return Fig02Result(
        block_sizes=ANALYSIS_BLOCK_SIZES,
        caches_dedup=tuple(caches_dedup),
        images_dedup=tuple(images_dedup),
        caches_gzip6=tuple(caches_gzip),
        images_gzip6=tuple(images_gzip),
    )


def render(result: Fig02Result) -> str:
    """Render the paper-style table/series for this experiment."""
    series = []
    for name, values in (
        ("caches: dedup", result.caches_dedup),
        ("images: dedup", result.images_dedup),
        ("caches: gzip6", result.caches_gzip6),
        ("images: gzip6", result.images_gzip6),
    ):
        line = Series(name)
        for block_size, value in zip(result.block_sizes, values):
            line.add(block_size // 1024, value)
        series.append(line)
    return render_series(
        "Figure 2: compression ratio of VMIs and caches (dedup, gzip6)",
        series,
        x_label="block KB",
    )
