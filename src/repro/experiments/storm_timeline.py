"""Boot-storm timeline — the timed Figure 18.

Figure 18 accounts *bytes*; this experiment accounts *time*. The same
64-node × 8-VM flash crowd runs twice through the event engine — once with
Squirrel's pre-propagated caches and once against the bare parallel FS — and
reports what the tenant actually feels: boot-latency percentiles under
contention for the NIC, the glusterfs bricks, the local disk and the
decompression cores.

Expected shape: Squirrel boots in ~1 s off the local cache regardless of the
crowd; the no-cache baseline queues 512 cold reads behind four storage
uplinks and stretches into minutes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.units import GiB
from ..workload import StormConfig, StormReport, StormSide, boot_storm
from .context import ExperimentContext

__all__ = ["StormTimelineResult", "run", "render", "EXPERIMENT_ID"]

EXPERIMENT_ID = "storm"


@dataclass(frozen=True)
class StormTimelineResult:
    """One flash crowd, both sides, plus the config that produced it."""

    config: StormConfig
    report: StormReport


def run(
    ctx: ExperimentContext | None = None, *, config: StormConfig | None = None
) -> StormTimelineResult:
    """Run the storm. The shared context is accepted for CLI uniformity but
    unused: the storm owns its dataset scale so latencies stay calibrated to
    the paper's 64×8 cluster regardless of ``--scale``."""
    del ctx
    config = config or StormConfig()
    return StormTimelineResult(config=config, report=boot_storm(config))


def _side_row(label: str, side: StormSide, scale_up: float) -> str:
    stats = side.latency
    ingress = side.compute_ingress_bytes * scale_up / GiB
    return (
        f"{label:<12} {side.boots:>5} {side.cache_hits:>5} {ingress:>11.1f} "
        f"{stats.p50:>9.2f} {stats.p95:>9.2f} {stats.p99:>9.2f} "
        f"{side.horizon_s:>9.1f}"
    )


def render(result: StormTimelineResult) -> str:
    """Paper-style summary table for the timed storm."""
    config, report = result.config, result.report
    scale_up = 1.0 / config.scale
    lines = [
        f"Boot-storm timeline: {report.n_nodes} nodes x "
        f"{report.vms_per_node} VMs/node, {config.ramp_s:.0f} s flash crowd, "
        f"{config.n_tenants} tenants (zipf {config.zipf_exponent}), "
        f"seed {report.seed}",
        f"{'side':<12} {'boots':>5} {'hits':>5} {'ingress GB':>11} "
        f"{'p50 s':>9} {'p95 s':>9} {'p99 s':>9} {'done s':>9}",
        _side_row("w/ caches", report.squirrel, scale_up),
        _side_row("w/o caches", report.baseline, scale_up),
    ]
    speedup = (
        report.baseline.latency.p50 / report.squirrel.latency.p50
        if report.squirrel.latency.p50 > 0
        else float("inf")
    )
    lines.append(
        f"median boot speedup {speedup:,.0f}x; compute ingress with caches: "
        f"{report.squirrel.compute_ingress_bytes} bytes"
    )
    return "\n".join(lines)
