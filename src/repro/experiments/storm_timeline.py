"""Boot-storm timeline — the timed Figure 18.

Figure 18 accounts *bytes*; this experiment accounts *time*. The same
64-node × 8-VM flash crowd runs twice through the event engine — once with
Squirrel's pre-propagated caches and once against the bare parallel FS — and
reports what the tenant actually feels: boot-latency percentiles under
contention for the NIC, the glusterfs bricks, the local disk and the
decompression cores.

Expected shape: Squirrel boots in ~1 s off the local cache regardless of the
crowd; the no-cache baseline queues 512 cold reads behind four storage
uplinks and stretches into minutes.

With ``--faults`` the same storm runs under injected node crashes, link
flaps and brick failures (see :mod:`repro.faults`); every boot still
completes and the report grows recovery-time percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.report import ReportBase
from ..common.units import GiB
from ..metrics import write_run_exports
from ..workload import StormConfig, StormReport, StormSide, boot_storm
from .context import ExperimentContext, default_context
from .params import ParamSpec
from .registry import register

__all__ = [
    "StormTimelineResult",
    "obs_params",
    "storm_params",
    "run",
    "render",
    "render_attribution",
    "render_recovery",
    "EXPERIMENT_ID",
    "STORM_METRICS",
]

EXPERIMENT_ID = "storm"

#: sweep-summary metrics shared by the storm and recovery scenarios
STORM_METRICS = (
    "report.squirrel.latency.p50",
    "report.squirrel.latency.p95",
    "report.baseline.latency.p50",
    "report.baseline.latency.p95",
)


def _check_fault_plan(text: str) -> None:
    """Parse-check a ``--faults`` plan so a typo fails before anything runs."""
    from ..faults import FaultPlan

    FaultPlan.parse(text)


def obs_params() -> tuple[ParamSpec, ...]:
    """The observability flags every timed scenario takes: ``--trace``
    (Chrome trace-event span export) and ``--metrics`` (Prometheus + JSONL
    + report.json exports into a run directory)."""
    return (
        ParamSpec(
            "trace",
            str,
            None,
            "write a Chrome trace-event JSON file of every boot's spans to "
            "this path (open at https://ui.perfetto.dev)",
        ),
        ParamSpec(
            "metrics",
            str,
            None,
            "write the run's metrics exports (<side>.prom Prometheus text, "
            "<side>.jsonl sampled series, report.json) into this directory; "
            "summarise with 'python -m repro metrics <dir>'",
        ),
    )


def fault_param(default: str | None = None) -> ParamSpec:
    """The ``--faults`` plan parameter shared by every timed scenario."""
    return ParamSpec(
        "faults",
        str,
        default,
        "injected fault plan, comma-separated kind:target@start+duration "
        "specs, e.g. 'crash:compute1@40+45,flap:compute3@20+15' "
        "(kinds: crash, flap, brick)",
        gridable=True,
        check=_check_fault_plan,
    )


def storm_params(*, faults_default: str | None = None) -> tuple[ParamSpec, ...]:
    """The storm scenario's declarative parameters (shared with the
    recovery scenario, which only differs in the fault-plan default)."""
    return (
        ParamSpec("nodes", int, 64, "compute nodes", gridable=True),
        ParamSpec("vms_per_node", int, 8, "VMs per node", gridable=True),
        ParamSpec("seed", int, 0, "arrival-trace seed", gridable=True),
        fault_param(faults_default),
    ) + obs_params()


@dataclass(frozen=True)
class StormTimelineResult(ReportBase):
    """One flash crowd, both sides, plus the config that produced it."""

    config: StormConfig
    report: StormReport


@register(
    EXPERIMENT_ID,
    "Timed boot storm: latency percentiles",
    params=storm_params(),
    metrics=STORM_METRICS,
)
def run(
    ctx: ExperimentContext | None = None,
    *,
    nodes: int = 64,
    vms_per_node: int = 8,
    seed: int = 0,
    faults: str | None = None,
    trace: str | None = None,
    metrics: str | None = None,
    config: StormConfig | None = None,
    trace_path: str | None = None,
    metrics_path: str | None = None,
) -> StormTimelineResult:
    """Run the storm. The storm owns its dataset scale (so latencies stay
    calibrated to the paper's 64×8 cluster regardless of ``--scale``) but
    borrows the shared context's dataset memo, so a full sweep synthesises
    the storm-scale image set once. The keyword arguments mirror the
    declared :func:`storm_params`; a programmatic caller may instead pass a
    ready-made ``config`` (which wins over the individual params).
    ``trace`` (CLI ``--trace``; alias ``trace_path``) exports both sides'
    spans as Chrome trace-event JSON; ``metrics`` (CLI ``--metrics``; alias
    ``metrics_path``) writes the Prometheus/JSONL/report exports into that
    directory — export only, the instruments run either way."""
    if config is None:
        config = StormConfig.from_params(
            nodes=nodes, vms_per_node=vms_per_node, seed=seed, faults=faults
        )
    trace_path = trace_path or trace
    metrics_path = metrics_path or metrics
    ctx = ctx or default_context()
    catalog = ctx.catalog(config.scale)
    result = StormTimelineResult(
        config=config,
        report=boot_storm(config, dataset=catalog, trace_path=trace_path),
    )
    if metrics_path is not None:
        write_run_exports(metrics_path, result)
    return result


def _side_row(label: str, side: StormSide, scale_up: float) -> str:
    stats = side.latency
    ingress = side.compute_ingress_bytes * scale_up / GiB
    return (
        f"{label:<12} {side.boots:>5} {side.cache_hits:>5} {ingress:>11.1f} "
        f"{stats.p50:>9.2f} {stats.p95:>9.2f} {stats.p99:>9.2f} "
        f"{side.horizon_s:>9.1f}"
    )


def _attribution_row(label: str, side: StormSide) -> str:
    tiers = side.attribution["tiers"]
    fractions = side.attribution["hit_tier_fractions"]
    return (
        f"{label:<12} "
        f"{tiers['cache_s']['mean']:>9.3f} {tiers['net_s']['mean']:>9.3f} "
        f"{tiers['disk_s']['mean']:>9.3f} {tiers['wait_s']['mean']:>9.3f} "
        f"{100 * fractions['t1']:>6.1f} {100 * fractions['t2']:>6.1f} "
        f"{100 * fractions['miss']:>6.1f}"
    )


def render_attribution(report: StormReport) -> str:
    """Latency-attribution table: where the mean boot's seconds went
    (cache engine / network / disk service / queueing+faults) and how the
    per-node ARC answered lookups (T1 recency, T2 frequency, miss)."""
    return "\n".join(
        [
            f"{'side':<12} {'cache s':>9} {'net s':>9} {'disk s':>9} "
            f"{'wait s':>9} {'t1 %':>6} {'t2 %':>6} {'miss %':>6}",
            _attribution_row("w/ caches", report.squirrel),
            _attribution_row("w/o caches", report.baseline),
        ]
    )


def _recovery_row(label: str, side: StormSide) -> str:
    return (
        f"{label:<12} {side.interrupted_boots:>11} {side.delayed_boots:>8} "
        f"{side.recovery.p50:>9.2f} {side.recovery.p95:>9.2f} "
        f"{side.recovery.p99:>9.2f} {side.node_recovery.p50:>11.2f}"
    )


def render_recovery(report: StormReport) -> str:
    """Fault-recovery table: how long preempted/delayed boots took to come
    back, and how long a crashed node needed to rejoin resynced."""
    return "\n".join(
        [
            f"{'side':<12} {'interrupted':>11} {'delayed':>8} "
            f"{'rec p50':>9} {'rec p95':>9} {'rec p99':>9} {'node p50 s':>11}",
            _recovery_row("w/ caches", report.squirrel),
            _recovery_row("w/o caches", report.baseline),
        ]
    )


def render(result: StormTimelineResult) -> str:
    """Paper-style summary table for the timed storm."""
    config, report = result.config, result.report
    scale_up = 1.0 / config.scale
    lines = [
        f"Boot-storm timeline: {report.n_nodes} nodes x "
        f"{report.vms_per_node} VMs/node, {config.ramp_s:.0f} s flash crowd, "
        f"{config.n_tenants} tenants (zipf {config.zipf_exponent}), "
        f"seed {report.seed}",
        f"{'side':<12} {'boots':>5} {'hits':>5} {'ingress GB':>11} "
        f"{'p50 s':>9} {'p95 s':>9} {'p99 s':>9} {'done s':>9}",
        _side_row("w/ caches", report.squirrel, scale_up),
        _side_row("w/o caches", report.baseline, scale_up),
    ]
    speedup = (
        report.baseline.latency.p50 / report.squirrel.latency.p50
        if report.squirrel.latency.p50 > 0
        else float("inf")
    )
    lines.append(
        f"median boot speedup {speedup:,.0f}x; compute ingress with caches: "
        f"{report.squirrel.compute_ingress_bytes} bytes"
    )
    lines.append("")
    lines.append("latency attribution (mean seconds per boot):")
    lines.append(render_attribution(report))
    if config.faults is not None:
        lines.append("")
        lines.append(f"fault plan: {config.faults.render()}")
        lines.append(render_recovery(report))
    return "\n".join(lines)
