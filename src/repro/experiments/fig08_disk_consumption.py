"""Figure 8 — ZFS disk consumption (dedup + gzip6) vs block size.

Expected shape: measured-in-the-filesystem disk consumption turns upward at
*larger* block sizes than the pure CCR analysis predicts (the paper saw the
optimum shift from 4 KB to 16 KB for images / 8 KB to 32 KB for caches)
because the on-disk DDT grows as blocks shrink (Figure 9's overhead).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import Series, render_series
from ..common.units import ZFS_BLOCK_SIZES, GiB
from ..common.report import ReportBase
from .context import ExperimentContext, default_context
from .registry import register
from .zfs_consumption import consumption

__all__ = ["Fig08Result", "run", "render"]

EXPERIMENT_ID = "fig08"


@dataclass(frozen=True)
class Fig08Result(ReportBase):
    """Scaled-up GB per block size."""

    block_sizes: tuple[int, ...]
    images_disk_gb: tuple[float, ...]
    caches_disk_gb: tuple[float, ...]


@register(EXPERIMENT_ID, "Figure 8: ZFS disk consumption")
def run(ctx: ExperimentContext | None = None) -> Fig08Result:
    """Compute this experiment's data points (see module docstring)."""
    ctx = ctx or default_context()
    scale_up = ctx.dataset.scaled_up
    images, caches = [], []
    for block_size in ZFS_BLOCK_SIZES:
        images.append(scale_up(consumption("images", block_size, ctx).final_disk()) / GiB)
        caches.append(scale_up(consumption("caches", block_size, ctx).final_disk()) / GiB)
    return Fig08Result(
        block_sizes=ZFS_BLOCK_SIZES,
        images_disk_gb=tuple(images),
        caches_disk_gb=tuple(caches),
    )


def render(result: Fig08Result) -> str:
    """Render the paper-style table/series for this experiment."""
    series = []
    for name, values in (
        ("images: dedup+gzip6", result.images_disk_gb),
        ("caches: dedup+gzip6", result.caches_disk_gb),
    ):
        line = Series(name)
        for bs, value in zip(result.block_sizes, values):
            line.add(bs // 1024, value)
        series.append(line)
    return render_series(
        "Figure 8: disk consumption with dedup and compression (GB, scaled up)",
        series,
        x_label="block KB",
    )
