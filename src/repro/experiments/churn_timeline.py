"""Registration churn — offline propagation under time, as an experiment.

The :func:`repro.workload.register_churn` scenario, promoted into the
registry: a week of Poisson registration pressure while compute nodes take
planned downtime windows, forcing incremental catch-ups — or, when the GC
window has swallowed a node's base snapshot, full re-replications. Sweeps
can grid over the horizon, churn rate, downtime pressure and fault plan::

    python -m repro churn --days 14 --registrations-per-day 12
    python -m repro sweep churn --grid "registrations_per_day=3,12 seed=0,1" --workers 2

``--metrics DIR`` persists the run's Prometheus/JSONL exports; the sampler
scrapes the fleet every 30 simulated minutes either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.report import ReportBase
from ..common.units import GiB
from ..metrics import write_run_exports
from ..workload import ChurnConfig, ChurnReport, register_churn
from .context import ExperimentContext
from .params import ParamSpec
from .registry import register
from .storm_timeline import fault_param, obs_params

__all__ = [
    "ChurnTimelineResult",
    "churn_params",
    "run",
    "render",
    "EXPERIMENT_ID",
    "CHURN_METRICS",
]

EXPERIMENT_ID = "churn"

#: sweep-summary metrics for the registration-churn scenario
CHURN_METRICS = (
    "report.registrations",
    "report.resyncs",
    "report.incremental_resyncs",
    "report.full_replications",
    "report.resync_latency.p50",
)


def churn_params() -> tuple[ParamSpec, ...]:
    """The churn scenario's declarative parameters."""
    return (
        ParamSpec("nodes", int, 8, "compute nodes", gridable=True),
        ParamSpec(
            "days", float, 7.0, "simulated horizon in days", gridable=True
        ),
        ParamSpec(
            "registrations_per_day",
            float,
            6.0,
            "mean registration rate",
            gridable=True,
        ),
        ParamSpec(
            "downtimes_per_node",
            float,
            2.0,
            "expected downtime windows per node over the horizon",
            gridable=True,
        ),
        ParamSpec("seed", int, 0, "workload seed", gridable=True),
        fault_param(),
    ) + obs_params()


@dataclass(frozen=True)
class ChurnTimelineResult(ReportBase):
    """One churn horizon plus the config that produced it."""

    config: ChurnConfig
    report: ChurnReport


@register(
    EXPERIMENT_ID,
    "Registration churn: resyncs under node downtime",
    params=churn_params(),
    metrics=CHURN_METRICS,
)
def run(
    ctx: ExperimentContext | None = None,
    *,
    nodes: int = 8,
    days: float = 7.0,
    registrations_per_day: float = 6.0,
    downtimes_per_node: float = 2.0,
    seed: int = 0,
    faults: str | None = None,
    trace: str | None = None,
    metrics: str | None = None,
    config: ChurnConfig | None = None,
    trace_path: str | None = None,
    metrics_path: str | None = None,
) -> ChurnTimelineResult:
    """Run the churn horizon. The scenario owns its dataset, so the shared
    context is accepted for interface uniformity but unused. A programmatic
    caller may pass a ready-made ``config`` (which wins over the individual
    params); ``trace``/``metrics`` (aliases ``trace_path``/``metrics_path``)
    export spans and metrics."""
    if config is None:
        config = ChurnConfig.from_params(
            nodes=nodes,
            days=days,
            registrations_per_day=registrations_per_day,
            downtimes_per_node=downtimes_per_node,
            seed=seed,
            faults=faults,
        )
    trace_path = trace_path or trace
    metrics_path = metrics_path or metrics
    result = ChurnTimelineResult(
        config=config,
        report=register_churn(config, trace_path=trace_path),
    )
    if metrics_path is not None:
        write_run_exports(metrics_path, result)
    return result


def render(result: ChurnTimelineResult) -> str:
    """Summary table for the churn horizon."""
    config, report = result.config, result.report
    moved = report.resync_bytes / config.scale / GiB
    lines = [
        f"Registration churn: {config.n_nodes} nodes, "
        f"{config.horizon_days:.0f} days, "
        f"{config.registrations_per_day:.1f} regs/day, "
        f"{config.downtimes_per_node:.1f} downtimes/node, seed {config.seed}",
        f"{'regs':>5} {'resyncs':>8} {'incr':>5} {'full':>5} "
        f"{'moved GB':>9} {'reg p50 s':>10} {'resync p50 s':>13}",
        f"{report.registrations:>5} {report.resyncs:>8} "
        f"{report.incremental_resyncs:>5} {report.full_replications:>5} "
        f"{moved:>9.2f} {report.register_latency.p50:>10.1f} "
        f"{report.resync_latency.p50:>13.1f}",
    ]
    if config.faults is not None:
        lines.append(f"fault plan: {config.faults.render()}")
    return "\n".join(lines)
