"""Figure 13 — ZFS disk + memory while iteratively adding VMIs or caches
(64 KB block size).

Expected shape: image slopes are much steeper than cache slopes — each image
adds far more new hashes than its cache does (the cross-similarity theorem
of Section 4.3.1, verified in practice).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import Series, render_series
from ..common.units import GiB, MiB, SQUIRREL_BLOCK_SIZE
from ..common.report import ReportBase
from .context import ExperimentContext, default_context
from .registry import register
from .zfs_consumption import consumption

__all__ = ["Fig13Result", "run", "render"]

EXPERIMENT_ID = "fig13"


@dataclass(frozen=True)
class Fig13Result(ReportBase):
    """Scaled-up trajectories at 64 KB (index i = i+1 files stored)."""

    caches_disk_gb: np.ndarray
    images_disk_gb: np.ndarray
    caches_memory_mb: np.ndarray
    images_memory_mb: np.ndarray

    def slope_ratio_disk(self) -> float:
        """Mean per-file disk growth: images over caches."""
        image_slope = self.images_disk_gb[-1] / self.images_disk_gb.size
        cache_slope = self.caches_disk_gb[-1] / self.caches_disk_gb.size
        return float(image_slope / cache_slope)


@register(EXPERIMENT_ID, "Figure 13: incremental consumption")
def run(ctx: ExperimentContext | None = None) -> Fig13Result:
    """Compute this experiment's data points (see module docstring)."""
    ctx = ctx or default_context()
    scale_up = ctx.dataset.scaled_up
    caches = consumption("caches", SQUIRREL_BLOCK_SIZE, ctx)
    images = consumption("images", SQUIRREL_BLOCK_SIZE, ctx)
    return Fig13Result(
        caches_disk_gb=scale_up(caches.disk_bytes.astype(np.float64)) / GiB,
        images_disk_gb=scale_up(images.disk_bytes.astype(np.float64)) / GiB,
        caches_memory_mb=scale_up(caches.memory_bytes.astype(np.float64)) / MiB,
        images_memory_mb=scale_up(images.memory_bytes.astype(np.float64)) / MiB,
    )


def render(result: Fig13Result) -> str:
    """Render the paper-style table/series for this experiment."""
    sample_points = [0, 99, 199, 299, 399, 499, len(result.caches_disk_gb) - 1]
    sample_points = sorted({min(p, len(result.caches_disk_gb) - 1) for p in sample_points})
    series = []
    for name, values in (
        ("disk caches GB", result.caches_disk_gb),
        ("disk images GB", result.images_disk_gb),
        ("mem caches MB", result.caches_memory_mb),
        ("mem images MB", result.images_memory_mb),
    ):
        line = Series(name)
        for point in sample_points:
            line.add(point + 1, float(values[point]))
        series.append(line)
    rendered = render_series(
        "Figure 13: resource consumption when iteratively adding files (bs=64 KB)",
        series,
        x_label="file #",
    )
    return rendered + (
        f"\nimages grow {result.slope_ratio_disk():.1f}x faster on disk than caches"
    )
