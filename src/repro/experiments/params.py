"""Typed, declarative experiment parameters.

Each experiment declares its options as a tuple of :class:`ParamSpec`
entries instead of reaching into an ``argparse.Namespace``: the CLI derives
its per-experiment flags from the specs, the sweep runner derives its grid
axes from them, and ``Experiment.run`` only ever sees a **validated** dict
of keyword arguments. One declaration serves three surfaces:

* ``python -m repro storm --nodes 16`` — the flag, its type, default and
  help text all come from the spec,
* ``python -m repro sweep storm --grid "nodes=16,32 seed=0..3"`` — only
  specs marked ``gridable`` may become sweep axes,
* ``run(ctx, **params)`` — unknown names and mistyped values are rejected
  with a :class:`~repro.common.errors.ConfigError` *before* anything runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..common.errors import ConfigError

__all__ = ["ParamSpec", "parse_bool", "validate_params"]

#: spec types a CLI string can be parsed into
_PARSERS = {int: int, float: float, str: str}


def parse_bool(text: str) -> bool:
    """Parse a CLI/grid boolean token (``true/false``, ``1/0``, ``yes/no``)."""
    lowered = text.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ConfigError(f"not a boolean: {text!r}")


@dataclass(frozen=True)
class ParamSpec:
    """One declarative experiment parameter.

    ``name`` is the keyword ``run`` receives (``vms_per_node``); the CLI
    flag (``--vms-per-node``) is derived from it. ``type`` is one of
    ``int``/``float``/``str``/``bool``. ``gridable`` marks parameters a
    sweep may fan out over; per-path options like ``trace`` stay
    point-local. ``choices`` (optional) restricts the accepted values.
    """

    name: str
    type: type
    default: Any = None
    help: str = ""
    gridable: bool = False
    choices: tuple | None = None
    #: extra validator run on non-None values (raise ConfigError to reject);
    #: lets e.g. the storm's ``faults`` spec parse-check its plan DSL at
    #: validation time, before anything has run
    check: Any = None

    def __post_init__(self) -> None:
        if self.type not in (int, float, str, bool):
            raise ConfigError(
                f"param {self.name!r}: unsupported type {self.type!r}"
            )

    @property
    def flag(self) -> str:
        """The derived CLI flag, e.g. ``vms_per_node`` -> ``--vms-per-node``."""
        return "--" + self.name.replace("_", "-")

    def parse(self, text: str) -> Any:
        """Parse one CLI/grid token into this parameter's type."""
        if self.type is bool:
            return self.coerce(parse_bool(text))
        try:
            return self.coerce(_PARSERS[self.type](text))
        except (TypeError, ValueError):
            raise ConfigError(
                f"param {self.name!r}: cannot parse {text!r} as "
                f"{self.type.__name__}"
            ) from None

    def coerce(self, value: Any) -> Any:
        """Type-check/convert an already-parsed value (None stays None)."""
        if value is None:
            return None
        if self.type is bool:
            if not isinstance(value, bool):
                raise ConfigError(
                    f"param {self.name!r}: expected bool, got {value!r}"
                )
        elif self.type is int:
            # bool is an int subclass; reject it explicitly
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigError(
                    f"param {self.name!r}: expected int, got {value!r}"
                )
        elif self.type is float:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigError(
                    f"param {self.name!r}: expected float, got {value!r}"
                )
            value = float(value)
        elif self.type is str:
            if not isinstance(value, str):
                raise ConfigError(
                    f"param {self.name!r}: expected str, got {value!r}"
                )
        if self.choices is not None and value not in self.choices:
            raise ConfigError(
                f"param {self.name!r}: {value!r} not in "
                f"{'/'.join(map(str, self.choices))}"
            )
        if self.check is not None:
            self.check(value)
        return value


def validate_params(
    specs: Sequence[ParamSpec], values: dict, *, where: str = "experiment"
) -> dict:
    """Validate raw ``values`` against ``specs``.

    Returns a complete params dict (defaults filled in, every value
    coerced); raises :class:`ConfigError` on unknown names or bad values.
    """
    by_name = {spec.name: spec for spec in specs}
    unknown = sorted(set(values) - set(by_name))
    if unknown:
        known = ", ".join(by_name) or "none"
        raise ConfigError(
            f"{where} does not accept parameter(s) "
            f"{', '.join(map(repr, unknown))} (known: {known})"
        )
    validated = {}
    for name, spec in by_name.items():
        validated[name] = (
            spec.coerce(values[name]) if name in values else spec.default
        )
    return validated
