"""Figure 12 — cross-similarity of VMIs and caches vs block size.

Expected shape (Section 4.3.1): caches show strong cross-similarity, images
weak; similarity rises as blocks shrink, with little gain below ~64 KB for
caches — one of the arguments for the 64 KB cVolume block size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import Series, render_series
from ..common.units import ANALYSIS_BLOCK_SIZES
from ..common.report import ReportBase
from .context import ExperimentContext, default_context
from .registry import register

__all__ = ["Fig12Result", "run", "render"]

EXPERIMENT_ID = "fig12"


@dataclass(frozen=True)
class Fig12Result(ReportBase):
    block_sizes: tuple[int, ...]
    images_similarity: tuple[float, ...]
    caches_similarity: tuple[float, ...]


@register(EXPERIMENT_ID, "Figure 12: cross-similarity")
def run(ctx: ExperimentContext | None = None) -> Fig12Result:
    """Compute this experiment's data points (see module docstring)."""
    ctx = ctx or default_context()
    images = tuple(
        ctx.metrics("images", bs).cross_similarity for bs in ANALYSIS_BLOCK_SIZES
    )
    caches = tuple(
        ctx.metrics("caches", bs).cross_similarity for bs in ANALYSIS_BLOCK_SIZES
    )
    return Fig12Result(
        block_sizes=ANALYSIS_BLOCK_SIZES,
        images_similarity=images,
        caches_similarity=caches,
    )


def render(result: Fig12Result) -> str:
    """Render the paper-style table/series for this experiment."""
    series = []
    for name, values in (
        ("images", result.images_similarity),
        ("caches", result.caches_similarity),
    ):
        line = Series(name)
        for bs, value in zip(result.block_sizes, values):
            line.add(bs // 1024, value)
        series.append(line)
    return render_series(
        "Figure 12: cross-similarity of VMIs and caches",
        series,
        x_label="block KB",
        y_format="{:.3f}",
    )
