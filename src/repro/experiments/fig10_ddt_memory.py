"""Figure 10 — memory consumption of the dedup tables vs block size.

Expected shape: cache DDTs stay small (well under ~100 MB above 32 KB);
image DDTs blow up at small block sizes — the scalability argument for
storing caches, not images (Section 4.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import Series, render_series
from ..common.units import ZFS_BLOCK_SIZES, GiB, MiB
from ..common.report import ReportBase
from .context import ExperimentContext, default_context
from .registry import register
from .zfs_consumption import consumption

__all__ = ["Fig10Result", "run", "render"]

EXPERIMENT_ID = "fig10"


@dataclass(frozen=True)
class Fig10Result(ReportBase):
    block_sizes: tuple[int, ...]
    images_memory_gb: tuple[float, ...]
    caches_memory_gb: tuple[float, ...]

    def cache_memory_mb_at(self, block_size: int) -> float:
        index = self.block_sizes.index(block_size)
        return self.caches_memory_gb[index] * GiB / MiB


@register(EXPERIMENT_ID, "Figure 10: DDT memory")
def run(ctx: ExperimentContext | None = None) -> Fig10Result:
    """Compute this experiment's data points (see module docstring)."""
    ctx = ctx or default_context()
    scale_up = ctx.dataset.scaled_up
    images, caches = [], []
    for block_size in ZFS_BLOCK_SIZES:
        images.append(
            scale_up(consumption("images", block_size, ctx).final_memory()) / GiB
        )
        caches.append(
            scale_up(consumption("caches", block_size, ctx).final_memory()) / GiB
        )
    return Fig10Result(
        block_sizes=ZFS_BLOCK_SIZES,
        images_memory_gb=tuple(images),
        caches_memory_gb=tuple(caches),
    )


def render(result: Fig10Result) -> str:
    """Render the paper-style table/series for this experiment."""
    series = []
    for name, values in (
        ("images", result.images_memory_gb),
        ("caches", result.caches_memory_gb),
    ):
        line = Series(name)
        for bs, value in zip(result.block_sizes, values):
            line.add(bs // 1024, value)
        series.append(line)
    rendered = render_series(
        "Figure 10: memory consumption for deduplication tables (GB, scaled up)",
        series,
        x_label="block KB",
        y_format="{:.3f}",
    )
    return rendered + (
        f"\ncache DDT memory @64 KB = {result.cache_memory_mb_at(65536):.0f} MB"
        " (paper: ~60 MB)"
    )
