"""Recovery timeline — the headline fault-injection scenario.

The same 64×8 flash crowd as the ``storm`` experiment, but the cluster
misbehaves mid-storm: one compute node crashes and rejoins (offline
catch-up included) and another's NIC flaps. Every boot must still
complete; the figure of merit is *recovery time* — from the moment a boot
first feels a fault to the moment its VM is up — reported as percentiles
next to the healthy boot-latency ones.

Pass ``--faults`` to replace the default plan, e.g.::

    python -m repro recovery --faults "crash:compute1@40+60,brick:storage0@35+20"
"""

from __future__ import annotations

from ..metrics import write_run_exports
from ..workload import StormConfig, boot_storm
from .context import ExperimentContext, default_context
from .registry import register
from .storm_timeline import (
    STORM_METRICS,
    StormTimelineResult,
    render as render_storm,
    storm_params,
)

__all__ = ["DEFAULT_FAULTS", "run", "render", "EXPERIMENT_ID"]

EXPERIMENT_ID = "recovery"

#: one mid-storm crash (down 45 s, then catch-up) plus one link flap
DEFAULT_FAULTS = "crash:compute1@40+45,flap:compute3@20+15"


@register(
    EXPERIMENT_ID,
    "Faulted boot storm: recovery-time percentiles",
    params=storm_params(faults_default=DEFAULT_FAULTS),
    metrics=STORM_METRICS
    + (
        "report.squirrel.recovery.p50",
        "report.baseline.recovery.p50",
    ),
)
def run(
    ctx: ExperimentContext | None = None,
    *,
    nodes: int = 64,
    vms_per_node: int = 8,
    seed: int = 0,
    faults: str | None = None,
    trace: str | None = None,
    metrics: str | None = None,
    config: StormConfig | None = None,
    trace_path: str | None = None,
    metrics_path: str | None = None,
) -> StormTimelineResult:
    """Run the storm under a fault plan (``DEFAULT_FAULTS`` when neither
    ``faults`` nor a ``config`` carrying one is given), sharing the
    context's dataset memo. The keyword arguments mirror the declared
    param specs; ``trace`` (CLI ``--trace``; alias ``trace_path``) exports
    both sides' spans as Chrome trace-event JSON, ``metrics`` (CLI
    ``--metrics``; alias ``metrics_path``) writes the Prometheus/JSONL/
    report exports into that directory."""
    trace_path = trace_path or trace
    metrics_path = metrics_path or metrics
    if config is None:
        config = StormConfig.from_params(
            nodes=nodes,
            vms_per_node=vms_per_node,
            seed=seed,
            faults=faults or DEFAULT_FAULTS,
        )
    elif config.faults is None:
        from dataclasses import replace

        from ..faults import FaultPlan

        config = replace(config, faults=FaultPlan.parse(DEFAULT_FAULTS))
    ctx = ctx or default_context()
    catalog = ctx.catalog(config.scale)
    result = StormTimelineResult(
        config=config,
        report=boot_storm(config, dataset=catalog, trace_path=trace_path),
    )
    if metrics_path is not None:
        write_run_exports(metrics_path, result)
    return result


def render(result: StormTimelineResult) -> str:
    """Same table as the storm experiment: the fault plan guarantees the
    recovery section renders."""
    return render_storm(result)
