"""Recovery timeline — the headline fault-injection scenario.

The same 64×8 flash crowd as the ``storm`` experiment, but the cluster
misbehaves mid-storm: one compute node crashes and rejoins (offline
catch-up included) and another's NIC flaps. Every boot must still
complete; the figure of merit is *recovery time* — from the moment a boot
first feels a fault to the moment its VM is up — reported as percentiles
next to the healthy boot-latency ones.

Pass ``--faults`` to replace the default plan, e.g.::

    python -m repro recovery --faults "crash:compute1@40+60,brick:storage0@35+20"
"""

from __future__ import annotations

from ..workload import StormConfig, boot_storm
from .context import ExperimentContext, default_context
from .registry import register
from .storm_timeline import (
    StormTimelineResult,
    render as render_storm,
    storm_config_from_args,
)

__all__ = ["DEFAULT_FAULTS", "run", "render", "EXPERIMENT_ID"]

EXPERIMENT_ID = "recovery"

#: one mid-storm crash (down 45 s, then catch-up) plus one link flap
DEFAULT_FAULTS = "crash:compute1@40+45,flap:compute3@20+15"


def _options(args) -> dict:
    return {
        "config": storm_config_from_args(args, faults_default=DEFAULT_FAULTS),
        "trace_path": getattr(args, "trace", None),
    }


@register(
    EXPERIMENT_ID,
    "Faulted boot storm: recovery-time percentiles",
    options=_options,
)
def run(
    ctx: ExperimentContext | None = None,
    *,
    config: StormConfig | None = None,
    trace_path: str | None = None,
) -> StormTimelineResult:
    """Run the storm under a fault plan (``DEFAULT_FAULTS`` when the config
    carries none), sharing the context's dataset memo. ``trace_path`` (CLI
    ``--trace``) exports both sides' spans as Chrome trace-event JSON."""
    if config is None or config.faults is None:
        from ..faults import FaultPlan
        from dataclasses import replace

        base = config or StormConfig()
        config = replace(base, faults=FaultPlan.parse(DEFAULT_FAULTS))
    ctx = ctx or default_context()
    dataset = ctx.dataset_at(config.scale)
    return StormTimelineResult(
        config=config,
        report=boot_storm(config, dataset=dataset, trace_path=trace_path),
    )


def render(result: StormTimelineResult) -> str:
    """Same table as the storm experiment: the fault plan guarantees the
    recovery section renders."""
    return render_storm(result)
