"""Figure 3 — compression ratio of VMI caches per codec vs block size.

Expected shape: gzip-9 ≈ gzip-6 > lz4 > lzjb in compression ratio; dedup
(plotted alongside in the paper) rises as the block size shrinks while the
content codecs fall.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import Series, render_series
from ..common.units import ANALYSIS_BLOCK_SIZES
from ..common.report import ReportBase
from .context import ExperimentContext, default_context
from .registry import register

__all__ = ["Fig03Result", "run", "render", "CODECS"]

EXPERIMENT_ID = "fig03"
CODECS = ("gzip6", "gzip9", "lzjb", "lz4")


@dataclass(frozen=True)
class Fig03Result(ReportBase):
    block_sizes: tuple[int, ...]
    dedup: tuple[float, ...]
    by_codec: dict[str, tuple[float, ...]]


@register(EXPERIMENT_ID, "Figure 3: cache ratio per codec")
def run(ctx: ExperimentContext | None = None) -> Fig03Result:
    """Compute this experiment's data points (see module docstring)."""
    ctx = ctx or default_context()
    dedup = tuple(
        ctx.metrics("caches", bs).dedup_ratio for bs in ANALYSIS_BLOCK_SIZES
    )
    by_codec: dict[str, tuple[float, ...]] = {}
    for codec in CODECS:
        by_codec[codec] = tuple(
            ctx.metrics("caches", bs, codec).compression_ratio
            for bs in ANALYSIS_BLOCK_SIZES
        )
    return Fig03Result(
        block_sizes=ANALYSIS_BLOCK_SIZES, dedup=dedup, by_codec=by_codec
    )


def render(result: Fig03Result) -> str:
    """Render the paper-style table/series for this experiment."""
    series = []
    dedup_line = Series("dedup")
    for bs, value in zip(result.block_sizes, result.dedup):
        dedup_line.add(bs // 1024, value)
    series.append(dedup_line)
    for codec, values in result.by_codec.items():
        line = Series(codec)
        for bs, value in zip(result.block_sizes, values):
            line.add(bs // 1024, value)
        series.append(line)
    return render_series(
        "Figure 3: compression ratio of VMI caches per routine",
        series,
        x_label="block KB",
    )
