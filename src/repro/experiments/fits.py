"""Figures 14-17 and Tables 3-4 — curve fitting and extrapolation of cache
resource consumption (Section 4.3.2).

The paper's protocol per (metric, block size): train linear/MMF/Hoerl on the
first half of the per-cache consumption points, score each by RMSE over all
points (Tables 3 & 4, after normalising the data the way CurveExpert does),
then fit the winner on all points and extrapolate to 3000 caches (Figures
15 & 17). Expected outcome: **linear** wins disk, **MMF** wins memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import (
    CURVE_FITTERS,
    FittedCurve,
    Series,
    TextTable,
    rmse,
    render_series,
)
from ..common.report import ReportBase, to_jsonable
from ..common.units import GiB, MiB
from .context import ExperimentContext, default_context
from .registry import register
from .zfs_consumption import consumption

__all__ = [
    "FIT_BLOCK_SIZES",
    "EXTRAPOLATION_CACHES",
    "FitOutcome",
    "MetricFits",
    "run_disk",
    "run_memory",
    "render_fit_quality",
    "render_rmse_table",
    "render_extrapolation",
]

#: Tables 3/4 sweep these block sizes (KB): 16, 32, 64, 128
FIT_BLOCK_SIZES = (16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024)
EXTRAPOLATION_CACHES = 3000


@dataclass(frozen=True)
class FitOutcome:
    """Fits for one (metric, block size)."""

    block_size: int
    x: np.ndarray  #: cache count (1..n)
    y: np.ndarray  #: consumption (GB disk / MB memory, scaled up)
    half_fits: dict[str, FittedCurve]
    rmse_all: dict[str, float]
    winner_name: str
    winner_full_fit: FittedCurve  #: winner refit on all points

    def extrapolate(self, n_caches: int) -> float:
        return float(self.winner_full_fit.predict(float(n_caches)))


@dataclass(frozen=True)
class MetricFits(ReportBase):
    metric: str  #: "disk" or "memory"
    unit: str
    outcomes: dict[int, FitOutcome]  #: keyed by block size

    def outcome_64k(self) -> FitOutcome:
        return self.outcomes[64 * 1024]

    def to_dict(self) -> dict:
        """Fitted curves are callables; emit their identity + quality +
        extrapolation instead of the generic field dump."""
        return {
            "metric": self.metric,
            "unit": self.unit,
            "outcomes": {
                str(block_size): {
                    "winner": outcome.winner_name,
                    "winner_params": to_jsonable(outcome.winner_full_fit.params),
                    "rmse_all": to_jsonable(outcome.rmse_all),
                    "points": to_jsonable(outcome.y),
                    "extrapolated_3000": outcome.extrapolate(EXTRAPOLATION_CACHES),
                }
                for block_size, outcome in self.outcomes.items()
            },
        }


def _series_for(metric: str, block_size: int, ctx: ExperimentContext) -> np.ndarray:
    trajectory = consumption("caches", block_size, ctx)
    scale_up = ctx.dataset.scaled_up
    if metric == "disk":
        return scale_up(trajectory.disk_bytes.astype(np.float64)) / GiB
    return scale_up(trajectory.memory_bytes.astype(np.float64)) / MiB


def _fit_one(metric: str, block_size: int, ctx: ExperimentContext) -> FitOutcome:
    from ..common.errors import FitError

    y = _series_for(metric, block_size, ctx)
    x = np.arange(1, y.size + 1, dtype=np.float64)
    half = max(2, x.size // 2)
    half_fits: dict[str, FittedCurve] = {}
    scores: dict[str, float] = {}
    for name, fitter in CURVE_FITTERS.items():
        try:
            fit = fitter(x[:half], y[:half])
        except FitError:
            continue
        half_fits[name] = fit
        scores[name] = rmse(fit, x, y)
    winner_name = min(scores, key=scores.get)
    winner_full = CURVE_FITTERS[winner_name](x, y)
    return FitOutcome(
        block_size=block_size,
        x=x,
        y=y,
        half_fits=half_fits,
        rmse_all=scores,
        winner_name=winner_name,
        winner_full_fit=winner_full,
    )


def run_disk(ctx: ExperimentContext | None = None) -> MetricFits:
    """Figure 14 + Table 3 + Figure 15 inputs (disk, linear expected)."""
    ctx = ctx or default_context()
    outcomes = {bs: _fit_one("disk", bs, ctx) for bs in FIT_BLOCK_SIZES}
    return MetricFits(metric="disk", unit="GB", outcomes=outcomes)


def run_memory(ctx: ExperimentContext | None = None) -> MetricFits:
    """Figure 16 + Table 4 + Figure 17 inputs (memory, MMF expected)."""
    ctx = ctx or default_context()
    outcomes = {bs: _fit_one("memory", bs, ctx) for bs in FIT_BLOCK_SIZES}
    return MetricFits(metric="memory", unit="MB", outcomes=outcomes)


# -- renderings -------------------------------------------------------------------


def render_fit_quality(fits: MetricFits, *, figure: str) -> str:
    """Figures 14 / 16: the three half-trained curves against real data."""
    outcome = fits.outcome_64k()
    sample = np.unique(
        np.clip(np.linspace(0, outcome.x.size - 1, 7).astype(int), 0, outcome.x.size - 1)
    )
    series = []
    real = Series("real")
    for index in sample:
        real.add(outcome.x[index], outcome.y[index])
    series.append(real)
    for name, fit in outcome.half_fits.items():
        line = Series(name)
        for index in sample:
            line.add(outcome.x[index], float(fit.predict(outcome.x[index])))
        series.append(line)
    return render_series(
        f"{figure}: {fits.metric} consumption curve-fitting quality (BS = 64 KB, "
        f"{fits.unit})",
        series,
        x_label="caches",
    )


def render_rmse_table(fits: MetricFits, *, table: str) -> str:
    """Tables 3 / 4: RMSE per candidate per block size.

    Like the paper (which fitted with CurveExpert), RMSE is reported on
    normalised data (y scaled to [0, 1]) so values are comparable across
    block sizes.
    """
    text = TextTable(
        f"{table}: RMSE of curves estimating {fits.metric} consumption",
        ["Block size", "Linear", "MMF", "Hoerl", "winner"],
    )
    for bs in sorted(fits.outcomes, reverse=True):
        outcome = fits.outcomes[bs]
        span = float(outcome.y.max() - outcome.y.min()) or 1.0
        cells = []
        for name in ("linear", "MMF", "hoerl"):
            score = outcome.rmse_all.get(name)
            cells.append(f"{score / span:.2f}" if score is not None else "-")
        text.add_row(f"{bs // 1024} KB", *cells, outcome.winner_name)
    return text.render()


def render_extrapolation(fits: MetricFits, *, figure: str) -> str:
    """Figures 15 / 17: winner fit (all points) extrapolated to 3000 caches."""
    series = []
    for bs in sorted(fits.outcomes, reverse=True):
        outcome = fits.outcomes[bs]
        line = Series(f"{outcome.winner_name} - bs = {bs // 1024}kb")
        for count in (100, 500, 607, 1200, 2000, 3000):
            line.add(count, outcome.extrapolate(count))
        series.append(line)
    rendered = render_series(
        f"{figure}: extrapolation of {fits.metric} consumption ({fits.unit})",
        series,
        x_label="caches",
    )
    at_1200 = fits.outcome_64k().extrapolate(1214)
    return rendered + (
        f"\n64 KB extrapolation at 1214 caches: {at_1200:.1f} {fits.unit}"
    )


def render_disk(fits: MetricFits) -> str:
    """Figures 14/15 + Table 3 in one report."""
    return "\n\n".join(
        [
            render_fit_quality(fits, figure="Figure 14"),
            render_rmse_table(fits, table="Table 3"),
            render_extrapolation(fits, figure="Figure 15"),
        ]
    )


def render_memory(fits: MetricFits) -> str:
    """Figures 16/17 + Table 4 in one report."""
    return "\n\n".join(
        [
            render_fit_quality(fits, figure="Figure 16"),
            render_rmse_table(fits, table="Table 4"),
            render_extrapolation(fits, figure="Figure 17"),
        ]
    )


register(
    "fig14",
    "Figures 14/15 + Table 3: disk fits",
    aliases=("fig15", "tab03"),
    renderer=render_disk,
)(run_disk)
register(
    "fig16",
    "Figures 16/17 + Table 4: memory fits",
    aliases=("fig17", "tab04"),
    renderer=render_memory,
)(run_memory)
