"""Placement storm — partial hoarding vs the paper's full replication.

The paper's Squirrel hoards every cache on every node; at fleet scale that
is the dominant ingress/disk cost. This experiment runs the timed boot
storm under a :class:`~repro.placement.PlacementSpec` — ``policy`` decides
who hoards what (``full`` / ``top_k`` / ``zipf_weighted`` /
``tenant_affine``), ``transport`` decides how seeds move (``unicast`` /
``multicast`` / ``swarm``) — and reports the tradeoff frontier: hoarded
bytes vs hit rate vs peer-redirect traffic vs boot latency.

``policy=full`` runs the unmodified paper baseline (no coordinator is
attached), so its embedded storm report is byte-identical to the ``storm``
experiment at the same seed — the regression anchor the tests pin.

Gridable: ``policy × transport × nodes × zipf`` (plus ``seed``, ``top_k``,
``adopt_budget_mb`` and ``faults``), e.g.::

    python -m repro sweep placement \
        --grid "policy=full,top_k,zipf_weighted transport=multicast,swarm"
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.units import GiB
from ..common.report import ReportBase
from ..faults import FaultPlan
from ..metrics import write_run_exports
from ..placement import POLICY_NAMES, TRANSPORT_NAMES, PlacementSpec
from ..workload import StormConfig, StormReport, boot_storm, storm_image_count
from .context import ExperimentContext, default_context
from .params import ParamSpec
from .registry import register
from .storm_timeline import _side_row, fault_param, obs_params

__all__ = [
    "EXPERIMENT_ID",
    "PLACEMENT_METRICS",
    "PlacementResult",
    "placement_params",
    "run",
    "render",
]

EXPERIMENT_ID = "placement"

#: sweep-summary metrics: latency next to the hoard/ingress tradeoff
PLACEMENT_METRICS = (
    "report.squirrel.latency.p95",
    "placement.hit_rate",
    "placement.peer_redirects",
    "placement.hoarded_bytes",
    "placement.boot_ingress_bytes",
)

MiB = 1 << 20


def placement_params() -> tuple[ParamSpec, ...]:
    """The placement experiment's declarative parameters."""
    return (
        ParamSpec(
            "policy", str, "full",
            "placement policy: full (paper baseline), top_k, zipf_weighted "
            "or tenant_affine",
            gridable=True, choices=POLICY_NAMES,
        ),
        ParamSpec(
            "transport", str, "multicast",
            "seeding transport: unicast, multicast or swarm "
            "(ignored by policy=full, which uses the paper's snapshot "
            "multicast)",
            gridable=True, choices=TRANSPORT_NAMES,
        ),
        ParamSpec("nodes", int, 16, "compute nodes", gridable=True),
        ParamSpec("vms_per_node", int, 4, "VMs per node", gridable=True),
        ParamSpec("seed", int, 0, "arrival-trace seed", gridable=True),
        ParamSpec(
            "zipf", float, 0.9,
            "image-popularity Zipf exponent of the tenant workload "
            "(higher = more skew, fewer images carry the traffic)",
            gridable=True,
        ),
        ParamSpec(
            "top_k", int, 8,
            "images hoarded fleet-wide by policy=top_k",
            gridable=True,
        ),
        ParamSpec(
            "replicas", int, 2,
            "replica floor: minimum holders per image under partial "
            "policies",
            gridable=True,
        ),
        ParamSpec(
            "adopt_budget_mb", int, 0,
            "per-node promote-on-miss budget in MiB of (scaled) cache "
            "bytes; 0 disables adoption",
            gridable=True,
        ),
        fault_param(),
    ) + obs_params()


@dataclass(frozen=True)
class PlacementResult(ReportBase):
    """One placement storm: config, placement spec, tallies, full report."""

    config: StormConfig
    spec: dict  #: the PlacementSpec that was requested (plain types)
    placement: dict  #: placement tally block (see _placement_block)
    report: StormReport


def _full_baseline_tallies(dataset, config: StormConfig, n_images: int) -> dict:
    """The coordinator-shaped tally block ``policy=full`` implies.

    Full replication runs without a coordinator (that is what keeps its
    report byte-identical to the storm baseline), so its hoard/seed figures
    are derived analytically: every node holds every cache, seeding ingests
    one cache per node per image, and no boot is ever redirected.
    """
    cache_total = sum(
        spec.cache_bytes for spec in dataset.images[:n_images]
    )
    return {
        "adopted_bytes": 0,
        "adoptions": 0,
        "hoarded_bytes": cache_total * config.n_nodes,
        "hoarded_replicas": n_images * config.n_nodes,
        "images_tracked": n_images,
        "origin_fallbacks": 0,
        "peer_redirects": 0,
        "policy": "full",
        "redirect_bytes": 0,
        "reseed_bytes": 0,
        "seed_duration_s": 0.0,
        "seed_origin_bytes": cache_total,
        "seed_peer_upload_bytes": 0,
        "seed_receiver_bytes": cache_total * config.n_nodes,
        "seed_rounds": n_images,
        "transport": "multicast",
    }


def _placement_block(tallies: dict, dataset, config: StormConfig,
                     n_images: int, report: StormReport) -> dict:
    """The report's ``placement`` block: tallies + derived tradeoff axes."""
    cache_total = sum(
        spec.cache_bytes for spec in dataset.images[:n_images]
    )
    full_hoarded = cache_total * config.n_nodes
    side = report.squirrel
    block = dict(tallies)
    block["full_hoarded_bytes"] = full_hoarded
    block["hoarded_fraction"] = (
        block["hoarded_bytes"] / full_hoarded if full_hoarded else 0.0
    )
    block["hit_rate"] = side.cache_hits / side.boots if side.boots else 0.0
    block["boot_origin_bytes"] = side.compute_ingress_bytes
    block["boot_ingress_bytes"] = (
        side.compute_ingress_bytes + block["redirect_bytes"]
    )
    return block


@register(
    EXPERIMENT_ID,
    "Partial hoarding: placement policies vs full replication",
    params=placement_params(),
    metrics=PLACEMENT_METRICS,
)
def run(
    ctx: ExperimentContext | None = None,
    *,
    policy: str = "full",
    transport: str = "multicast",
    nodes: int = 16,
    vms_per_node: int = 4,
    seed: int = 0,
    zipf: float = 0.9,
    top_k: int = 8,
    replicas: int = 2,
    adopt_budget_mb: int = 0,
    faults: str | None = None,
    trace: str | None = None,
    metrics: str | None = None,
) -> PlacementResult:
    """Run the boot storm under one placement policy.

    ``policy=full`` attaches no coordinator — the run *is* the paper
    baseline, and the embedded ``report`` matches the ``storm``
    experiment's byte-for-byte at equal (nodes, vms_per_node, seed).
    Partial policies attach a :class:`~repro.placement.PlacementSpec` and
    surface the coordinator's tallies in the ``placement`` block. ``zipf``
    shapes the tenant workload's popularity skew (both the arrival trace
    and the declared popularity the policies place by).
    """
    config = StormConfig(
        n_nodes=nodes,
        vms_per_node=vms_per_node,
        seed=seed,
        zipf_exponent=zipf,
        faults=FaultPlan.parse(faults) if faults else None,
    )
    spec = PlacementSpec(
        policy=policy,
        transport=transport,
        top_k=top_k,
        replica_floor=replicas,
        adopt_budget_bytes=adopt_budget_mb * MiB,
    )
    ctx = ctx or default_context()
    catalog = ctx.catalog(config.scale)
    dataset = catalog.dataset  # spec-level facade for the tally helpers
    n_images = storm_image_count(config, catalog)
    sink: list = []
    report = boot_storm(
        config,
        dataset=catalog,
        trace_path=trace,
        placement=spec if policy != "full" else None,
        placement_sink=sink.append,
    )
    tallies = (
        sink[0].stats()
        if sink
        else _full_baseline_tallies(dataset, config, n_images)
    )
    result = PlacementResult(
        config=config,
        spec=spec.to_dict(),
        placement=_placement_block(
            tallies, dataset, config, n_images, report
        ),
        report=report,
    )
    if metrics is not None:
        write_run_exports(metrics, result)
    return result


def render(result: PlacementResult) -> str:
    """Frontier table: hoarded bytes vs hit rate vs ingress vs latency."""
    config, block, report = result.config, result.placement, result.report
    scale_up = 1.0 / config.scale
    to_gb = scale_up / GiB
    lines = [
        f"Placement storm: policy={block['policy']} "
        f"transport={block['transport']}, {config.n_nodes} nodes x "
        f"{config.vms_per_node} VMs/node, zipf {config.zipf_exponent}, "
        f"seed {config.seed}",
        f"{'side':<12} {'boots':>5} {'hits':>5} {'ingress GB':>11} "
        f"{'p50 s':>9} {'p95 s':>9} {'p99 s':>9} {'done s':>9}",
        _side_row("w/ caches", report.squirrel, scale_up),
        _side_row("w/o caches", report.baseline, scale_up),
        "",
        f"hit rate {100 * block['hit_rate']:.1f}% | "
        f"peer redirects {block['peer_redirects']} "
        f"({block['redirect_bytes'] * to_gb:.2f} GB) | "
        f"origin fallbacks {block['origin_fallbacks']} | "
        f"adoptions {block['adoptions']}",
        "",
        "hoard/ingress frontier (paper-scale GB):",
        f"{'policy':<14} {'hoarded':>9} {'of full %':>9} {'seeded':>9} "
        f"{'boot net':>9} {'p95 s':>7}",
        f"{block['policy']:<14} {block['hoarded_bytes'] * to_gb:>9.1f} "
        f"{100 * block['hoarded_fraction']:>9.1f} "
        f"{block['seed_receiver_bytes'] * to_gb:>9.1f} "
        f"{block['boot_ingress_bytes'] * to_gb:>9.1f} "
        f"{report.squirrel.latency.p95:>7.2f}",
        f"{'full (ref)':<14} {block['full_hoarded_bytes'] * to_gb:>9.1f} "
        f"{100.0:>9.1f} {block['full_hoarded_bytes'] * to_gb:>9.1f} "
        f"{0.0:>9.1f} {'-':>7}",
    ]
    return "\n".join(lines)
