"""Figure 9 — dedup-table size on disk vs block size.

Expected shape: the DDT's on-disk footprint grows steeply as blocks shrink
(more unique blocks, one ZAP entry each), and images dwarf caches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import Series, render_series
from ..common.units import ZFS_BLOCK_SIZES, GiB
from ..common.report import ReportBase
from .context import ExperimentContext, default_context
from .registry import register
from .zfs_consumption import consumption

__all__ = ["Fig09Result", "run", "render"]

EXPERIMENT_ID = "fig09"


@dataclass(frozen=True)
class Fig09Result(ReportBase):
    block_sizes: tuple[int, ...]
    images_ddt_gb: tuple[float, ...]
    caches_ddt_gb: tuple[float, ...]


@register(EXPERIMENT_ID, "Figure 9: DDT size on disk")
def run(ctx: ExperimentContext | None = None) -> Fig09Result:
    """Compute this experiment's data points (see module docstring)."""
    ctx = ctx or default_context()
    scale_up = ctx.dataset.scaled_up
    images, caches = [], []
    for block_size in ZFS_BLOCK_SIZES:
        images.append(
            scale_up(int(consumption("images", block_size, ctx).ddt_disk_bytes[-1]))
            / GiB
        )
        caches.append(
            scale_up(int(consumption("caches", block_size, ctx).ddt_disk_bytes[-1]))
            / GiB
        )
    return Fig09Result(
        block_sizes=ZFS_BLOCK_SIZES,
        images_ddt_gb=tuple(images),
        caches_ddt_gb=tuple(caches),
    )


def render(result: Fig09Result) -> str:
    """Render the paper-style table/series for this experiment."""
    series = []
    for name, values in (
        ("images", result.images_ddt_gb),
        ("caches", result.caches_ddt_gb),
    ):
        line = Series(name)
        for bs, value in zip(result.block_sizes, values):
            line.add(bs // 1024, value)
        series.append(line)
    return render_series(
        "Figure 9: deduplication table size on disk (GB, scaled up)",
        series,
        x_label="block KB",
        y_format="{:.3f}",
    )
