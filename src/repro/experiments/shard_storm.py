"""Sharded cVolume storm — semantic shards + quotas vs one global domain.

The ``shards`` experiment runs the flash crowd with the cVolume split into
``shards`` dedup domains (grouped by image similarity or tenant ownership),
each with a per-shard byte quota and its own slice of every node's boot
ARC, and contrasts it against a single global domain holding the *same
aggregate* quota and RAM. The report's ``sharding.victim`` block names the
tenant isolation helped most: its ARC hit rate with shards vs without —
the noisy-neighbor figure ``slo/shards.toml`` gates in CI.

``shards=1`` attaches nothing: the run *is* the plain ``storm`` experiment
and its embedded report is byte-identical at equal (nodes, vms_per_node,
seed) — the regression anchor the tests pin.

Gridable: ``shards × grouping × quota_mb`` (plus ``nodes``,
``vms_per_node``, ``seed`` and ``faults``), e.g.::

    python -m repro sweep shards --grid "shards=1,4 quota_mb=0,256"
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.report import ReportBase
from ..common.units import GiB
from ..faults import FaultPlan
from ..metrics import write_run_exports
from ..shard import GROUPING_MODES
from ..workload import StormConfig, StormReport, boot_storm, shard_storm
from .context import ExperimentContext, default_context
from .params import ParamSpec
from .registry import register
from .storm_timeline import _side_row, fault_param, obs_params

__all__ = [
    "EXPERIMENT_ID",
    "SHARD_METRICS",
    "ShardStormResult",
    "shard_params",
    "run",
    "render",
]

EXPERIMENT_ID = "shards"

#: sweep-summary metrics: the isolation win next to its dedup cost
#: (``sharding.*`` paths are absent at shards=1 and skipped by the sweep)
SHARD_METRICS = (
    "report.squirrel.latency.p95",
    "sharding.victim.grouped_hit_rate",
    "sharding.victim.global_hit_rate",
    "sharding.victim.delta",
    "sharding.grouped.dedup_loss_bytes",
)


def shard_params() -> tuple[ParamSpec, ...]:
    """The shards experiment's declarative parameters."""
    return (
        ParamSpec(
            "shards", int, 4,
            "cVolume shards (dedup domains); 1 = the unsharded paper "
            "baseline, byte-identical to the storm experiment",
            gridable=True,
        ),
        ParamSpec(
            "grouping", str, "tenant",
            "how images map to shards: 'similarity' (shared-grain graph "
            "clustering) or 'tenant' (owner modulo shards)",
            gridable=True, choices=GROUPING_MODES,
        ),
        ParamSpec(
            "quota_mb", int, 256,
            "per-shard cVolume quota in paper-scale MiB (oldest hoards are "
            "evicted past it; 0 disables quotas); the global contrast side "
            "always gets shards x quota_mb, i.e. the same aggregate budget",
            gridable=True,
        ),
        ParamSpec("nodes", int, 8, "compute nodes", gridable=True),
        ParamSpec("vms_per_node", int, 4, "VMs per node", gridable=True),
        ParamSpec("seed", int, 0, "arrival-trace seed", gridable=True),
        fault_param(),
    ) + obs_params()


@dataclass(frozen=True)
class ShardStormResult(ReportBase):
    """One sharded storm: config, the sharding block, both runs' reports."""

    config: StormConfig
    shards: int
    grouping: str
    quota_mb: int
    sharding: dict  #: grouped/global router blocks + victim (empty at shards=1)
    report: StormReport
    global_side: dict  #: global-domain Squirrel-side summary (empty at shards=1)


@register(
    EXPERIMENT_ID,
    "Sharded cVolume: per-shard DDTs, quotas and tenant isolation",
    params=shard_params(),
    metrics=SHARD_METRICS,
)
def run(
    ctx: ExperimentContext | None = None,
    *,
    shards: int = 4,
    grouping: str = "tenant",
    quota_mb: int = 256,
    nodes: int = 8,
    vms_per_node: int = 4,
    seed: int = 0,
    faults: str | None = None,
    trace: str | None = None,
    metrics: str | None = None,
) -> ShardStormResult:
    """Run the storm under ``shards`` dedup domains.

    ``shards=1`` attaches no router at all, so the embedded ``report`` is
    byte-identical to the ``storm`` experiment's; ``shards>=2`` runs the
    grouped-vs-global comparison (see
    :func:`repro.workload.sharding.shard_storm`).
    """
    config = StormConfig(
        n_nodes=nodes,
        vms_per_node=vms_per_node,
        seed=seed,
        faults=FaultPlan.parse(faults) if faults else None,
    )
    ctx = ctx or default_context()
    catalog = ctx.catalog(config.scale)
    if shards <= 1:
        report = boot_storm(config, dataset=catalog, trace_path=trace)
        result = ShardStormResult(
            config=config, shards=shards, grouping=grouping,
            quota_mb=quota_mb, sharding={}, report=report, global_side={},
        )
    else:
        outcome = shard_storm(
            config,
            shards=shards,
            grouping=grouping,
            quota_mb=quota_mb,
            dataset=catalog,
            trace_path=trace,
        )
        result = ShardStormResult(
            config=config, shards=shards, grouping=grouping,
            quota_mb=quota_mb, sharding=outcome.sharding,
            report=outcome.report,
            global_side={
                "boots": outcome.global_side.boots,
                "cache_hits": outcome.global_side.cache_hits,
                "latency_p50": outcome.global_side.latency.p50,
                "latency_p95": outcome.global_side.latency.p95,
            },
        )
    if metrics is not None:
        write_run_exports(metrics, result)
    return result


def render(result: ShardStormResult) -> str:
    """Isolation table: per-shard footprints + the victim tenant's hit
    rates with and without sharding."""
    config, report = result.config, result.report
    scale_up = 1.0 / config.scale
    lines = [
        f"Sharded storm: shards={result.shards} grouping={result.grouping} "
        f"quota={result.quota_mb} MiB/shard, {config.n_nodes} nodes x "
        f"{config.vms_per_node} VMs/node, seed {config.seed}",
        f"{'side':<12} {'boots':>5} {'hits':>5} {'ingress GB':>11} "
        f"{'p50 s':>9} {'p95 s':>9} {'p99 s':>9} {'done s':>9}",
        _side_row("w/ caches", report.squirrel, scale_up),
        _side_row("w/o caches", report.baseline, scale_up),
    ]
    block = result.sharding
    if not block:
        lines.append("shards=1: unsharded baseline (no sharding block)")
        return "\n".join(lines)
    grouped = block["grouped"]
    lines.append("")
    lines.append(
        f"{'shard':<6} {'files':>6} {'refer MB':>9} {'ddt ent':>8} "
        f"{'core KB':>8} {'high KB':>8} {'press':>6} {'evict':>6}"
    )
    for shard, stats in sorted(grouped["scvolume"].items()):
        lines.append(
            f"{shard:<6} {stats['files']:>6} "
            f"{stats['referenced_bytes'] / (1 << 20):>9.2f} "
            f"{stats['ddt_entries']:>8} "
            f"{stats['ddt_core_bytes'] / 1024:>8.1f} "
            f"{stats['ddt_core_high_bytes'] / 1024:>8.1f} "
            f"{stats['quota_pressure']:>6.2f} {stats['evictions']:>6}"
        )
    loss = grouped["dedup_loss_bytes"] * scale_up / GiB
    lines.append(
        f"cross-shard dedup loss {loss:.3f} GB paper-scale "
        f"({grouped['duplicate_entries']} duplicated entries); "
        f"evicted images {grouped['evicted_images']}"
    )
    victim = block["victim"]
    if victim["tenant"] is not None:
        lines.append("")
        lines.append(
            f"victim tenant t{victim['tenant']:02d}: ARC hit rate "
            f"{100 * victim['grouped_hit_rate']:.1f}% sharded vs "
            f"{100 * victim['global_hit_rate']:.1f}% global "
            f"(+{100 * victim['delta']:.1f} pp)"
        )
    return "\n".join(lines)
