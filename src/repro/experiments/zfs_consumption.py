"""Shared computation behind Figures 8, 9, 10 and 13.

Stores the whole dataset (images or caches) in pool accounting at each
ZFS-measured block size (4-128 KB) and records the per-file resource
trajectory. One pass per (subject, block size) feeds four figures:

* Fig 8  — final data + DDT on disk,
* Fig 9  — final DDT size on disk,
* Fig 10 — final DDT memory,
* Fig 13 — the whole per-file trajectory at 64 KB,
* Figs 14-17 / Tables 3-4 — cache trajectories at 16/32/64/128 KB.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..analysis import PoolAccountant
from ..common.units import ZFS_BLOCK_SIZES
from ..vmi.streams import block_view
from .context import ExperimentContext, Subject, default_context

__all__ = ["ConsumptionTrajectory", "consumption", "ZFS_BLOCK_SIZES"]


@dataclass(frozen=True)
class ConsumptionTrajectory:
    """Pool resources after each added file (index 0 = one file stored)."""

    subject: str
    block_size: int
    disk_bytes: np.ndarray  #: data + DDT-on-disk after each file
    ddt_disk_bytes: np.ndarray
    memory_bytes: np.ndarray  #: resident DDT after each file
    data_bytes: np.ndarray

    @property
    def files(self) -> int:
        return int(self.disk_bytes.size)

    def final_disk(self) -> int:
        return int(self.disk_bytes[-1])

    def final_memory(self) -> int:
        return int(self.memory_bytes[-1])


_MEMO: dict[tuple[int, str, int], ConsumptionTrajectory] = {}


def consumption(
    subject: Subject, block_size: int, ctx: ExperimentContext | None = None
) -> ConsumptionTrajectory:
    """Memoised store-everything pass for one (subject, block size)."""
    ctx = ctx or default_context()
    key = (id(ctx), subject, block_size)
    if key in _MEMO:
        return _MEMO[key]
    estimator = ctx.estimator("gzip6", (block_size,))
    accountant = PoolAccountant(estimator)
    disk, ddt_disk, memory, data = [], [], [], []
    for stream in ctx.streams(subject):
        snap = accountant.add_view(block_view(stream, block_size))
        disk.append(snap.disk_used_bytes)
        ddt_disk.append(snap.ddt_disk_bytes)
        memory.append(snap.memory_used_bytes)
        data.append(snap.data_bytes)
    trajectory = ConsumptionTrajectory(
        subject=subject,
        block_size=block_size,
        disk_bytes=np.asarray(disk, dtype=np.int64),
        ddt_disk_bytes=np.asarray(ddt_disk, dtype=np.int64),
        memory_bytes=np.asarray(memory, dtype=np.int64),
        data_bytes=np.asarray(data, dtype=np.int64),
    )
    _MEMO[key] = trajectory
    return trajectory
