"""The experiment registry: experiments and scenarios self-register.

Replaces the hand-maintained import/dispatch table in ``repro.__main__``:
each experiment module decorates its ``run`` function with

.. code-block:: python

    @register("fig02", "Figure 2: dedup + gzip6 ratios")
    def run(ctx=None): ...

and the CLI derives ``python -m repro list``, alias resolution, per-
experiment flags, rendering and ``--json`` output entirely from the
registry. ``run`` takes the shared
:class:`~repro.experiments.context.ExperimentContext` (so one dataset and
one calibration serve a whole ``python -m repro all`` sweep) and returns a
:class:`~repro.common.report.Report`.

Optional hooks per entry:

* ``renderer`` — result -> str; defaults to the ``render`` function of the
  module that registered ``run`` (looked up lazily, so definition order in
  the module does not matter),
* ``params`` — a tuple of :class:`~repro.experiments.params.ParamSpec`
  entries declaring the experiment's options (how the storm/recovery
  scenarios pick up ``--nodes``, ``--seed``, ``--faults`` without the CLI
  special-casing them, and how ``python -m repro sweep`` knows which axes
  it may grid over),
* ``metrics`` — dotted paths into the result's ``to_dict()`` payload
  (``"report.squirrel.latency.p50"``) the sweep summary aggregates,
* ``aliases`` — alternate ids (``fig15`` -> ``fig14``).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Callable

from ..common.errors import ConfigError
from .params import ParamSpec, validate_params

__all__ = ["Experiment", "register", "get", "all_experiments", "aliases"]


@dataclass(frozen=True)
class Experiment:
    """One registered experiment/scenario."""

    exp_id: str
    title: str
    run: Callable[..., Any]  #: (ctx, **params) -> Report
    renderer: Callable[[Any], str] | None = None
    params: tuple[ParamSpec, ...] = ()  #: declarative options for ``run``
    metrics: tuple[str, ...] = ()  #: dotted result paths for sweep summaries
    aliases: tuple[str, ...] = ()

    def render(self, result: Any) -> str:
        """Render a result with the explicit renderer, falling back to the
        ``render`` function of the module that registered ``run``."""
        renderer = self.renderer
        if renderer is None:
            module = self.run.__module__
            renderer = getattr(sys.modules[module], "render", None)
            if renderer is None:
                raise ConfigError(
                    f"experiment {self.exp_id!r} has no renderer: module "
                    f"{module!r} defines no render() and register() passed "
                    "no renderer="
                )
        return renderer(result)

    def param(self, name: str) -> ParamSpec:
        """The spec named ``name``; raises ``ConfigError`` if undeclared."""
        for spec in self.params:
            if spec.name == name:
                return spec
        raise ConfigError(
            f"experiment {self.exp_id!r} has no parameter {name!r}"
        )

    def validate(self, values: dict) -> dict:
        """Validate raw values into the complete params dict ``run`` takes."""
        return validate_params(
            self.params, values, where=f"experiment {self.exp_id!r}"
        )


_REGISTRY: dict[str, Experiment] = {}
_ALIASES: dict[str, str] = {}


def register(
    exp_id: str,
    title: str,
    *,
    aliases: tuple[str, ...] = (),
    renderer: Callable[[Any], str] | None = None,
    params: tuple[ParamSpec, ...] = (),
    metrics: tuple[str, ...] = (),
) -> Callable:
    """Decorator registering a ``run`` function under ``exp_id``."""

    def decorate(run: Callable) -> Callable:
        if exp_id in _REGISTRY or exp_id in _ALIASES:
            raise ConfigError(f"experiment id {exp_id!r} registered twice")
        for alias in aliases:
            if alias in _REGISTRY or alias in _ALIASES:
                raise ConfigError(f"experiment alias {alias!r} registered twice")
        seen: set[str] = set()
        for spec in params:
            if spec.name in seen:
                raise ConfigError(
                    f"experiment {exp_id!r}: parameter {spec.name!r} "
                    "declared twice"
                )
            seen.add(spec.name)
        _REGISTRY[exp_id] = Experiment(
            exp_id=exp_id,
            title=title,
            run=run,
            renderer=renderer,
            params=tuple(params),
            metrics=tuple(metrics),
            aliases=tuple(aliases),
        )
        for alias in aliases:
            _ALIASES[alias] = exp_id
        return run

    return decorate


def get(name: str) -> Experiment:
    """Resolve an experiment id or alias; raises ``ConfigError`` if unknown."""
    exp_id = _ALIASES.get(name, name)
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise ConfigError(f"unknown experiment {name!r}") from None


def all_experiments() -> dict[str, Experiment]:
    """Registered experiments in registration order."""
    return dict(_REGISTRY)


def aliases() -> dict[str, str]:
    """Alias -> canonical id map."""
    return dict(_ALIASES)
