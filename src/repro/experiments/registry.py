"""The experiment registry: experiments and scenarios self-register.

Replaces the hand-maintained import/dispatch table in ``repro.__main__``:
each experiment module decorates its ``run`` function with

.. code-block:: python

    @register("fig02", "Figure 2: dedup + gzip6 ratios")
    def run(ctx=None): ...

and the CLI derives ``python -m repro list``, alias resolution, per-
experiment flags, rendering and ``--json`` output entirely from the
registry. ``run`` takes the shared
:class:`~repro.experiments.context.ExperimentContext` (so one dataset and
one calibration serve a whole ``python -m repro all`` sweep) and returns a
:class:`~repro.common.report.Report`.

Optional hooks per entry:

* ``renderer`` — result -> str; defaults to the ``render`` function of the
  module that registered ``run`` (looked up lazily, so definition order in
  the module does not matter),
* ``params`` — a tuple of :class:`~repro.experiments.params.ParamSpec`
  entries declaring the experiment's options (how the storm/recovery
  scenarios pick up ``--nodes``, ``--seed``, ``--faults`` without the CLI
  special-casing them, and how ``python -m repro sweep`` knows which axes
  it may grid over),
* ``metrics`` — dotted paths into the result's ``to_dict()`` payload
  (``"report.squirrel.latency.p50"``) the sweep summary aggregates,
* ``aliases`` — alternate ids (``fig15`` -> ``fig14``).
"""

from __future__ import annotations

import functools
import inspect
import sys
from dataclasses import dataclass
from typing import Any, Callable

from ..common.errors import ConfigError
from .params import ParamSpec, validate_params

__all__ = ["Experiment", "register", "get", "all_experiments", "aliases"]

#: the registry-provided ``--trace`` spec: every experiment accepts it, so
#: ``trace`` tooling works uniformly (timed scenarios export their span
#: corpus; untimed analytic experiments export a valid, empty trace)
_TRACE_SPEC = ParamSpec(
    "trace",
    str,
    None,
    "write a Chrome trace-event JSON file to this path (timed scenarios "
    "export every span; untimed experiments write a valid empty trace)",
)


def _accepts_trace(run: Callable) -> bool:
    """Whether ``run`` itself takes a ``trace`` keyword."""
    try:
        signature = inspect.signature(run)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == "trace":
            return True
    return False


def _with_empty_trace(run: Callable) -> Callable:
    """Wrap an untimed experiment's ``run``: pop ``trace`` and honour it by
    writing a loadable (empty) chrome trace — the uniform `--trace` contract
    without forcing span tracing onto analytic experiments."""

    @functools.wraps(run)
    def wrapper(ctx, *args, trace: str | None = None, **params):
        result = run(ctx, *args, **params)
        if trace:
            from ..obs import SpanTracer, write_chrome_trace

            write_chrome_trace(trace, {wrapper.__exp_id__: SpanTracer()})
        return result

    return wrapper


@dataclass(frozen=True)
class Experiment:
    """One registered experiment/scenario."""

    exp_id: str
    title: str
    run: Callable[..., Any]  #: (ctx, **params) -> Report
    renderer: Callable[[Any], str] | None = None
    params: tuple[ParamSpec, ...] = ()  #: declarative options for ``run``
    metrics: tuple[str, ...] = ()  #: dotted result paths for sweep summaries
    aliases: tuple[str, ...] = ()

    def render(self, result: Any) -> str:
        """Render a result with the explicit renderer, falling back to the
        ``render`` function of the module that registered ``run``."""
        renderer = self.renderer
        if renderer is None:
            module = self.run.__module__
            renderer = getattr(sys.modules[module], "render", None)
            if renderer is None:
                raise ConfigError(
                    f"experiment {self.exp_id!r} has no renderer: module "
                    f"{module!r} defines no render() and register() passed "
                    "no renderer="
                )
        return renderer(result)

    def param(self, name: str) -> ParamSpec:
        """The spec named ``name``; raises ``ConfigError`` if undeclared."""
        for spec in self.params:
            if spec.name == name:
                return spec
        raise ConfigError(
            f"experiment {self.exp_id!r} has no parameter {name!r}"
        )

    def validate(self, values: dict) -> dict:
        """Validate raw values into the complete params dict ``run`` takes."""
        return validate_params(
            self.params, values, where=f"experiment {self.exp_id!r}"
        )


_REGISTRY: dict[str, Experiment] = {}
_ALIASES: dict[str, str] = {}


def register(
    exp_id: str,
    title: str,
    *,
    aliases: tuple[str, ...] = (),
    renderer: Callable[[Any], str] | None = None,
    params: tuple[ParamSpec, ...] = (),
    metrics: tuple[str, ...] = (),
) -> Callable:
    """Decorator registering a ``run`` function under ``exp_id``."""

    def decorate(run: Callable) -> Callable:
        if exp_id in _REGISTRY or exp_id in _ALIASES:
            raise ConfigError(f"experiment id {exp_id!r} registered twice")
        for alias in aliases:
            if alias in _REGISTRY or alias in _ALIASES:
                raise ConfigError(f"experiment alias {alias!r} registered twice")
        seen: set[str] = set()
        for spec in params:
            if spec.name in seen:
                raise ConfigError(
                    f"experiment {exp_id!r}: parameter {spec.name!r} "
                    "declared twice"
                )
            seen.add(spec.name)
        all_params = tuple(params)
        run_fn = run
        if "trace" not in seen:
            # uniform --trace: experiments that don't declare (or take) it
            # still accept the flag and write a valid trace file
            all_params += (_TRACE_SPEC,)
            if not _accepts_trace(run):
                run_fn = _with_empty_trace(run)
                run_fn.__exp_id__ = exp_id
        _REGISTRY[exp_id] = Experiment(
            exp_id=exp_id,
            title=title,
            run=run_fn,
            renderer=renderer,
            params=tuple(all_params),
            metrics=tuple(metrics),
            aliases=tuple(aliases),
        )
        for alias in aliases:
            _ALIASES[alias] = exp_id
        return run

    return decorate


def get(name: str) -> Experiment:
    """Resolve an experiment id or alias; raises ``ConfigError`` if unknown."""
    exp_id = _ALIASES.get(name, name)
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise ConfigError(f"unknown experiment {name!r}") from None


def all_experiments() -> dict[str, Experiment]:
    """Registered experiments in registration order."""
    return dict(_REGISTRY)


def aliases() -> dict[str, str]:
    """Alias -> canonical id map."""
    return dict(_ALIASES)
