"""Figure 11 — average VM boot time vs cVolume block size.

Four configurations: warm caches on ZFS (swept over block size), plus three
block-size-independent references — qcow2 over the VMI on XFS (baseline),
cold copy-on-read caches on XFS, and warm caches on XFS.

Expected shape: warm-ZFS boots degrade sharply below ~8 KB (per-block CPU +
DDT pressure), cross below the baseline at ≥32 KB, bottom out at 64 KB, and
regress slightly at 128 KB (QCOW2's 64 KB clusters); booting from a warm
64 KB cVolume is ~10-16 % faster than the local-VMI baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis import Series, render_series
from ..boot import BootSimulator
from ..common.units import BOOT_BLOCK_SIZES
from ..zfs import ZPool
from ..vmi.streams import block_view
from ..common.report import ReportBase
from .context import ExperimentContext, default_context
from .registry import register

__all__ = ["Fig11Result", "run", "render"]

EXPERIMENT_ID = "fig11"

#: how many images' boots are averaged per configuration
SAMPLE_STRIDE = 41


@dataclass(frozen=True)
class Fig11Result(ReportBase):
    block_sizes: tuple[int, ...]
    warm_zfs_seconds: tuple[float, ...]
    qcow2_xfs_seconds: float
    cold_xfs_seconds: float
    warm_xfs_seconds: float

    def fastest_block_size(self) -> int:
        best = min(
            range(len(self.warm_zfs_seconds)), key=lambda i: self.warm_zfs_seconds[i]
        )
        return self.block_sizes[best]

    def warm_zfs_at(self, block_size: int) -> float:
        return self.warm_zfs_seconds[self.block_sizes.index(block_size)]


def _build_ccvolume(ctx: ExperimentContext, block_size: int):
    estimator = ctx.estimator("gzip6", (block_size,))
    pool = ZPool(capacity=1 << 42, store_payloads=False)
    volume = pool.create_dataset(
        "ccvol", record_size=block_size, compression="gzip6", dedup=True
    )
    for spec, stream in zip(ctx.specs, ctx.streams("caches")):
        view = block_view(stream, block_size)
        psizes = view.psizes(estimator)
        volume.write_file_virtual(
            f"cache-{spec.image_id}",
            zip(
                view.signatures.tolist(),
                view.lsizes.tolist(),
                psizes.tolist(),
                view.is_hole.tolist(),
            ),
        )
    return volume


@register(EXPERIMENT_ID, "Figure 11: boot times")
def run(ctx: ExperimentContext | None = None) -> Fig11Result:
    """Compute this experiment's data points (see module docstring)."""
    ctx = ctx or default_context()
    simulator = BootSimulator(io_scale=ctx.config.scale)
    sample = ctx.specs[::SAMPLE_STRIDE]

    def average_plain(config: str) -> float:
        return float(
            np.mean([simulator.boot_plain(s, config).total_seconds for s in sample])
        )

    warm_zfs = []
    for block_size in BOOT_BLOCK_SIZES:
        volume = _build_ccvolume(ctx, block_size)
        totals = [
            simulator.boot_from_cvolume(
                spec, volume, f"cache-{spec.image_id}"
            ).total_seconds
            for spec in sample
        ]
        warm_zfs.append(float(np.mean(totals)))
        volume.pool.destroy_dataset("ccvol")
    return Fig11Result(
        block_sizes=BOOT_BLOCK_SIZES,
        warm_zfs_seconds=tuple(warm_zfs),
        qcow2_xfs_seconds=average_plain("qcow2-xfs"),
        cold_xfs_seconds=average_plain("cold-xfs"),
        warm_xfs_seconds=average_plain("warm-xfs"),
    )


def render(result: Fig11Result) -> str:
    """Render the paper-style table/series for this experiment."""
    series = []
    zfs_line = Series("warm caches - zfs")
    for bs, value in zip(result.block_sizes, result.warm_zfs_seconds):
        zfs_line.add(bs // 1024, value)
    series.append(zfs_line)
    for name, value in (
        ("qcow2 - xfs", result.qcow2_xfs_seconds),
        ("cold caches - xfs", result.cold_xfs_seconds),
        ("warm caches - xfs", result.warm_xfs_seconds),
    ):
        line = Series(name)
        for bs in result.block_sizes:
            line.add(bs // 1024, value)
        series.append(line)
    rendered = render_series(
        "Figure 11: average boot time (s) from dedup+compressed VMI caches",
        series,
        x_label="block KB",
        y_format="{:.1f}",
    )
    speedup = (
        1.0 - result.warm_zfs_at(65536) / result.qcow2_xfs_seconds
    ) * 100.0
    return rendered + (
        f"\nfastest cVolume block size: {result.fastest_block_size() // 1024} KB; "
        f"warm-zfs @64 KB is {speedup:.0f}% faster than the local-VMI baseline"
    )
