"""Figure 4 — combined compression ratio (CCR = dedup × gzip6) of VMIs and
caches vs block size.

Expected shape (Section 2.2): there is an optimisation point — for images
the CCR rises as the block size shrinks down to ~4 KB and then falls; for
caches it improves little below 128 KB and falls below ~8 KB.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import Series, render_series
from ..common.units import ANALYSIS_BLOCK_SIZES
from ..common.report import ReportBase
from .context import ExperimentContext, default_context
from .registry import register

__all__ = ["Fig04Result", "run", "render"]

EXPERIMENT_ID = "fig04"


@dataclass(frozen=True)
class Fig04Result(ReportBase):
    block_sizes: tuple[int, ...]
    caches_ccr: tuple[float, ...]
    images_ccr: tuple[float, ...]

    def peak_block_size(self, subject: str) -> int:
        values = self.caches_ccr if subject == "caches" else self.images_ccr
        best = max(range(len(values)), key=lambda i: values[i])
        return self.block_sizes[best]


@register(EXPERIMENT_ID, "Figure 4: combined compression ratio")
def run(ctx: ExperimentContext | None = None) -> Fig04Result:
    """Compute this experiment's data points (see module docstring)."""
    ctx = ctx or default_context()
    caches = tuple(ctx.metrics("caches", bs).ccr for bs in ANALYSIS_BLOCK_SIZES)
    images = tuple(ctx.metrics("images", bs).ccr for bs in ANALYSIS_BLOCK_SIZES)
    return Fig04Result(
        block_sizes=ANALYSIS_BLOCK_SIZES, caches_ccr=caches, images_ccr=images
    )


def render(result: Fig04Result) -> str:
    """Render the paper-style table/series for this experiment."""
    series = []
    for name, values in (
        ("caches: dedup+gzip6", result.caches_ccr),
        ("images: dedup+gzip6", result.images_ccr),
    ):
        line = Series(name)
        for bs, value in zip(result.block_sizes, values):
            line.add(bs // 1024, value)
        series.append(line)
    rendered = render_series(
        "Figure 4: combined compression ratio of VMIs and caches",
        series,
        x_label="block KB",
    )
    return (
        rendered
        + f"\nCCR peak: images @ {result.peak_block_size('images') // 1024} KB,"
        + f" caches @ {result.peak_block_size('caches') // 1024} KB"
    )
