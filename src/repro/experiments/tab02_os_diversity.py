"""Table 2 — OS diversity in Windows Azure and Amazon EC2.

The Azure column is the synthetic dataset's census (it must reproduce the
paper's numbers exactly — the OS mix is a dataset input); the EC2 column is
the paper's reported reference data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import TextTable
from ..vmi import AZURE_CENSUS, EC2_CENSUS
from ..common.report import ReportBase
from .context import ExperimentContext, default_context
from .registry import register

__all__ = ["Tab02Result", "run", "render"]

EXPERIMENT_ID = "tab02"


@dataclass(frozen=True)
class Tab02Result(ReportBase):
    azure_measured: dict[str, int]
    azure_expected: dict[str, int]
    ec2_reference: dict[str, int]

    @property
    def matches_paper(self) -> bool:
        return all(
            self.azure_measured.get(k, 0) == v for k, v in self.azure_expected.items()
        )


@register(EXPERIMENT_ID, "Table 2: OS diversity census")
def run(ctx: ExperimentContext | None = None) -> Tab02Result:
    """Compute this experiment's data points (see module docstring)."""
    ctx = ctx or default_context()
    return Tab02Result(
        azure_measured=ctx.dataset.census(),
        azure_expected=dict(AZURE_CENSUS),
        ec2_reference=dict(EC2_CENSUS),
    )


def render(result: Tab02Result) -> str:
    """Render the paper-style table/series for this experiment."""
    table = TextTable(
        "Table 2: OS diversity in Windows Azure and Amazon EC2",
        ["OS distribution", "Windows Azure", "Amazon EC2"],
    )
    for name in result.azure_expected:
        table.add_row(name, result.azure_measured.get(name, 0),
                      result.ec2_reference.get(name, 0))
    table.add_row("Total", sum(result.azure_measured.values()),
                  sum(result.ec2_reference.values()))
    status = "matches the paper" if result.matches_paper else "MISMATCH"
    return table.render() + f"\n(census {status})"
