"""Figure 18 — cumulative network transfer into compute nodes when starting
VMs at scale (64 compute nodes, 4 storage nodes, glusterfs 2×2).

Series: "w/o caches" with 1, 2, 4 and 8 VMs per node over 1-64 nodes (each
VM boots a different VMI), and "w/ caches" (Squirrel) with 8 VMs per node.

Expected shape: without caches the traffic grows ∝ nodes × VMs (≈180 GB at
64×8); with Squirrel it is exactly zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codecs import SizeEstimator
from ..common.units import GiB
from ..core import IaaSCluster, Squirrel, run_boot_storm
from ..net import IB_QDR, GBE_1, LinkProfile
from ..analysis import Series, render_series
from ..common.report import ReportBase
from .context import ExperimentContext, default_context
from .params import ParamSpec
from .registry import register

__all__ = ["Fig18Result", "run", "render", "NODE_COUNTS", "VMS_PER_NODE"]

EXPERIMENT_ID = "fig18"

NODE_COUNTS = (1, 4, 8, 16, 32, 64)
VMS_PER_NODE = (1, 2, 4, 8)
#: the paper shows InfiniBand and notes 1 GbE results are essentially the
#: same (footnote 5) — transfer *sizes* don't depend on the fabric
FABRICS: dict[str, LinkProfile] = {"32GbIB": IB_QDR, "1GbE": GBE_1}


@dataclass(frozen=True)
class Fig18Result(ReportBase):
    """Cumulative compute-node ingress (GB, scaled up) per series."""

    node_counts: tuple[int, ...]
    without_caches: dict[int, tuple[float, ...]]  #: vms/node -> GB per node count
    with_caches: tuple[float, ...]  #: Squirrel, 8 VMs/node
    cache_hit_rate: float


@register(
    EXPERIMENT_ID,
    "Figure 18: network transfer",
    params=(
        ParamSpec(
            "fabric",
            str,
            "32GbIB",
            "interconnect profile",
            gridable=True,
            choices=tuple(FABRICS),
        ),
    ),
    metrics=("cache_hit_rate",),
)
def run(
    ctx: ExperimentContext | None = None, *, fabric: str = "32GbIB"
) -> Fig18Result:
    """Compute this experiment's data points (see module docstring)."""
    ctx = ctx or default_context()
    dataset = ctx.dataset
    estimator: SizeEstimator = ctx.estimator("gzip6", (65536,))
    cluster = IaaSCluster.build(n_compute=max(NODE_COUNTS), n_storage=4,
                                block_size=65536, link=FABRICS[fabric])
    squirrel = Squirrel(cluster=cluster, estimator=estimator)
    needed = max(NODE_COUNTS) * max(VMS_PER_NODE)
    for spec in dataset.images[: min(needed, len(dataset.images))]:
        squirrel.register(spec)

    scale_up = dataset.scaled_up
    without: dict[int, tuple[float, ...]] = {}
    for vms in VMS_PER_NODE:
        points = []
        for nodes in NODE_COUNTS:
            cluster.ledger.clear()
            storm = run_boot_storm(
                squirrel, dataset, n_nodes=nodes, vms_per_node=vms,
                with_caches=False,
            )
            points.append(scale_up(storm.compute_ingress_bytes) / GiB)
        without[vms] = tuple(points)

    with_points = []
    hits = boots = 0
    for nodes in NODE_COUNTS:
        cluster.ledger.clear()
        storm = run_boot_storm(
            squirrel, dataset, n_nodes=nodes, vms_per_node=max(VMS_PER_NODE),
            with_caches=True,
        )
        with_points.append(scale_up(storm.compute_ingress_bytes) / GiB)
        hits += storm.cache_hits
        boots += storm.boots
    return Fig18Result(
        node_counts=NODE_COUNTS,
        without_caches=without,
        with_caches=tuple(with_points),
        cache_hit_rate=hits / boots if boots else 0.0,
    )


def render(result: Fig18Result) -> str:
    """Render the paper-style table/series for this experiment."""
    series = []
    squirrel_line = Series("w/ caches, vm/node = 8")
    for nodes, value in zip(result.node_counts, result.with_caches):
        squirrel_line.add(nodes, value)
    series.append(squirrel_line)
    for vms in sorted(result.without_caches):
        line = Series(f"w/o caches, vm/node = {vms}")
        for nodes, value in zip(result.node_counts, result.without_caches[vms]):
            line.add(nodes, value)
        series.append(line)
    rendered = render_series(
        "Figure 18: cumulative network transfer of compute nodes (GB, scaled up)",
        series,
        x_label="# nodes",
        y_format="{:.1f}",
    )
    peak = result.without_caches[max(result.without_caches)][-1]
    return rendered + (
        f"\npeak w/o caches (64x8 = 512 VMs): {peak:.0f} GB; "
        f"Squirrel: {max(result.with_caches):.0f} GB "
        f"(cache hit rate {result.cache_hit_rate:.0%})"
    )
