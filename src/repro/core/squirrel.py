"""Squirrel — the fully replicated VMI-cache system (paper Section 3).

Implements the three VMI operations over an :class:`~repro.core.cluster.
IaaSCluster`:

* :meth:`Squirrel.register` — boot the new image once on a storage node to
  create its cache, store it in the scVolume, snapshot, and multicast the
  incremental snapshot diff to every *online* compute node (Figure 6).
* :meth:`Squirrel.boot` — chain CoW → ccVolume cache → base VMI (Figure 7).
  With a warm replicated cache the boot moves **zero** network bytes; a
  missing cache falls back to copy-on-read over the parallel FS.
* :meth:`Squirrel.deregister` — delete the VMI and its cache; no snapshot is
  taken (Section 3.4) — the deletion propagates with the next registration.

Plus the two background mechanisms:

* :meth:`Squirrel.collect_garbage` — keep the snapshots of the last ``n``
  days and the newest one, destroy the rest (the daily cron job).
* :meth:`Squirrel.resync_node` — offline propagation (Section 3.5): a node
  returning from downtime requests the diff from its last synced snapshot;
  if that snapshot was already garbage-collected, the whole scVolume is
  re-replicated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codecs import SizeEstimator
from ..common.errors import RegistrationError
from ..common.units import QCOW2_CLUSTER_SIZE, align_up
from ..vmi.image import ImageSpec, cache_stream
from ..vmi.streams import block_view
from ..zfs import SendStream, generate_send, receive
from ..net import multicast
from .cluster import CCVOLUME, ComputeNode, IaaSCluster
from .replica import apply_to_nodes

__all__ = ["Squirrel", "BootOutcome", "RegistrationRecord", "cold_read_bytes"]


#: Network read amplification of a cold (no-cache) boot: the boot working
#: set is scattered across the image, and every miss is fetched at QCOW2
#: cluster granularity (64 KB) from a parallel FS that serves whole 128 KB
#: stripe units — so the bytes on the wire are a small multiple of the
#: working set itself. Calibrated against Figure 18's ~180 GB for 512 VMs
#: (~130 MB working sets); Squirrel avoids all of it, whatever the factor.
BOOT_READ_AMPLIFICATION = 2.5

#: time to boot the new image once on a storage node during registration
#: (Section 3.2: "no longer than a normal VM boot", and the dataset's VMs
#: "boot in less than 20 seconds" on average)
REGISTRATION_BOOT_SECONDS = 20.0
#: creating a read-only ZFS snapshot is effectively instantaneous
SNAPSHOT_CREATE_SECONDS = 0.2


def cold_read_bytes(spec: ImageSpec) -> int:
    """Bytes a no-cache boot pulls over the network (Figure 18's unit)."""
    to_read = align_up(
        int(min(spec.cache_bytes, spec.nonzero_bytes) * BOOT_READ_AMPLIFICATION),
        QCOW2_CLUSTER_SIZE,
    )
    return min(to_read, spec.nonzero_bytes)


def _cache_file_name(image_id: int) -> str:
    return f"cache-{image_id:05d}"


def _snapshot_name(serial: int) -> str:
    return f"v{serial:05d}"


@dataclass(frozen=True)
class RegistrationRecord:
    """Outcome of one register operation."""

    image_id: int
    snapshot: str
    diff_bytes: int  #: incremental stream size multicast to compute nodes
    cache_bytes: int
    registered_day: float
    propagation_seconds: float
    receivers: int

    @property
    def workflow_seconds(self) -> float:
        """End-to-end registration time: boot-once + snapshot + multicast.

        Section 3.2's claim — "the image registration workflow does not take
        more than a minute" — is checked against this in the tests.
        """
        return (
            REGISTRATION_BOOT_SECONDS
            + SNAPSHOT_CREATE_SECONDS
            + self.propagation_seconds
        )


@dataclass(frozen=True)
class BootOutcome:
    """Outcome of one VM boot."""

    image_id: int
    node: str
    cache_hit: bool
    network_bytes: int  #: bytes this boot moved into the compute node
    #: where the bytes came from: "cache" (local hit), "peer" (placement
    #: redirect to a holder node), or "origin" (glusterfs cold read)
    source: str = "origin"
    peer: str | None = None  #: holder node that served a peer redirect
    adopted: bool = False  #: whether the miss promoted this node to holder


@dataclass
class Squirrel:
    """The orchestrator."""

    cluster: IaaSCluster
    estimator: SizeEstimator
    #: offline-propagation window in days (snapshots kept by GC)
    gc_window_days: float = 7.0
    #: logical clock, in days
    clock_days: float = 0.0
    _snap_serial: int = 0
    _registered: dict[int, ImageSpec] = field(default_factory=dict)
    _snapshot_days: dict[str, float] = field(default_factory=dict)
    registrations: list[RegistrationRecord] = field(default_factory=list)
    #: optional :class:`~repro.placement.PlacementCoordinator`. ``None`` —
    #: the default — is the paper baseline: every cache on every node,
    #: behaviour byte-identical to pre-placement builds.
    placement: object | None = None
    #: optional :class:`~repro.vmi.ImageCatalog` sharing memoised cache
    #: block views across consumers (e.g. both sides of a storm register
    #: the same images). Synthesis is pure, so a memoised view is
    #: bit-identical to one built inline — results never depend on it.
    catalog: object | None = None
    #: optional :class:`~repro.shard.ShardRouter`. ``None`` — the default —
    #: is the single global dedup domain; every sharded branch below is
    #: guarded on it, so the ``None`` path stays byte-identical.
    sharding: object | None = None

    # -- time ----------------------------------------------------------------------

    def advance_time(self, days: float) -> None:
        if days < 0:
            raise RegistrationError("time flows forwards")
        self.clock_days += days

    # -- register (Section 3.2) -------------------------------------------------------

    def _cache_view(self, spec: ImageSpec, record_size: int):
        """The cache stream folded at ``record_size`` — through the shared
        catalog memo when the catalog owns this exact spec, else inline."""
        catalog = self.catalog
        if catalog is not None:
            try:
                if catalog.spec(spec.image_id) is spec:
                    return catalog.block_view(
                        spec.image_id, record_size, "caches"
                    )
            except Exception:
                pass  # unknown id / foreign spec: build inline below
        return block_view(cache_stream(spec), record_size)

    def register(self, spec: ImageSpec, *, uploader: str = "user") -> RegistrationRecord:
        """Register a new VMI: upload, cache creation, snapshot, propagation."""
        if spec.image_id in self._registered:
            raise RegistrationError(f"image {spec.image_id} already registered")
        gluster = self.cluster.storage.gluster
        vmi_name = f"vmi-{spec.image_id:05d}"
        if not gluster.has_file(vmi_name):
            gluster.create_file(vmi_name, spec.nonzero_bytes, writer=uploader)

        # 1. boot once on a storage node: reads the boot working set from the
        # parallel FS (local to the storage tier, but still recorded)
        scvol = self.cluster.storage.scvolume
        primary = self.cluster.storage.primary
        gluster.read(
            vmi_name, 0, min(spec.cache_bytes, spec.nonzero_bytes),
            reader=primary.name, purpose="registration-boot",
        )
        if self.sharding is not None:
            return self._register_sharded(spec)

        # 2. move the cache from memory into the scVolume
        view = self._cache_view(spec, scvol.record_size)
        psizes = view.psizes(self.estimator)
        rows = list(
            zip(
                view.signatures.tolist(),
                view.lsizes.tolist(),
                psizes.tolist(),
                view.is_hole.tolist(),
            )
        )
        scvol.write_file_virtual(_cache_file_name(spec.image_id), rows)

        # 3. snapshot the scVolume for this registration
        self._snap_serial += 1
        snap_name = _snapshot_name(self._snap_serial)
        previous = scvol.latest_snapshot()
        scvol.snapshot(snap_name)
        self._snapshot_days[snap_name] = self.clock_days

        # 4. distribute the cache to compute nodes
        if self.placement is not None:
            # partial hoarding: the coordinator installs the cache on the
            # image's assigned holders via the configured transport; no
            # fleet-wide snapshot diff is shipped.
            seed = self.placement.seed_image(
                self.cluster, spec, _cache_file_name(spec.image_id), rows
            )
            self._registered[spec.image_id] = spec
            record = RegistrationRecord(
                image_id=spec.image_id,
                snapshot=snap_name,
                diff_bytes=seed.n_bytes,
                cache_bytes=spec.cache_bytes,
                registered_day=self.clock_days,
                propagation_seconds=seed.duration_s,
                receivers=seed.n_receivers,
            )
            self.registrations.append(record)
            return record

        # paper baseline: incremental diff to all online nodes via multicast
        stream = generate_send(
            scvol,
            snap_name,
            from_snapshot=previous.name if previous else None,
            include_payloads=False,
        )
        result = self._propagate(stream)
        self._registered[spec.image_id] = spec
        record = RegistrationRecord(
            image_id=spec.image_id,
            snapshot=snap_name,
            diff_bytes=stream.size_bytes,
            cache_bytes=spec.cache_bytes,
            registered_day=self.clock_days,
            propagation_seconds=result.duration_s,
            receivers=result.n_receivers,
        )
        self.registrations.append(record)
        return record

    def _register_sharded(self, spec: ImageSpec) -> RegistrationRecord:
        """Sharded registration: hoard into the image's shard dataset,
        enforce the shard quota *before* the snapshot (evictions ride the
        same diff), snapshot the shard's own chain, multicast per shard."""
        sharding = self.sharding
        shard = sharding.shard_of(spec.image_id)
        scds = sharding.scvol.dataset(shard)
        cache_file = _cache_file_name(spec.image_id)

        view = self._cache_view(spec, scds.record_size)
        psizes = view.psizes(self.estimator)
        rows = list(
            zip(
                view.signatures.tolist(),
                view.lsizes.tolist(),
                psizes.tolist(),
                view.is_hole.tolist(),
            )
        )
        scds.write_file_virtual(cache_file, rows)
        sharding.scvol.note_file(shard, cache_file)
        sharding.note_rehoarded(spec.image_id)
        evicted = sharding.scvol.ensure_quota(shard, keep=(cache_file,))
        sharding.note_evicted(
            shard, [int(name.split("-")[1]) for name in evicted]
        )

        snap_name = sharding.next_snapshot(shard)
        previous = scds.latest_snapshot()
        scds.snapshot(snap_name)
        sharding.snapshot_days[shard][snap_name] = self.clock_days
        sharding.scvol.refresh(shard)

        stream = generate_send(
            scds,
            snap_name,
            from_snapshot=previous.name if previous else None,
            include_payloads=False,
        )
        result = self._propagate_sharded(shard, stream)
        self._registered[spec.image_id] = spec
        record = RegistrationRecord(
            image_id=spec.image_id,
            snapshot=snap_name,
            diff_bytes=stream.size_bytes,
            cache_bytes=spec.cache_bytes,
            registered_day=self.clock_days,
            propagation_seconds=result.duration_s,
            receivers=result.n_receivers,
        )
        self.registrations.append(record)
        return record

    def _propagate_sharded(self, shard: str, stream: SendStream):
        sharding = self.sharding
        online = self.cluster.online_nodes()
        ready = [
            node for node in online
            if sharding.synced_of(node.name, shard) == stream.from_snapshot
        ]
        result = multicast(
            self.cluster.ledger,
            self.cluster.storage.primary,
            [node.node for node in ready],
            stream.size_bytes,
            purpose="cache-propagation",
        )
        cc = sharding.cc_name(shard)
        self._apply_replica(
            ready,
            ("recv", shard, stream.from_snapshot, stream.to_snapshot),
            lambda pool: receive(pool.dataset(cc), stream),
        )
        for node in ready:
            sharding.set_synced(node.name, shard, stream.to_snapshot)
        return result

    def _propagate(self, stream: SendStream):
        online = self.cluster.online_nodes()
        # a node that is online but stale (came back from downtime without a
        # resync) cannot apply this diff — receiving it would corrupt the
        # replica or fail the incremental precondition. Skip it; it catches
        # up through resync_node's ordered replay.
        ready = [
            node for node in online
            if node.synced_snapshot == stream.from_snapshot
        ]
        result = multicast(
            self.cluster.ledger,
            self.cluster.storage.primary,
            [node.node for node in ready],
            stream.size_bytes,
            purpose="cache-propagation",
        )
        # nodes in lockstep share one interned replica: the whole fleet's
        # receive is a single pool mutation, not one per node
        self._apply_replica(
            ready,
            ("recv", stream.from_snapshot, stream.to_snapshot),
            lambda pool: receive(pool.dataset(CCVOLUME), stream),
        )
        for node in ready:
            node.synced_snapshot = stream.to_snapshot
        return result

    def _apply_replica(self, nodes, token, mutate, *, when=None) -> None:
        """Route one ccVolume mutation through the cluster's replica store."""
        apply_to_nodes(
            getattr(self.cluster, "replicas", None), nodes, token, mutate,
            when=when,
        )

    # -- boot (Section 3.3) ------------------------------------------------------------

    def boot(self, image_id: int, node_name: str) -> BootOutcome:
        """Boot a VM from ``image_id`` on a compute node.

        Warm replicated cache → zero network bytes. A node whose ccVolume
        lacks the cache (offline during registration and not yet resynced)
        reads the boot working set from the parallel FS, copy-on-read style.
        """
        outcome, _plan = self.boot_with_plan(image_id, node_name)
        return outcome

    def boot_with_plan(self, image_id: int, node_name: str):
        """Boot and also return the per-brick service plan of the cold path
        (empty on a cache hit) — the hook the event engine schedules timed
        transfers from. Accounting is identical to :meth:`boot`.
        """
        spec = self._registered.get(image_id)
        if spec is None:
            raise RegistrationError(f"image {image_id} is not registered")
        node = self.cluster.node(node_name)
        cache_file = _cache_file_name(image_id)
        if self.sharding is None:
            hoarded = node.online and node.ccvolume.has_file(cache_file)
        else:
            cc = self.sharding.cc_name(self.sharding.shard_of(image_id))
            hoarded = (
                node.online
                and node.pool.has_dataset(cc)
                and node.pool.dataset(cc).has_file(cache_file)
            )
        if hoarded:
            return (
                BootOutcome(
                    image_id, node_name, cache_hit=True, network_bytes=0,
                    source="cache",
                ),
                [],
            )
        if self.placement is not None:
            # miss on a non-holder: redirect the cold read to the nearest
            # live peer holder instead of the glusterfs origin. Falls back
            # to the origin when every holder is down (survivor failover
            # already tried the others).
            peer = self.placement.pick_peer(self.cluster, image_id, node_name)
            if peer is not None:
                n_bytes = self.placement.payload_bytes(image_id)
                self.placement.record_redirect(
                    self.cluster, peer.name, node_name, n_bytes
                )
                adopted = node.online and self.placement.maybe_adopt(
                    self.cluster, image_id, node
                )
                return (
                    BootOutcome(
                        image_id, node_name, cache_hit=False,
                        network_bytes=n_bytes, source="peer",
                        peer=peer.name, adopted=adopted,
                    ),
                    [],
                )
            self.placement.record_origin_fallback()
        # cold path: QCOW2 cluster-granular reads of the boot set over the net
        vmi_name = f"vmi-{image_id:05d}"
        moved, plan = self.cluster.storage.gluster.read_with_plan(
            vmi_name, 0, cold_read_bytes(spec), reader=node_name,
            purpose="boot-read",
        )
        return (
            BootOutcome(
                image_id, node_name, cache_hit=False, network_bytes=moved,
                source="origin",
            ),
            plan,
        )

    # -- deregister + GC (Section 3.4) --------------------------------------------------

    def deregister(self, image_id: int) -> None:
        """Remove a VMI and its cache; no snapshot is taken (the unlink rides
        the next registration's diff)."""
        if image_id not in self._registered:
            raise RegistrationError(f"image {image_id} is not registered")
        cache_file = _cache_file_name(image_id)
        if self.sharding is not None:
            shard = self.sharding.shard_of(image_id)
            scds = self.sharding.scvol.dataset(shard)
            # a quota eviction may already have dropped the hoard
            if scds.has_file(cache_file):
                scds.delete_file(cache_file)
            self.sharding.scvol.forget(shard, cache_file)
            self.sharding.evicted_images.pop(image_id, None)
            del self._registered[image_id]
            return
        scvol = self.cluster.storage.scvolume
        scvol.delete_file(cache_file)
        if self.placement is not None:
            self.placement.drop_image(self.cluster, image_id, cache_file)
        del self._registered[image_id]

    def collect_garbage(self) -> list[str]:
        """The daily cron job: destroy snapshots older than the window,
        always keeping the latest snapshot regardless of age. Runs on the
        scVolume and every online ccVolume."""
        if self.sharding is not None:
            return self._collect_garbage_sharded()
        scvol = self.cluster.storage.scvolume
        snaps = scvol.snapshots()
        if not snaps:
            return []
        cutoff = self.clock_days - self.gc_window_days
        victims = [
            snap.name
            for snap in snaps[:-1]  # never the latest
            if self._snapshot_days.get(snap.name, 0.0) < cutoff
        ]
        online = self.cluster.online_nodes()
        for name in victims:
            scvol.destroy_snapshot(name)
            self._apply_replica(
                online,
                ("gcsnap", name),
                lambda pool, name=name: pool.dataset(CCVOLUME)
                .destroy_snapshot(name),
                when=lambda pool, name=name: pool.dataset(CCVOLUME)
                .has_snapshot(name),
            )
            del self._snapshot_days[name]
        return victims

    def _collect_garbage_sharded(self) -> list[str]:
        """GC each shard's own snapshot chain; victims come back
        shard-qualified (``s01@v00003``)."""
        sharding = self.sharding
        cutoff = self.clock_days - self.gc_window_days
        online = self.cluster.online_nodes()
        collected: list[str] = []
        for shard in sharding.names:
            scds = sharding.scvol.dataset(shard)
            snaps = scds.snapshots()
            if not snaps:
                continue
            days = sharding.snapshot_days[shard]
            victims = [
                snap.name
                for snap in snaps[:-1]  # never the latest
                if days.get(snap.name, 0.0) < cutoff
            ]
            cc = sharding.cc_name(shard)
            for name in victims:
                scds.destroy_snapshot(name)
                self._apply_replica(
                    online,
                    ("gcsnap", shard, name),
                    lambda pool, name=name, cc=cc: pool.dataset(cc)
                    .destroy_snapshot(name),
                    when=lambda pool, name=name, cc=cc: pool.has_dataset(cc)
                    and pool.dataset(cc).has_snapshot(name),
                )
                del days[name]
                collected.append(f"{shard}@{name}")
            sharding.scvol.refresh(shard)
        return collected

    # -- offline propagation (Section 3.5) -----------------------------------------------

    def resync_node(self, node_name: str) -> int:
        """Bring a (re-)joining node's ccVolume in sync; returns bytes moved.

        When the node's last synced snapshot still exists on the scVolume,
        catch-up **replays every missed incremental send in snapshot order**
        — the node ends with the same snapshot chain every never-offline
        node has, so later diffs and GC see no difference between them. A
        single base→latest jump diff would leave the intermediate snapshots
        missing on the replica and its chain diverged from the scVolume's.
        When the base fell out of the GC window (or the node is brand new),
        the entire scVolume is replicated from scratch.
        """
        node = self.cluster.node(node_name)
        node.online = True
        if self.sharding is not None:
            return self._resync_node_sharded(node)
        if self.placement is not None:
            # partial hoarding has no snapshot chain to replay: pull exactly
            # the cache slices the directory assigns this node.
            return self.placement.reseed_node(self.cluster, node)
        scvol = self.cluster.storage.scvolume
        latest = scvol.latest_snapshot()
        if latest is None:
            return 0
        if node.synced_snapshot == latest.name:
            return 0
        base = node.synced_snapshot
        moved = 0
        if base is not None and scvol.has_snapshot(base):
            chain = [snap.name for snap in scvol.snapshots()]
            start = chain.index(base)
            for from_snap, to_snap in zip(chain[start:], chain[start + 1:]):
                stream = generate_send(
                    scvol, to_snap, from_snapshot=from_snap,
                    include_payloads=False,
                )
                moved += self._ship_to_node(node, stream)
        else:
            # fell out of the window (or brand-new node): full replication
            self._reset_ccvolume(node)
            stream = generate_send(scvol, latest.name, include_payloads=False)
            moved = self._ship_to_node(node, stream)
        # drop node-local snapshots the scVolume no longer has (GC ran while
        # the node was away); frees the space their deadlists pin
        for snap in list(node.ccvolume.snapshots()):
            if not scvol.has_snapshot(snap.name):
                self._apply_replica(
                    [node],
                    ("gcsnap", snap.name),
                    lambda pool, name=snap.name: pool.dataset(CCVOLUME)
                    .destroy_snapshot(name),
                    when=lambda pool, name=snap.name: pool.dataset(CCVOLUME)
                    .has_snapshot(name),
                )
        return moved

    def _resync_node_sharded(self, node: ComputeNode) -> int:
        """Per-shard catch-up: replay each shard's missed incrementals in
        snapshot order, or re-replicate a shard whose base fell out of its
        GC window. Shards are visited in plan order (deterministic)."""
        sharding = self.sharding
        moved = 0
        for shard in sharding.names:
            scds = sharding.scvol.dataset(shard)
            latest = scds.latest_snapshot()
            if latest is None:
                continue
            base = sharding.synced_of(node.name, shard)
            if base == latest.name:
                continue
            if base is not None and scds.has_snapshot(base):
                chain = [snap.name for snap in scds.snapshots()]
                start = chain.index(base)
                for from_snap, to_snap in zip(chain[start:], chain[start + 1:]):
                    stream = generate_send(
                        scds, to_snap, from_snapshot=from_snap,
                        include_payloads=False,
                    )
                    moved += self._ship_to_node_sharded(node, shard, stream)
            else:
                self._reset_shard(node, shard)
                stream = generate_send(
                    scds, latest.name, include_payloads=False
                )
                moved += self._ship_to_node_sharded(node, shard, stream)
            # drop node-local snapshots GC removed while the node was away
            cc = sharding.cc_name(shard)
            for snap in list(node.pool.dataset(cc).snapshots()):
                if not scds.has_snapshot(snap.name):
                    self._apply_replica(
                        [node],
                        ("gcsnap", shard, snap.name),
                        lambda pool, name=snap.name, cc=cc: pool.dataset(cc)
                        .destroy_snapshot(name),
                        when=lambda pool, name=snap.name, cc=cc: pool
                        .has_dataset(cc)
                        and pool.dataset(cc).has_snapshot(name),
                    )
        return moved

    def _ship_to_node_sharded(
        self, node: ComputeNode, shard: str, stream: SendStream
    ) -> int:
        """Unicast one shard stream to a node and apply it."""
        sharding = self.sharding
        duration = node.node.link.transfer_time(stream.size_bytes)
        self.cluster.ledger.record(
            self.cluster.storage.primary.name,
            node.name,
            stream.size_bytes,
            "offline-propagation",
            duration,
        )
        cc = sharding.cc_name(shard)
        self._apply_replica(
            [node],
            ("recv", shard, stream.from_snapshot, stream.to_snapshot),
            lambda pool: receive(pool.dataset(cc), stream),
        )
        sharding.set_synced(node.name, shard, stream.to_snapshot)
        return stream.size_bytes

    def _reset_shard(self, node: ComputeNode, shard: str) -> None:
        """Blow away one shard dataset on a node ahead of full replication."""
        sharding = self.sharding
        cc = sharding.cc_name(shard)
        scds = sharding.scvol.dataset(shard)
        domain = None if sharding.n_shards == 1 else shard

        def reset(pool) -> None:
            pool.destroy_dataset(cc)
            pool.create_dataset(
                cc,
                record_size=scds.record_size,
                compression=scds.compression,
                dedup=True,
                domain=domain,
            )

        self._apply_replica([node], ("reset", shard), reset)
        sharding.set_synced(node.name, shard, None)

    def _ship_to_node(self, node: ComputeNode, stream: SendStream) -> int:
        """Unicast one send stream to a node and apply it."""
        duration = node.node.link.transfer_time(stream.size_bytes)
        self.cluster.ledger.record(
            self.cluster.storage.primary.name,
            node.name,
            stream.size_bytes,
            "offline-propagation",
            duration,
        )
        # a node replaying a diff its never-offline peers already applied
        # lands on their interned state — the receive repoints, zero work
        self._apply_replica(
            [node],
            ("recv", stream.from_snapshot, stream.to_snapshot),
            lambda pool: receive(pool.dataset(CCVOLUME), stream),
        )
        node.synced_snapshot = stream.to_snapshot
        return stream.size_bytes

    def _reset_ccvolume(self, node: ComputeNode) -> None:
        scvol = self.cluster.storage.scvolume

        def reset(pool) -> None:
            pool.destroy_dataset(CCVOLUME)
            pool.create_dataset(
                CCVOLUME,
                record_size=scvol.record_size,
                compression=scvol.compression,
                dedup=True,
            )

        self._apply_replica([node], ("reset",), reset)
        node.synced_snapshot = None

    # -- introspection -------------------------------------------------------------------

    def registered_ids(self) -> list[int]:
        return sorted(self._registered)

    def is_registered(self, image_id: int) -> bool:
        return image_id in self._registered

    def cache_file_of(self, image_id: int) -> str:
        return _cache_file_name(image_id)
