"""Squirrel core: the scatter-hoarding VMI cache system."""

from .baselines import BootStormResult, full_copy_transfer_bytes, run_boot_storm
from .cluster import CCVOLUME, SCVOLUME, ComputeNode, IaaSCluster, StorageTier
from .lru_policy import (
    LruCacheNode,
    WorkloadReport,
    ZipfBootWorkload,
    run_policy_comparison,
)
from .scheduler import (
    SCHEDULING_POLICIES,
    PolicyOutcome,
    SchedulerConfig,
    VmEvent,
    generate_arrivals,
    simulate_policy,
)
from .squirrel import BOOT_READ_AMPLIFICATION, BootOutcome, RegistrationRecord, Squirrel

__all__ = [
    "BOOT_READ_AMPLIFICATION",
    "CCVOLUME",
    "SCVOLUME",
    "BootOutcome",
    "BootStormResult",
    "ComputeNode",
    "IaaSCluster",
    "LruCacheNode",
    "PolicyOutcome",
    "RegistrationRecord",
    "SCHEDULING_POLICIES",
    "SchedulerConfig",
    "Squirrel",
    "StorageTier",
    "VmEvent",
    "WorkloadReport",
    "ZipfBootWorkload",
    "generate_arrivals",
    "simulate_policy",
    "full_copy_transfer_bytes",
    "run_boot_storm",
    "run_policy_comparison",
]
