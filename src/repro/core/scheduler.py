"""Cache-aware VM scheduling — the paper's second dismissed alternative.

Section 1: "Traditional solutions to this problem include cache replacement
policies (e.g. LRU) as well as cache-aware VM scheduling." This module
implements that scheduler so the trade-off can be measured: steering a VM to
a node that already holds its image's cache saves boot traffic, but couples
*placement* to *data locality* — under skewed image popularity the preferred
nodes run out of slots and the cluster load skews, or placements spill to
cold nodes anyway.

Squirrel dissolves the dilemma: every node holds every cache, so any
load-optimal placement is also cache-optimal. The simulation below drives
the same arrival process through three policies and reports hit rate, miss
traffic, and load imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import NetworkError
from ..common.rng import stream as rng_stream
from ..vmi.dataset import AzureCommunityDataset
from .lru_policy import LruCacheNode

__all__ = [
    "SchedulerConfig",
    "VmEvent",
    "generate_arrivals",
    "PolicyOutcome",
    "simulate_policy",
    "SCHEDULING_POLICIES",
]

SCHEDULING_POLICIES = ("random", "cache-aware", "squirrel")


@dataclass(frozen=True)
class SchedulerConfig:
    """Cluster shape and per-node cache budget for the scheduling study."""

    n_nodes: int = 16
    slots_per_node: int = 8
    #: per-node raw cache budget for the LRU-backed policies
    cache_budget_bytes: int = 8 << 30


@dataclass(frozen=True)
class VmEvent:
    """One VM lifecycle: arrives at ``start``, runs for ``duration`` ticks."""

    start: int
    duration: int
    image_id: int


def generate_arrivals(
    dataset: AzureCommunityDataset,
    *,
    n_vms: int = 2000,
    horizon_ticks: int = 1000,
    zipf_exponent: float = 0.9,
    mean_duration_ticks: float = 40.0,
    seed: int = 11,
) -> list[VmEvent]:
    """A multi-tenant arrival trace: uniform arrivals over the horizon,
    Zipf-popular images, lognormal session lengths."""
    rng = rng_stream("scheduler-arrivals", seed, n_vms)
    n_images = len(dataset)
    ranks = np.arange(1, n_images + 1, dtype=np.float64)
    weights = 1.0 / ranks**zipf_exponent
    weights /= weights.sum()
    order = rng.permutation(n_images)
    images = order[rng.choice(n_images, size=n_vms, p=weights)]
    starts = np.sort(rng.integers(0, horizon_ticks, size=n_vms))
    durations = np.maximum(
        1, rng.lognormal(np.log(mean_duration_ticks), 0.6, size=n_vms)
    ).astype(np.int64)
    return [
        VmEvent(int(s), int(d), int(i))
        for s, d, i in zip(starts, durations, images)
    ]


@dataclass
class _NodeState:
    cache: LruCacheNode
    busy_until: list[int] = field(default_factory=list)  #: end tick per slot VM

    def free_slots(self, now: int, capacity: int) -> int:
        self.busy_until = [t for t in self.busy_until if t > now]
        return capacity - len(self.busy_until)

    def occupy(self, end_tick: int) -> None:
        self.busy_until.append(end_tick)


@dataclass(frozen=True)
class PolicyOutcome:
    """What one policy did with the arrival trace."""

    policy: str
    placed: int
    rejected: int  #: arrivals with no free slot anywhere
    cache_hits: int
    miss_network_bytes: int
    #: coefficient of variation of per-node placements (load imbalance)
    load_imbalance: float

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.placed if self.placed else 0.0


def simulate_policy(
    dataset: AzureCommunityDataset,
    events: list[VmEvent],
    policy: str,
    config: SchedulerConfig | None = None,
    *,
    seed: int = 3,
) -> PolicyOutcome:
    """Run one placement policy over the arrival trace.

    * ``random``      — uniform over nodes with free slots; per-node LRU cache.
    * ``cache-aware`` — prefer a free-slotted node that already caches the
      image; fall back to the least-loaded node. Per-node LRU cache.
    * ``squirrel``    — least-loaded placement; every node holds every cache
      (full replication), so placement is free to balance load.
    """
    if policy not in SCHEDULING_POLICIES:
        raise NetworkError(f"unknown scheduling policy {policy!r}")
    cfg = config or SchedulerConfig()
    rng = rng_stream("scheduler-run", policy, seed)
    sizes = [spec.cache_bytes for spec in dataset]
    nodes = [
        _NodeState(LruCacheNode(cfg.cache_budget_bytes)) for _ in range(cfg.n_nodes)
    ]
    placements = np.zeros(cfg.n_nodes, dtype=np.int64)
    placed = rejected = hits = 0
    miss_bytes = 0

    for event in events:
        free = [
            i
            for i, node in enumerate(nodes)
            if node.free_slots(event.start, cfg.slots_per_node) > 0
        ]
        if not free:
            rejected += 1
            continue
        if policy == "random":
            choice = int(free[rng.integers(0, len(free))])
        elif policy == "cache-aware":
            warm = [
                i for i in free if event.image_id in nodes[i].cache._resident  # noqa: SLF001
            ]
            pool = warm or free
            choice = min(pool, key=lambda i: len(nodes[i].busy_until))
        else:  # squirrel
            choice = min(free, key=lambda i: len(nodes[i].busy_until))
        node = nodes[choice]
        node.occupy(event.start + event.duration)
        placements[choice] += 1
        placed += 1
        if policy == "squirrel":
            hits += 1  # full replication: every boot is local
        else:
            if node.cache.boot(event.image_id, sizes[event.image_id]):
                hits += 1
            else:
                miss_bytes += sizes[event.image_id]

    mean = placements.mean() if cfg.n_nodes else 0.0
    imbalance = float(placements.std() / mean) if mean else 0.0
    return PolicyOutcome(
        policy=policy,
        placed=placed,
        rejected=rejected,
        cache_hits=hits,
        miss_network_bytes=miss_bytes,
        load_imbalance=imbalance,
    )
