"""The traditional alternative: per-node LRU VMI-cache replacement.

Squirrel's introduction positions scatter hoarding against "traditional
solutions ... cache replacement policies (e.g. LRU) as well as cache-aware
VM scheduling". This module implements that baseline so the comparison can
be run: a compute node with a *bounded* cache budget keeps whole per-image
caches (uncompressed, no dedup — how a plain file-cache does it) and evicts
least-recently-used caches under pressure. Every miss pulls the boot working
set over the network.

The comparison experiment drives a Zipf-popularity boot workload against
(a) an LRU node with a budget equal to Squirrel's measured cVolume footprint
and (b) Squirrel's full replication, and reports miss traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..common.rng import stream as rng_stream
from ..vmi.dataset import AzureCommunityDataset

__all__ = ["LruCacheNode", "ZipfBootWorkload", "WorkloadReport", "run_policy_comparison"]


class LruCacheNode:
    """A compute node caching whole per-image boot sets under a byte budget."""

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ValueError("cache budget must be positive")
        self.budget_bytes = budget_bytes
        self._resident: OrderedDict[int, int] = OrderedDict()  # image -> bytes
        self._resident_bytes = 0
        self.hits = 0
        self.misses = 0
        self.miss_bytes = 0
        self.evictions = 0

    def boot(self, image_id: int, cache_bytes: int) -> bool:
        """Boot from ``image_id``; returns True on a warm (local) boot."""
        if image_id in self._resident:
            self._resident.move_to_end(image_id)
            self.hits += 1
            return True
        self.misses += 1
        self.miss_bytes += cache_bytes
        if cache_bytes <= self.budget_bytes:
            while self._resident_bytes + cache_bytes > self.budget_bytes:
                _, evicted = self._resident.popitem(last=False)
                self._resident_bytes -= evicted
                self.evictions += 1
            self._resident[image_id] = cache_bytes
            self._resident_bytes += cache_bytes
        return False

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    @property
    def resident_images(self) -> int:
        return len(self._resident)


@dataclass(frozen=True)
class ZipfBootWorkload:
    """Boot requests with Zipf-distributed image popularity.

    Multi-tenant clouds boot a few images constantly and a long tail rarely
    — the regime where LRU keeps missing on the tail.
    """

    n_boots: int = 2000
    zipf_exponent: float = 0.9
    seed: int = 7

    def draw(self, n_images: int) -> np.ndarray:
        rng = rng_stream("lru-workload", self.seed, self.n_boots)
        ranks = np.arange(1, n_images + 1, dtype=np.float64)
        weights = 1.0 / ranks**self.zipf_exponent
        weights /= weights.sum()
        # popularity order decorrelated from image id
        order = rng.permutation(n_images)
        return order[rng.choice(n_images, size=self.n_boots, p=weights)]


@dataclass(frozen=True)
class WorkloadReport:
    """Outcome of one policy under one workload."""

    policy: str
    boots: int
    hits: int
    miss_network_bytes: int
    disk_budget_bytes: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.boots if self.boots else 0.0


@dataclass
class _ComparisonResult:
    lru: WorkloadReport
    squirrel: WorkloadReport
    requests: int = field(default=0)


def run_policy_comparison(
    dataset: AzureCommunityDataset,
    *,
    squirrel_footprint_bytes: int,
    workload: ZipfBootWorkload | None = None,
) -> _ComparisonResult:
    """Drive the same workload through LRU and Squirrel on equal disk budgets.

    ``squirrel_footprint_bytes`` is the measured cVolume size (data + DDT) —
    the LRU node gets exactly that much raw space, so the comparison isolates
    the policy (and the dedup+compression that enables full replication).
    """
    workload = workload or ZipfBootWorkload()
    requests = workload.draw(len(dataset))
    sizes = [spec.cache_bytes for spec in dataset]

    lru_node = LruCacheNode(squirrel_footprint_bytes)
    for image_id in requests:
        lru_node.boot(int(image_id), sizes[int(image_id)])
    lru = WorkloadReport(
        policy="lru",
        boots=len(requests),
        hits=lru_node.hits,
        miss_network_bytes=lru_node.miss_bytes,
        disk_budget_bytes=squirrel_footprint_bytes,
    )
    # Squirrel: every cache is resident on every node, by construction
    squirrel = WorkloadReport(
        policy="squirrel",
        boots=len(requests),
        hits=len(requests),
        miss_network_bytes=0,
        disk_budget_bytes=squirrel_footprint_bytes,
    )
    return _ComparisonResult(lru=lru, squirrel=squirrel, requests=len(requests))
