"""Boot-storm drivers: Squirrel vs the no-cache baseline (Figure 18).

The paper's network experiment starts ``vms_per_node`` VMs on each of
``n_nodes`` compute nodes, every VM from a *different* VMI, and measures the
cumulative network transfer into compute nodes:

* **without** caches ("w/o caches"), every boot pulls its boot working set
  from the parallel FS over the network — traffic grows with nodes × VMs;
* **with** Squirrel ("w/ caches"), every cache is already local — zero.

A full-copy baseline (pre-copying whole VMIs, the pre-CoW state of practice)
is included for context.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import NetworkError
from ..vmi.dataset import AzureCommunityDataset
from .squirrel import Squirrel, cold_read_bytes

__all__ = ["BootStormResult", "run_boot_storm", "full_copy_transfer_bytes"]


@dataclass(frozen=True)
class BootStormResult:
    """Outcome of one boot-storm run."""

    n_nodes: int
    vms_per_node: int
    with_caches: bool
    compute_ingress_bytes: int  #: Figure 18's y-value
    boots: int
    cache_hits: int


def run_boot_storm(
    squirrel: Squirrel,
    dataset: AzureCommunityDataset,
    *,
    n_nodes: int,
    vms_per_node: int,
    with_caches: bool,
) -> BootStormResult:
    """Start ``vms_per_node`` VMs on each of the first ``n_nodes`` compute
    nodes, each VM from a different registered VMI (round-robin over the
    dataset), and account the startup traffic.

    ``with_caches=False`` forces the cold path for every boot (the paper's
    "w/o caches" series) by booting images through the parallel FS even when
    a cache exists.
    """
    cluster = squirrel.cluster
    if n_nodes > len(cluster.compute):
        raise NetworkError(
            f"asked for {n_nodes} nodes; cluster has {len(cluster.compute)}"
        )
    registered = squirrel.registered_ids()
    if not registered:
        raise NetworkError("no images registered")
    before = cluster.compute_ingress_bytes(purpose="boot-read")
    boots = 0
    hits = 0
    image_cursor = 0
    for node_index in range(n_nodes):
        node = cluster.compute[node_index]
        for _ in range(vms_per_node):
            image_id = registered[image_cursor % len(registered)]
            image_cursor += 1
            if with_caches:
                outcome = squirrel.boot(image_id, node.name)
                hits += outcome.cache_hit
            else:
                spec = dataset.images[image_id]
                cluster.storage.gluster.read(
                    f"vmi-{image_id:05d}", 0, cold_read_bytes(spec),
                    reader=node.name, purpose="boot-read",
                )
            boots += 1
    moved = cluster.compute_ingress_bytes(purpose="boot-read") - before
    return BootStormResult(
        n_nodes=n_nodes,
        vms_per_node=vms_per_node,
        with_caches=with_caches,
        compute_ingress_bytes=moved,
        boots=boots,
        cache_hits=hits,
    )


def full_copy_transfer_bytes(
    dataset: AzureCommunityDataset, *, n_nodes: int, vms_per_node: int
) -> int:
    """The pre-CoW baseline: copy each VM's whole (nonzero) image first."""
    total = 0
    cursor = 0
    images = dataset.images
    for _ in range(n_nodes):
        for _ in range(vms_per_node):
            total += images[cursor % len(images)].nonzero_bytes
            cursor += 1
    return total
