"""The IaaS cluster Squirrel deploys into.

Mirrors the paper's evaluation setup (Sections 3.1, 4.4): storage nodes run
an off-the-shelf parallel file system (glusterfs, striped 2× / replicated 2×)
holding the base VMIs plus the scVolume; every compute node runs a local
ZFS pool hosting its ccVolume. All byte movement goes through one shared
:class:`~repro.net.TransferLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import NetworkError
from ..common.units import GiB, SQUIRREL_BLOCK_SIZE
from ..net import GBE_1, GlusterVolume, LinkProfile, Node, NodeKind, TransferLedger
from ..zfs import Dataset, ZPool
from .replica import Replica, ReplicaStore

__all__ = ["ComputeNode", "StorageTier", "IaaSCluster", "CCVOLUME", "SCVOLUME"]

CCVOLUME = "ccvol"
SCVOLUME = "scvol"


@dataclass
class ComputeNode:
    """One compute node: NIC + (possibly shared) pool with the ccVolume.

    The node's pool lives behind a :class:`~repro.core.replica.Replica` —
    nodes with identical operation histories share one flyweight pool
    (see :mod:`repro.core.replica`). Constructing a node around a raw
    :class:`~repro.zfs.ZPool` still works: it is wrapped in a private
    single-referent replica, which behaves exactly like the historical
    pool-per-node layout.
    """

    node: Node
    replica: Replica
    online: bool = True
    #: name of the newest scVolume snapshot this node has received
    synced_snapshot: str | None = None

    def __post_init__(self) -> None:
        if isinstance(self.replica, ZPool):
            wrapped = Replica(self.replica)
            wrapped.refs = 1
            self.replica = wrapped

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def pool(self) -> ZPool:
        return self.replica.pool

    @property
    def ccvolume(self) -> Dataset:
        return self.replica.pool.dataset(CCVOLUME)


@dataclass
class StorageTier:
    """The storage side: parallel FS + the scVolume's pool."""

    nodes: list[Node]
    gluster: GlusterVolume
    pool: ZPool  #: hosts the scVolume (lives on the storage tier)

    @property
    def scvolume(self) -> Dataset:
        return self.pool.dataset(SCVOLUME)

    @property
    def primary(self) -> Node:
        """First *alive* storage node: registration/propagation source.

        Fails over when the usual primary's brick is down, so registrations
        keep working through a brick failure (paper Section 6: any node can
        serve any cVolume replica)."""
        for node in self.nodes:
            if self.gluster.is_alive(node.name):
                return node
        raise NetworkError("every storage node has failed")


@dataclass
class IaaSCluster:
    """Compute + storage nodes sharing one transfer ledger."""

    compute: list[ComputeNode]
    storage: StorageTier
    ledger: TransferLedger
    #: interning table for the compute nodes' shared ccVolume replicas;
    #: ``None`` on hand-built clusters (every node keeps a private pool)
    replicas: ReplicaStore | None = None
    #: name → node index; once workloads schedule per-node events, node()
    #: is on the hot path and a linear scan would be O(n) per event
    _by_name: dict[str, ComputeNode] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._by_name:
            self._by_name = {node.name: node for node in self.compute}

    @classmethod
    def build(
        cls,
        *,
        n_compute: int = 64,
        n_storage: int = 4,
        block_size: int = SQUIRREL_BLOCK_SIZE,
        compression: str = "gzip6",
        link: LinkProfile = GBE_1,
        stripe_count: int = 2,
        replica_count: int = 2,
        pool_capacity: int = 1024 * GiB,
    ) -> "IaaSCluster":
        """Assemble a cluster in the paper's shape (64 compute + 4 storage)."""
        if n_compute < 1:
            raise NetworkError("need at least one compute node")
        ledger = TransferLedger()
        storage_nodes = [
            Node(f"storage{i}", NodeKind.STORAGE, link) for i in range(n_storage)
        ]
        gluster = GlusterVolume(
            storage_nodes,
            stripe_count=stripe_count,
            replica_count=replica_count,
            ledger=ledger,
        )
        storage_pool = ZPool("scpool", capacity=pool_capacity, store_payloads=False)
        storage_pool.create_dataset(
            SCVOLUME, record_size=block_size, compression=compression, dedup=True
        )
        # all nodes start with identical (empty) ccVolumes: one shared
        # blank pool, interned — nodes only diverge when their operation
        # histories do (see repro.core.replica)
        blank = ZPool("ccpool", capacity=pool_capacity, store_payloads=False)
        blank.create_dataset(
            CCVOLUME, record_size=block_size, compression=compression, dedup=True
        )
        replicas = ReplicaStore(blank)
        compute = [
            ComputeNode(
                Node(f"compute{i}", NodeKind.COMPUTE, link),
                replicas.acquire_blank(),
            )
            for i in range(n_compute)
        ]
        return cls(
            compute=compute,
            storage=StorageTier(storage_nodes, gluster, storage_pool),
            ledger=ledger,
            replicas=replicas,
        )

    # -- helpers ------------------------------------------------------------------

    def online_nodes(self) -> list[ComputeNode]:
        return [node for node in self.compute if node.online]

    def node(self, name: str) -> ComputeNode:
        try:
            return self._by_name[name]
        except KeyError:
            raise NetworkError(f"no compute node {name!r}") from None

    def compute_ingress_bytes(self, *, purpose: str | None = None) -> int:
        """Figure 18's metric over this cluster's compute nodes."""
        return self.ledger.compute_ingress_bytes(
            [node.node for node in self.compute], purpose=purpose
        )
