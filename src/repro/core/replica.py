"""Interned per-node replica state: flyweight ccVolume pools with CoW.

The paper's propagation model applies every registration diff to *every*
online compute node's local ZFS pool. Simulated naively that is
O(nodes × registrations) pool mutations — the wall that capped storms at
~64 nodes (a 10k-node fleet spends minutes just replaying receives).

The key observation: a node's ccVolume state is a pure function of the
*sequence of operations applied to it* — two nodes that applied the same
receives/installs/GC runs hold bit-identical pools. So the cluster keeps
one :class:`Replica` per *distinct operation history* and lets any number
of nodes point at it:

* each replica is identified by an interned **state id**, the hash-chain
  of ``(previous state, op token)`` transitions from the blank pool;
* applying an op to a group of nodes that covers *all* referents of a
  replica mutates the shared pool **once** — a 10k-node multicast receive
  costs the same as a 1-node one;
* when the op's target state is already interned (a rejoining node
  replaying a diff its peers already applied), the nodes are simply
  **repointed** — zero pool work;
* when only part of a replica's population applies the op (placement
  installs on a holder subset, GC racing an offline node), the group gets
  a **copy-on-write clone** — one ``deepcopy`` per divergence event, not
  per node — and diverges from there.

Histories, not contents, are interned: two pools that became identical
through different op orders are conservatively kept separate, which can
only cost memory, never correctness. Everything a node's pool exposes
(files, snapshots, DDT counts, allocated bytes) reads exactly what a
private per-node pool would hold, so reports stay byte-identical.
"""

from __future__ import annotations

import copy
from typing import Callable, Hashable, Iterable

from ..zfs import ZPool

__all__ = ["Replica", "ReplicaStore", "apply_to_nodes"]

#: an op token: hashable description of one replica mutation, e.g.
#: ``("recv", from_snap, to_snap)`` or ``("install", cache_file)``
Token = Hashable


class Replica:
    """One shared ccVolume pool + its interned state id and refcount."""

    __slots__ = ("pool", "state", "refs")

    def __init__(self, pool: ZPool, state: int = 0) -> None:
        self.pool = pool
        self.state = state
        #: number of nodes currently pointing at this replica
        self.refs = 0


class ReplicaStore:
    """Interning table for replica states (one per cluster)."""

    def __init__(self, blank_pool: ZPool) -> None:
        self._blank = Replica(blank_pool, state=0)
        #: state id -> the replica currently holding that state (if live)
        self._interned: dict[int, Replica] = {0: self._blank}
        #: (state id, token) -> successor state id
        self._transitions: dict[tuple[int, Token], int] = {}
        self._next_state = 1

    # -- membership -----------------------------------------------------------------

    def acquire_blank(self) -> Replica:
        """Point one more node at the shared blank-pool replica."""
        self._blank.refs += 1
        return self._blank

    @property
    def distinct_replicas(self) -> int:
        """Live replica count — the fleet's real pool-state cardinality."""
        return len({id(r) for r in self._interned.values() if r.refs > 0})

    # -- the one mutation path --------------------------------------------------------

    def apply(
        self,
        nodes: Iterable,
        token: Token,
        mutate: Callable[[ZPool], None],
        *,
        when: Callable[[ZPool], bool] | None = None,
    ) -> None:
        """Apply one op to ``nodes``' replicas, group-wise.

        ``mutate(pool)`` must be deterministic given the pool's state —
        the token *is* the op's identity, so equal tokens applied to equal
        states must produce equal pools. ``when(pool)`` (evaluated once
        per distinct replica, before anything moves) skips groups the op
        does not apply to, mirroring per-node ``if`` guards.
        """
        groups: dict[int, list] = {}
        replicas: dict[int, Replica] = {}
        for node in nodes:
            replica = node.replica
            key = id(replica)
            replicas[key] = replica
            groups.setdefault(key, []).append(node)
        for key, members in groups.items():
            replica = replicas[key]
            if when is not None and not when(replica.pool):
                continue
            self._transition(replica, members, token, mutate)

    def _transition(
        self,
        replica: Replica,
        members: list,
        token: Token,
        mutate: Callable[[ZPool], None],
    ) -> None:
        key = (replica.state, token)
        nxt = self._transitions.get(key)
        if nxt is None:
            nxt = self._next_state
            self._next_state += 1
            self._transitions[key] = nxt
        target = self._interned.get(nxt)
        if target is not None and target.refs > 0:
            # the successor state already exists: repoint, zero pool work
            for node in members:
                self._repoint(node, target)
            return
        if len(members) == replica.refs:
            # the whole population moves together: mutate in place
            if self._interned.get(replica.state) is replica:
                del self._interned[replica.state]
            mutate(replica.pool)
            replica.state = nxt
            self._interned[nxt] = replica
            return
        # partial group: CoW — one clone for the whole group, then diverge
        clone = Replica(copy.deepcopy(replica.pool), state=replica.state)
        for node in members:
            self._repoint(node, clone)
        mutate(clone.pool)
        clone.state = nxt
        self._interned[nxt] = clone

    def _repoint(self, node, target: Replica) -> None:
        old = node.replica
        if old is target:
            return
        old.refs -= 1
        if old.refs <= 0 and self._interned.get(old.state) is old:
            del self._interned[old.state]
        node.replica = target
        target.refs += 1


def apply_to_nodes(
    store: ReplicaStore | None,
    nodes: Iterable,
    token: Token,
    mutate: Callable[[ZPool], None],
    *,
    when: Callable[[ZPool], bool] | None = None,
) -> None:
    """Apply an op through the store, or directly for store-less nodes.

    Clusters assembled by :meth:`IaaSCluster.build` carry a store; hand
    -built ones (tests constructing ``ComputeNode`` around a raw pool)
    fall back to mutating each distinct replica in place — with one
    replica per node that is exactly the historical behaviour.
    """
    if store is not None:
        store.apply(nodes, token, mutate, when=when)
        return
    seen: set[int] = set()
    for node in nodes:
        replica = node.replica
        if id(replica) in seen:
            continue
        seen.add(id(replica))
        if when is None or when(replica.pool):
            mutate(replica.pool)
