"""Multi-stream disk front end: NCQ + drive readahead + ZFS vdev aggregation.

A single rotational head position is the wrong model for how a 2014 SATA
disk serves a boot workload: the drive reorders queued commands (NCQ, depth
31), the OS issues readahead, and ZFS aggregates adjacent vdev I/Os. The net
effect is that *several interleaved sequential streams* are each served at
near-sequential speed, and only a request far from every active stream pays
a mechanical seek.

This matters for deduplicated cVolume reads (paper Section 4.2.3): a cache
whose blocks alternate between its own allocation and a master copy written
earlier forms 2-3 interleaved sequential DVA streams — cheap on real disks,
ruinously expensive under a naive single-head model.

:class:`MultiStreamDisk` keeps the last ``max_streams`` stream head
positions (LRU); a read within ``stream_window`` ahead of (or slightly
behind) any head continues that stream for pure transfer cost, anything else
pays the underlying profile's seek cost and opens a new stream.
"""

from __future__ import annotations

from .model import DiskModel, DiskProfile

__all__ = ["MultiStreamDisk"]


class MultiStreamDisk:
    """Service-time model with ``max_streams`` concurrent sequential streams."""

    def __init__(
        self,
        profile: DiskProfile,
        *,
        span_bytes: int = 1 << 40,
        max_streams: int = 8,
        stream_window: int = 4 << 20,
    ) -> None:
        if max_streams < 1:
            raise ValueError("need at least one stream")
        self._model = DiskModel(profile, span_bytes=span_bytes)
        self.max_streams = max_streams
        self.stream_window = stream_window
        #: stream heads, most recently used last: list of byte offsets
        self._heads: list[int] = []
        self.total_requests = 0
        self.total_seeks = 0
        self.total_bytes = 0
        self.total_time_s = 0.0

    @property
    def profile(self) -> DiskProfile:
        return self._model.profile

    def _find_stream(self, offset: int) -> int | None:
        """Index of a stream head this offset continues, or None."""
        for i in range(len(self._heads) - 1, -1, -1):
            head = self._heads[i]
            # slightly-behind tolerates drive cache hits on just-read data
            if -(256 << 10) <= offset - head <= self.stream_window:
                return i
        return None

    def read(self, offset: int, size: int) -> float:
        """Serve one read; returns seconds."""
        if size < 0:
            raise ValueError("read size must be non-negative")
        self.total_requests += 1
        self.total_bytes += size
        transfer = size / self.profile.sequential_bw
        stream_idx = self._find_stream(offset)
        if stream_idx is not None:
            head = self._heads.pop(stream_idx)
            elapsed = transfer
        else:
            nearest = min(self._heads, default=0, key=lambda h: abs(h - offset))
            elapsed = self._model.seek_time(nearest, offset) + transfer
            self.total_seeks += 1
            if len(self._heads) >= self.max_streams:
                self._heads.pop(0)  # evict least recently used stream
        self._heads.append(offset + size)
        self.total_time_s += elapsed
        return elapsed

    def reset(self) -> None:
        """Forget stream state and counters (e.g. between boots)."""
        self._heads.clear()
        self.total_requests = 0
        self.total_seeks = 0
        self.total_bytes = 0
        self.total_time_s = 0.0
