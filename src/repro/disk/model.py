"""Rotational disk service-time model.

The DAS-4/VU nodes the paper evaluates on have two 7200 RPM SATA disks in
software RAID-0 (Section 4). Boot performance (Figure 11) hinges on how the
disk serves the access pattern: deduplication scatters logically adjacent
blocks across the platter, turning sequential boot reads into seeks
(Section 4.2.3, citing [14]).

The model charges, per request:

* average seek cost scaled by how far the head travels (short seeks are
  cheaper than full-stroke seeks — a standard piecewise model),
* half-rotation latency on any non-contiguous access,
* transfer time at the sustained sequential rate.

RAID-0 striping over two spindles doubles streaming bandwidth and lets two
outstanding requests proceed in parallel on average; modelled as a bandwidth
multiplier and a seek-cost divisor of the stripe count for independent
requests, which is what software RAID-0 gives a single-threaded reader
issuing readahead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.units import MiB

__all__ = ["DiskModel", "DiskProfile", "DAS4_DISK", "DAS4_RAID0"]


@dataclass(frozen=True)
class DiskProfile:
    """Static parameters of one spindle (or striped set)."""

    name: str
    avg_seek_s: float  #: average (1/3-stroke) seek time
    full_stroke_s: float  #: worst-case seek time
    rotational_latency_s: float  #: half-rotation at the spindle speed
    sequential_bw: float  #: sustained transfer rate, bytes/s
    track_skip_s: float = 0.0005  #: head/settle cost of a minimal seek
    #: offsets within this distance of the head are "contiguous enough" to
    #: be served by drive readahead without a mechanical seek
    contiguity_window: int = 256 * 1024


#: One WD 1 TB 7200 RPM SATA disk (DAS-4/VU node disk).
DAS4_DISK = DiskProfile(
    name="wd-1tb-7200",
    avg_seek_s=0.0089,
    full_stroke_s=0.021,
    rotational_latency_s=0.00417,  # 60 / 7200 / 2
    sequential_bw=110 * MiB,
)

#: Two of them in software RAID-0 (the paper's node configuration).
DAS4_RAID0 = DiskProfile(
    name="das4-raid0",
    avg_seek_s=0.0089 / 2,  # two heads service independent requests
    full_stroke_s=0.021 / 2,
    rotational_latency_s=0.00417,
    sequential_bw=2 * 110 * MiB,
)


class DiskModel:
    """Stateful service-time model: tracks head position between requests."""

    def __init__(self, profile: DiskProfile, *, span_bytes: int = 1 << 40) -> None:
        if span_bytes <= 0:
            raise ValueError("disk span must be positive")
        self.profile = profile
        self.span_bytes = span_bytes
        self._head = 0
        self.total_requests = 0
        self.total_seeks = 0
        self.total_time_s = 0.0
        self.total_bytes = 0

    def reset_counters(self) -> None:
        self.total_requests = 0
        self.total_seeks = 0
        self.total_time_s = 0.0
        self.total_bytes = 0

    def seek_time(self, from_offset: int, to_offset: int) -> float:
        """Mechanical positioning cost for a head move (0 when contiguous)."""
        distance = abs(to_offset - from_offset)
        if distance <= self.profile.contiguity_window:
            return 0.0
        fraction = min(1.0, distance / self.span_bytes)
        # piecewise-linear-ish: short seeks cost near track_skip, long ones
        # approach full stroke through the average at ~1/3 stroke
        seek = self.profile.track_skip_s + (
            self.profile.full_stroke_s - self.profile.track_skip_s
        ) * (fraction ** 0.5)
        return min(seek, self.profile.full_stroke_s) + self.profile.rotational_latency_s

    def read(self, offset: int, size: int) -> float:
        """Serve one read; returns elapsed seconds and advances the head."""
        if size < 0:
            raise ValueError("read size must be non-negative")
        positioning = self.seek_time(self._head, offset)
        transfer = size / self.profile.sequential_bw
        self._head = offset + size
        elapsed = positioning + transfer
        self.total_requests += 1
        if positioning > 0.0:
            self.total_seeks += 1
        self.total_time_s += elapsed
        self.total_bytes += size
        return elapsed

    @property
    def head_offset(self) -> int:
        return self._head


class TimedDisk:
    """Event-engine front end for a :class:`DiskModel`.

    The service-time hook the simulation kernel drives: requests are
    serialised through a single-actuator :class:`repro.sim.Resource` (one
    outstanding mechanical operation at a time — queueing delay emerges when
    several VM boots hit one node's disk), and each request charges the
    stateful seek/rotation/transfer model's service time on the simulated
    clock.
    """

    def __init__(
        self, engine, model: DiskModel, *, name: str | None = None, timeline=None
    ) -> None:
        from ..sim import Resource  # local import: keep repro.disk importable alone

        self.engine = engine
        self.model = model
        self.name = name or model.profile.name
        #: the actuator queue records per-request wait into the timeline, so
        #: disk service time and queueing are separately attributable
        self._actuator = Resource(
            engine, capacity=1, name=self.name, timeline=timeline
        )

    def read(self, offset: int, size: int):
        """Process completing when the read has been served; value is the
        service time (seconds) this request spent at the platter."""
        return self.engine.process(
            self._serve(offset, size), label=f"{self.name}:read"
        )

    def write(self, offset: int, size: int):
        """Writes cost the same positioning + transfer as reads here."""
        return self.engine.process(
            self._serve(offset, size), label=f"{self.name}:write"
        )

    def _serve(self, offset: int, size: int):
        grant = self._actuator.request()
        yield grant
        try:
            elapsed = self.model.read(offset, size)
            yield self.engine.timeout(elapsed)
        finally:
            self._actuator.release()
        return elapsed
