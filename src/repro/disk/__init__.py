"""Rotational disk / RAID-0 service-time models (DAS-4 node storage)."""

from .model import DAS4_DISK, DAS4_RAID0, DiskModel, DiskProfile, TimedDisk
from .streams import MultiStreamDisk

__all__ = [
    "DAS4_DISK",
    "DAS4_RAID0",
    "DiskModel",
    "DiskProfile",
    "MultiStreamDisk",
    "TimedDisk",
]
