"""Declarative SLOs over simulation outputs: specs, checks, perf diffs.

The simulator's reports are machine-readable; this package makes them
machine-*judgeable*. Three pieces:

* :mod:`.spec` — :class:`SLORule`/:class:`SLOSpec`: TOML/JSON rule files
  (``metric`` selector + aggregation + ``min``/``max`` threshold, e.g.
  "squirrel boot p99 < 45 s", "ARC hit rate > 0.6", "engine events/s
  > 50 000"),
* :mod:`.check` — evaluate a spec against any canonical JSON payload:
  a ``--json`` report, a stored sweep ``report.json`` (rules aggregate
  across points), a ``--metrics`` run directory's report, an embedded
  canonical metrics block (instrument selectors like
  ``zfs_arc_hit_rate{node=compute0}``), or a ``BENCH_*.json`` file,
* :mod:`.diff` — baseline diffing with a relative tolerance and
  higher/lower-is-better direction per metric: the CI perf-regression
  gate (``python -m repro slo diff old.json new.json --tolerance 5%``).

The CLI surface is ``python -m repro slo check|diff``; both emit
machine-readable verdicts with ``--json`` and exit non-zero on a violated
threshold or a regression past tolerance.
"""

from .check import Verdict, evaluate, render_verdicts, resolve_metric
from .diff import DiffEntry, diff_payloads, parse_tolerance, render_diff
from .spec import SLORule, SLOSpec

__all__ = [
    "DiffEntry",
    "SLORule",
    "SLOSpec",
    "Verdict",
    "diff_payloads",
    "evaluate",
    "parse_tolerance",
    "render_diff",
    "render_verdicts",
    "resolve_metric",
]
