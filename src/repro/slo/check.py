"""Evaluate SLO specs against canonical JSON payloads.

Works on anything the repo's tooling emits: a ``--json`` experiment
report, a stored sweep ``report.json`` (dotted metrics aggregate across
every point), a ``--metrics`` run directory's ``report.json``, or a
``BENCH_*.json`` benchmark file. Instrument selectors
(``family{label=value}``) additionally reach into every embedded
canonical metrics block (see
:func:`repro.metrics.collect_metric_blocks`).

A missing metric is a **failed** verdict, not a skipped one: an SLO gate
that silently passes because a rename emptied its selector is worse than
no gate at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..common.errors import ConfigError
from ..metrics import collect_metric_blocks
from .spec import SLORule, SLOSpec

__all__ = ["Verdict", "evaluate", "render_verdicts", "resolve_metric"]


@dataclass(frozen=True)
class Verdict:
    """One checked bound of one rule: the machine-readable outcome."""

    rule: str  #: the rule's display name
    metric: str  #: the metric selector
    bound: str  #: ``"min"`` or ``"max"``
    threshold: float
    agg: str  #: the aggregation actually applied (``worst`` resolved)
    value: float | None  #: the aggregate that was compared (None: no match)
    n: int  #: values matched by the selector
    ok: bool
    source: str  #: which payload was checked (file name / label)

    def render(self) -> str:
        """One human-readable verdict line."""
        status = "PASS" if self.ok else "FAIL"
        op = ">=" if self.bound == "min" else "<="
        shown = "n/a" if self.value is None else f"{self.value:g}"
        label = f"{self.rule}: {self.agg}={shown} {op} {self.threshold:g}"
        suffix = f" [{self.source}]" if self.source else ""
        note = "" if self.n else " (no value matched)"
        return f"{status} {label} (n={self.n}){note}{suffix}"


def _lookup(payload: Any, path: str) -> Any:
    """Resolve a dotted path inside nested dicts (None when absent)."""
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _parse_selector(selector: str) -> tuple[str, dict[str, str]]:
    """Split ``family{k=v,...}`` into (family, label matchers)."""
    family, brace, rest = selector.partition("{")
    if not brace:
        return selector, {}
    if not rest.endswith("}"):
        raise ConfigError(f"bad instrument selector {selector!r}: missing '}}'")
    labels: dict[str, str] = {}
    body = rest[:-1].strip()
    if body:
        for clause in body.split(","):
            key, eq, value = clause.partition("=")
            if not eq:
                raise ConfigError(
                    f"bad instrument selector {selector!r}: expected k=v, "
                    f"got {clause!r}"
                )
            labels[key.strip()] = value.strip().strip('"')
    return family.strip(), labels


def _instrument_values(
    payload: Any, rule: SLORule
) -> list[tuple[str, float]]:
    """Matches of an instrument selector across embedded metrics blocks."""
    family_name, want = _parse_selector(rule.metric)
    found: list[tuple[str, float]] = []
    for block_path, block in collect_metric_blocks(payload).items():
        if rule.block is not None and rule.block not in block_path:
            continue
        for family in block["instruments"]:
            if family["name"] != family_name:
                continue
            if family["kind"] == "histogram":
                raise ConfigError(
                    f"SLO rule {rule.display_name!r}: {family_name!r} is a "
                    "histogram family; target a stats path (e.g. "
                    "report.squirrel.latency.p99) instead"
                )
            for sample in family["samples"]:
                labels = dict(sample["labels"])
                if any(labels.get(k) != v for k, v in want.items()):
                    continue
                where = block_path + "::" + family_name + (
                    "{" + ",".join(
                        f"{k}={v}" for k, v in sorted(labels.items())
                    ) + "}" if labels else ""
                )
                found.append((where, float(sample["value"])))
    return found


def _numeric(value: Any) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def resolve_metric(payload: Any, rule: SLORule) -> list[tuple[str, float]]:
    """Every value ``rule.metric`` selects inside ``payload``.

    Resolution order: instrument selector (when braces are present or the
    bare name matches an embedded metric family), then a direct dotted
    path, then the dotted path inside each sweep point's ``result``.
    Returns ``(where, value)`` pairs; empty when nothing matched.
    """
    if "{" in rule.metric:
        return _instrument_values(payload, rule)
    direct = _numeric(_lookup(payload, rule.metric))
    if direct is not None:
        return [(rule.metric, direct)]
    if "." not in rule.metric:
        matches = _instrument_values(payload, rule)
        if matches:
            return matches
    points = payload.get("points") if isinstance(payload, dict) else None
    found: list[tuple[str, float]] = []
    if isinstance(points, (list, tuple)):
        for index, point in enumerate(points):
            result = point.get("result") if isinstance(point, dict) else None
            value = _numeric(_lookup(result, rule.metric))
            if value is not None:
                found.append((f"points.{index}.result.{rule.metric}", value))
    return found


def _aggregate(values: list[float], agg: str, bound: str) -> tuple[str, float]:
    """Collapse matched values per the rule's aggregation (resolving
    ``worst`` to the bound's conservative side); returns (agg used, value)."""
    if agg == "worst":
        agg = "min" if bound == "min" else "max"
    if agg == "count":
        return agg, float(len(values))
    array = np.asarray(values, dtype=float)
    if agg == "min":
        return agg, float(array.min())
    if agg == "max":
        return agg, float(array.max())
    if agg == "mean":
        return agg, float(array.mean())
    if agg == "sum":
        return agg, float(array.sum())
    return agg, float(np.percentile(array, int(agg[1:])))


def evaluate(
    spec: SLOSpec | SLORule, payload: Any, *, source: str = ""
) -> list[Verdict]:
    """Check every rule bound of ``spec`` against ``payload``.

    Returns one :class:`Verdict` per declared bound (a rule with both
    ``min`` and ``max`` yields two). A selector that matches nothing
    produces failing verdicts.
    """
    rules = (spec,) if isinstance(spec, SLORule) else spec.rules
    verdicts: list[Verdict] = []
    for rule in rules:
        matched = resolve_metric(payload, rule)
        values = [value for _where, value in matched]
        for bound, threshold in (("min", rule.min), ("max", rule.max)):
            if threshold is None:
                continue
            if not values:
                verdicts.append(
                    Verdict(
                        rule=rule.display_name, metric=rule.metric,
                        bound=bound, threshold=float(threshold),
                        agg=rule.agg, value=None, n=0, ok=False,
                        source=source,
                    )
                )
                continue
            agg, value = _aggregate(values, rule.agg, bound)
            ok = value >= threshold if bound == "min" else value <= threshold
            verdicts.append(
                Verdict(
                    rule=rule.display_name, metric=rule.metric, bound=bound,
                    threshold=float(threshold), agg=agg, value=value,
                    n=len(values), ok=ok, source=source,
                )
            )
    return verdicts


def render_verdicts(verdicts: list[Verdict]) -> str:
    """The human-readable verdict table plus a one-line summary."""
    lines = [verdict.render() for verdict in verdicts]
    failed = sum(1 for verdict in verdicts if not verdict.ok)
    lines.append(
        f"slo: {len(verdicts) - failed}/{len(verdicts)} checks passed"
        + (f", {failed} FAILED" if failed else "")
    )
    return "\n".join(lines)
