"""SLO specifications: declarative thresholds over report payloads.

A spec file is TOML (or JSON with the same shape): one ``[[slo]]`` table
per rule::

    [[slo]]
    name   = "squirrel boot p99"
    metric = "report.squirrel.latency.p99"
    max    = 45.0

    [[slo]]
    name   = "per-node ARC hit rate"
    metric = "zfs_arc_hit_rate{node=compute0}"
    block  = "squirrel"
    min    = 0.6

    [[slo]]
    metric = "queues.heap.engine_events_per_s"
    min    = 50000.0

Rule fields:

* ``metric`` (required) — either a dotted path into the payload
  (``report.squirrel.latency.p99``) or an instrument selector into every
  embedded canonical metrics block (``family`` or
  ``family{label=value,...}``),
* ``min`` / ``max`` — at least one; each bound is checked (and reported)
  separately,
* ``agg`` — how multiple matched values collapse (sweep points, multiple
  instrument samples): ``min``/``max``/``mean``/``sum``/``count``/
  ``p50``/``p95``/``p99``, or the default ``worst`` — the value most
  likely to violate the bound (the minimum for a ``min`` bound, the
  maximum for a ``max`` bound), which is the conservative gate,
* ``name`` — display name (defaults to the metric selector),
* ``block`` — substring filter on the embedded-metrics-block path for
  instrument selectors (``"squirrel"`` targets
  ``report.squirrel.metrics`` and skips the baseline side).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from ..common.errors import ConfigError

__all__ = ["SLORule", "SLOSpec", "AGGREGATIONS"]

#: recognised ``agg`` values (``worst`` resolves per bound at check time)
AGGREGATIONS = (
    "worst", "min", "max", "mean", "sum", "count", "p50", "p95", "p99",
)

_RULE_KEYS = {"name", "metric", "min", "max", "agg", "block"}


@dataclass(frozen=True)
class SLORule:
    """One declarative threshold: metric selector + aggregation + bound(s)."""

    metric: str
    min: float | None = None
    max: float | None = None
    agg: str = "worst"
    name: str | None = None
    block: str | None = None

    def __post_init__(self) -> None:
        if not self.metric or not isinstance(self.metric, str):
            raise ConfigError("SLO rule needs a non-empty 'metric' selector")
        if self.min is None and self.max is None:
            raise ConfigError(
                f"SLO rule {self.metric!r} needs a 'min' or 'max' bound"
            )
        if self.agg not in AGGREGATIONS:
            raise ConfigError(
                f"SLO rule {self.metric!r}: unknown agg {self.agg!r} "
                f"(choose from {', '.join(AGGREGATIONS)})"
            )

    @property
    def display_name(self) -> str:
        """The rule's label in verdicts: explicit name or the selector."""
        return self.name or self.metric

    @classmethod
    def from_data(cls, data: dict, *, where: str = "SLO rule") -> "SLORule":
        """Build a rule from one parsed TOML/JSON table."""
        if not isinstance(data, dict):
            raise ConfigError(f"{where}: expected a table, got {data!r}")
        unknown = set(data) - _RULE_KEYS
        if unknown:
            raise ConfigError(
                f"{where}: unknown keys {sorted(unknown)!r} "
                f"(allowed: {sorted(_RULE_KEYS)!r})"
            )
        for bound in ("min", "max"):
            value = data.get(bound)
            if value is not None and not isinstance(value, (int, float)):
                raise ConfigError(
                    f"{where}: {bound} must be a number, got {value!r}"
                )
        return cls(
            metric=data.get("metric", ""),
            min=None if data.get("min") is None else float(data["min"]),
            max=None if data.get("max") is None else float(data["max"]),
            agg=data.get("agg", "worst"),
            name=data.get("name"),
            block=data.get("block"),
        )


@dataclass(frozen=True)
class SLOSpec:
    """An ordered set of :class:`SLORule` entries (one spec file)."""

    rules: tuple[SLORule, ...] = field(default_factory=tuple)

    @classmethod
    def from_data(cls, data: dict, *, where: str = "SLO spec") -> "SLOSpec":
        """Build a spec from a parsed ``{"slo": [rule, ...]}`` document."""
        if not isinstance(data, dict) or "slo" not in data:
            raise ConfigError(f"{where} lacks an 'slo' rule list")
        raw_rules = data["slo"]
        if not isinstance(raw_rules, list) or not raw_rules:
            raise ConfigError(f"{where}: 'slo' must be a non-empty list")
        return cls(
            rules=tuple(
                SLORule.from_data(raw, where=f"{where} rule {i + 1}")
                for i, raw in enumerate(raw_rules)
            )
        )

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "SLOSpec":
        """Load a spec from a TOML (``.toml``) or JSON file."""
        path = pathlib.Path(path)
        try:
            raw_text = path.read_text()
        except OSError as error:
            raise ConfigError(f"cannot read SLO spec {path}: {error}") from None
        if path.suffix == ".toml":
            import tomllib

            try:
                data = tomllib.loads(raw_text)
            except tomllib.TOMLDecodeError as error:
                raise ConfigError(f"bad TOML in {path}: {error}") from None
        else:
            try:
                data = json.loads(raw_text)
            except json.JSONDecodeError as error:
                raise ConfigError(f"bad JSON in {path}: {error}") from None
        return cls.from_data(data, where=f"SLO spec {path}")
