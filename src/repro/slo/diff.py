"""Baseline diffing: flag perf regressions between two JSON payloads.

``diff_payloads(old, new, tolerance)`` flattens both payloads to their
numeric leaves, pairs them by dotted path, and flags any shared metric
that moved past the relative tolerance in its *bad* direction. Direction
is inferred from the path name:

* higher-is-better — throughput-ish names (``per_s``, ``per_second``,
  ``ops``, ``rate``, ``throughput``, ``hit``): a drop is a regression,
* lower-is-better — cost-ish names (``_s`` suffix, ``seconds``,
  ``latency``, ``elapsed``, ``wall``, ``rss``, ``bytes``, ``misses``):
  a rise is a regression,
* neutral — everything else is reported when it moves past tolerance but
  never fails the gate (counts like ``engine_events`` are workload
  descriptors, not performance).

This powers ``python -m repro slo diff old.json new.json --tolerance
25%`` — the CI gate that compares a fresh ``BENCH_kernel.json`` against
the committed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..common.errors import ConfigError

__all__ = ["DiffEntry", "diff_payloads", "parse_tolerance", "render_diff"]

_HIGHER_BETTER = ("per_s", "per_second", "ops", "rate", "throughput", "hit",
                  "hit_rate", "ratio")
_LOWER_BETTER = ("seconds", "latency", "elapsed", "wall", "rss", "bytes",
                 "misses")


def parse_tolerance(text: str | float) -> float:
    """Parse ``"5%"`` or ``"0.05"`` (or a float) into a fraction >= 0."""
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        value = float(text)
    else:
        raw = str(text).strip()
        try:
            value = (
                float(raw[:-1]) / 100.0 if raw.endswith("%") else float(raw)
            )
        except ValueError:
            raise ConfigError(f"bad tolerance {text!r}") from None
    if value < 0:
        raise ConfigError(f"tolerance must be >= 0, got {text!r}")
    return value


def _direction(path: str) -> str:
    """``higher``/``lower``/``neutral`` — which way is *better* for a
    metric, inferred from its dotted path."""
    lowered = path.lower()
    leaf = lowered.rsplit(".", 1)[-1]
    if any(token in lowered for token in _HIGHER_BETTER):
        return "higher"
    if leaf.endswith("_s") or any(t in lowered for t in _LOWER_BETTER):
        return "lower"
    return "neutral"


def flatten(payload: Any, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf of a JSON-able payload, keyed by dotted path
    (list elements are indexed: ``points.0.wall_s``)."""
    flat: dict[str, float] = {}
    if isinstance(payload, bool):
        return flat
    if isinstance(payload, (int, float)):
        flat[prefix] = float(payload)
        return flat
    if isinstance(payload, dict):
        for key in sorted(payload):
            child = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten(payload[key], child))
    elif isinstance(payload, (list, tuple)):
        for index, item in enumerate(payload):
            child = f"{prefix}.{index}" if prefix else str(index)
            flat.update(flatten(item, child))
    return flat


@dataclass(frozen=True)
class DiffEntry:
    """One shared numeric path compared between baseline and candidate."""

    path: str
    old: float
    new: float
    rel: float  #: (new - old) / |old|; 0 when both sides are 0
    direction: str  #: ``higher``/``lower``/``neutral`` (which way is better)
    regression: bool  #: moved past tolerance in the bad direction
    improvement: bool  #: moved past tolerance in the good direction

    def render(self) -> str:
        """One human-readable diff line."""
        if self.regression:
            status = "REGRESSION"
        elif self.improvement:
            status = "improved"
        else:
            status = "changed"
        return (
            f"{status} {self.path}: {self.old:g} -> {self.new:g} "
            f"({self.rel:+.1%}, {self.direction} is better)"
            if self.direction != "neutral"
            else f"{status} {self.path}: {self.old:g} -> {self.new:g} "
            f"({self.rel:+.1%})"
        )


def diff_payloads(
    old: Any,
    new: Any,
    *,
    tolerance: float,
    metrics: list[str] | None = None,
) -> list[DiffEntry]:
    """Compare the shared numeric leaves of two payloads.

    Returns one :class:`DiffEntry` per shared path whose relative change
    exceeds ``tolerance`` (regressions first, then improvements, then
    neutral moves). ``metrics`` restricts the comparison to paths
    containing any of the given substrings. Paths present on only one
    side are ignored — schema growth is not a perf regression.
    """
    old_flat = flatten(old)
    new_flat = flatten(new)
    entries: list[DiffEntry] = []
    for path in sorted(old_flat.keys() & new_flat.keys()):
        if metrics and not any(needle in path for needle in metrics):
            continue
        before, after = old_flat[path], new_flat[path]
        if before == after:
            continue
        rel = (after - before) / abs(before) if before else float("inf")
        if abs(rel) <= tolerance:
            continue
        direction = _direction(path)
        regression = (direction == "higher" and rel < 0) or (
            direction == "lower" and rel > 0
        )
        improvement = direction != "neutral" and not regression
        entries.append(
            DiffEntry(
                path=path, old=before, new=after, rel=rel,
                direction=direction, regression=regression,
                improvement=improvement,
            )
        )
    entries.sort(
        key=lambda e: (not e.regression, not e.improvement, e.path)
    )
    return entries


def render_diff(entries: list[DiffEntry], *, tolerance: float) -> str:
    """The human-readable diff table plus a one-line summary."""
    lines = [entry.render() for entry in entries]
    regressions = sum(1 for entry in entries if entry.regression)
    if regressions:
        lines.append(
            f"slo diff: {regressions} regression(s) past "
            f"{tolerance:.0%} tolerance"
        )
    else:
        lines.append(
            f"slo diff: no regressions past {tolerance:.0%} tolerance "
            f"({len(entries)} other change(s))"
        )
    return "\n".join(lines)
