"""The unified result protocol: every experiment/scenario report is one
:class:`Report` — an object with ``to_dict()`` returning plain JSON-able
data (str/int/float/bool/None, lists, string-keyed dicts).

Result dataclasses get the behaviour for free by inheriting
:class:`ReportBase`; anything reachable from their fields (nested
dataclasses, enums, numpy scalars/arrays, tuples) is converted by
:func:`to_jsonable`. The CLI's ``--json`` flag and the benchmark harness
consume this instead of scraping printed tables.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from typing import Any, Protocol, runtime_checkable

import numpy as np

__all__ = ["Report", "ReportBase", "to_jsonable", "dumps_canonical"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` to plain JSON-able Python data."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in obj]
    raise TypeError(f"cannot convert {type(obj).__name__} to JSON-able data")


def dumps_canonical(obj: Any) -> str:
    """Serialise ``obj`` (a report, dict, or anything :func:`to_jsonable`
    accepts) as canonical JSON: keys sorted, fixed separators, no trailing
    whitespace. The CLI's ``--json`` output, the sweep runner's merged
    reports and the sweep manifest all use this one encoder, which is what
    makes "``--workers N`` output is byte-identical to ``--workers 1``" a
    checkable contract rather than an accident."""
    return json.dumps(to_jsonable(obj), sort_keys=True)


class ReportBase:
    """Mixin giving a (data)class the :class:`Report` protocol."""

    def to_dict(self) -> dict:
        """This report as plain JSON-able data."""
        converted = to_jsonable(self)
        if not isinstance(converted, dict):
            raise TypeError(
                f"{type(self).__name__}.to_dict needs a dataclass (or a "
                "to_dict override)"
            )
        return converted


@runtime_checkable
class Report(Protocol):
    """What every experiment/scenario result promises."""

    def to_dict(self) -> dict: ...
