"""Content hashing.

Two families of hashes coexist:

* :func:`hash_bytes` — a cryptographic-strength 128-bit digest of real block
  bytes (blake2b), used by the functional ZFS write pipeline exactly where
  ZFS uses SHA-256.
* vectorised 64-bit mixing (:func:`mix64`, :func:`fold_grain_signatures`) for
  the *accounting* path: procedural images are addressed as streams of grain
  identifiers, and a block's identity is a mix of the grain IDs it covers.
  This lets dedup sweeps over tens of millions of grains run as a handful of
  numpy passes instead of hashing terabytes of materialised bytes.

The two families never collide by construction: byte digests are 128-bit
hex strings, grain signatures are uint64 arrays. The ZFS substrate treats
both opaquely as "checksums".
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "hash_bytes",
    "mix64",
    "mix64_pair",
    "fold_grain_signatures",
    "derive_seed",
]

#: splitmix64 constants (Steele et al.); the standard avalanche finaliser.
_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


def hash_bytes(data: bytes) -> str:
    """Return a 128-bit hex digest of ``data`` (stands in for ZFS SHA-256)."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def mix64(values: np.ndarray | int) -> np.ndarray | np.uint64:
    """Apply the splitmix64 avalanche finaliser elementwise.

    Accepts a scalar or an array; always computes in uint64 with wrapping
    arithmetic. This is the workhorse that turns structured grain IDs into
    uniformly distributed 64-bit signatures.
    """
    state = np.asarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        state = (state + _SPLITMIX_GAMMA) & np.uint64(0xFFFFFFFFFFFFFFFF)
        state ^= state >> np.uint64(30)
        state *= _MIX_1
        state ^= state >> np.uint64(27)
        state *= _MIX_2
        state ^= state >> np.uint64(31)
    if state.ndim == 0:
        return np.uint64(state)
    return state


def mix64_pair(lhs: np.ndarray | int, rhs: np.ndarray | int) -> np.ndarray | np.uint64:
    """Mix two 64-bit values/arrays into one (order-sensitive)."""
    left = np.asarray(lhs, dtype=np.uint64)
    right = np.asarray(rhs, dtype=np.uint64)
    with np.errstate(over="ignore"):
        combined = left * np.uint64(0xC2B2AE3D27D4EB4F) + mix64(right)
    return mix64(combined)


def fold_grain_signatures(grain_ids: np.ndarray, grains_per_block: int) -> np.ndarray:
    """Fold a 1-D stream of grain IDs into per-block signatures.

    ``grain_ids`` is the grain-ID sequence of one file; consecutive runs of
    ``grains_per_block`` IDs form one block. The trailing partial block (if
    any) is padded with the sentinel ``0`` grain so that equal short tails
    still deduplicate. The fold is order-sensitive (a permuted block must not
    collide with the original), implemented as a position-salted mix + sum,
    vectorised over the whole stream.

    Returns a uint64 array with one signature per block.
    """
    if grains_per_block <= 0:
        raise ValueError(f"grains_per_block must be positive, got {grains_per_block}")
    stream = np.ascontiguousarray(grain_ids, dtype=np.uint64)
    n_blocks = -(-stream.size // grains_per_block)
    padded_len = n_blocks * grains_per_block
    if padded_len != stream.size:
        padded = np.zeros(padded_len, dtype=np.uint64)
        padded[: stream.size] = stream
        stream = padded
    matrix = stream.reshape(n_blocks, grains_per_block)
    position_salt = mix64(np.arange(grains_per_block, dtype=np.uint64))
    with np.errstate(over="ignore"):
        salted = mix64(matrix ^ position_salt[np.newaxis, :])
        folded = salted.sum(axis=1, dtype=np.uint64)
    return np.asarray(mix64(folded), dtype=np.uint64)


def derive_seed(*parts: int | str) -> int:
    """Derive a deterministic 64-bit seed from heterogeneous parts.

    Strings are hashed stably (not with Python's randomised ``hash``); ints
    are mixed in order. Used to give every image/distro/experiment its own
    independent, reproducible RNG stream.
    """
    state = np.uint64(0x5851F42D4C957F2D)
    for part in parts:
        if isinstance(part, str):
            digest = hashlib.blake2b(part.encode("utf-8"), digest_size=8).digest()
            value = np.uint64(int.from_bytes(digest, "little"))
        else:
            value = np.uint64(part & 0xFFFFFFFFFFFFFFFF)
        state = mix64_pair(state, value)
    return int(state)
