"""Exception hierarchy for the Squirrel reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
distinguish simulator-model errors from ordinary Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class CodecError(ReproError):
    """A compression codec failed to compress or decompress."""


class StorageError(ReproError):
    """Base class for ZFS-substrate errors."""


class PoolFullError(StorageError):
    """The storage pool has no free space for an allocation."""


class ObjectNotFoundError(StorageError):
    """A dataset, object, or snapshot name did not resolve."""


class SnapshotError(StorageError):
    """Snapshot creation, deletion, or diffing failed."""


class SendStreamError(StorageError):
    """An incremental send stream could not be generated or applied."""


class ImageError(ReproError):
    """A virtual machine image operation failed."""


class BootError(ReproError):
    """The boot simulator hit an inconsistent state."""


class NetworkError(ReproError):
    """The network/cluster simulator hit an inconsistent state."""


class SimulationError(ReproError):
    """The discrete-event engine hit an inconsistent state."""


class RegistrationError(ReproError):
    """A Squirrel register/deregister operation failed."""


class FitError(ReproError):
    """Curve fitting failed to converge or was given unusable data."""
