"""Byte-unit helpers and the block-size domain used throughout the paper.

The paper sweeps power-of-two block sizes from 1 KB to 1024 KB (Figures 2-4,
11, 12) and 4 KB to 128 KB for the in-filesystem measurements (Figures 8-10).
All sizes in this codebase are plain ``int`` byte counts; these helpers exist
so that magic numbers like ``65536`` never appear in experiment code.
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

#: Block sizes swept by the analysis figures (Figures 2, 3, 4, 12): 1 KB .. 1 MB.
ANALYSIS_BLOCK_SIZES: tuple[int, ...] = tuple(KiB << i for i in range(11))

#: Block sizes measured inside the ZFS substrate (Figures 8, 9, 10): 4 KB .. 128 KB.
ZFS_BLOCK_SIZES: tuple[int, ...] = tuple(4 * KiB << i for i in range(6))

#: Block sizes used in boot-time measurements (Figure 11): 1 KB .. 128 KB.
BOOT_BLOCK_SIZES: tuple[int, ...] = tuple(KiB << i for i in range(8))

#: ZFS default record size; also the paper's Table 1 reference block size.
ZFS_DEFAULT_BLOCK_SIZE: int = 128 * KiB

#: The block size the paper selects as the sweet spot (Section 4.2.4).
SQUIRREL_BLOCK_SIZE: int = 64 * KiB

#: QCOW2 default cluster size (Section 4.2.3).
QCOW2_CLUSTER_SIZE: int = 64 * KiB


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def validate_block_size(block_size: int, *, grain: int = KiB) -> int:
    """Validate a dedup/compression block size.

    Block sizes must be positive powers of two and a multiple of the content
    ``grain`` (the finest granularity at which procedural image content is
    addressed, 1 KB by default). Returns the value for chaining.
    """
    if not is_power_of_two(block_size):
        raise ValueError(f"block size must be a power of two, got {block_size}")
    if block_size % grain:
        raise ValueError(
            f"block size {block_size} must be a multiple of the content grain {grain}"
        )
    return block_size


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division (non-negative operands)."""
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    return -(-numerator // denominator)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    return ceil_div(value, alignment) * alignment


def format_bytes(num_bytes: float) -> str:
    """Render a byte count in the most natural binary unit (e.g. ``'15.1 GB'``).

    Matches the paper's loose usage of GB/TB for binary quantities.
    """
    magnitude = float(num_bytes)
    for suffix in ("B", "KB", "MB", "GB", "TB", "PB"):
        if abs(magnitude) < 1024.0 or suffix == "PB":
            if suffix == "B":
                return f"{int(magnitude)} B"
            return f"{magnitude:.1f} {suffix}"
        magnitude /= 1024.0
    raise AssertionError("unreachable")


def parse_size(text: str) -> int:
    """Parse a human size string (``'64K'``, ``'10 GB'``, ``'512'``) to bytes."""
    cleaned = text.strip().upper().replace(" ", "")
    if not cleaned:
        raise ValueError("empty size string")
    multipliers = {
        "K": KiB, "KB": KiB, "KIB": KiB,
        "M": MiB, "MB": MiB, "MIB": MiB,
        "G": GiB, "GB": GiB, "GIB": GiB,
        "T": TiB, "TB": TiB, "TIB": TiB,
        "B": 1, "": 1,
    }
    index = len(cleaned)
    while index > 0 and not cleaned[index - 1].isdigit():
        index -= 1
    number, unit = cleaned[:index], cleaned[index:]
    if not number:
        raise ValueError(f"no numeric part in size string {text!r}")
    if unit not in multipliers:
        raise ValueError(f"unknown size unit {unit!r} in {text!r}")
    return int(number) * multipliers[unit]
