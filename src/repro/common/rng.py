"""Deterministic random-number streams.

Every stochastic component (image synthesis, boot traces, failure injection)
draws from its own named stream derived from a root seed, so experiments are
reproducible bit-for-bit regardless of evaluation order, and two subsystems
never share a stream by accident.
"""

from __future__ import annotations

import numpy as np

from .hashing import derive_seed

__all__ = ["stream", "SeedSequenceFactory"]


def stream(*parts: int | str) -> np.random.Generator:
    """Return an independent PCG64 generator keyed by ``parts``.

    ``stream("vmi", image_id, "layout")`` always yields the same generator
    state for the same arguments.
    """
    return np.random.Generator(np.random.PCG64(derive_seed(*parts)))


class SeedSequenceFactory:
    """Factory handing out child generators under a fixed experiment root.

    A convenience wrapper used by experiment runners: the root seed is fixed
    per experiment config, children are keyed by purpose strings.
    """

    def __init__(self, root_seed: int | str) -> None:
        self._root = root_seed

    def generator(self, *parts: int | str) -> np.random.Generator:
        """Child generator for the given purpose key."""
        return stream(self._root, *parts)

    def seed(self, *parts: int | str) -> int:
        """Raw 64-bit child seed for components that manage their own RNG."""
        return derive_seed(self._root, *parts)
