"""Multiprocess sweep execution with a deterministic merge and resume.

Process model: the parent never builds a dataset. It expands the
:class:`~repro.sweep.spec.SweepSpec` into points, ships each worker only
picklable data — the experiment id and a validated params dict — and each
worker lazily builds its **own** :class:`~repro.experiments.context.
ExperimentContext` (memoised per process, so a worker that runs many
points synthesises its dataset once). ``--workers 1`` runs the identical
point function inline.

Determinism contract: every point's result is the JSON-able
``Report.to_dict()`` payload, results are merged **in point order**
regardless of completion order, and the merged report serialises via
:func:`~repro.common.report.dumps_canonical` — so the bytes a sweep emits
do not depend on the worker count or on scheduling.

Resume: when given a manifest path the runner appends one canonical-JSON
line per completed point (``experiment``, ``key``, ``index``, requested
``params``, derived ``seed``, ``result``). Re-running with ``resume=True``
replays completed points from the manifest and executes only the missing
ones; a line truncated by a mid-write kill is ignored. An optional
``header`` dict is written as a first line carrying ``manifest_version``
plus provenance (resolved spec/manifest/output paths from the CLI);
``load_manifest`` recognises and skips it.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import json

import numpy as np

from ..common.errors import ConfigError
from ..common.report import ReportBase, dumps_canonical, to_jsonable
from ..experiments import ExperimentContext, registry
from ..experiments.context import _shared_context
from ..obs import runtime as obs_runtime
from .spec import SweepPoint, SweepSpec

__all__ = ["SweepResult", "load_manifest", "run_sweep"]

#: per-process sweep state: the (scale denominator, quick) pair shipped by
#: the parent. Module-level because ProcessPoolExecutor initializers and
#: task functions must be picklable top-level callables. The context
#: itself is NOT stored here: it lives in the process-wide
#: ``_shared_context`` memo, keyed on the catalog config, so a worker (or
#: the inline ``--workers 1`` path) that runs several sweeps under one
#: configuration keeps its warm catalog — re-running ``_init_worker`` with
#: the same knobs no longer discards synthesized streams.
_WORKER_STATE: dict[str, Any] = {}


def _init_worker(scale_denominator: float, quick: int) -> None:
    """Pool initializer: record the context knobs, build nothing yet."""
    _WORKER_STATE["config"] = (scale_denominator, quick)


def _worker_context() -> ExperimentContext:
    """This process' context for the shipped knobs (memoised per config;
    datasets and streams build lazily on first use)."""
    scale_denominator, quick = _WORKER_STATE.get("config", (32.0, 1))
    return _shared_context(float(scale_denominator), max(1, int(quick)))


def _run_point(payload: tuple[int, str, dict]) -> tuple[int, dict]:
    """Execute one sweep point; returns (index, JSON-able result)."""
    index, experiment, params = payload
    exp = registry.get(experiment)
    result = exp.run(_worker_context(), **params)
    return index, to_jsonable(result.to_dict())


def load_manifest(path: str, experiment: str) -> dict[str, dict]:
    """Completed point entries from a manifest, keyed by point key.

    Each entry is the full manifest record (``index``, ``params``,
    ``seed``, ``result``). Tolerates a truncated final line (an
    interrupted append); rejects a manifest written for a different
    experiment.
    """
    completed: dict[str, dict] = {}
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except FileNotFoundError:
        raise ConfigError(f"no sweep manifest at {path!r} to resume from") from None
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                continue  # torn final write from an interrupted sweep
            raise ConfigError(
                f"corrupt sweep manifest {path!r} at line {lineno}"
            ) from None
        if entry.get("experiment") != experiment:
            raise ConfigError(
                f"manifest {path!r} is for experiment "
                f"{entry.get('experiment')!r}, not {experiment!r}"
            )
        if "manifest_version" in entry:
            continue  # provenance header, not a completed point
        completed[entry["key"]] = entry
    return completed


def _append_manifest(handle, point: SweepPoint, result: dict) -> None:
    """Append one completed point as a canonical-JSON line and flush."""
    handle.write(
        dumps_canonical(
            {
                "experiment": point.experiment,
                "key": point.key,
                "index": point.index,
                "params": dict(point.requested),
                "seed": point.derived_seed,
                "result": result,
            }
        )
        + "\n"
    )
    handle.flush()


def _group_label(point_params: dict, axes: list[str]) -> str:
    """A point's aggregation group: its non-seed axis assignment."""
    parts = [f"{axis}={point_params[axis]}" for axis in axes if axis != "seed"]
    return " ".join(parts) if parts else "all"


def _lookup(payload: Any, path: str) -> Any:
    """Resolve a dotted metric path inside a result dict (None if absent)."""
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _aggregate(
    spec: SweepSpec, points: tuple[SweepPoint, ...], results: dict[int, dict]
) -> dict:
    """p50/p95 of each registered metric across seeds, per non-seed group."""
    exp = registry.get(spec.experiment)
    axes = [name for name in spec.grid]
    summary: dict[str, dict] = {}
    for metric in exp.metrics:
        groups: dict[str, list[float]] = {}
        for point in points:
            value = _lookup(results[point.index], metric)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            label = _group_label(dict(point.requested), axes)
            groups.setdefault(label, []).append(float(value))
        if groups:
            summary[metric] = {
                label: {
                    "n": len(values),
                    "p50": float(np.percentile(values, 50)),
                    "p95": float(np.percentile(values, 95)),
                }
                for label, values in groups.items()
            }
    return summary


@dataclass(frozen=True)
class SweepResult(ReportBase):
    """The merged sweep report: every point plus cross-seed aggregates.

    ``points`` is ordered by point index — the cartesian-product
    enumeration order — never by completion order, which is what makes the
    serialised report independent of the worker count.
    """

    experiment: str
    grid: dict  #: axis -> requested values, in expansion order
    fixed: dict  #: non-gridded overrides
    points: tuple  #: per point: {"params", "seed", "result"}
    summary: dict  #: metric -> group -> {n, p50, p95}


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    manifest_path: str | None = None,
    resume: bool = False,
    scale: float = 32.0,
    quick: int = 1,
    progress: Callable[[SweepPoint, str, float], None] | None = None,
    header: dict | None = None,
    trace_dir: str | Path | None = None,
) -> SweepResult:
    """Run every point of ``spec`` and merge the results deterministically.

    ``workers`` > 1 fans pending points across a ``ProcessPoolExecutor``;
    ``manifest_path`` appends each completion to a JSONL manifest; with
    ``resume=True`` points already in the manifest are not re-run.
    ``scale``/``quick`` configure each worker's private context exactly
    like the CLI's ``--scale``/``--quick`` configure a single run.
    ``header`` (optional, CLI-provided provenance: resolved spec/manifest/
    output paths) is written as the manifest's first line, tagged with
    ``manifest_version`` so :func:`load_manifest` can skip it; without a
    header the manifest holds exactly one line per completed point.

    When a runtime profiler is active (:mod:`repro.obs.runtime`, CLI
    invocations) every completed point's wall time is recorded and the
    manifest gains a final ``manifest_version``-tagged trailer line with
    the ``runtime`` block — skipped by :func:`load_manifest`, so resumes
    and byte-identity comparisons of the point lines are unaffected.

    ``trace_dir`` persists each executed point's Chrome trace as
    ``<trace_dir>/point-NNNN.json`` (``python -m repro trace`` accepts the
    directory). The path is injected into the *execution-time* params only
    — never into ``point.requested``, the manifest key, or the merged
    report — so stored sweep bytes are unchanged by tracing. Points
    replayed from a resume manifest are not re-run and write no trace.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if resume and manifest_path is None:
        raise ConfigError("resume needs a manifest path")
    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)

    def point_payload(point: SweepPoint) -> tuple[int, str, dict]:
        params = dict(point.params)
        if trace_dir is not None:
            params["trace"] = str(trace_dir / f"point-{point.index:04d}.json")
        return (point.index, point.experiment, params)

    profiler = obs_runtime.current()

    def record(point: SweepPoint, status: str, elapsed: float) -> None:
        # runtime telemetry (per-point wall time) and the caller's
        # progress callback see every completion, whichever path ran it
        if profiler is not None:
            label = " ".join(
                f"{axis}={point.requested[axis]}" for axis in spec.grid
            )
            profiler.point(label or "point", elapsed, status=status)
        if progress is not None:
            progress(point, status, elapsed)

    points = spec.expand()
    results: dict[int, dict] = {}
    replay: list[SweepPoint] = []
    if resume:
        completed = load_manifest(manifest_path, spec.experiment)
        for point in points:
            if point.key in completed:
                results[point.index] = completed[point.key]["result"]
                replay.append(point)
                record(point, "cached", 0.0)
    pending = [point for point in points if point.index not in results]

    manifest = None
    if manifest_path is not None:
        # rewrite rather than append on resume: this heals a line torn by
        # a mid-write kill and drops entries for points no longer in the
        # spec, so the manifest always holds exactly the completed points
        manifest = open(manifest_path, "w", encoding="utf-8")
        if header is not None:
            manifest.write(
                dumps_canonical(
                    {
                        "manifest_version": 1,
                        "experiment": spec.experiment,
                        **header,
                    }
                )
                + "\n"
            )
            manifest.flush()
        for point in replay:
            _append_manifest(manifest, point, results[point.index])
    try:
        if workers == 1 or len(pending) <= 1:
            _init_worker(scale, quick)
            for point in pending:
                started = time.perf_counter()
                index, result = _run_point(point_payload(point))
                results[index] = result
                if manifest is not None:
                    _append_manifest(manifest, point, result)
                record(point, "run", time.perf_counter() - started)
        else:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(scale, quick),
            ) as pool:
                started_at = {}
                futures = {}
                for point in pending:
                    futures[
                        pool.submit(_run_point, point_payload(point))
                    ] = point
                    started_at[point.index] = time.perf_counter()
                for future in as_completed(futures):
                    point = futures[future]
                    index, result = future.result()
                    results[index] = result
                    if manifest is not None:
                        _append_manifest(manifest, point, result)
                    record(
                        point, "run",
                        time.perf_counter() - started_at[point.index],
                    )
    finally:
        if manifest is not None:
            if profiler is not None:
                # runtime trailer: tagged like the provenance header so
                # load_manifest skips it — resume never replays telemetry,
                # and the per-point lines stay byte-comparable
                manifest.write(
                    dumps_canonical(
                        {
                            "manifest_version": 1,
                            "experiment": spec.experiment,
                            "runtime": to_jsonable(profiler.block()),
                        }
                    )
                    + "\n"
                )
            manifest.close()

    return SweepResult(
        experiment=spec.experiment,
        grid={axis: list(values) for axis, values in spec.grid.items()},
        fixed=dict(spec.fixed),
        points=tuple(
            {
                "params": dict(point.requested),
                "seed": point.derived_seed,
                "result": results[point.index],
            }
            for point in points
        ),
        summary=_aggregate(spec, points, results),
    )
