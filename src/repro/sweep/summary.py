"""Human-readable sweep summaries.

Two blocks: a per-point table (one row per grid point, one column per
axis and per registered metric) and, when the grid has a ``seed`` axis,
a cross-seed aggregate table with p50/p95 per non-seed group — the shape
the paper's own multi-seed numbers are quoted in.
"""

from __future__ import annotations

from .runner import SweepResult, _lookup

__all__ = ["render_sweep"]


def _short(metric: str) -> str:
    """Column header for a dotted metric path (drop the 'report.' root)."""
    return metric[len("report."):] if metric.startswith("report.") else metric


def _format(value) -> str:
    """One table cell."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width table with right-aligned columns."""
    widths = [
        max(len(header), *(len(row[i]) for row in rows)) if rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.rjust(width) for header, width in zip(headers, widths))
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def render_sweep(result: SweepResult, *, metrics: tuple[str, ...]) -> str:
    """Render the sweep report (``metrics`` are the experiment's declared
    dotted result paths; pass ``Experiment.metrics``)."""
    axes = list(result.grid)
    n_points = len(result.points)
    lines = [
        f"Sweep of {result.experiment!r}: {n_points} points over "
        + " x ".join(f"{axis}[{len(values)}]" for axis, values in result.grid.items())
        + (
            "  (fixed: "
            + ", ".join(f"{k}={v}" for k, v in result.fixed.items())
            + ")"
            if result.fixed
            else ""
        ),
        "",
    ]
    headers = axes + [_short(metric) for metric in metrics]
    rows = []
    for point in result.points:
        row = [_format(point["params"][axis]) for axis in axes]
        row += [_format(_lookup(point["result"], metric)) for metric in metrics]
        rows.append(row)
    lines.append(_table(headers, rows))
    if result.summary:
        lines.append("")
        lines.append("aggregates across seeds (p50/p95 per group):")
        agg_rows = []
        for metric, groups in result.summary.items():
            for label, stats in groups.items():
                agg_rows.append(
                    [
                        _short(metric),
                        label,
                        str(stats["n"]),
                        _format(stats["p50"]),
                        _format(stats["p95"]),
                    ]
                )
        lines.append(_table(["metric", "group", "n", "p50", "p95"], agg_rows))
    return "\n".join(lines)
