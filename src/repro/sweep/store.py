"""The persistent sweep result store.

``python -m repro sweep … --store NAME`` (or ``--out DIR``) lands every
sweep under one directory — by convention
``benchmarks/results/<sweep-name>/`` next to the spec file — holding:

* ``spec.json`` — the expanded sweep definition (experiment, grid, fixed
  overrides), enough to re-run or extend the sweep,
* ``report.json`` — the merged :class:`~repro.sweep.runner.SweepResult`
  payload in canonical JSON (what ``python -m repro metrics`` summarises),
* ``metrics.jsonl`` — one line per point (index, params, derived seed, and
  every metrics block extracted from that point's result), the
  grep/jq-friendly view of the per-point time series,
* ``manifest.jsonl`` — written by the runner itself when the CLI defaults
  the manifest into the store directory (resume-able),
* ``runtime.json`` — host-side runtime telemetry (wall clock, engine
  throughput, RSS high-water; see :mod:`repro.obs.runtime`), written only
  when a profiler is active (CLI runs). It is the one file with
  non-deterministic *values* and is excluded from every byte-identity
  comparison.

Everything funnels through :func:`~repro.common.report.dumps_canonical`,
so a stored sweep is byte-identical across same-seed re-runs and across
``--workers`` counts.
"""

from __future__ import annotations

from pathlib import Path

from ..common.report import dumps_canonical, to_jsonable
from ..metrics import collect_metric_blocks
from ..obs import runtime as obs_runtime
from .runner import SweepResult
from .spec import SweepSpec

__all__ = ["persist_sweep"]


def persist_sweep(
    out_dir: str | Path, spec: SweepSpec, result: SweepResult
) -> dict[str, Path]:
    """Write one sweep's spec/report/metrics files under ``out_dir``.

    Returns ``{filename: path}`` for what was written. The directory is
    created if needed; existing files are overwritten (a re-run replaces
    the stored result wholesale, never merges into it).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    payload = to_jsonable(result.to_dict())
    written: dict[str, Path] = {}

    spec_payload = {
        "experiment": spec.experiment,
        "grid": {axis: list(values) for axis, values in spec.grid.items()},
        "fixed": dict(spec.fixed),
    }
    spec_path = out / "spec.json"
    spec_path.write_text(
        dumps_canonical(to_jsonable(spec_payload)) + "\n", encoding="utf-8"
    )
    written["spec.json"] = spec_path

    report_path = out / "report.json"
    report_path.write_text(dumps_canonical(payload) + "\n", encoding="utf-8")
    written["report.json"] = report_path

    lines = []
    for index, point in enumerate(payload.get("points", ())):
        blocks = collect_metric_blocks(point.get("result"), "result")
        lines.append(
            dumps_canonical(
                {
                    "index": index,
                    "params": point.get("params", {}),
                    "seed": point.get("seed"),
                    "metrics": blocks,
                }
            )
        )
    metrics_path = out / "metrics.jsonl"
    metrics_path.write_text(
        "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
    )
    written["metrics.jsonl"] = metrics_path

    profiler = obs_runtime.current()
    if profiler is not None:
        # host telemetry rides next to the canonical files, never inside
        # them: runtime.json holds wall-clock measurements and sits
        # outside every byte-identity comparison
        runtime_path = out / "runtime.json"
        runtime_path.write_text(
            dumps_canonical(to_jsonable(profiler.block())) + "\n",
            encoding="utf-8",
        )
        written["runtime.json"] = runtime_path
    return written
