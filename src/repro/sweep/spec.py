"""Sweep specifications: a parameter grid over one experiment.

A :class:`SweepSpec` names a registered experiment, a grid of values for
some of its ``gridable`` :class:`~repro.experiments.params.ParamSpec`
axes, and fixed overrides for the rest. Specs parse from the CLI grid DSL

.. code-block:: text

    nodes=16,32,64 seed=0..4 fabric=32GbIB,1GbE

(whitespace-separated axes; comma-separated values; ``a..b`` is an
inclusive integer range) or from a TOML/JSON file::

    experiment = "storm"
    [grid]
    nodes = [16, 32]
    seed = [0, 1, 2, 3]
    [params]
    vms_per_node = 2

:meth:`SweepSpec.expand` yields the deterministic point list: axes iterate
in the experiment's parameter-declaration order (not the order they were
typed), the cartesian product is enumerated row-major, and every point
gets a collision-free derived seed from :mod:`repro.common.rng` keyed on
the experiment id and the point's full requested params — so
``(nodes=16, seed=0)`` and ``(nodes=32, seed=0)`` never share an RNG
stream by accident.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..common.errors import ConfigError
from ..common.report import dumps_canonical
from ..common.rng import SeedSequenceFactory
from ..experiments import registry
from ..experiments.params import ParamSpec

__all__ = ["SweepPoint", "SweepSpec", "parse_grid"]

#: the factory every per-point derived seed comes from
_SEEDS = SeedSequenceFactory("sweep")


def _parse_values(spec: ParamSpec, text: str) -> tuple:
    """Parse one axis' value list (``16,32`` or ``0..4``) via its spec."""
    values: list = []
    for token in text.split(","):
        token = token.strip()
        if ".." in token and spec.type is int:
            low_text, _, high_text = token.partition("..")
            low, high = spec.parse(low_text), spec.parse(high_text)
            if high < low:
                raise ConfigError(
                    f"axis {spec.name!r}: empty range {token!r}"
                )
            values.extend(range(low, high + 1))
        else:
            values.append(spec.parse(token))
    return tuple(values)


def parse_grid(experiment: str, text: str) -> dict[str, tuple]:
    """Parse the ``--grid`` DSL into an axis -> values dict.

    Axis names must be declared ``gridable`` by the experiment; values are
    typed by the matching :class:`ParamSpec`.
    """
    exp = registry.get(experiment)
    grid: dict[str, tuple] = {}
    for assignment in text.split():
        name, eq, values_text = assignment.partition("=")
        if not eq or not values_text:
            raise ConfigError(
                f"bad grid axis {assignment!r}: expected name=v1,v2 or "
                "name=a..b"
            )
        spec = exp.param(name)
        if not spec.gridable:
            raise ConfigError(
                f"parameter {name!r} of experiment {experiment!r} is not "
                "gridable"
            )
        if name in grid:
            raise ConfigError(f"grid axis {name!r} given twice")
        grid[name] = _parse_values(spec, values_text)
    if not grid:
        raise ConfigError("empty grid: give at least one axis")
    return grid


@dataclass(frozen=True)
class SweepPoint:
    """One expanded grid point.

    ``requested`` is the complete validated params dict as the grid/fixed
    values asked for it; ``params`` is what ``run`` actually receives —
    identical except that a declared ``seed`` parameter is replaced by
    ``derived_seed``. ``key`` is the canonical-JSON identity used by the
    resume manifest.
    """

    index: int
    experiment: str
    requested: Mapping[str, Any]
    params: Mapping[str, Any]
    key: str
    derived_seed: int | None


class SweepSpec:
    """An experiment id plus a parameter grid and fixed overrides."""

    def __init__(
        self,
        experiment: str,
        grid: Mapping[str, Sequence],
        fixed: Mapping[str, Any] | None = None,
    ) -> None:
        self.experiment = experiment
        exp = registry.get(experiment)
        self.experiment = exp.exp_id  # canonicalise aliases
        fixed = dict(fixed or {})
        overlap = sorted(set(grid) & set(fixed))
        if overlap:
            raise ConfigError(
                f"parameter(s) {', '.join(map(repr, overlap))} appear in "
                "both the grid and the fixed params"
            )
        self.grid: dict[str, tuple] = {}
        for name, values in grid.items():
            spec = exp.param(name)
            if not spec.gridable:
                raise ConfigError(
                    f"parameter {name!r} of experiment {self.experiment!r} "
                    "is not gridable"
                )
            coerced = tuple(spec.coerce(value) for value in values)
            if not coerced:
                raise ConfigError(f"grid axis {name!r} has no values")
            self.grid[name] = coerced
        # validate fixed names/values early (defaults are filled per point)
        exp.validate(fixed)
        self.fixed = {
            name: exp.param(name).coerce(value) for name, value in fixed.items()
        }

    @classmethod
    def from_grid(
        cls,
        experiment: str,
        grid_text: str,
        fixed: Mapping[str, Any] | None = None,
    ) -> "SweepSpec":
        """Build a spec from the CLI ``--grid`` DSL."""
        return cls(experiment, parse_grid(experiment, grid_text), fixed)

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "SweepSpec":
        """Load a spec from a TOML (``.toml``) or JSON file.

        Recognised keys: ``experiment`` (required), ``grid`` (table of
        axis -> value list), ``params`` (fixed overrides), and ``seeds``
        (sugar for ``grid.seed``).
        """
        path = pathlib.Path(path)
        try:
            raw_text = path.read_text()
        except OSError as error:
            raise ConfigError(f"cannot read sweep spec {path}: {error}") from None
        if path.suffix == ".toml":
            import tomllib

            try:
                data = tomllib.loads(raw_text)
            except tomllib.TOMLDecodeError as error:
                raise ConfigError(f"bad TOML in {path}: {error}") from None
        else:
            try:
                data = json.loads(raw_text)
            except json.JSONDecodeError as error:
                raise ConfigError(f"bad JSON in {path}: {error}") from None
        if not isinstance(data, dict) or "experiment" not in data:
            raise ConfigError(f"sweep spec {path} lacks an 'experiment' key")
        grid = dict(data.get("grid", {}))
        if "seeds" in data:
            if "seed" in grid:
                raise ConfigError(
                    f"sweep spec {path}: give 'seeds' or grid.seed, not both"
                )
            grid["seed"] = list(data["seeds"])
        return cls(data["experiment"], grid, data.get("params"))

    def expand(self) -> tuple[SweepPoint, ...]:
        """The deterministic point list (see module docstring)."""
        exp = registry.get(self.experiment)
        axes = [spec.name for spec in exp.params if spec.name in self.grid]
        has_seed = any(spec.name == "seed" for spec in exp.params)
        points = []
        for index, combo in enumerate(
            itertools.product(*(self.grid[axis] for axis in axes))
        ):
            requested = exp.validate({**self.fixed, **dict(zip(axes, combo))})
            key = dumps_canonical(requested)
            derived_seed = (
                _SEEDS.seed(self.experiment, key) if has_seed else None
            )
            params = dict(requested)
            if has_seed:
                params["seed"] = derived_seed
            points.append(
                SweepPoint(
                    index=index,
                    experiment=self.experiment,
                    requested=requested,
                    params=params,
                    key=key,
                    derived_seed=derived_seed,
                )
            )
        return tuple(points)
