"""Declarative parameter sweeps over registered experiments.

The paper's evaluation *is* a sweep — block sizes × codecs × subjects for
the figures, node counts × seeds for the boot-storm numbers — and the
engine is single-threaded by design, so independent runs are
embarrassingly parallel. This package turns a grid of experiment
parameters into deterministic work:

* :mod:`.spec` — :class:`SweepSpec` (experiment id + parameter grid),
  parsed from the ``--grid "nodes=16,32 seed=0..3"`` DSL or a TOML/JSON
  file, expanded into ordered :class:`SweepPoint` entries with per-point
  derived seeds,
* :mod:`.runner` — a ``ProcessPoolExecutor`` runner (workers build their
  own dataset; the parent ships only picklable params), an ordered merge
  making ``--workers N`` output byte-identical to ``--workers 1``, and a
  JSONL manifest that makes interrupted sweeps resumable,
* :mod:`.summary` — the per-point table + p50/p95-across-seeds renderer
  behind ``python -m repro sweep``,
* :mod:`.store` — the persistent result store (``--store NAME``):
  spec/report/per-point metrics files under ``benchmarks/results/``.
"""

from .runner import SweepResult, load_manifest, run_sweep
from .spec import SweepPoint, SweepSpec, parse_grid
from .store import persist_sweep
from .summary import render_sweep

__all__ = [
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "load_manifest",
    "parse_grid",
    "persist_sweep",
    "render_sweep",
    "run_sweep",
]
