"""gzip codecs (zlib deflate) at the levels the paper evaluates.

ZFS's ``compression=gzip-N`` property uses zlib at level N; the paper keeps
gzip-6 (Section 2.2: gzip-9 compresses almost the same at higher CPU cost).
"""

from __future__ import annotations

import zlib

from ..common.errors import CodecError
from .base import Codec, register_codec

__all__ = ["GzipCodec"]


class GzipCodec(Codec):
    """zlib deflate at a fixed compression level."""

    def __init__(self, level: int) -> None:
        if not 1 <= level <= 9:
            raise CodecError(f"gzip level must be in 1..9, got {level}")
        self.level = level
        self.name = f"gzip{level}"

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, payload: bytes, original_size: int) -> bytes:
        try:
            result = zlib.decompress(payload)
        except zlib.error as exc:
            raise CodecError(f"gzip decompression failed: {exc}") from exc
        if len(result) != original_size:
            raise CodecError(
                f"gzip round-trip size mismatch: expected {original_size}, got {len(result)}"
            )
        return result


register_codec("gzip1", lambda: GzipCodec(1))
register_codec("gzip6", lambda: GzipCodec(6))
register_codec("gzip9", lambda: GzipCodec(9))
