"""Codec interface and registry.

The paper evaluates ZFS inline compression with gzip-6, gzip-9, lzjb and lz4
(Figure 3). Each is a :class:`Codec`; experiments look codecs up by the names
used in the paper ("gzip6", "gzip9", "lzjb", "lz4").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from ..common.errors import CodecError

__all__ = ["Codec", "register_codec", "get_codec", "available_codecs"]


class Codec(ABC):
    """A block compressor.

    Implementations must be deterministic and must round-trip:
    ``decompress(compress(data)) == data`` for any ``bytes`` input.
    """

    #: registry key, e.g. ``"gzip6"``.
    name: str = ""

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data`` and return the compressed payload."""

    @abstractmethod
    def decompress(self, payload: bytes, original_size: int) -> bytes:
        """Invert :meth:`compress`. ``original_size`` is the uncompressed length."""

    def compressed_size(self, data: bytes) -> int:
        """Size of the compressed payload.

        The default implementation compresses and measures; codecs with a
        cheaper size-only path may override.
        """
        return len(self.compress(data))

    def effective_size(self, data: bytes) -> int:
        """Bytes the pool would allocate for this block.

        ZFS stores a block uncompressed when compression does not save at
        least 12.5 % (one sector in eight); this mirrors that rule so
        incompressible data never inflates.
        """
        compressed = self.compressed_size(data)
        if compressed >= len(data) - (len(data) >> 3):
            return len(data)
        return compressed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Codec {self.name}>"


_REGISTRY: dict[str, Callable[[], Codec]] = {}
_INSTANCES: dict[str, Codec] = {}


def register_codec(name: str, factory: Callable[[], Codec]) -> None:
    """Register a codec factory under ``name`` (idempotent for same factory)."""
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not factory:
        raise CodecError(f"codec {name!r} already registered")
    _REGISTRY[name] = factory


def get_codec(name: str) -> Codec:
    """Return the shared codec instance registered under ``name``."""
    if name not in _REGISTRY:
        raise CodecError(f"unknown codec {name!r}; available: {sorted(_REGISTRY)}")
    if name not in _INSTANCES:
        _INSTANCES[name] = _REGISTRY[name]()
    return _INSTANCES[name]


def available_codecs() -> list[str]:
    """Names of all registered codecs, sorted."""
    return sorted(_REGISTRY)
