"""Compression codecs (gzip, LZJB, LZ4) and the calibrated size estimator."""

from . import gzipcodec as _gzipcodec  # noqa: F401  (registers gzip1/6/9)
from . import lz4 as _lz4  # noqa: F401  (registers lz4)
from . import lzjb as _lzjb  # noqa: F401  (registers lzjb)
from . import zero as _zero  # noqa: F401  (registers off)
from .base import Codec, available_codecs, get_codec, register_codec
from .estimator import CalibrationPoint, SizeEstimator
from .gzipcodec import GzipCodec
from .lz4 import Lz4Codec, lz4_compress, lz4_decompress
from .lzjb import LzjbCodec, lzjb_compress, lzjb_decompress
from .zero import NullCodec, is_zero_block

__all__ = [
    "CalibrationPoint",
    "Codec",
    "GzipCodec",
    "Lz4Codec",
    "LzjbCodec",
    "NullCodec",
    "SizeEstimator",
    "available_codecs",
    "get_codec",
    "is_zero_block",
    "lz4_compress",
    "lz4_decompress",
    "lzjb_compress",
    "lzjb_decompress",
    "register_codec",
]
