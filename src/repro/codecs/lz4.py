"""LZ4 block format, implemented from scratch.

Produces and consumes the real LZ4 *block* format (the format ZFS embeds in
records, minus ZFS's 4-byte size header): a stream of sequences, each

``[token: hi=literal-length, lo=match-length-4]``
``[literal-length extension bytes (0xFF...)] [literals]``
``[little-endian 16-bit match offset] [match-length extension bytes]``

ending with a literals-only sequence. The encoder follows the reference
"fast" parser: a 4-byte hash table, greedy match extension, and the spec's
end-of-block restrictions (last 5 bytes are literals; no match starts within
the last 12 bytes).
"""

from __future__ import annotations

from ..common.errors import CodecError
from .base import Codec, register_codec

__all__ = ["Lz4Codec", "lz4_compress", "lz4_decompress"]

_MIN_MATCH = 4
_HASH_LOG = 16
_MAX_OFFSET = 65535
#: spec: the last match must start at least this many bytes before the end.
_MF_LIMIT = 12
#: spec: the last 5 bytes are always literals.
_LAST_LITERALS = 5


def _hash4(word: int) -> int:
    return (word * 2654435761) >> (32 - _HASH_LOG) & ((1 << _HASH_LOG) - 1)


def _write_length(dst: bytearray, length: int) -> None:
    while length >= 255:
        dst.append(255)
        length -= 255
    dst.append(length)


def lz4_compress(src: bytes) -> bytes:
    """Compress ``src`` into LZ4 block format."""
    n = len(src)
    dst = bytearray()
    if n == 0:
        dst.append(0)  # single empty-literal token
        return bytes(dst)
    if n < _MF_LIMIT + 1:
        _emit_sequence(dst, src, 0, n, None, 0)
        return bytes(dst)

    table = [-1] * (1 << _HASH_LOG)
    anchor = 0
    i = 0
    match_limit = n - _MF_LIMIT
    while i < match_limit:
        word = int.from_bytes(src[i : i + 4], "little")
        h = _hash4(word)
        candidate = table[h]
        table[h] = i
        if (
            candidate >= 0
            and i - candidate <= _MAX_OFFSET
            and src[candidate : candidate + 4] == src[i : i + 4]
        ):
            # extend the match forward, but never into the last-5-bytes zone
            match_len = _MIN_MATCH
            limit = n - _LAST_LITERALS
            while i + match_len < limit and src[candidate + match_len] == src[i + match_len]:
                match_len += 1
            _emit_sequence(dst, src, anchor, i - anchor, i - candidate, match_len)
            i += match_len
            anchor = i
        else:
            i += 1
    _emit_sequence(dst, src, anchor, n - anchor, None, 0)
    return bytes(dst)


def _emit_sequence(
    dst: bytearray,
    src: bytes,
    literal_start: int,
    literal_len: int,
    offset: int | None,
    match_len: int,
) -> None:
    """Emit one sequence; ``offset is None`` marks the final literals-only run."""
    lit_token = literal_len if literal_len < 15 else 15
    if offset is None:
        dst.append(lit_token << 4)
        if lit_token == 15:
            _write_length(dst, literal_len - 15)
        dst += src[literal_start : literal_start + literal_len]
        return
    mlen = match_len - _MIN_MATCH
    match_token = mlen if mlen < 15 else 15
    dst.append((lit_token << 4) | match_token)
    if lit_token == 15:
        _write_length(dst, literal_len - 15)
    dst += src[literal_start : literal_start + literal_len]
    dst += offset.to_bytes(2, "little")
    if match_token == 15:
        _write_length(dst, mlen - 15)


def lz4_decompress(payload: bytes, original_size: int) -> bytes:
    """Decompress LZ4 block format."""
    dst = bytearray()
    i = 0
    n = len(payload)
    while True:
        if i >= n:
            raise CodecError("lz4 stream truncated at token")
        token = payload[i]
        i += 1
        literal_len = token >> 4
        if literal_len == 15:
            while True:
                if i >= n:
                    raise CodecError("lz4 stream truncated in literal length")
                extra = payload[i]
                i += 1
                literal_len += extra
                if extra != 255:
                    break
        if i + literal_len > n:
            raise CodecError("lz4 literals run past end of stream")
        dst += payload[i : i + literal_len]
        i += literal_len
        if i == n:
            break  # final literals-only sequence
        if i + 2 > n:
            raise CodecError("lz4 stream truncated at offset")
        offset = int.from_bytes(payload[i : i + 2], "little")
        i += 2
        if offset == 0:
            raise CodecError("lz4 zero match offset is invalid")
        match_len = (token & 0x0F) + _MIN_MATCH
        if (token & 0x0F) == 15:
            while True:
                if i >= n:
                    raise CodecError("lz4 stream truncated in match length")
                extra = payload[i]
                i += 1
                match_len += extra
                if extra != 255:
                    break
        start = len(dst) - offset
        if start < 0:
            raise CodecError("lz4 match reaches before start of output")
        for k in range(match_len):  # may overlap, so byte-at-a-time semantics
            dst.append(dst[start + k])
    if len(dst) != original_size:
        raise CodecError(
            f"lz4 round-trip size mismatch: expected {original_size}, got {len(dst)}"
        )
    return bytes(dst)


class Lz4Codec(Codec):
    """LZ4 block-format codec (see module docstring)."""

    name = "lz4"

    def compress(self, data: bytes) -> bytes:
        return lz4_compress(data)

    def decompress(self, payload: bytes, original_size: int) -> bytes:
        return lz4_decompress(payload, original_size)


register_codec("lz4", Lz4Codec)
