"""Calibrated compressed-size estimation for accounting-scale sweeps.

Really compressing every unique block of a 600-image dataset at eleven block
sizes would dominate experiment runtime in pure Python. Instead, experiments
compress a *sample* of procedurally generated blocks per (content class,
block size) once, fit the mean compression ratio, and reuse it for millions
of blocks. The estimator is purely empirical — no hand-tuned ratios — so the
codec ordering (gzip9 <= gzip6 < lz4 < lzjb in output size) and the
block-size trend (bigger blocks compress better) come from the codecs
themselves.

A dedicated ablation benchmark (``benchmarks/bench_ablation_estimator.py``)
quantifies the estimator's per-block error against exact codec output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..common.errors import ConfigError
from .base import Codec

__all__ = ["SizeEstimator", "CalibrationPoint"]

#: signature of the sample generator: (class_id, block_size, rng) -> sample block bytes
SampleFn = Callable[[int, int, np.random.Generator], bytes]


@dataclass(frozen=True)
class CalibrationPoint:
    """Measured mean compression ratio for one (class, block size) cell."""

    class_id: int
    block_size: int
    ratio: float  # compressed bytes / raw bytes, in (0, 1]
    samples: int


@dataclass
class SizeEstimator:
    """Per-content-class compressed-size model for one codec.

    Build with :meth:`calibrate`. ``ratio(class_id, block_size)`` then returns
    the empirical mean compressed fraction; :meth:`estimate_blocks` applies it
    vectorised to per-block class-composition matrices.
    """

    codec_name: str
    block_sizes: tuple[int, ...]
    class_ids: tuple[int, ...]
    _table: np.ndarray = field(repr=False)  # shape (n_classes, n_block_sizes)
    points: tuple[CalibrationPoint, ...] = field(default=(), repr=False)

    @classmethod
    def calibrate(
        cls,
        codec: Codec,
        class_ids: Sequence[int],
        block_sizes: Sequence[int],
        sample_fn: SampleFn,
        rng: np.random.Generator,
        samples_per_point: int = 6,
    ) -> "SizeEstimator":
        """Measure mean compression ratios by really compressing samples."""
        if samples_per_point < 1:
            raise ConfigError("samples_per_point must be >= 1")
        class_ids = tuple(class_ids)
        block_sizes = tuple(sorted(block_sizes))
        table = np.ones((len(class_ids), len(block_sizes)))
        points: list[CalibrationPoint] = []
        for ci, class_id in enumerate(class_ids):
            for bi, block_size in enumerate(block_sizes):
                total_raw = 0
                total_compressed = 0
                for _ in range(samples_per_point):
                    block = sample_fn(class_id, block_size, rng)
                    if len(block) != block_size:
                        raise ConfigError(
                            f"sample_fn returned {len(block)} bytes, expected {block_size}"
                        )
                    total_raw += block_size
                    total_compressed += codec.effective_size(block)
                ratio = total_compressed / total_raw
                table[ci, bi] = ratio
                points.append(
                    CalibrationPoint(class_id, block_size, ratio, samples_per_point)
                )
        return cls(
            codec_name=codec.name,
            block_sizes=block_sizes,
            class_ids=class_ids,
            _table=table,
            points=tuple(points),
        )

    def _block_size_index(self, block_size: int) -> int:
        try:
            return self.block_sizes.index(block_size)
        except ValueError:
            raise ConfigError(
                f"block size {block_size} not calibrated; have {self.block_sizes}"
            ) from None

    def ratio(self, class_id: int, block_size: int) -> float:
        """Empirical compressed fraction for a pure-class block."""
        try:
            ci = self.class_ids.index(class_id)
        except ValueError:
            raise ConfigError(f"class {class_id} not calibrated") from None
        return float(self._table[ci, self._block_size_index(block_size)])

    def class_ratios(self, block_size: int) -> np.ndarray:
        """Vector of ratios for all calibrated classes at ``block_size``."""
        return self._table[:, self._block_size_index(block_size)].copy()

    def estimate_blocks(
        self,
        class_fractions: np.ndarray,
        block_size: int,
        *,
        min_alloc: int = 512,
    ) -> np.ndarray:
        """Estimate compressed sizes for many blocks at once.

        ``class_fractions`` has shape ``(n_blocks, n_classes)`` with each row
        summing to <= 1 (rows may sum below 1 when part of the block is a
        hole; holes contribute zero bytes). Results are clipped to
        ``[min_alloc, block_size]``: a stored block never beats one sector and
        never exceeds its raw size (ZFS stores raw when compression loses).
        """
        fractions = np.asarray(class_fractions, dtype=np.float64)
        if fractions.ndim != 2 or fractions.shape[1] != len(self.class_ids):
            raise ConfigError(
                f"class_fractions must be (n_blocks, {len(self.class_ids)}), "
                f"got {fractions.shape}"
            )
        ratios = self._table[:, self._block_size_index(block_size)]
        sizes = fractions @ ratios * block_size
        nonempty = fractions.sum(axis=1) > 0
        sizes = np.where(nonempty, np.clip(sizes, min_alloc, block_size), 0.0)
        return np.rint(sizes).astype(np.int64)
