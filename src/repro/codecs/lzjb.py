"""LZJB — ZFS's historical default compressor, implemented from scratch.

LZJB (Jeff Bonwick's Lempel-Ziv variant) is a byte-oriented LZ77 coder with a
1024-entry hash table, 3..66-byte matches, and 10-bit offsets. Every group of
eight items (literals or copy tokens) is preceded by a *copymap* byte whose
bits flag which items are copies.

This is a faithful port of the algorithm in ``usr/src/uts/common/fs/zfs/lzjb.c``
(OpenSolaris / illumos), kept in pure Python: it is used for calibration
sampling and unit tests, not bulk data paths.
"""

from __future__ import annotations

from ..common.errors import CodecError
from .base import Codec, register_codec

__all__ = ["LzjbCodec", "lzjb_compress", "lzjb_decompress"]

_MATCH_BITS = 6
_MATCH_MIN = 3
_MATCH_MAX = (1 << _MATCH_BITS) + (_MATCH_MIN - 1)  # 66
_OFFSET_MASK = (1 << (16 - _MATCH_BITS)) - 1  # 1023
_LEMPEL_SIZE = 1024


def lzjb_compress(src: bytes) -> bytes:
    """Compress ``src`` with LZJB.

    Unlike the kernel version (which bails out once output >= input and lets
    ZFS store the block raw), this always produces a decodable stream; the
    store-raw decision lives in :meth:`Codec.effective_size`.
    """
    n = len(src)
    dst = bytearray()
    lempel = [0] * _LEMPEL_SIZE
    copymask = 1 << 7  # force new copymap on first item
    copymap_pos = 0
    i = 0
    while i < n:
        copymask <<= 1
        if copymask == (1 << 8):
            copymask = 1
            copymap_pos = len(dst)
            dst.append(0)
        if i > n - _MATCH_MIN:
            dst.append(src[i])
            i += 1
            continue
        hsh = (src[i] << 16) + (src[i + 1] << 8) + src[i + 2]
        hsh += hsh >> 9
        hsh += hsh >> 5
        hp = hsh & (_LEMPEL_SIZE - 1)
        offset = (i - lempel[hp]) & _OFFSET_MASK
        lempel[hp] = i
        cpy = i - offset
        if (
            cpy >= 0
            and cpy != i
            and src[i] == src[cpy]
            and src[i + 1] == src[cpy + 1]
            and src[i + 2] == src[cpy + 2]
        ):
            dst[copymap_pos] |= copymask
            mlen = _MATCH_MIN
            limit = min(_MATCH_MAX, n - i)
            while mlen < limit and src[i + mlen] == src[cpy + mlen]:
                mlen += 1
            dst.append(((mlen - _MATCH_MIN) << (8 - _MATCH_BITS)) | (offset >> 8))
            dst.append(offset & 0xFF)
            i += mlen
        else:
            dst.append(src[i])
            i += 1
    return bytes(dst)


def lzjb_decompress(payload: bytes, original_size: int) -> bytes:
    """Invert :func:`lzjb_compress`."""
    dst = bytearray()
    src = payload
    i = 0
    n = len(src)
    copymask = 1 << 7
    copymap = 0
    while len(dst) < original_size:
        if i >= n:
            raise CodecError("lzjb stream truncated")
        copymask <<= 1
        if copymask == (1 << 8):
            copymask = 1
            copymap = src[i]
            i += 1
            if i >= n:
                raise CodecError("lzjb stream truncated after copymap")
        if copymap & copymask:
            if i + 1 >= n:
                raise CodecError("lzjb stream truncated inside copy token")
            mlen = (src[i] >> (8 - _MATCH_BITS)) + _MATCH_MIN
            offset = ((src[i] << 8) | src[i + 1]) & _OFFSET_MASK
            i += 2
            cpy = len(dst) - offset
            if cpy < 0:
                raise CodecError("lzjb copy reaches before start of output")
            for _ in range(mlen):
                if len(dst) >= original_size:
                    break
                dst.append(dst[cpy])
                cpy += 1
        else:
            dst.append(src[i])
            i += 1
    if len(dst) != original_size:
        raise CodecError(
            f"lzjb round-trip size mismatch: expected {original_size}, got {len(dst)}"
        )
    return bytes(dst)


class LzjbCodec(Codec):
    """ZFS LZJB codec (see module docstring)."""

    name = "lzjb"

    def compress(self, data: bytes) -> bytes:
        return lzjb_compress(data)

    def decompress(self, payload: bytes, original_size: int) -> bytes:
        return lzjb_decompress(payload, original_size)


register_codec("lzjb", LzjbCodec)
