"""Null codec and zero-block detection.

ZFS never allocates space for all-zero blocks (they compress to a "hole"
block pointer regardless of the compression property). The write pipeline
uses :func:`is_zero_block` for that; :class:`NullCodec` backs
``compression=off`` configurations and the XFS baseline in Figure 11.
"""

from __future__ import annotations

from .base import Codec, register_codec

__all__ = ["NullCodec", "is_zero_block"]

_ZERO_CHUNK = bytes(4096)


def is_zero_block(data: bytes) -> bool:
    """True when ``data`` is entirely zero bytes (fast path for sparse files)."""
    if not data:
        return True
    # compare in 4 KB strides; bytes comparison is C-speed
    view = memoryview(data)
    for start in range(0, len(data), len(_ZERO_CHUNK)):
        chunk = view[start : start + len(_ZERO_CHUNK)]
        if chunk != _ZERO_CHUNK[: len(chunk)]:
            return False
    return True


class NullCodec(Codec):
    """Identity codec: compression disabled."""

    name = "off"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, payload: bytes, original_size: int) -> bytes:
        return payload

    def compressed_size(self, data: bytes) -> int:
        return len(data)

    def effective_size(self, data: bytes) -> int:
        return len(data)


register_codec("off", NullCodec)
