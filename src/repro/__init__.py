"""Squirrel (HPDC'14) reproduction.

Scatter hoarding VM image contents on IaaS compute nodes: store the
deduplicated + compressed boot working set ("VMI cache") of every image of a
data center on every compute node, eliminating VM-startup network traffic.

Public entry points:

* :mod:`repro.core` -- the Squirrel system (register / boot / deregister).
* :mod:`repro.zfs` -- the ZFS-like storage substrate backing cVolumes.
* :mod:`repro.vmi` -- procedural VM-image dataset (Windows Azure community mix).
* :mod:`repro.boot` -- QCOW2/copy-on-read boot timing simulation.
* :mod:`repro.net` -- data-center network / parallel-FS simulation.
* :mod:`repro.analysis` -- metrics (dedup, CCR, cross-similarity) + curve fits.
* :mod:`repro.experiments` -- one module per paper table/figure.
"""

__version__ = "1.0.0"
