"""Grain streams → block-level views: signatures, classes, physical sizes.

These are the vectorised bridges between the procedural image model and the
storage/analysis layers. A grain stream chunked at block size ``B`` yields:

* a uint64 *signature* per block (dedup identity),
* a per-block content-class composition matrix (for the calibrated
  compressed-size estimator),
* per-block logical sizes (last block may be short).

Everything here is numpy passes — a full 600-image sweep is a few seconds
per block size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codecs import SizeEstimator
from ..common.hashing import fold_grain_signatures
from ..common.units import ceil_div
from .content import GRAIN_SIZE, N_CLASSES, class_of

__all__ = ["BlockView", "block_view", "grains_per_block"]


def grains_per_block(block_size: int) -> int:
    """Number of content grains per block of ``block_size`` bytes."""
    if block_size % GRAIN_SIZE:
        raise ValueError(f"block size {block_size} not a multiple of {GRAIN_SIZE}")
    return block_size // GRAIN_SIZE


@dataclass(frozen=True)
class BlockView:
    """One file's grain stream chunked at a fixed block size."""

    block_size: int
    signatures: np.ndarray  #: uint64, one per block
    class_fractions: np.ndarray  #: (n_blocks, N_CLASSES) grain-count fractions
    lsizes: np.ndarray  #: int64 logical bytes per block (last may be short)
    is_hole: np.ndarray  #: bool, True where the block is all hole grains

    @property
    def n_blocks(self) -> int:
        return int(self.signatures.size)

    @property
    def nonzero_lsize(self) -> int:
        """Logical bytes of non-hole blocks (the paper's 'nonzero' measure)."""
        return int(self.lsizes[~self.is_hole].sum())

    def psizes(self, estimator: SizeEstimator) -> np.ndarray:
        """Estimated compressed sizes per block (0 for holes)."""
        sizes = estimator.estimate_blocks(self.class_fractions, self.block_size)
        # short tail block: never billed beyond its logical size
        return np.minimum(sizes, self.lsizes)


def block_view(stream: np.ndarray, block_size: int) -> BlockView:
    """Chunk one grain stream into a :class:`BlockView`."""
    g = grains_per_block(block_size)
    grains = np.ascontiguousarray(stream, dtype=np.uint64)
    n_blocks = ceil_div(grains.size, g) if grains.size else 0
    signatures = fold_grain_signatures(grains, g)

    padded = grains
    if n_blocks * g != grains.size:
        padded = np.zeros(n_blocks * g, dtype=np.uint64)
        padded[: grains.size] = grains
    matrix = padded.reshape(n_blocks, g)
    classes = class_of(matrix)  # 0 = hole
    class_fractions = np.empty((n_blocks, N_CLASSES), dtype=np.float64)
    for class_id in range(1, N_CLASSES + 1):
        class_fractions[:, class_id - 1] = (classes == class_id).mean(axis=1)

    lsizes = np.full(n_blocks, block_size, dtype=np.int64)
    if n_blocks and grains.size % g:
        lsizes[-1] = (grains.size % g) * GRAIN_SIZE
    is_hole = (classes == 0).all(axis=1)
    return BlockView(
        block_size=block_size,
        signatures=signatures,
        class_fractions=class_fractions,
        lsizes=lsizes,
        is_hole=is_hole,
    )
