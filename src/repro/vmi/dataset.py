"""The Azure community-image dataset (607 images, Table 2 mix).

Builds one :class:`ImageSpec` per community image with sizes drawn from
realistic distributions and then *normalised* so the dataset totals equal the
paper's measured inputs scaled by ``DatasetConfig.scale``:

* raw:      16.4 TB  × scale,
* nonzero:   1.4 TB  × scale,
* caches:   78.5 GB  × scale.

Those three totals are properties of the paper's *input* dataset, so pinning
them is calibration of inputs, not of results; everything downstream
(dedup ratios, CCR, DDT sizes, boot times, similarity) is computed by the
system under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..common.hashing import derive_seed
from ..common.rng import stream as rng_stream
from ..common.units import GiB, KiB, MiB, TiB
from .distro import AZURE_CENSUS, OSFamily, default_families, release_weights
from .image import ImageSpec, MutationProfile

__all__ = ["DatasetConfig", "AzureCommunityDataset", "PAPER_TOTALS"]

#: The paper's dataset totals (Sections 1, 2.3, Table 1).
PAPER_TOTALS = {
    "raw_bytes": int(16.4 * TiB),
    "nonzero_bytes": int(1.4 * TiB),
    "cache_bytes": int(78.5 * GiB),
    "image_count": 607,
}


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs of the synthetic dataset.

    ``scale`` multiplies every per-image byte count so sweeps run on one
    machine; image *count* and the OS mix are never scaled. All grain-level
    ratios (dedup, similarity, CCR) are intensive and scale-invariant, which
    ``tests/test_vmi_dataset.py`` asserts.
    """

    scale: float = 1.0 / 32.0
    seed: int = derive_seed("azure-dataset-v1")
    image_count: int = 607
    #: per-image divergence from the release master (population means)
    boot_mutation_mean: float = 0.70
    body_mutation_mean: float = 0.30
    region_mean_grains: float = 256.0
    region_sigma: float = 1.8
    #: body composition (population means)
    base_fraction_mean: float = 0.35
    package_fraction_mean: float = 0.22

    def scaled(self, scale: float) -> "DatasetConfig":
        """Copy with a different scale (same seed: same images, resized)."""
        return DatasetConfig(
            scale=scale,
            seed=self.seed,
            image_count=self.image_count,
            boot_mutation_mean=self.boot_mutation_mean,
            body_mutation_mean=self.body_mutation_mean,
            region_mean_grains=self.region_mean_grains,
            region_sigma=self.region_sigma,
            base_fraction_mean=self.base_fraction_mean,
            package_fraction_mean=self.package_fraction_mean,
        )


@dataclass
class AzureCommunityDataset:
    """The 607-image dataset; iterable over :class:`ImageSpec`."""

    config: DatasetConfig = field(default_factory=DatasetConfig)
    images: list[ImageSpec] = field(init=False)

    def __post_init__(self) -> None:
        self.images = _build_images(self.config)

    @classmethod
    def from_images(
        cls, config: DatasetConfig, images: list[ImageSpec]
    ) -> "AzureCommunityDataset":
        """Wrap an already-built spec list (no re-synthesis) — the bridge
        from :class:`~repro.vmi.catalog.LazyImageCatalog` back to eager
        call sites. The list is shared, not copied."""
        dataset = object.__new__(cls)
        dataset.config = config
        dataset.images = images
        return dataset

    def __iter__(self) -> Iterator[ImageSpec]:
        return iter(self.images)

    def __len__(self) -> int:
        return len(self.images)

    # -- dataset-level properties ---------------------------------------------

    @property
    def total_raw_bytes(self) -> int:
        return sum(spec.raw_bytes for spec in self.images)

    @property
    def total_nonzero_bytes(self) -> int:
        return sum(spec.nonzero_bytes for spec in self.images)

    @property
    def total_cache_bytes(self) -> int:
        return sum(spec.cache_bytes for spec in self.images)

    def scaled_up(self, value: float) -> float:
        """Undo the dataset scale for paper-comparable reporting."""
        return value / self.config.scale

    def census(self) -> dict[str, int]:
        """Images per Table 2 OS row (must reproduce AZURE_CENSUS)."""
        counts = dict.fromkeys(AZURE_CENSUS, 0)
        for spec in self.images:
            counts[_census_name_of(spec)] += 1
        return counts

    def images_of_release(self, family: str, release: str) -> list[ImageSpec]:
        return [
            spec
            for spec in self.images
            if spec.release.family == family and spec.release.name == release
        ]


def _census_name_of(spec: ImageSpec) -> str:
    for fam in default_families():
        if fam.name == spec.release.family:
            return fam.census_name
    raise LookupError(f"unknown family {spec.release.family}")


def _allocate_counts(families: tuple[OSFamily, ...], total: int) -> list[int]:
    """Spread ``total`` images over families proportionally to the census."""
    census_total = sum(f.image_count for f in families)
    counts = [int(round(f.image_count * total / census_total)) for f in families]
    # fix rounding drift on the largest family
    drift = total - sum(counts)
    counts[int(np.argmax(counts))] += drift
    return counts


def _build_images(config: DatasetConfig) -> list[ImageSpec]:
    families = default_families()
    counts = _allocate_counts(families, config.image_count)
    rng = rng_stream("dataset-build", config.seed)

    specs_raw: list[dict] = []
    image_id = 0
    for family, count in zip(families, counts):
        weights = release_weights(family)
        release_choices = rng.choice(len(family.releases), size=count, p=weights)
        for choice in release_choices:
            release = family.releases[int(choice)]
            specs_raw.append(
                {
                    "image_id": image_id,
                    "release": release,
                    "seed": derive_seed(config.seed, "image", image_id),
                    # size draws (normalised below)
                    "raw": float(np.clip(rng.lognormal(np.log(27 * GiB), 0.45),
                                         5 * GiB, 70 * GiB)),
                    "nonzero_frac": float(np.clip(rng.lognormal(np.log(0.085), 0.35),
                                                  0.02, 0.4)),
                    "cache": float(np.clip(rng.lognormal(np.log(130 * MiB), 0.30),
                                           60 * MiB, 320 * MiB)),
                    "base_fraction": float(np.clip(
                        rng.normal(config.base_fraction_mean, 0.12), 0.2, 0.85)),
                    "package_fraction": float(np.clip(
                        rng.normal(config.package_fraction_mean, 0.12), 0.05, 0.75)),
                    "boot_rate": float(np.clip(
                        rng.normal(config.boot_mutation_mean, 0.07), 0.03, 0.95)),
                    "body_rate": float(np.clip(
                        rng.normal(config.body_mutation_mean, 0.06), 0.03, 0.9)),
                }
            )
            image_id += 1

    # normalise the three dataset totals to the paper's inputs × scale
    raw_target = PAPER_TOTALS["raw_bytes"] * config.scale
    nonzero_target = PAPER_TOTALS["nonzero_bytes"] * config.scale
    cache_target = PAPER_TOTALS["cache_bytes"] * config.scale
    raw_sum = sum(s["raw"] for s in specs_raw)
    nonzero_sum = sum(s["raw"] * s["nonzero_frac"] for s in specs_raw)
    cache_sum = sum(s["cache"] for s in specs_raw)

    # resolve normalised per-image sizes first: the boot span of a release is
    # a release-level constant (the stream position where every sibling
    # image's base body starts), derived from its largest cache
    resolved: list[dict] = []
    for s in specs_raw:
        raw_bytes = int(s["raw"] * raw_target / raw_sum)
        nonzero_bytes = int(s["raw"] * s["nonzero_frac"] * nonzero_target / nonzero_sum)
        cache_bytes = int(s["cache"] * cache_target / cache_sum)
        cache_bytes = max(2 * KiB, min(cache_bytes, nonzero_bytes))
        nonzero_bytes = max(nonzero_bytes, cache_bytes)
        resolved.append(
            {**s, "raw_b": raw_bytes, "nonzero_b": nonzero_bytes, "cache_b": cache_bytes}
        )

    boot_span: dict[tuple[str, str], int] = {}
    for s in resolved:
        key = (s["release"].family, s["release"].name)
        grains = -(-s["cache_b"] // KiB)
        boot_span[key] = max(boot_span.get(key, 0), grains)
    # round spans up to the largest analysis block (1024 grains) so padding
    # ends on a block boundary at every swept block size
    boot_span = {k: -(-v // 1024) * 1024 for k, v in boot_span.items()}

    specs: list[ImageSpec] = []
    for s in resolved:
        key = (s["release"].family, s["release"].name)
        specs.append(
            ImageSpec(
                image_id=s["image_id"],
                release=s["release"],
                seed=s["seed"],
                raw_bytes=s["raw_b"],
                nonzero_bytes=s["nonzero_b"],
                cache_bytes=s["cache_b"],
                base_fraction=s["base_fraction"],
                package_fraction=s["package_fraction"],
                mutation=MutationProfile(
                    boot_rate=s["boot_rate"],
                    body_rate=s["body_rate"],
                    region_mean_grains=config.region_mean_grains,
                    region_sigma=config.region_sigma,
                ),
                boot_span_grains=boot_span[key],
            )
        )
    return specs
