"""Lazy image catalog: grain streams synthesized on first access.

The eager :class:`~repro.vmi.dataset.AzureCommunityDataset` builds every
:class:`ImageSpec` up front (cheap — integer bookkeeping) but callers then
materialise grain streams for *all* images before simulating anything,
which is what made sweep workers pay seconds of startup per point and put
``scale=1`` (the full 16.4 TB fleet, ~11 GB of grain IDs) out of reach.

:class:`LazyImageCatalog` is the SimFS-style fix: the spec table is built
once, but each image's grain stream / block view is synthesized **on
first access** and memoised under a **bounded byte budget** (LRU by
recency of use). Synthesis is a pure function of the spec, so an evicted
entry re-synthesizes bit-identically — eviction can change timing, never
results. The catalog itself is described by a picklable
:class:`CatalogConfig`, so a multiprocess sweep ships the config in
milliseconds and each worker materialises only what its points touch.

The :class:`ImageCatalog` protocol is what consumers code against:
``specs``, ``grain_stream(image_id)``, ``block_view(image_id, bs)``.
:func:`as_catalog` adapts an eager dataset (it shares the already-built
spec list), which keeps every ``dataset=`` call site working unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterator, Literal, Protocol, runtime_checkable

import numpy as np

from ..common.errors import ConfigError
from ..common.units import GiB
from .dataset import AzureCommunityDataset, DatasetConfig, _build_images
from .image import ImageSpec, cache_stream, image_stream
from .streams import BlockView, block_view

__all__ = [
    "CatalogConfig",
    "DEFAULT_BUDGET_BYTES",
    "ImageCatalog",
    "LazyImageCatalog",
    "as_catalog",
]

Subject = Literal["caches", "images"]

#: default memo budget: comfortably holds every cache stream at any scale
#: and the hot working set of full image streams at scale=1
DEFAULT_BUDGET_BYTES = 2 * GiB


@dataclass(frozen=True)
class CatalogConfig:
    """Everything needed to (re)materialise a catalog — and nothing else.

    Frozen and picklable: this is what crosses the process boundary to
    sweep workers.
    """

    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    #: upper bound on memoised stream/view bytes (LRU-evicted above it)
    budget_bytes: int = DEFAULT_BUDGET_BYTES

    def __post_init__(self) -> None:
        if self.budget_bytes <= 0:
            raise ConfigError("catalog byte budget must be positive")


@runtime_checkable
class ImageCatalog(Protocol):
    """What consumers need from an image catalog."""

    @property
    def specs(self) -> list[ImageSpec]:
        """Every image's spec (eagerly built — specs are cheap)."""
        ...

    def spec(self, image_id: int) -> ImageSpec:
        """One image's spec by id."""
        ...

    def grain_stream(
        self, image_id: int, subject: Subject = "caches"
    ) -> np.ndarray:
        """The image's grain-ID stream, synthesized on first access."""
        ...

    def block_view(
        self, image_id: int, block_size: int, subject: Subject = "caches"
    ) -> BlockView:
        """The stream folded into blocks, synthesized on first access."""
        ...


def _view_nbytes(view: BlockView) -> int:
    return (
        view.signatures.nbytes
        + view.class_fractions.nbytes
        + view.lsizes.nbytes
        + view.is_hole.nbytes
    )


class LazyImageCatalog:
    """The bounded-memo :class:`ImageCatalog` implementation."""

    def __init__(
        self,
        config: CatalogConfig | DatasetConfig | None = None,
        *,
        specs: list[ImageSpec] | None = None,
    ) -> None:
        if config is None:
            config = CatalogConfig()
        elif isinstance(config, DatasetConfig):
            config = CatalogConfig(dataset=config)
        self.config = config
        self._specs = specs
        self._by_id: dict[int, ImageSpec] | None = None
        #: (kind, image_id[, block_size]) -> array or view, LRU-ordered
        self._memo: OrderedDict[tuple, object] = OrderedDict()
        self._memo_bytes: dict[tuple, int] = {}
        self._resident = 0
        self.peak_resident_bytes = 0
        self._dataset: AzureCommunityDataset | None = None

    # -- the spec table ------------------------------------------------------------

    @property
    def specs(self) -> list[ImageSpec]:
        if self._specs is None:
            self._specs = _build_images(self.config.dataset)
        return self._specs

    def spec(self, image_id: int) -> ImageSpec:
        if self._by_id is None:
            self._by_id = {spec.image_id: spec for spec in self.specs}
        try:
            return self._by_id[image_id]
        except KeyError:
            raise ConfigError(
                f"image {image_id} is not in the catalog"
            ) from None

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[ImageSpec]:
        return iter(self.specs)

    def scaled_up(self, value: float) -> float:
        """Undo the dataset scale for paper-comparable reporting."""
        return value / self.config.dataset.scale

    @property
    def dataset(self) -> AzureCommunityDataset:
        """An eager-dataset facade over the same (shared) spec list —
        the bridge for analysis code reached through
        ``ExperimentContext.catalog(scale).dataset``."""
        if self._dataset is None:
            self._dataset = AzureCommunityDataset.from_images(
                self.config.dataset, self.specs
            )
        return self._dataset

    # -- lazy synthesis under the byte budget ---------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Bytes currently held by the stream/view memo."""
        return self._resident

    def grain_stream(
        self, image_id: int, subject: Subject = "caches"
    ) -> np.ndarray:
        key = (subject, image_id)
        hit = self._memo.get(key)
        if hit is not None:
            self._memo.move_to_end(key)
            return hit  # type: ignore[return-value]
        spec = self.spec(image_id)
        builder = cache_stream if subject == "caches" else image_stream
        stream = builder(spec)
        self._admit(key, stream, stream.nbytes)
        return stream

    def block_view(
        self, image_id: int, block_size: int, subject: Subject = "caches"
    ) -> BlockView:
        key = (subject, image_id, block_size)
        hit = self._memo.get(key)
        if hit is not None:
            self._memo.move_to_end(key)
            return hit  # type: ignore[return-value]
        view = block_view(self.grain_stream(image_id, subject), block_size)
        self._admit(key, view, _view_nbytes(view))
        return view

    def drop(self, subject: Subject | None = None) -> None:
        """Release memoised streams/views (all, or one subject's)."""
        keys = [
            key for key in self._memo
            if subject is None or key[0] == subject
        ]
        for key in keys:
            del self._memo[key]
            self._resident -= self._memo_bytes.pop(key)

    def _admit(self, key: tuple, value: object, nbytes: int) -> None:
        self._memo[key] = value
        self._memo_bytes[key] = nbytes
        self._resident += nbytes
        if self._resident > self.peak_resident_bytes:
            self.peak_resident_bytes = self._resident
        budget = self.config.budget_bytes
        while self._resident > budget and len(self._memo) > 1:
            old_key, _ = self._memo.popitem(last=False)
            self._resident -= self._memo_bytes.pop(old_key)


def as_catalog(source) -> ImageCatalog | None:
    """Adapt ``source`` to the catalog protocol.

    Accepts a catalog (returned as-is), an eager
    :class:`AzureCommunityDataset` (wrapped — the already-built spec list
    is shared, so nothing is recomputed), or ``None``.
    """
    if source is None:
        return None
    if isinstance(source, ImageCatalog):
        return source
    if isinstance(source, AzureCommunityDataset):
        return LazyImageCatalog(
            CatalogConfig(dataset=source.config), specs=source.images
        )
    raise ConfigError(
        f"cannot adapt {type(source).__name__} to an ImageCatalog"
    )
