"""OS distributions, releases and the Table 2 census.

The paper's dataset is the 607 community images of Windows Azure as of
November 2013 (Table 2): 579 Ubuntu, 17 RedHat/CentOS, 5 OpenSuse/SUSE,
3 Debian, 3 unidentified Linux. Every image derives from one *release* of
one *family*; releases of the same family share content (in short runs),
which is what drives cross-release deduplication at small block sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.hashing import derive_seed

__all__ = [
    "OSFamily",
    "Release",
    "AZURE_CENSUS",
    "EC2_CENSUS",
    "default_families",
    "release_weights",
]

#: Table 2, Windows Azure column (November 2013).
AZURE_CENSUS: dict[str, int] = {
    "Ubuntu": 579,
    "RedHat/CentOS": 17,
    "OpenSuse/Suse Ent.": 5,
    "Debian": 3,
    "Windows": 0,
    "Unidentified Linux": 3,
}

#: Table 2, Amazon EC2 column (October 2013, all regions).
EC2_CENSUS: dict[str, int] = {
    "Ubuntu": 5720,
    "RedHat/CentOS": 847,
    "OpenSuse/Suse Ent.": 8,
    "Debian": 30,
    "Windows": 531,
    "Unidentified Linux": 2654,
}


@dataclass(frozen=True)
class Release:
    """One release (e.g. 'ubuntu-12.04') of an OS family."""

    family: str
    name: str
    #: fraction of master grains shared with the family-wide pool, i.e. with
    #: sibling releases (package payloads that survive across releases)
    family_share: float
    #: mean run length (grains) of family-shared stretches; short runs mean
    #: cross-release dedup only materialises at small block sizes
    share_run_grains: int

    @property
    def seed(self) -> int:
        return derive_seed("release", self.family, self.name)


@dataclass(frozen=True)
class OSFamily:
    """One OS family with its census count and release list."""

    name: str
    census_name: str
    image_count: int
    releases: tuple[Release, ...]
    #: Zipf exponent of release popularity (newer LTS releases dominate)
    popularity_skew: float = 0.9

    @property
    def seed(self) -> int:
        return derive_seed("family", self.name)


def _releases(family: str, names: list[str], share: float, run: int) -> tuple[Release, ...]:
    return tuple(Release(family, name, share, run) for name in names)


def default_families() -> tuple[OSFamily, ...]:
    """The Azure community-image family structure used throughout.

    Release counts reflect what was current in late 2013; 'unidentified'
    images become three single-release families with no cross-family sharing.
    """
    ubuntu_names = [
        "10.04", "10.10", "11.04", "11.10", "12.04", "12.10", "13.04", "13.10",
    ]
    return (
        OSFamily(
            name="ubuntu",
            census_name="Ubuntu",
            image_count=AZURE_CENSUS["Ubuntu"],
            releases=_releases("ubuntu", ubuntu_names, share=0.55, run=6),
        ),
        OSFamily(
            name="rhel-centos",
            census_name="RedHat/CentOS",
            image_count=AZURE_CENSUS["RedHat/CentOS"],
            releases=_releases("rhel-centos", ["5.9", "6.2", "6.4"], share=0.50, run=6),
        ),
        OSFamily(
            name="suse",
            census_name="OpenSuse/Suse Ent.",
            image_count=AZURE_CENSUS["OpenSuse/Suse Ent."],
            releases=_releases("suse", ["12.3", "sles-11"], share=0.45, run=6),
        ),
        OSFamily(
            name="debian",
            census_name="Debian",
            image_count=AZURE_CENSUS["Debian"],
            releases=_releases("debian", ["6.0", "7.0"], share=0.55, run=6),
        ),
        OSFamily(
            name="other-a",
            census_name="Unidentified Linux",
            image_count=1,
            releases=_releases("other-a", ["r1"], share=0.0, run=6),
        ),
        OSFamily(
            name="other-b",
            census_name="Unidentified Linux",
            image_count=1,
            releases=_releases("other-b", ["r1"], share=0.0, run=6),
        ),
        OSFamily(
            name="other-c",
            census_name="Unidentified Linux",
            image_count=1,
            releases=_releases("other-c", ["r1"], share=0.0, run=6),
        ),
    )


def release_weights(family: OSFamily) -> np.ndarray:
    """Zipf-skewed popularity over a family's releases (newest most popular)."""
    n = len(family.releases)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = 1.0 / ranks**family.popularity_skew
    # newest releases (end of list) are the popular ones
    weights = weights[::-1].copy()
    return weights / weights.sum()
