"""Grain content: classes, class tagging, and byte materialisation.

Image content is addressed in 1 KB *grains*. A grain is identified by a
64-bit grain ID whose low 3 bits encode its :class:`ContentClass`; grain ID 0
is the hole (all-zero) grain. Given only a grain ID, this module can
deterministically materialise the grain's bytes, so two images referencing
the same grain ID always see identical content — which is exactly what makes
grain-ID equality a sound stand-in for content-hash equality in the
accounting experiments.

Content classes model the byte statistics found inside OS images:

* ``TEXT``       — configuration/scripts/logs: word-structured ASCII,
* ``BINARY``     — ELF executables and libraries: dense structured binary,
* ``STRUCTURED`` — filesystem metadata, package databases: highly repetitive
  records,
* ``PACKED``     — already-compressed payloads (archives, media, .gz man
  pages): incompressible.

Each pool kind (boot working set, distro base install, user software) mixes
these classes differently — the mechanism behind caches compressing better
than full images (paper Sections 2.2, 4.2).
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from ..common.hashing import derive_seed, mix64
from ..common.rng import stream

__all__ = [
    "ContentClass",
    "PoolKind",
    "GRAIN_SIZE",
    "N_CLASSES",
    "CLASS_MASK",
    "tag_with_classes",
    "class_of",
    "materialize_grain",
    "materialize_block",
    "sample_block",
]

#: grain granularity: 1 KB, the finest block size the paper sweeps.
GRAIN_SIZE: int = 1024

CLASS_MASK = np.uint64(0x7)
_ID_MASK = np.uint64(0xFFFFFFFFFFFFFFF8)
_CLASS_SALT = np.uint64(derive_seed("grain-class-salt"))


class ContentClass(IntEnum):
    """Byte-statistics class of one grain (encoded in grain-ID bits 0..2)."""

    TEXT = 1
    BINARY = 2
    STRUCTURED = 3
    PACKED = 4


N_CLASSES: int = len(ContentClass)


class PoolKind(IntEnum):
    """What part of an image a grain pool models."""

    BOOT = 0  #: boot working set: kernel, initrd, init daemons, configs
    BASE = 1  #: distro base install beyond the boot set
    USER = 2  #: user-installed software, archives, data


#: Class mixture per pool kind (fractions of TEXT, BINARY, STRUCTURED, PACKED).
#: Boot sets skew to executables + metadata; user data skews to packed
#: payloads. These mixtures produce gzip-6 ratios of ~2.6 for caches and ~1.9
#: for full images at large block sizes, matching Figure 2's levels.
KIND_CLASS_MIX: dict[PoolKind, tuple[float, float, float, float]] = {
    PoolKind.BOOT: (0.20, 0.48, 0.17, 0.15),
    PoolKind.BASE: (0.20, 0.42, 0.13, 0.25),
    PoolKind.USER: (0.10, 0.30, 0.10, 0.50),
}


def _cumulative_thresholds(kind: PoolKind) -> np.ndarray:
    mix = np.asarray(KIND_CLASS_MIX[kind], dtype=np.float64)
    return np.cumsum(mix) * 10_000.0


def tag_with_classes(base_hashes: np.ndarray, kind: PoolKind) -> np.ndarray:
    """Stamp content classes into grain-ID low bits.

    ``base_hashes`` are uniform uint64 values (from :func:`mix64`). The class
    draw is derived from the hash itself, so the same base hash always gets
    the same class — a grain shared between releases keeps one identity.
    """
    base = np.asarray(base_hashes, dtype=np.uint64)
    draw = (mix64(base ^ _CLASS_SALT) % np.uint64(10_000)).astype(np.float64)
    classes = (
        np.searchsorted(_cumulative_thresholds(kind), draw, side="right") + 1
    ).astype(np.uint64)
    np.clip(classes, 1, N_CLASSES, out=classes)
    return (base & _ID_MASK) | classes


def class_of(grain_ids: np.ndarray) -> np.ndarray:
    """Content-class codes of grain IDs (0 for the hole grain)."""
    return (np.asarray(grain_ids, dtype=np.uint64) & CLASS_MASK).astype(np.int64)


# -- byte materialisation -----------------------------------------------------

_VOCAB = [
    w.encode()
    for w in (
        "alloc kernel module device mount cache block inode daemon socket "
        "error retry config option enable disable address route packet "
        "buffer queue thread mutex signal handler driver probe region "
        "page table entry flush sync write read open close seek limit "
        "user group owner permission session service target unit depend"
    ).split()
]


def materialize_grain(grain_id: int) -> bytes:
    """Deterministically generate the 1 KB content of one grain."""
    gid = int(grain_id)
    if gid == 0:
        return bytes(GRAIN_SIZE)
    cls = ContentClass(gid & 0x7) if (gid & 0x7) in set(ContentClass) else ContentClass.PACKED
    rng = stream("grain-bytes", gid)
    if cls is ContentClass.TEXT:
        return _text_grain(rng)
    if cls is ContentClass.BINARY:
        return _binary_grain(rng)
    if cls is ContentClass.STRUCTURED:
        return _structured_grain(rng)
    return _packed_grain(rng)


def _text_grain(rng: np.random.Generator) -> bytes:
    indices = rng.integers(0, len(_VOCAB), size=256)
    seps = rng.integers(0, 8, size=256)
    parts = []
    for word_idx, sep in zip(indices, seps):
        parts.append(_VOCAB[int(word_idx)])
        parts.append(b"\n" if sep == 0 else (b"=" if sep == 1 else b" "))
    return b"".join(parts)[:GRAIN_SIZE].ljust(GRAIN_SIZE, b" ")


def _binary_grain(rng: np.random.Generator) -> bytes:
    # ELF-like: a repeated 32-byte "instruction template" with sparse operand
    # noise, prefixed by a symbol-table-ish run of small integers
    template = rng.integers(0, 256, size=32, dtype=np.uint8)
    body = np.tile(template, GRAIN_SIZE // 32)
    noise_positions = rng.integers(0, GRAIN_SIZE, size=GRAIN_SIZE // 8)
    body[noise_positions] = rng.integers(0, 256, size=noise_positions.size, dtype=np.uint8)
    return body.tobytes()


def _structured_grain(rng: np.random.Generator) -> bytes:
    # inode-table-like: 16-byte records, 12 constant bytes + 4-byte counter
    header = rng.integers(0, 256, size=12, dtype=np.uint8)
    n_records = GRAIN_SIZE // 16
    records = np.zeros((n_records, 16), dtype=np.uint8)
    records[:, :12] = header
    counters = (rng.integers(0, 1 << 16) + np.arange(n_records)).astype(np.uint32)
    records[:, 12:] = counters.view(np.uint8).reshape(n_records, 4)[:, :4]
    return records.tobytes()


def _packed_grain(rng: np.random.Generator) -> bytes:
    return rng.integers(0, 256, size=GRAIN_SIZE, dtype=np.uint8).tobytes()


def materialize_block(grain_ids: np.ndarray) -> bytes:
    """Concatenate the bytes of a block's grains (holes are zeros)."""
    return b"".join(materialize_grain(int(gid)) for gid in np.asarray(grain_ids).ravel())


def sample_block(class_id: int, block_size: int, rng: np.random.Generator) -> bytes:
    """Estimator calibration hook: a pure-class block of random grains."""
    if block_size % GRAIN_SIZE:
        raise ValueError(f"block size {block_size} not a multiple of {GRAIN_SIZE}")
    n_grains = block_size // GRAIN_SIZE
    bases = rng.integers(1, 1 << 60, size=n_grains, dtype=np.uint64) << np.uint64(3)
    gids = bases | np.uint64(class_id)
    return materialize_block(gids)
