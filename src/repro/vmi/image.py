"""Image specifications and grain-stream synthesis.

An :class:`ImageSpec` describes one community image: which release it derives
from, its raw/nonzero/cache byte counts, and its mutation parameters. The two
stream builders produce the grain-ID sequences the rest of the system
consumes:

* :func:`cache_stream`  — the boot working set (the "VMI cache"),
* :func:`image_stream`  — the full nonzero content; its prefix *is* the
  cache stream (the boot set is part of the image), so cache-vs-image
  comparisons are internally consistent.

Mutation model: a user's image is the release master plus *clustered*
modifications — a swapped kernel, a rewritten package database, appended
logs — modelled as a Poisson process of regions with lognormal lengths whose
grains are replaced by image-private grains. Clustering is essential: it
spreads the dedup-vs-block-size transition across the whole 1 KB–1 MB sweep
(small regions break small blocks only; large regions dominate at large
block sizes), which is what gives Figure 2/12 their smooth slopes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.rng import stream as rng_stream
from .content import GRAIN_SIZE, PoolKind
from .distro import Release
from .pools import (
    master_grains,
    package_pool_grains,
    private_grains,
    update_pool_grains,
)

__all__ = ["ImageSpec", "MutationProfile", "cache_stream", "image_stream"]

#: master index offset separating the boot region from the body region, so
#: the two never alias (no cache is larger than this many grains)
BODY_MASTER_OFFSET: int = 1 << 22


@dataclass(frozen=True)
class MutationProfile:
    """Per-image divergence from the release master."""

    boot_rate: float  #: fraction of boot-region grains replaced
    body_rate: float  #: fraction of body-region grains replaced
    region_mean_grains: float  #: mean mutated-region length (lognormal)
    region_sigma: float  #: lognormal sigma of region lengths


@dataclass(frozen=True)
class ImageSpec:
    """One community VM image (sizes already include the dataset scale)."""

    image_id: int
    release: Release
    seed: int
    raw_bytes: int  #: apparent VHD size (mostly holes)
    nonzero_bytes: int  #: allocated content
    cache_bytes: int  #: boot working set size
    base_fraction: float  #: share of the body that follows the release master
    package_fraction: float  #: share of the user region drawn from the package pool
    mutation: MutationProfile
    #: release-level constant: stream position where the base body starts.
    #: All images of a release place master content at identical offsets
    #: (users modify a copied VHD in place, they don't shift it), so the boot
    #: region is padded with holes up to this span — without it, large-block
    #: dedup across sibling images would be destroyed by misalignment.
    boot_span_grains: int = 0

    @property
    def cache_grains(self) -> int:
        return max(1, self.cache_bytes // GRAIN_SIZE)

    @property
    def nonzero_grains(self) -> int:
        return max(self.cache_grains, self.nonzero_bytes // GRAIN_SIZE)

    @property
    def body_grains(self) -> int:
        return self.nonzero_grains - self.cache_grains

    @property
    def base_body_grains(self) -> int:
        return int(self.body_grains * self.base_fraction)

    @property
    def user_grains(self) -> int:
        return self.body_grains - self.base_body_grains


#: fraction of mutation regions that are shared updates (same kernel update,
#: same package upgrade) rather than image-private edits. Shared updates are
#: what saturate the per-cache hash-growth curves (Figures 13/16/17).
UPDATE_SHARED_FRACTION = 0.7
#: popularity of update versions (most images run the latest)
UPDATE_VERSION_WEIGHTS = (0.45, 0.25, 0.15, 0.10, 0.05)
#: mutation regions replace whole files, and the filesystem allocates file
#: extents on coarse boundaries — so regions are aligned to this many grains.
#: Without the alignment every region edge mints two per-image-unique blocks
#: that never deduplicate, drowning the update-sharing signal.
REGION_ALIGN_GRAINS = 64


def _mutation_regions(
    length: int, rate: float, profile: MutationProfile, rng: np.random.Generator
) -> list[tuple[int, int]]:
    """Poisson mutation regions with lognormal lengths, as (start, end)."""
    if length == 0 or rate <= 0.0:
        return []
    mean_len = profile.region_mean_grains
    # lognormal with the requested mean: mean = exp(mu + sigma^2/2)
    mu = np.log(mean_len) - profile.region_sigma**2 / 2.0
    expected_regions = max(1, int(round(rate * length / mean_len)))
    n_regions = rng.poisson(expected_regions)
    if n_regions == 0:
        return []
    starts = rng.integers(0, length, size=n_regions)
    lengths = np.maximum(
        1, rng.lognormal(mu, profile.region_sigma, size=n_regions)
    ).astype(np.int64)
    align = REGION_ALIGN_GRAINS
    starts = (starts // align) * align
    ends = np.minimum(-(-(starts + lengths) // align) * align, length)
    return [(int(s), int(e)) for s, e in zip(starts, ends) if e > s]


def _apply_mutations(
    master: np.ndarray,
    spec: ImageSpec,
    *,
    region_tag: str,
    rate: float,
    kind: PoolKind,
    rng: np.random.Generator,
) -> np.ndarray:
    """Overlay an image's mutation regions onto a master window.

    Each region is either a *shared update* (drawn from the release's update
    pool at an aligned offset — sibling images applying the same update
    share it) or image-private content.
    """
    regions = _mutation_regions(len(master), rate, spec.mutation, rng)
    if not regions:
        return master
    out = master.copy()
    version_count = len(UPDATE_VERSION_WEIGHTS)
    for start, end in regions:
        if rng.random() < UPDATE_SHARED_FRACTION:
            version = int(
                rng.choice(version_count, p=UPDATE_VERSION_WEIGHTS)
            )
            offsets = np.arange(start, end, dtype=np.uint64)
            out[start:end] = update_pool_grains(
                spec.release, kind, version, offsets
            )
        else:
            # key private grains by position so overlapping regions of one
            # image agree, while other images never collide
            out[start:end] = _private_at(
                spec.seed,
                f"{region_tag}-mut",
                np.arange(start, end, dtype=np.int64),
                kind=kind,
            )
    return out


def cache_stream(spec: ImageSpec) -> np.ndarray:
    """Grain IDs of the image's VMI cache (boot working set)."""
    n = spec.cache_grains
    master = master_grains(spec.release, 0, n, kind=PoolKind.BOOT)
    rng = rng_stream("mutate-boot", spec.seed)
    return _apply_mutations(
        master,
        spec,
        region_tag="boot",
        rate=spec.mutation.boot_rate,
        kind=PoolKind.BOOT,
        rng=rng,
    )


def _base_body_stream(spec: ImageSpec) -> np.ndarray:
    n = spec.base_body_grains
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    master = master_grains(
        spec.release, BODY_MASTER_OFFSET, n, kind=PoolKind.BASE
    )
    rng = rng_stream("mutate-body", spec.seed)
    return _apply_mutations(
        master,
        spec,
        region_tag="body",
        rate=spec.mutation.body_rate,
        kind=PoolKind.BASE,
        rng=rng,
    )


#: package-pool extents are whole software payloads: sizeable contiguous runs
_PKG_EXTENT_MEAN_GRAINS = 64
#: the package pool's span relative to one image's user region: draws of two
#: images overlap with a probability set by this ratio, independent of the
#: dataset scale (a fixed span would make cross-image similarity grow with
#: scale)
_PKG_POOL_SPAN_FACTOR = 48
#: a user region's private draws come from a pool this fraction of its size;
#: overlapping draws model within-image duplication (~25-30% self-dedup)
_SELF_DEDUP_POOL_FRACTION = 0.55


def _user_stream(spec: ImageSpec) -> np.ndarray:
    """User region: interleaved package-pool extents and private data.

    Fully vectorised: extent lengths, kinds, and pool offsets are drawn as
    arrays, then expanded to per-grain offsets with the repeat/cumsum trick.
    """
    total = spec.user_grains
    if total <= 0:
        return np.empty(0, dtype=np.uint64)
    rng = rng_stream("user-region", spec.seed)
    # oversample extents, then trim to exactly `total` grains
    n_ext = max(4, int(2.2 * total / _PKG_EXTENT_MEAN_GRAINS) + 8)
    lengths = np.maximum(
        4, rng.exponential(_PKG_EXTENT_MEAN_GRAINS, size=n_ext)
    ).astype(np.int64)
    ends = np.cumsum(lengths)
    n_used = int(np.searchsorted(ends, total)) + 1
    lengths = lengths[:n_used]
    lengths[-1] -= ends[n_used - 1] - total
    is_pkg = rng.random(n_used) < spec.package_fraction
    # whole-payload draws: extents start at payload-aligned pool offsets
    pkg_span = max(4096, total * _PKG_POOL_SPAN_FACTOR)
    pkg_starts = rng.integers(0, max(1, pkg_span // 64), size=n_used) * 64
    # private extents draw from a bounded per-image pool, so an image repeats
    # some of its own content (duplicate locale files, copies, repeated fs
    # metadata) — the within-image dedup real VMI studies report, which
    # raises an image's dedup ratio without raising cross-image similarity
    private_pool_span = max(64, int(total * _SELF_DEDUP_POOL_FRACTION))
    private_starts = rng.integers(0, max(1, private_pool_span // 16), size=n_used) * 16
    ext_base = np.where(is_pkg, pkg_starts, private_starts)

    starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)
    offsets = np.repeat(ext_base, lengths) + within
    pkg_mask = np.repeat(is_pkg, lengths)

    out = np.empty(total, dtype=np.uint64)
    if pkg_mask.any():
        out[pkg_mask] = package_pool_grains(offsets[pkg_mask])
    if (~pkg_mask).any():
        out[~pkg_mask] = _private_at(
            spec.seed, "user", offsets[~pkg_mask], kind=PoolKind.USER
        )
    return out


def _private_at(
    image_seed: int, region: str, offsets: np.ndarray, *, kind: PoolKind
) -> np.ndarray:
    """Private grains at explicit per-grain offsets (vectorised helper)."""
    from ..common.hashing import derive_seed, mix64_pair
    from .content import tag_with_classes

    seed = derive_seed("private", image_seed, region)
    base = mix64_pair(
        np.full(offsets.shape, seed, dtype=np.uint64),
        np.asarray(offsets, dtype=np.uint64),
    )
    return tag_with_classes(base, kind)


def image_stream(spec: ImageSpec) -> np.ndarray:
    """Grain IDs of the image's full content layout.

    Layout: ``[boot region][hole padding to the release boot span]``
    ``[base body][user region]``. The hole padding (grain ID 0) models the
    free space after the boot files; it keeps the base body at a stable,
    release-wide stream position so sibling images stay block-aligned.
    """
    boot = cache_stream(spec)
    pad_len = max(0, spec.boot_span_grains - boot.size)
    padding = np.zeros(pad_len, dtype=np.uint64)
    return np.concatenate(
        [boot, padding, _base_body_stream(spec), _user_stream(spec)]
    )
