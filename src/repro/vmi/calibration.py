"""Convenience constructors for calibrated size estimators.

Ties :class:`repro.codecs.SizeEstimator` to the procedural content
generators: estimators are calibrated by *really compressing* sampled
generated blocks per (content class, block size), then cached per
(codec, block-size tuple) so repeated sweeps don't re-pay calibration.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from ..codecs import SizeEstimator, get_codec
from ..common.rng import stream
from ..common.units import ANALYSIS_BLOCK_SIZES
from .content import N_CLASSES, sample_block

__all__ = ["make_estimator"]


@lru_cache(maxsize=32)
def _cached(codec_name: str, block_sizes: tuple[int, ...], samples: int) -> SizeEstimator:
    rng = stream("estimator-calibration", codec_name, *block_sizes)
    return SizeEstimator.calibrate(
        get_codec(codec_name),
        class_ids=range(1, N_CLASSES + 1),
        block_sizes=block_sizes,
        sample_fn=sample_block,
        rng=rng,
        samples_per_point=samples,
    )


def make_estimator(
    codec_name: str = "gzip6",
    block_sizes: Sequence[int] = ANALYSIS_BLOCK_SIZES,
    *,
    samples_per_point: int = 6,
) -> SizeEstimator:
    """Calibrated compressed-size estimator for ``codec_name``.

    Calibration compresses ``samples_per_point`` generated blocks per
    (class, block size) cell with the real codec; results are cached for the
    process lifetime.
    """
    return _cached(codec_name, tuple(sorted(block_sizes)), samples_per_point)
