"""Procedural VM-image dataset: the 607 Azure community images.

Images are grain-addressed procedural content (see :mod:`~repro.vmi.content`)
drawn from release master layouts (:mod:`~repro.vmi.pools`) with per-image
clustered mutations (:mod:`~repro.vmi.image`). The dataset facade
(:mod:`~repro.vmi.dataset`) reproduces Table 2's OS mix and the paper's
dataset totals at a configurable scale.
"""

from .calibration import make_estimator
from .catalog import (
    DEFAULT_BUDGET_BYTES,
    CatalogConfig,
    ImageCatalog,
    LazyImageCatalog,
    as_catalog,
)
from .content import (
    GRAIN_SIZE,
    N_CLASSES,
    ContentClass,
    PoolKind,
    class_of,
    materialize_block,
    materialize_grain,
    sample_block,
    tag_with_classes,
)
from .dataset import PAPER_TOTALS, AzureCommunityDataset, DatasetConfig
from .distro import AZURE_CENSUS, EC2_CENSUS, OSFamily, Release, default_families
from .image import ImageSpec, MutationProfile, cache_stream, image_stream
from .pools import master_grains, package_pool_grains, private_grains
from .streams import BlockView, block_view, grains_per_block

__all__ = [
    "AZURE_CENSUS",
    "EC2_CENSUS",
    "GRAIN_SIZE",
    "N_CLASSES",
    "PAPER_TOTALS",
    "AzureCommunityDataset",
    "BlockView",
    "CatalogConfig",
    "ContentClass",
    "DEFAULT_BUDGET_BYTES",
    "DatasetConfig",
    "ImageCatalog",
    "ImageSpec",
    "LazyImageCatalog",
    "MutationProfile",
    "OSFamily",
    "PoolKind",
    "Release",
    "as_catalog",
    "block_view",
    "cache_stream",
    "class_of",
    "default_families",
    "grains_per_block",
    "image_stream",
    "make_estimator",
    "master_grains",
    "materialize_block",
    "materialize_grain",
    "package_pool_grains",
    "private_grains",
    "sample_block",
    "tag_with_classes",
]
