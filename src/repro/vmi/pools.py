"""Grain-pool generators: release masters, the package pool, private grains.

Pools are *functional* — a pool is a deterministic mapping from index to
grain ID, evaluated lazily with vectorised numpy. Nothing is stored; the
whole 607-image dataset is a few kilobytes of specs until streams are drawn.

Pool structure (mechanisms, not hard-coded curves):

* A **release master** is the byte layout every image of that release derives
  from (users start from the release's published VHD). At each index the
  master grain is either family-shared (same ID in every sibling release,
  drawn in short runs of ``share_run_grains``) or release-private. Short
  shared runs mean cross-release dedup exists at small block sizes and
  washes out at large ones — one of the two trends behind Figure 2.
* The **package pool** is a global store of popular software payloads; user
  regions of unrelated images draw overlapping extents from it, giving
  images (not caches) a level of cross-image similarity independent of
  release.
* **Private grains** are unique to one image (user data, logs, mutated
  configs).
"""

from __future__ import annotations

import numpy as np

from ..common.hashing import derive_seed, mix64, mix64_pair
from .content import PoolKind, tag_with_classes
from .distro import Release

__all__ = [
    "master_grains",
    "package_pool_grains",
    "private_grains",
    "PACKAGE_POOL_SEED",
]

PACKAGE_POOL_SEED: int = derive_seed("global-package-pool")


def master_grains(
    release: Release, start: int, length: int, *, kind: PoolKind
) -> np.ndarray:
    """Grain IDs ``[start, start+length)`` of a release's master layout.

    Family-shared stretches are decided per run of ``share_run_grains``
    indices with probability ``family_share``; within a shared run the grain
    ID comes from the family pool (identical across sibling releases at the
    same index), otherwise from the release pool.
    """
    if length <= 0:
        return np.empty(0, dtype=np.uint64)
    idx = np.arange(start, start + length, dtype=np.uint64)
    family_seed = derive_seed("family-pool", release.family, int(kind))
    release_seed = derive_seed("release-pool", release.family, release.name, int(kind))
    run_ids = idx // np.uint64(max(1, release.share_run_grains))
    share_draw = mix64(mix64_pair(np.uint64(family_seed) ^ np.uint64(0xABCD), run_ids))
    threshold = np.uint64(int(release.family_share * 10_000))
    shared = (share_draw % np.uint64(10_000)) < threshold
    family_base = mix64_pair(np.full(length, family_seed, dtype=np.uint64), idx)
    release_base = mix64_pair(np.full(length, release_seed, dtype=np.uint64), idx)
    base = np.where(shared, family_base, release_base)
    return tag_with_classes(base, kind)


def package_pool_grains(offsets: np.ndarray) -> np.ndarray:
    """Grain IDs of the global package pool at the given pool offsets."""
    offs = np.asarray(offsets, dtype=np.uint64)
    base = mix64_pair(np.full(offs.shape, PACKAGE_POOL_SEED, dtype=np.uint64), offs)
    return tag_with_classes(base, PoolKind.USER)


def update_pool_grains(
    release: Release, kind: PoolKind, version: int, offsets: np.ndarray
) -> np.ndarray:
    """Grain IDs of one *update version* of a release, addressed by master
    position.

    Users of one release apply the same updates (apt-get upgrade pulls the
    same kernel, the same openssl), and an update overwrites the same files
    at the same positions of the master layout. So a shared-update mutation
    region is keyed by (release, version, master position): two sibling
    images on the same update version agree bit-for-bit — block-aligned by
    construction — wherever their updated regions overlap. Distinct update
    content per release is therefore *bounded* (versions × master span), and
    the per-cache new-hash rate saturates as caches accumulate — the bend in
    Figures 13/16/17.
    """
    offs = np.asarray(offsets, dtype=np.uint64)
    seed = derive_seed(
        "update-pool", release.family, release.name, int(kind), version
    )
    base = mix64_pair(np.full(offs.shape, seed, dtype=np.uint64), offs)
    return tag_with_classes(base, kind)


def private_grains(
    image_seed: int, region: str, count: int, *, kind: PoolKind, start: int = 0
) -> np.ndarray:
    """Grain IDs unique to one image's ``region`` (never shared)."""
    if count <= 0:
        return np.empty(0, dtype=np.uint64)
    seed = derive_seed("private", image_seed, region)
    idx = np.arange(start, start + count, dtype=np.uint64)
    base = mix64_pair(np.full(count, seed, dtype=np.uint64), idx)
    return tag_with_classes(base, kind)
