"""Partial hoarding: popularity-aware VMI cache placement.

The paper's Squirrel replicates every image's cache to every compute node.
This package adds the decision layer between workload and storage that
relaxes that: a :class:`~repro.placement.policy.PlacementPolicy` chooses
*which nodes hoard which image*, a
:class:`~repro.placement.directory.PlacementDirectory` answers "who holds
it?" on a boot miss so the cold read can be redirected to a nearby peer
instead of the glusterfs origin, and pluggable transports
(unicast/multicast/swarm) model how seeds and adoptions move. The
:class:`~repro.placement.coordinator.PlacementCoordinator` ties the three
together and hangs off :class:`~repro.core.squirrel.Squirrel` as its
optional ``placement`` field — when absent, behaviour is byte-identical to
the paper baseline.
"""

from .coordinator import PlacementCoordinator, PlacementSpec, build_coordinator
from .directory import PlacementDirectory
from .policy import (
    POLICY_NAMES,
    FullPolicy,
    PlacementContext,
    PlacementPolicy,
    TenantAffinePolicy,
    TopKPolicy,
    ZipfWeightedPolicy,
    make_policy,
)
from .popularity import fleet_popularity, observed_popularity, zipf_weights
from .transport import (
    PEER_REDIRECT_PURPOSE,
    SEED_PURPOSE,
    TRANSPORT_NAMES,
    SeedResult,
    seed_transfer,
)

__all__ = [
    "PEER_REDIRECT_PURPOSE",
    "POLICY_NAMES",
    "SEED_PURPOSE",
    "TRANSPORT_NAMES",
    "FullPolicy",
    "PlacementContext",
    "PlacementCoordinator",
    "PlacementDirectory",
    "PlacementPolicy",
    "PlacementSpec",
    "SeedResult",
    "TenantAffinePolicy",
    "TopKPolicy",
    "ZipfWeightedPolicy",
    "build_coordinator",
    "fleet_popularity",
    "make_policy",
    "observed_popularity",
    "seed_transfer",
    "zipf_weights",
]
