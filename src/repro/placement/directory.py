"""The placement directory: who holds which image's cache slice.

`TimedSquirrel` consults this on every boot miss. Lookups are O(1) on
image id; :meth:`PlacementDirectory.nearest_holder` ranks live holders by
ring distance on the compute-node index (compute nodes are racked in name
order, so adjacent indices share a switch in the modelled topology) and
falls over to the next survivor when the closest holder is down.

Byte accounting is **logical** cache bytes per image — the same unit
:func:`repro.core.squirrel.cold_read_bytes` uses — so hoarded-bytes
comparisons between policies (and against full replication) are apples to
apples.
"""

from __future__ import annotations

from ..common.errors import ConfigError

__all__ = ["PlacementDirectory"]


class PlacementDirectory:
    """Tracks holder sets, supports adoption, and answers nearest-holder."""

    def __init__(self, nodes: tuple[str, ...] | list[str]) -> None:
        if not nodes:
            raise ConfigError("directory needs at least one compute node")
        self._nodes = tuple(nodes)
        self._index = {name: i for i, name in enumerate(self._nodes)}
        if len(self._index) != len(self._nodes):
            raise ConfigError("duplicate compute node names")
        self._holders: dict[int, dict[str, None]] = {}
        self._cache_bytes: dict[int, int] = {}

    # -- registration ---------------------------------------------------------------

    def add_image(
        self, image_id: int, holders, cache_bytes: int
    ) -> None:
        """Record an image's holder set and its logical cache size."""
        holder_map: dict[str, None] = {}
        for name in holders:
            if name not in self._index:
                raise ConfigError(f"unknown compute node {name!r}")
            holder_map[name] = None
        if not holder_map:
            raise ConfigError(f"image {image_id} needs at least one holder")
        self._holders[image_id] = holder_map
        self._cache_bytes[image_id] = int(cache_bytes)

    def drop_image(self, image_id: int) -> None:
        """Forget an image (deregistration)."""
        self._holders.pop(image_id, None)
        self._cache_bytes.pop(image_id, None)

    def adopt(self, node_name: str, image_id: int) -> None:
        """Promote ``node_name`` into the image's holder set."""
        if node_name not in self._index:
            raise ConfigError(f"unknown compute node {node_name!r}")
        if image_id not in self._holders:
            raise ConfigError(f"image {image_id} is not tracked")
        self._holders[image_id][node_name] = None

    # -- queries --------------------------------------------------------------------

    def holders(self, image_id: int) -> tuple[str, ...]:
        """Holder names in insertion order (placement order, then adopters)."""
        return tuple(self._holders.get(image_id, ()))

    def holds(self, node_name: str, image_id: int) -> bool:
        """Whether ``node_name`` is assigned the image's cache."""
        return node_name in self._holders.get(image_id, {})

    def images(self) -> list[int]:
        """All tracked image ids, ascending."""
        return sorted(self._holders)

    def images_of(self, node_name: str) -> list[int]:
        """Image ids hoarded on a node, ascending."""
        return sorted(
            image_id
            for image_id, holder_map in self._holders.items()
            if node_name in holder_map
        )

    def cache_bytes_of(self, image_id: int) -> int:
        """Logical cache bytes of a tracked image."""
        return self._cache_bytes.get(image_id, 0)

    def hoarded_bytes(self, node_name: str) -> int:
        """Logical cache bytes hoarded on one node."""
        return sum(
            self._cache_bytes[image_id]
            for image_id, holder_map in self._holders.items()
            if node_name in holder_map
        )

    def total_hoarded_bytes(self) -> int:
        """Fleet-wide hoarded bytes: Σ cache_bytes × holder count."""
        return sum(
            self._cache_bytes[image_id] * len(holder_map)
            for image_id, holder_map in self._holders.items()
        )

    def total_replicas(self) -> int:
        """Total (image, holder) pairs across the fleet."""
        return sum(len(holder_map) for holder_map in self._holders.values())

    # -- peer selection -------------------------------------------------------------

    def nearest_holder(
        self, image_id: int, reader: str, *, is_up
    ) -> str | None:
        """Closest live holder to ``reader`` by ring distance, or None.

        ``is_up`` is a predicate on node names (the caller wires it to the
        cluster's ``online`` flags, which the fault injector drives). The
        reader itself is never returned — if it held the cache this would
        have been a hit. Ties in distance break toward the lower node index.
        """
        holder_map = self._holders.get(image_id)
        if not holder_map:
            return None
        n = len(self._nodes)
        reader_index = self._index.get(reader, 0)
        best: tuple[int, int] | None = None
        best_name: str | None = None
        for name in holder_map:
            if name == reader or not is_up(name):
                continue
            index = self._index[name]
            around = abs(index - reader_index)
            distance = min(around, n - around)
            key = (distance, index)
            if best is None or key < best:
                best = key
                best_name = name
        return best_name
