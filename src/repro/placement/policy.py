"""Placement policies: which compute nodes hoard which image's cache.

The paper's Squirrel hoards every cache on every node (``full``). The
policies here trade hit rate for hoarded bytes:

* ``full`` — every node holds every cache (paper baseline).
* ``top_k`` — the K most popular images are hoarded fleet-wide; the long
  tail keeps only a floor of R scattered replicas.
* ``zipf_weighted`` — per-image replica count proportional to declared
  popularity (relative to the hottest image), floored at R.
* ``tenant_affine`` — each image lives on its owning tenant's affinity
  node set, sized by the tenant's request weight and floored at R.

Every choice is deterministic under :func:`repro.common.rng.stream`, keyed
on ``("placement", policy, image, fleet)`` — re-running a scenario with the
same seed reproduces the same hoard map bit-for-bit, which is what keeps
sweep merges byte-identical across worker counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..common.errors import ConfigError
from ..common.rng import stream as rng_stream

__all__ = [
    "PlacementContext",
    "PlacementPolicy",
    "FullPolicy",
    "TopKPolicy",
    "ZipfWeightedPolicy",
    "TenantAffinePolicy",
    "POLICY_NAMES",
    "make_policy",
]

#: registry order also drives CLI ``choices`` for the ``policy`` parameter
POLICY_NAMES = ("full", "top_k", "zipf_weighted", "tenant_affine")


@dataclass(frozen=True)
class PlacementContext:
    """Everything a policy may look at when assigning holders.

    ``popularity`` is a pmf over image ids (catalogue order). ``owners``
    maps image id → owning tenant id and ``tenant_weights`` tenant id →
    request share; both may be empty for policies that don't use tenancy.
    """

    nodes: tuple[str, ...]  #: compute node names, cluster order
    popularity: tuple[float, ...]
    owners: tuple[int, ...] = ()
    tenant_weights: tuple[float, ...] = ()

    @property
    def n_images(self) -> int:
        """Catalogue size the context was built for."""
        return len(self.popularity)


@runtime_checkable
class PlacementPolicy(Protocol):
    """Assigns every catalogue image its set of hoarding nodes."""

    name: str

    def place(self, ctx: PlacementContext) -> dict[int, tuple[str, ...]]:
        """Return image id → holder node names for the whole catalogue."""
        ...


def _check_floor(floor: int) -> int:
    if floor < 1:
        raise ConfigError("replica floor must be at least 1")
    return floor


def _scatter(
    policy_name: str, image_id: int, nodes: tuple[str, ...], n_replicas: int
) -> tuple[str, ...]:
    """Pick ``n_replicas`` distinct nodes, keyed on (policy, image, fleet)."""
    n_replicas = min(n_replicas, len(nodes))
    if n_replicas == len(nodes):
        return nodes
    rng = rng_stream("placement", policy_name, image_id, len(nodes))
    picked = rng.choice(len(nodes), size=n_replicas, replace=False)
    return tuple(nodes[i] for i in sorted(int(i) for i in picked))


@dataclass(frozen=True)
class FullPolicy:
    """Paper baseline: every online node hoards every cache."""

    name: str = "full"

    def place(self, ctx: PlacementContext) -> dict[int, tuple[str, ...]]:
        """Every image is held by every node."""
        return {image_id: ctx.nodes for image_id in range(ctx.n_images)}


@dataclass(frozen=True)
class TopKPolicy:
    """Hoard the K most popular images fleet-wide; tail gets the floor.

    Ties in popularity break toward the lower image id (stable argsort on
    descending popularity), so membership of the top-K set is deterministic.
    """

    top_k: int = 8
    replica_floor: int = 2
    name: str = "top_k"

    def place(self, ctx: PlacementContext) -> dict[int, tuple[str, ...]]:
        """Top-K images → all nodes; others → ``replica_floor`` scattered."""
        if self.top_k < 0:
            raise ConfigError("top_k must be non-negative")
        floor = _check_floor(self.replica_floor)
        popularity = np.asarray(ctx.popularity, dtype=np.float64)
        order = np.argsort(-popularity, kind="stable")
        hot = set(int(i) for i in order[: self.top_k])
        placement: dict[int, tuple[str, ...]] = {}
        for image_id in range(ctx.n_images):
            if image_id in hot:
                placement[image_id] = ctx.nodes
            else:
                placement[image_id] = _scatter(
                    self.name, image_id, ctx.nodes, floor
                )
        return placement


@dataclass(frozen=True)
class ZipfWeightedPolicy:
    """Replica count proportional to popularity, floored at R.

    The hottest image gets a full-fleet replica set; an image half as
    popular gets half the nodes, never fewer than ``replica_floor``.
    """

    replica_floor: int = 2
    name: str = "zipf_weighted"

    def place(self, ctx: PlacementContext) -> dict[int, tuple[str, ...]]:
        """Scale each image's replica count by popularity / max popularity."""
        floor = _check_floor(self.replica_floor)
        popularity = np.asarray(ctx.popularity, dtype=np.float64)
        peak = float(popularity.max()) if popularity.size else 0.0
        n_nodes = len(ctx.nodes)
        placement: dict[int, tuple[str, ...]] = {}
        for image_id in range(ctx.n_images):
            share = popularity[image_id] / peak if peak > 0 else 0.0
            replicas = max(floor, math.ceil(share * n_nodes))
            placement[image_id] = _scatter(
                self.name, image_id, ctx.nodes, replicas
            )
        return placement


@dataclass(frozen=True)
class TenantAffinePolicy:
    """Hoard each image on its owning tenant's affinity node set.

    A tenant's affinity set is sized by its request weight (a tenant that
    generates a third of the arrivals gets about a third of the fleet),
    floored at R, and is shared by all images the tenant owns — that
    co-location is the point: the tenant's own boots hit locally.
    """

    replica_floor: int = 2
    name: str = "tenant_affine"

    def place(self, ctx: PlacementContext) -> dict[int, tuple[str, ...]]:
        """Images map to their owner tenant's deterministic node set."""
        floor = _check_floor(self.replica_floor)
        if len(ctx.owners) != ctx.n_images or not ctx.tenant_weights:
            raise ConfigError(
                "tenant_affine needs owners and tenant_weights in the context"
            )
        n_nodes = len(ctx.nodes)
        affinity: dict[int, tuple[str, ...]] = {}
        for tenant_id, weight in enumerate(ctx.tenant_weights):
            size = max(floor, math.ceil(float(weight) * n_nodes))
            affinity[tenant_id] = _scatter(
                f"{self.name}-t{tenant_id}", tenant_id, ctx.nodes, size
            )
        return {
            image_id: affinity[ctx.owners[image_id]]
            for image_id in range(ctx.n_images)
        }


def make_policy(
    name: str, *, top_k: int = 8, replica_floor: int = 2
) -> PlacementPolicy:
    """Build a policy by CLI name, applying only the knobs it understands."""
    if name == "full":
        return FullPolicy()
    if name == "top_k":
        return TopKPolicy(top_k=top_k, replica_floor=replica_floor)
    if name == "zipf_weighted":
        return ZipfWeightedPolicy(replica_floor=replica_floor)
    if name == "tenant_affine":
        return TenantAffinePolicy(replica_floor=replica_floor)
    raise ConfigError(
        f"unknown placement policy {name!r}; choose from {', '.join(POLICY_NAMES)}"
    )
