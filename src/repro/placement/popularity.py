"""Image-popularity models that feed placement policies.

Full replication (the paper's baseline) never needs to know which images
are hot. Partial hoarding does: the policies in :mod:`repro.placement.policy`
rank the catalogue by expected request share and spend replicas where the
probability mass is. Two sources are supported:

* **Declared** — the exact pmf implied by a
  :class:`~repro.workload.tenants.TenantPopulation` (weighted mixture of
  per-tenant Zipf preferences), via :func:`fleet_popularity`. This is what
  the storm scenarios use; it keeps placement deterministic per seed with no
  sampling noise.
* **Observed** — empirical request counts normalised by
  :func:`observed_popularity`, for callers that replay a trace instead.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ConfigError

__all__ = ["zipf_weights", "observed_popularity", "fleet_popularity"]


def zipf_weights(n_images: int, exponent: float) -> np.ndarray:
    """Zipf(``exponent``) pmf over ``n_images`` ranks (rank 0 hottest)."""
    if n_images < 1:
        raise ConfigError("need at least one image")
    if exponent < 0:
        raise ConfigError("zipf exponent must be non-negative")
    ranks = np.arange(1, n_images + 1, dtype=np.float64)
    raw = 1.0 / ranks**exponent
    return raw / raw.sum()


def observed_popularity(counts) -> np.ndarray:
    """Normalise empirical request counts into a pmf.

    All-zero counts degrade to uniform popularity rather than NaN, so a
    policy built before any traffic still places something sensible.
    """
    arr = np.asarray(counts, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigError("counts must be a non-empty 1-D sequence")
    if np.any(arr < 0):
        raise ConfigError("counts must be non-negative")
    total = arr.sum()
    if total <= 0:
        return np.full(arr.size, 1.0 / arr.size)
    return arr / total


def fleet_popularity(population) -> np.ndarray:
    """Declared per-image popularity of a tenant population.

    Thin veneer over
    :meth:`~repro.workload.tenants.TenantPopulation.expected_popularity`,
    kept here so placement code depends on the popularity *shape* rather
    than the workload package.
    """
    return np.asarray(population.expected_popularity(), dtype=np.float64)
