"""Seeding transports: how a cache slice reaches its holder set.

Registration (and adoption re-seeding) must move the cache to every
assigned holder. Three transports are modelled, reusing the
:mod:`repro.net` primitives so ledger accounting and durations match the
rest of the simulator:

* ``unicast`` — the origin sends each holder its own copy
  (:func:`repro.net.multicast.unicast_fanout`); the origin uplink
  serialises the copies.
* ``multicast`` — one transmission, every holder listens
  (:func:`repro.net.multicast.multicast`); runs at the slowest member's
  rate plus a small retransmit overhead.
* ``swarm`` — BitTorrent-style
  (:func:`repro.net.p2p.swarm_distribute`); the origin seeds ~``1+log2 n``
  copies and peers exchange the rest.

All three record ledger entries under :data:`SEED_PURPOSE`, distinct from
boot reads and peer redirects, so nothing is double-counted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ConfigError
from ..net import multicast, swarm_distribute, unicast_fanout

__all__ = [
    "SeedResult",
    "TRANSPORT_NAMES",
    "SEED_PURPOSE",
    "PEER_REDIRECT_PURPOSE",
    "seed_transfer",
]

#: registry order also drives CLI ``choices`` for the ``transport`` parameter
TRANSPORT_NAMES = ("unicast", "multicast", "swarm")

#: ledger purpose of placement seeding (registration, adoption, reseed)
SEED_PURPOSE = "placement-seed"
#: ledger purpose of a boot redirected to a peer holder
PEER_REDIRECT_PURPOSE = "peer-redirect"


@dataclass(frozen=True)
class SeedResult:
    """Normalised outcome of one seeding round, whatever the transport."""

    transport: str
    n_bytes: int  #: payload size (per receiver ingress)
    n_receivers: int
    duration_s: float
    origin_bytes: int  #: bytes that crossed the origin's uplink
    peer_upload_bytes: int  #: bytes sourced peer-to-peer (swarm only)

    @property
    def receiver_bytes(self) -> int:
        """Total ingress across all receivers."""
        return self.n_bytes * self.n_receivers


def seed_transfer(
    transport: str, ledger, origin, receivers, n_bytes: int
) -> SeedResult:
    """Move ``n_bytes`` from ``origin`` to ``receivers`` via ``transport``.

    ``origin``/``receivers`` are topology :class:`~repro.net.topology.Node`
    objects; ledger entries are recorded under :data:`SEED_PURPOSE`.
    """
    if transport == "unicast":
        result = unicast_fanout(
            ledger, origin, receivers, n_bytes, purpose=SEED_PURPOSE
        )
        return SeedResult(
            transport, n_bytes, result.n_receivers, result.duration_s,
            origin_bytes=result.sender_bytes, peer_upload_bytes=0,
        )
    if transport == "multicast":
        result = multicast(
            ledger, origin, receivers, n_bytes, purpose=SEED_PURPOSE
        )
        return SeedResult(
            transport, n_bytes, result.n_receivers, result.duration_s,
            origin_bytes=result.sender_bytes, peer_upload_bytes=0,
        )
    if transport == "swarm":
        result = swarm_distribute(
            ledger, origin, receivers, n_bytes, purpose=SEED_PURPOSE
        )
        return SeedResult(
            transport, n_bytes, result.n_receivers, result.duration_s,
            origin_bytes=result.origin_bytes,
            peer_upload_bytes=result.peer_upload_bytes,
        )
    raise ConfigError(
        f"unknown transport {transport!r}; choose from {', '.join(TRANSPORT_NAMES)}"
    )
