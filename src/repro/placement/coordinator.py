"""The placement coordinator: glue between policy, directory, and cluster.

One coordinator per :class:`~repro.core.squirrel.Squirrel` (attached as its
``placement`` field). It owns the policy's precomputed hoard map, installs
cache slices into holder ccVolumes at registration time, answers peer
lookups on boot misses, enforces the adoption budget, and re-seeds nodes
returning from downtime. All of its ledger traffic uses the dedicated
purposes :data:`~repro.placement.transport.SEED_PURPOSE` and
:data:`~repro.placement.transport.PEER_REDIRECT_PURPOSE`, so boot-read
accounting (Figure 18) and the glusterfs served-bytes tally are never
double-counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import ConfigError
from ..core.cluster import CCVOLUME
from ..core.replica import apply_to_nodes
from .directory import PlacementDirectory
from .policy import (
    POLICY_NAMES,
    PlacementContext,
    PlacementPolicy,
    make_policy,
)
from .transport import (
    PEER_REDIRECT_PURPOSE,
    SEED_PURPOSE,
    TRANSPORT_NAMES,
    SeedResult,
    seed_transfer,
)

__all__ = ["PlacementSpec", "PlacementCoordinator", "build_coordinator"]


@dataclass(frozen=True)
class PlacementSpec:
    """Declarative placement configuration (what the experiment grids)."""

    policy: str = "full"
    transport: str = "multicast"
    top_k: int = 8
    replica_floor: int = 2
    #: per-node promote-on-miss budget in logical cache bytes (0 = off)
    adopt_budget_bytes: int = 0

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ConfigError(
                f"unknown placement policy {self.policy!r}; "
                f"choose from {', '.join(POLICY_NAMES)}"
            )
        if self.transport not in TRANSPORT_NAMES:
            raise ConfigError(
                f"unknown transport {self.transport!r}; "
                f"choose from {', '.join(TRANSPORT_NAMES)}"
            )
        if self.adopt_budget_bytes < 0:
            raise ConfigError("adoption budget must be non-negative")

    def to_dict(self) -> dict:
        """Plain-type view embedded in experiment reports."""
        return {
            "adopt_budget_bytes": self.adopt_budget_bytes,
            "policy": self.policy,
            "replica_floor": self.replica_floor,
            "top_k": self.top_k,
            "transport": self.transport,
        }


@dataclass
class PlacementCoordinator:
    """Runtime placement state for one cluster."""

    spec: PlacementSpec
    policy: PlacementPolicy
    directory: PlacementDirectory
    assignments: dict[int, tuple[str, ...]]
    #: per-image cache rows (signature, lsize, psize, is_hole) for adoption
    _rows: dict[int, list] = field(default_factory=dict)
    #: per-node logical bytes spent from the adoption budget
    _adopted_by_node: dict[str, int] = field(default_factory=dict)
    #: result of the most recent seeding round (the timed layer charges it)
    last_seed: SeedResult | None = None

    # running tallies, surfaced via stats()
    peer_redirects: int = 0
    redirect_bytes: int = 0
    origin_fallbacks: int = 0
    adoptions: int = 0
    adopted_bytes: int = 0
    seed_rounds: int = 0
    seed_receiver_bytes: int = 0
    seed_origin_bytes: int = 0
    seed_peer_upload_bytes: int = 0
    seed_duration_s: float = 0.0
    reseed_bytes: int = 0

    # -- registration ---------------------------------------------------------------

    def holders_for(self, image_id: int) -> tuple[str, ...]:
        """Assigned holder names for an image (policy map, post-adoption)."""
        placed = self.directory.holders(image_id)
        if placed:
            return placed
        assigned = self.assignments.get(image_id)
        if assigned is None:
            raise ConfigError(
                f"image {image_id} is outside the placed catalogue"
            )
        return assigned

    def seed_image(self, cluster, image_spec, cache_file: str, rows: list) -> SeedResult:
        """Install a freshly registered cache on its holders and charge it.

        Writes the cache rows into every *online* holder's ccVolume, records
        the transfer through the configured transport, and tracks the image
        in the directory. Offline holders catch up via :meth:`reseed_node`.
        """
        image_id = image_spec.image_id
        assigned = self.holders_for(image_id)
        self._rows[image_id] = rows
        self.directory.add_image(image_id, assigned, image_spec.cache_bytes)
        online = [
            cluster.node(name) for name in assigned
            if cluster.node(name).online
        ]
        # holders sharing a replica (same hoard history) install once
        apply_to_nodes(
            getattr(cluster, "replicas", None),
            online,
            ("install", cache_file),
            lambda pool: pool.dataset(CCVOLUME)
            .write_file_virtual(cache_file, rows),
        )
        result = seed_transfer(
            self.spec.transport,
            cluster.ledger,
            cluster.storage.primary,
            [holder.node for holder in online],
            image_spec.cache_bytes,
        )
        self.last_seed = result
        self.seed_rounds += 1
        self.seed_receiver_bytes += result.receiver_bytes
        self.seed_origin_bytes += result.origin_bytes
        self.seed_peer_upload_bytes += result.peer_upload_bytes
        self.seed_duration_s += result.duration_s
        return result

    def drop_image(self, cluster, image_id: int, cache_file: str) -> None:
        """Deregistration: remove the cache from every holder ccVolume."""
        holders = [
            cluster.node(name) for name in self.directory.holders(image_id)
        ]
        apply_to_nodes(
            getattr(cluster, "replicas", None),
            holders,
            ("del", cache_file),
            lambda pool: pool.dataset(CCVOLUME).delete_file(cache_file),
            when=lambda pool: pool.dataset(CCVOLUME).has_file(cache_file),
        )
        self.directory.drop_image(image_id)
        self._rows.pop(image_id, None)

    # -- boot-miss handling ---------------------------------------------------------

    def pick_peer(self, cluster, image_id: int, reader: str):
        """Nearest live holder (a ComputeNode), or None → origin fallback."""
        name = self.directory.nearest_holder(
            image_id, reader, is_up=lambda n: cluster.node(n).online
        )
        return cluster.node(name) if name is not None else None

    def payload_bytes(self, image_id: int) -> int:
        """Logical bytes a peer redirect moves (the cache slice itself)."""
        return self.directory.cache_bytes_of(image_id)

    def record_redirect(self, cluster, peer_name: str, reader: str, n_bytes: int) -> None:
        """Ledger + tallies for one redirected boot (peer → reader)."""
        duration = cluster.node(peer_name).node.link.transfer_time(n_bytes)
        cluster.ledger.record(
            peer_name, reader, n_bytes, PEER_REDIRECT_PURPOSE, duration
        )
        self.peer_redirects += 1
        self.redirect_bytes += n_bytes

    def record_origin_fallback(self) -> None:
        """No live holder: the boot fell back to the glusterfs origin."""
        self.origin_fallbacks += 1

    def maybe_adopt(self, cluster, image_id: int, node) -> bool:
        """Promote-on-miss: install the cache on ``node`` if budget allows.

        The budget is per node, in logical cache bytes. Adoption makes the
        node a holder (future local hits *and* a redirect target for its
        neighbours) but costs hoarded bytes — the tradeoff the experiment
        measures.
        """
        budget = self.spec.adopt_budget_bytes
        if budget <= 0:
            return False
        size = self.directory.cache_bytes_of(image_id)
        spent = self._adopted_by_node.get(node.name, 0)
        if spent + size > budget:
            return False
        rows = self._rows.get(image_id)
        if rows is None:
            return False
        cache_file = f"cache-{image_id:05d}"
        apply_to_nodes(
            getattr(cluster, "replicas", None),
            [node],
            ("install", cache_file),
            lambda pool: pool.dataset(CCVOLUME)
            .write_file_virtual(cache_file, rows),
            when=lambda pool: not pool.dataset(CCVOLUME).has_file(cache_file),
        )
        self.directory.adopt(node.name, image_id)
        self._adopted_by_node[node.name] = spent + size
        self.adoptions += 1
        self.adopted_bytes += size
        return True

    # -- offline propagation --------------------------------------------------------

    def reseed_node(self, cluster, node) -> int:
        """Re-install assigned-but-missing caches on a (re-)joining node.

        The placement analogue of snapshot-chain replay: instead of the
        scVolume diff stream, the node pulls exactly the cache slices the
        directory assigns it. Returns logical bytes moved.
        """
        origin = cluster.storage.primary
        moved = 0
        for image_id in self.directory.images_of(node.name):
            cache_file = f"cache-{image_id:05d}"
            if node.ccvolume.has_file(cache_file):
                continue
            rows = self._rows.get(image_id)
            if rows is None:
                continue
            apply_to_nodes(
                getattr(cluster, "replicas", None),
                [node],
                ("install", cache_file),
                lambda pool, cache_file=cache_file, rows=rows: pool.dataset(
                    CCVOLUME
                ).write_file_virtual(cache_file, rows),
            )
            size = self.directory.cache_bytes_of(image_id)
            duration = node.node.link.transfer_time(size)
            cluster.ledger.record(
                origin.name, node.name, size, SEED_PURPOSE, duration
            )
            moved += size
        self.reseed_bytes += moved
        return moved

    # -- reporting ------------------------------------------------------------------

    def stats(self) -> dict:
        """Canonical plain-type tally block for reports and renderers."""
        return {
            "adopted_bytes": self.adopted_bytes,
            "adoptions": self.adoptions,
            "hoarded_bytes": self.directory.total_hoarded_bytes(),
            "hoarded_replicas": self.directory.total_replicas(),
            "images_tracked": len(self.directory.images()),
            "origin_fallbacks": self.origin_fallbacks,
            "peer_redirects": self.peer_redirects,
            "policy": self.spec.policy,
            "redirect_bytes": self.redirect_bytes,
            "reseed_bytes": self.reseed_bytes,
            "seed_duration_s": self.seed_duration_s,
            "seed_origin_bytes": self.seed_origin_bytes,
            "seed_peer_upload_bytes": self.seed_peer_upload_bytes,
            "seed_receiver_bytes": self.seed_receiver_bytes,
            "seed_rounds": self.seed_rounds,
            "transport": self.spec.transport,
        }


def build_coordinator(
    spec: PlacementSpec, cluster, context: PlacementContext
) -> PlacementCoordinator:
    """Materialise a coordinator for a cluster from a spec and context.

    The policy's whole-catalogue hoard map is computed once, up front —
    placement never depends on arrival order, which is what keeps sweep
    merges byte-identical at any worker count.
    """
    node_names = tuple(node.name for node in cluster.compute)
    if context.nodes != node_names:
        raise ConfigError("placement context does not match the cluster fleet")
    policy = make_policy(
        spec.policy, top_k=spec.top_k, replica_floor=spec.replica_floor
    )
    assignments = policy.place(context)
    return PlacementCoordinator(
        spec=spec,
        policy=policy,
        directory=PlacementDirectory(node_names),
        assignments=assignments,
    )
