"""Datasets and snapshots with ZFS deadlist semantics.

A :class:`Dataset` owns a namespace of files and an ordered chain of
read-only :class:`Snapshot` versions. Space shared with snapshots is managed
exactly the way ZFS does it — not by bumping refcounts at snapshot creation
(which would make snapshots O(data)), but with *deadlists*:

* killing a block (overwrite/delete) releases it immediately **unless** its
  birth txg predates the newest snapshot, in which case the kill is recorded
  on the head's deadlist;
* creating a snapshot freezes the head deadlist into the snapshot and starts
  a new one;
* destroying snapshot S frees the blocks of the *next* deadlist that were
  born after S's previous snapshot (only S pinned them), then inherits S's
  deadlist.

``tests/test_zfs_dataset.py`` checks this machinery against a brute-force
reachability oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from ..common.errors import ObjectNotFoundError, SnapshotError, StorageError
from ..common.units import ceil_div, validate_block_size
from .blockptr import BlockPointer
from .dmu import FileObject

if TYPE_CHECKING:  # pragma: no cover
    from .pool import ZPool

__all__ = ["Dataset", "Snapshot"]


@dataclass(frozen=True)
class Snapshot:
    """A read-only dataset version."""

    name: str
    txg: int
    prev_txg: int  #: txg of the previous snapshot in the chain (0 if oldest)
    files: dict[str, tuple[BlockPointer, ...]]
    deadlist: list[BlockPointer]
    #: per-file creation txg (see FileObject.created_txg)
    file_created: dict[str, int] = field(default_factory=dict)

    def referenced_psize(self) -> int:
        """Physical bytes referenced by this snapshot (before dedup)."""
        return sum(bp.psize for blocks in self.files.values() for bp in blocks)


class Dataset:
    """A mounted filesystem/volume inside a pool."""

    def __init__(
        self,
        pool: "ZPool",
        name: str,
        *,
        record_size: int,
        compression: str = "gzip6",
        dedup: bool = True,
        zio=None,
    ) -> None:
        validate_block_size(record_size, grain=512)
        self.pool = pool
        self.name = name
        self.record_size = record_size
        self.compression = compression
        self.dedup = dedup
        #: the I/O pipeline this dataset writes through. Defaults to the
        #: pool's global pipeline (one shared dedup domain); a sharded pool
        #: hands each shard dataset the pipeline of its own dedup domain.
        self.zio = zio if zio is not None else pool.zio
        self._files: dict[str, FileObject] = {}
        self._snapshots: list[Snapshot] = []  # oldest -> newest
        self._snap_by_name: dict[str, Snapshot] = {}
        self._head_deadlist: list[BlockPointer] = []

    # -- file I/O ------------------------------------------------------------

    def create_file(self, name: str) -> FileObject:
        """Create an empty file; overwriting an existing name is an error."""
        if name in self._files:
            raise StorageError(f"file {name!r} already exists in {self.name}")
        obj = FileObject(
            name=name,
            record_size=self.record_size,
            created_txg=self.pool.advance_txg(),
        )
        self._files[name] = obj
        return obj

    def file(self, name: str) -> FileObject:
        obj = self._files.get(name)
        if obj is None:
            raise ObjectNotFoundError(f"no file {name!r} in dataset {self.name}")
        return obj

    def has_file(self, name: str) -> bool:
        return name in self._files

    def file_names(self) -> list[str]:
        return sorted(self._files)

    def write_block(self, file_name: str, index: int, data: bytes) -> BlockPointer:
        """Write one record of real bytes (creating the file when absent)."""
        if len(data) > self.record_size:
            raise StorageError(
                f"block of {len(data)} bytes exceeds record size {self.record_size}"
            )
        obj = self._files.get(file_name) or self.create_file(file_name)
        txg = self.pool.advance_txg()
        result = self.zio.write_bytes(
            data, txg=txg, compression=self.compression, dedup=self.dedup
        )
        old = obj.set_block(index, result.bp)
        self._kill(old)
        return result.bp

    def write_block_virtual(
        self,
        file_name: str,
        index: int,
        *,
        signature: int,
        lsize: int,
        psize: int,
        is_hole: bool = False,
    ) -> BlockPointer:
        """Write one record of procedural content (accounting path)."""
        obj = self._files.get(file_name) or self.create_file(file_name)
        txg = self.pool.advance_txg()
        result = self.zio.write_virtual(
            signature,
            lsize=lsize,
            psize=psize,
            txg=txg,
            compression=self.compression,
            dedup=self.dedup,
            is_hole=is_hole,
        )
        old = obj.set_block(index, result.bp)
        self._kill(old)
        return result.bp

    def write_file(self, file_name: str, data: bytes) -> FileObject:
        """Write a whole file of real bytes in record_size chunks."""
        if file_name in self._files:
            self.delete_file(file_name)
        obj = self.create_file(file_name)
        n_blocks = ceil_div(len(data), self.record_size) if data else 0
        for index in range(n_blocks):
            chunk = data[index * self.record_size : (index + 1) * self.record_size]
            txg = self.pool.advance_txg()
            result = self.zio.write_bytes(
                chunk, txg=txg, compression=self.compression, dedup=self.dedup
            )
            obj.set_block(index, result.bp)
        return obj

    def write_file_virtual(
        self,
        file_name: str,
        blocks: Iterable[tuple[int, int, int, bool]],
    ) -> FileObject:
        """Write a whole procedural file.

        ``blocks`` yields ``(signature, lsize, psize, is_hole)`` per record in
        order. One txg covers the whole file write (a single sync pass), which
        keeps snapshot diffs file-granular the way ``zfs send`` sees them.
        """
        if file_name in self._files:
            self.delete_file(file_name)
        obj = self.create_file(file_name)
        txg = self.pool.advance_txg()
        for index, (signature, lsize, psize, is_hole) in enumerate(blocks):
            result = self.zio.write_virtual(
                signature,
                lsize=lsize,
                psize=psize,
                txg=txg,
                compression=self.compression,
                dedup=self.dedup,
                is_hole=is_hole,
            )
            obj.set_block(index, result.bp)
        return obj

    def read_block(self, file_name: str, index: int) -> bytes:
        """Read one record of a materialised file."""
        bp = self.file(file_name).get_block(index)
        if bp.is_hole:
            return bytes(bp.lsize or self.record_size)
        return self.zio.read_bytes(bp)

    def read_file(self, file_name: str) -> bytes:
        """Read a whole materialised file."""
        obj = self.file(file_name)
        parts = []
        for bp in obj.blocks:
            if bp.is_hole:
                parts.append(bytes(bp.lsize or self.record_size))
            else:
                parts.append(self.zio.read_bytes(bp))
        return b"".join(parts)

    def delete_file(self, file_name: str) -> None:
        obj = self.file(file_name)
        for bp in obj.blocks:
            self._kill(bp)
        del self._files[file_name]

    def destroy(self) -> None:
        """Destroy the dataset: all snapshots (oldest first), then all files."""
        for snap in [s.name for s in self._snapshots]:
            self.destroy_snapshot(snap)
        for name in list(self._files):
            self.delete_file(name)

    # -- space accounting ----------------------------------------------------

    @property
    def referenced_psize(self) -> int:
        """Physical bytes referenced by the live head (before dedup)."""
        return sum(obj.referenced_psize for obj in self._files.values())

    @property
    def logical_size(self) -> int:
        return sum(obj.logical_size for obj in self._files.values())

    @property
    def nonzero_lsize(self) -> int:
        return sum(obj.nonzero_lsize for obj in self._files.values())

    # -- snapshots -----------------------------------------------------------

    def snapshot(self, snap_name: str) -> Snapshot:
        """Freeze the current head as ``dataset@snap_name``."""
        if snap_name in self._snap_by_name:
            raise SnapshotError(f"snapshot {self.name}@{snap_name} already exists")
        txg = self.pool.advance_txg()
        prev_txg = self._snapshots[-1].txg if self._snapshots else 0
        snap = Snapshot(
            name=snap_name,
            txg=txg,
            prev_txg=prev_txg,
            files={name: obj.snapshot_view() for name, obj in self._files.items()},
            deadlist=self._head_deadlist,
            file_created={
                name: obj.created_txg for name, obj in self._files.items()
            },
        )
        self._head_deadlist = []
        self._snapshots.append(snap)
        self._snap_by_name[snap_name] = snap
        return snap

    def get_snapshot(self, snap_name: str) -> Snapshot:
        snap = self._snap_by_name.get(snap_name)
        if snap is None:
            raise ObjectNotFoundError(f"no snapshot {self.name}@{snap_name}")
        return snap

    def has_snapshot(self, snap_name: str) -> bool:
        return snap_name in self._snap_by_name

    def snapshots(self) -> list[Snapshot]:
        """Snapshots oldest → newest."""
        return list(self._snapshots)

    def latest_snapshot(self) -> Snapshot | None:
        return self._snapshots[-1] if self._snapshots else None

    def destroy_snapshot(self, snap_name: str) -> int:
        """Destroy one snapshot; returns physical bytes released."""
        position = next(
            (i for i, s in enumerate(self._snapshots) if s.name == snap_name), None
        )
        if position is None:
            raise ObjectNotFoundError(f"no snapshot {self.name}@{snap_name}")
        snap = self._snapshots.pop(position)
        del self._snap_by_name[snap_name]
        next_deadlist = (
            self._snapshots[position].deadlist
            if position < len(self._snapshots)
            else self._head_deadlist
        )
        released = 0
        survivors: list[BlockPointer] = []
        for bp in next_deadlist:
            if bp.birth_txg > snap.prev_txg:
                released += self.zio.release(bp)
            else:
                survivors.append(bp)
        survivors.extend(snap.deadlist)
        if position < len(self._snapshots):
            successor = self._snapshots[position]
            successor.deadlist[:] = survivors
            # the successor's previous snapshot is now S's previous
            self._snapshots[position] = Snapshot(
                name=successor.name,
                txg=successor.txg,
                prev_txg=snap.prev_txg,
                files=successor.files,
                deadlist=successor.deadlist,
                file_created=successor.file_created,
            )
            self._snap_by_name[successor.name] = self._snapshots[position]
        else:
            self._head_deadlist = survivors
        return released

    # -- internals -----------------------------------------------------------

    def _kill(self, bp: BlockPointer) -> None:
        """A live reference went away: release now or defer to the deadlist."""
        if bp.is_hole:
            return
        latest = self.latest_snapshot()
        if latest is None or bp.birth_txg > latest.txg:
            self.zio.release(bp)
        else:
            self._head_deadlist.append(bp)

    def iter_live_blocks(self) -> Iterator[BlockPointer]:
        for obj in self._files.values():
            yield from obj.blocks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Dataset {self.name} rs={self.record_size} files={len(self._files)} "
            f"snaps={len(self._snapshots)}>"
        )
