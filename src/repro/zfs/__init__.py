"""ZFS-like storage substrate: dedup, inline compression, snapshots, send/recv.

The pieces map onto their ZFS namesakes:

* :mod:`~repro.zfs.spa` — vdev space allocation,
* :mod:`~repro.zfs.ddt` — the dedup table and its disk/RAM footprint,
* :mod:`~repro.zfs.arc` — the adaptive replacement cache,
* :mod:`~repro.zfs.zio` — the write/read pipeline,
* :mod:`~repro.zfs.dmu`/:mod:`~repro.zfs.dataset` — objects, datasets,
  snapshots with deadlist semantics,
* :mod:`~repro.zfs.send` — full/incremental replication streams,
* :mod:`~repro.zfs.pool` — the facade a node mounts.
"""

from .arc import AdaptiveReplacementCache, ArcStats
from .blockptr import HOLE, BlockPointer, byte_checksum_key, virtual_checksum_key
from .dataset import Dataset, Snapshot
from .ddt import DDT_ENTRY_CORE_BYTES, DDT_ENTRY_DISK_BYTES, DDTEntry, DedupTable
from .dmu import FileObject
from .pool import PoolStats, ZPool
from .scrub import ScrubReport, scrub
from .send import RecordKind, SendRecord, SendStream, generate_send, receive
from .sharded import ShardedPool
from .spa import SECTOR_SIZE, SpaceMap
from .zio import WriteResult, ZioPipeline

__all__ = [
    "HOLE",
    "SECTOR_SIZE",
    "DDT_ENTRY_CORE_BYTES",
    "DDT_ENTRY_DISK_BYTES",
    "AdaptiveReplacementCache",
    "ArcStats",
    "BlockPointer",
    "DDTEntry",
    "Dataset",
    "DedupTable",
    "FileObject",
    "PoolStats",
    "RecordKind",
    "ScrubReport",
    "SendRecord",
    "SendStream",
    "ShardedPool",
    "Snapshot",
    "SpaceMap",
    "WriteResult",
    "ZPool",
    "ZioPipeline",
    "scrub",
    "byte_checksum_key",
    "generate_send",
    "receive",
    "virtual_checksum_key",
]
