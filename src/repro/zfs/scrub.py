"""Pool scrubbing — on-demand consistency verification.

Like ``zpool scrub``, but for the simulator's invariants instead of media
errors: walks every dataset, snapshot, and deadlist of a pool, recomputes
reference counts from scratch, and cross-checks them against the DDT and
space map. Squirrel deployments run it in tests and after failure-injection
sequences; any discrepancy is a bug in the write/free paths, never
expected operational state.

Checked invariants:

1. every reachable checksum (live files + snapshots) has a DDT entry;
2. every DDT entry's refcount equals reachable references plus deferred
   frees parked on deadlists;
3. allocated space equals the sector-aligned sum of live DDT entries;
4. for materialised pools, every reachable block decompresses and matches
   its checksum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import StorageError
from ..common.units import align_up
from .pool import ZPool
from .spa import SECTOR_SIZE

__all__ = ["ScrubReport", "scrub"]


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    datasets: int = 0
    blocks_checked: int = 0
    payloads_verified: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.errors

    def raise_if_dirty(self) -> None:
        if self.errors:
            raise StorageError(
                f"scrub found {len(self.errors)} inconsistencies: "
                + "; ".join(self.errors[:5])
            )


def scrub(pool: ZPool, *, verify_payloads: bool = True) -> ScrubReport:
    """Verify a pool's reference/space accounting (see module docstring)."""
    report = ScrubReport()
    live_refs: dict[str, int] = {}  #: references held by live heads
    deferred: dict[str, int] = {}  #: kills parked on deadlists
    snapshot_reachable: set[str] = set()

    for name in pool.dataset_names():
        dataset = pool.dataset(name)
        report.datasets += 1
        for bp in dataset.iter_live_blocks():
            if bp.is_hole:
                continue
            live_refs[bp.checksum] = live_refs.get(bp.checksum, 0) + 1
            report.blocks_checked += 1
        for snap in dataset.snapshots():
            for blocks in snap.files.values():
                for bp in blocks:
                    if not bp.is_hole:
                        snapshot_reachable.add(bp.checksum)
                        report.blocks_checked += 1
        deadlists = [dataset._head_deadlist]  # noqa: SLF001 - scrub is privileged
        deadlists += [snap.deadlist for snap in dataset.snapshots()]
        for deadlist in deadlists:
            for bp in deadlist:
                if not bp.is_hole:
                    deferred[bp.checksum] = deferred.get(bp.checksum, 0) + 1

    # 1 + 2: reference counts. Snapshots do NOT hold refcounts (ZFS
    # semantics): a reference is either live in a head or deferred on a
    # deadlist; snapshot-only visibility is always backed by a deadlist entry.
    for table in (pool.ddt, pool.plain):
        for entry in table:
            expected = live_refs.get(entry.checksum, 0) + deferred.get(
                entry.checksum, 0
            )
            if entry.refcount != expected:
                report.errors.append(
                    f"{entry.checksum}: refcount {entry.refcount}, "
                    f"live+deferred {expected}"
                )
    known = {e.checksum for e in pool.ddt} | {e.checksum for e in pool.plain}
    for checksum in set(live_refs) | snapshot_reachable:
        if checksum not in known:
            report.errors.append(f"reachable block {checksum} missing from tables")

    # 3: space accounting
    expected_alloc = sum(
        align_up(e.psize, SECTOR_SIZE) for t in (pool.ddt, pool.plain) for e in t
    )
    if expected_alloc != pool.space.allocated_bytes:
        report.errors.append(
            f"space map reports {pool.space.allocated_bytes} allocated, "
            f"tables imply {expected_alloc}"
        )

    # 4: payload integrity (bytes pools only)
    if verify_payloads:
        for name in pool.dataset_names():
            dataset = pool.dataset(name)
            for bp in dataset.iter_live_blocks():
                if bp.is_hole or not bp.checksum.startswith(("b:", "a:")):
                    continue
                try:
                    pool.zio.read_bytes(bp)
                    report.payloads_verified += 1
                except StorageError as exc:
                    report.errors.append(f"payload {bp.checksum}: {exc}")
    return report
