"""ShardedPool — one pool, many dedup shards with quotas.

The paper models the cVolume as one global dedup domain; Fig 12's
cross-similarity matrix shows most dedup value concentrates *within*
semantically similar image groups. A :class:`ShardedPool` carves a pool's
volume into shard datasets, each writing through an independent dedup
domain (:meth:`~repro.zfs.pool.ZPool.domain`), with:

* per-shard byte **quotas** over the shard dataset's referenced psize,
  enforced by evicting the oldest hoarded files (insertion order, which
  ``Dataset.file_names()`` — sorted — cannot provide);
* per-shard DDT RAM **high-water** tracking (refreshed by the router at
  every mutation point);
* **cross-shard dedup loss** accounting: bytes stored redundantly because
  identical blocks landed in more than one shard's domain.

The single-shard facade *adopts* the existing volume dataset and the
pool's global DDT instead of creating anything — that path is byte-for-byte
the unsharded pool, pinned by ``tests/test_zfs_sharded.py``.
"""

from __future__ import annotations

from ..common.errors import ConfigError
from ..common.units import SQUIRREL_BLOCK_SIZE
from .dataset import Dataset
from .ddt import DedupTable
from .pool import ZPool

__all__ = ["ShardedPool"]


class ShardedPool:
    """A facade mapping shard names onto datasets with private DDTs."""

    def __init__(
        self,
        pool: ZPool,
        shards: tuple[str, ...],
        datasets: dict[str, Dataset],
        ddts: dict[str, DedupTable],
        *,
        quota_bytes: int = 0,
    ) -> None:
        if not shards:
            raise ConfigError("ShardedPool needs at least one shard")
        self.pool = pool
        self.shards = tuple(shards)
        self._datasets = dict(datasets)
        self._ddts = dict(ddts)
        self.quota_bytes = int(quota_bytes)
        self._order: dict[str, list[str]] = {s: [] for s in self.shards}
        self._evictions: dict[str, int] = {s: 0 for s in self.shards}
        self._evicted_bytes: dict[str, int] = {s: 0 for s in self.shards}
        self._core_high: dict[str, int] = {s: 0 for s in self.shards}

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        pool: ZPool,
        volume: str,
        shards: tuple[str, ...],
        *,
        record_size: int = SQUIRREL_BLOCK_SIZE,
        compression: str = "gzip6",
        quota_bytes: int = 0,
    ) -> "ShardedPool":
        """Create ``volume/<shard>`` datasets, one dedup domain per shard."""
        datasets = {
            shard: pool.create_dataset(
                f"{volume}/{shard}",
                record_size=record_size,
                compression=compression,
                domain=shard,
            )
            for shard in shards
        }
        ddts = {shard: pool.domain_ddt(shard) for shard in shards}
        return cls(pool, shards, datasets, ddts, quota_bytes=quota_bytes)

    @classmethod
    def adopt(
        cls,
        pool: ZPool,
        volume: str,
        shard: str,
        *,
        quota_bytes: int = 0,
    ) -> "ShardedPool":
        """Wrap the existing ``volume`` dataset + global DDT as one shard.

        The adopted path creates no datasets and no domains: every write
        still goes through ``pool.zio`` into ``pool.ddt``, so behaviour and
        accounting are byte-identical to the unsharded pool (with quota 0).
        """
        return cls(
            pool,
            (shard,),
            {shard: pool.dataset(volume)},
            {shard: pool.ddt},
            quota_bytes=quota_bytes,
        )

    # -- shard access ---------------------------------------------------------

    def dataset(self, shard: str) -> Dataset:
        return self._datasets[shard]

    def ddt(self, shard: str) -> DedupTable:
        return self._ddts[shard]

    # -- quota & eviction -----------------------------------------------------

    def note_file(self, shard: str, name: str) -> None:
        """Record/refresh a hoarded file in the shard's eviction order."""
        order = self._order[shard]
        if name in order:
            order.remove(name)
        order.append(name)

    def forget(self, shard: str, name: str) -> None:
        """Drop a file from the eviction order (deregistered hoards)."""
        order = self._order[shard]
        if name in order:
            order.remove(name)

    def ensure_quota(self, shard: str, keep: tuple[str, ...] = ()) -> list[str]:
        """Evict oldest hoards until the shard is back under its quota.

        Returns the evicted file names, in eviction order. Files named in
        ``keep`` (the hoard just written) are never evicted.
        """
        if self.quota_bytes <= 0:
            return []
        dataset = self._datasets[shard]
        order = self._order[shard]
        evicted: list[str] = []
        while dataset.referenced_psize > self.quota_bytes:
            victim = next((n for n in order if n not in keep), None)
            if victim is None:
                break
            freed = dataset.file(victim).referenced_psize
            dataset.delete_file(victim)
            order.remove(victim)
            evicted.append(victim)
            self._evictions[shard] += 1
            self._evicted_bytes[shard] += freed
        return evicted

    def quota_pressure(self, shard: str) -> float:
        """Referenced bytes over quota (0.0 when the quota is unlimited)."""
        if self.quota_bytes <= 0:
            return 0.0
        return self._datasets[shard].referenced_psize / self.quota_bytes

    # -- accounting -----------------------------------------------------------

    def refresh(self, shard: str) -> None:
        """Update the shard's DDT RAM high-water mark."""
        core = self._ddts[shard].in_core_bytes
        if core > self._core_high[shard]:
            self._core_high[shard] = core

    def ddt_core_high_bytes(self, shard: str) -> int:
        return self._core_high[shard]

    def evictions(self, shard: str) -> int:
        return self._evictions[shard]

    def evicted_bytes(self, shard: str) -> int:
        return self._evicted_bytes[shard]

    def shard_stats(self) -> dict[str, dict]:
        """Per-shard accounting block (canonical-JSON friendly)."""
        out: dict[str, dict] = {}
        for shard in self.shards:
            dataset = self._datasets[shard]
            ddt = self._ddts[shard]
            self.refresh(shard)
            out[shard] = {
                "files": len(dataset.file_names()),
                "referenced_bytes": dataset.referenced_psize,
                "ddt_entries": ddt.entry_count,
                "ddt_core_bytes": ddt.in_core_bytes,
                "ddt_core_high_bytes": self._core_high[shard],
                "ddt_disk_bytes": ddt.on_disk_bytes,
                "quota_bytes": self.quota_bytes,
                "quota_pressure": self.quota_pressure(shard),
                "evictions": self._evictions[shard],
                "evicted_bytes": self._evicted_bytes[shard],
            }
        return out

    def dedup_loss_bytes(self) -> int:
        """Bytes stored redundantly because shards cannot dedup across
        domains: for a checksum in ``k > 1`` shard DDTs, ``(k-1) * psize``."""
        seen: dict[str, tuple[int, int]] = {}
        for shard in self.shards:
            for entry in self._ddts[shard]:
                count, psize = seen.get(entry.checksum, (0, entry.psize))
                seen[entry.checksum] = (count + 1, psize)
        return sum(
            (count - 1) * psize for count, psize in seen.values() if count > 1
        )

    def duplicate_entries(self) -> int:
        """DDT entries beyond the first occurrence of each checksum."""
        counts: dict[str, int] = {}
        for shard in self.shards:
            for entry in self._ddts[shard]:
                counts[entry.checksum] = counts.get(entry.checksum, 0) + 1
        return sum(count - 1 for count in counts.values() if count > 1)
