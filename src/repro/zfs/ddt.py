"""The dedup table (DDT).

ZFS's DDT maps block checksums to ``(DVA, refcount)`` entries. It lives on
disk (a ZAP object, itself allocated from the pool — the overhead the paper
measures in Figure 9) and is cached in core (the memory the paper measures in
Figure 10 and extrapolates in Figure 17).

Per-entry footprints are simulator constants calibrated against the paper's
measurements (see the constants' docstrings); the *counts* of entries are
exact, driven by the write pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..common.errors import StorageError

__all__ = ["DedupTable", "DDTEntry", "DDT_ENTRY_DISK_BYTES", "DDT_ENTRY_CORE_BYTES"]

#: On-disk bytes per DDT entry. A ZFS ZAP leaf entry for a dedup record holds
#: the 256-bit checksum, up to three DVAs, sizes, refcount and ZAP chunk
#: headers. Calibrated so that the unique-block counts of the paper's image
#: dataset land near Figure 9 (~12 GB of DDT for ~1.3e8 unique 4 KB blocks).
DDT_ENTRY_DISK_BYTES: int = 90

#: In-core bytes per DDT entry actually charged against node memory.
#: ZFS's ``ddt_entry_t`` is larger (~320 B), but only the compact ARC-cached
#: ZAP representation stays resident; calibrated against Figures 10/17
#: (~60 MB for the cache dataset's unique 64 KB blocks).
DDT_ENTRY_CORE_BYTES: int = 64

#: Fixed in-core overhead of the DDT object itself (hash-table scaffolding).
#: Kept tiny: experiment reporting multiplies pool metrics by 1/scale, and a
#: large fixed term would be inflated with them (only the per-entry part
#: genuinely grows with the dataset).
DDT_FIXED_CORE_BYTES: int = 64 << 10


@dataclass(slots=True)
class DDTEntry:
    """One dedup-table record."""

    checksum: str
    psize: int  #: physical size of the stored block
    lsize: int  #: logical size of the stored block
    refcount: int
    dva: int  #: device virtual address (byte offset) of the single copy
    birth_txg: int  #: physical birth: txg in which the copy was allocated


@dataclass
class DedupTable:
    """Checksum → entry map with ZFS-like space accounting."""

    _entries: dict[str, DDTEntry] = field(default_factory=dict)
    #: running tallies so accounting is O(1)
    _total_refs: int = 0

    def lookup(self, checksum: str) -> DDTEntry | None:
        """Return the entry for ``checksum`` or None."""
        return self._entries.get(checksum)

    def insert(self, checksum: str, *, psize: int, lsize: int, dva: int, txg: int) -> DDTEntry:
        """Insert a brand-new entry with refcount 1."""
        if checksum in self._entries:
            raise StorageError(f"DDT entry {checksum} already exists; use add_ref")
        entry = DDTEntry(
            checksum=checksum, psize=psize, lsize=lsize, refcount=1, dva=dva, birth_txg=txg
        )
        self._entries[checksum] = entry
        self._total_refs += 1
        return entry

    def add_ref(self, checksum: str) -> DDTEntry:
        """Bump the refcount of an existing entry (a dedup hit)."""
        entry = self._entries.get(checksum)
        if entry is None:
            raise StorageError(f"DDT add_ref on missing entry {checksum}")
        entry.refcount += 1
        self._total_refs += 1
        return entry

    def remove_ref(self, checksum: str) -> DDTEntry | None:
        """Drop one reference; returns the dead entry when refcount hits zero.

        The caller (the pool) frees the entry's DVA when an entry dies.
        """
        entry = self._entries.get(checksum)
        if entry is None:
            raise StorageError(f"DDT remove_ref on missing entry {checksum}")
        entry.refcount -= 1
        self._total_refs -= 1
        if entry.refcount == 0:
            del self._entries[checksum]
            return entry
        return None

    # -- accounting ---------------------------------------------------------

    @property
    def entry_count(self) -> int:
        """Number of live (refcount > 0) entries."""
        return len(self._entries)

    @property
    def total_references(self) -> int:
        """Sum of refcounts over all entries (== live block pointers)."""
        return self._total_refs

    @property
    def on_disk_bytes(self) -> int:
        """Pool space consumed by the DDT ZAP object (Figure 9's metric)."""
        return self.entry_count * DDT_ENTRY_DISK_BYTES

    @property
    def in_core_bytes(self) -> int:
        """Main memory consumed by the resident DDT (Figure 10's metric)."""
        if not self._entries:
            return 0
        return DDT_FIXED_CORE_BYTES + self.entry_count * DDT_ENTRY_CORE_BYTES

    @property
    def referenced_psize(self) -> int:
        """Physical bytes as seen by referencing datasets (before dedup)."""
        return sum(e.psize * e.refcount for e in self._entries.values())

    @property
    def allocated_psize(self) -> int:
        """Physical bytes actually stored (after dedup)."""
        return sum(e.psize for e in self._entries.values())

    def dedup_ratio(self) -> float:
        """``referenced / allocated`` — what ``zpool list`` reports as DEDUP."""
        allocated = self.allocated_psize
        if allocated == 0:
            return 1.0
        return self.referenced_psize / allocated

    def __iter__(self) -> Iterator[DDTEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
