"""The ZIO pipeline: checksum → compress → dedup → allocate, and the reverse.

Two write paths share all bookkeeping:

* **bytes path** — real data: zero-detection, real codec compression, blake2b
  checksum, dedup, allocation, and payload storage for later reads.
* **virtual path** — accounting-scale procedural blocks: the caller supplies
  the 64-bit grain signature and a (calibrated-estimator) physical size; the
  pipeline performs identical dedup/allocation bookkeeping without touching
  bytes. Used when storing hundreds of scaled images where materialising
  content would dominate runtime.

Both paths produce :class:`~repro.zfs.blockptr.BlockPointer` values that are
indistinguishable to the dataset/snapshot layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codecs import Codec, get_codec, is_zero_block
from ..common.errors import StorageError
from ..common.hashing import hash_bytes
from .blockptr import BlockPointer, byte_checksum_key, virtual_checksum_key
from .ddt import DedupTable
from .spa import SpaceMap

__all__ = ["ZioPipeline", "WriteResult"]


@dataclass(frozen=True, slots=True)
class WriteResult:
    """Outcome of one block write."""

    bp: BlockPointer
    deduped: bool  #: True when the write hit an existing DDT entry
    allocated: int  #: bytes newly allocated (0 on dedup hit or hole)


class ZioPipeline:
    """Shared write/read machinery for one pool.

    ``dedup_table`` is the charged DDT; ``plain_table`` tracks allocations of
    non-dedup datasets with the same refcount machinery but is *not* charged
    as dedup metadata (it models ordinary indirect-block bookkeeping).
    """

    def __init__(
        self,
        space: SpaceMap,
        dedup_table: DedupTable,
        plain_table: DedupTable,
        *,
        store_payloads: bool = True,
    ) -> None:
        self.space = space
        self.ddt = dedup_table
        self.plain = plain_table
        self.store_payloads = store_payloads
        #: checksum -> compressed payload, for the bytes read path
        self._blockstore: dict[str, bytes] = {}
        self._plain_serial = 0

    # -- write paths --------------------------------------------------------

    def write_bytes(
        self,
        data: bytes,
        *,
        txg: int,
        compression: str,
        dedup: bool,
    ) -> WriteResult:
        """Write one materialised block."""
        lsize = len(data)
        if lsize == 0 or is_zero_block(data):
            return WriteResult(
                BlockPointer(None, lsize, 0, txg, compression), deduped=False, allocated=0
            )
        codec: Codec = get_codec(compression)
        psize = codec.effective_size(data)
        checksum = byte_checksum_key(hash_bytes(data))
        if dedup:
            result = self._dedup_write(checksum, lsize, psize, txg, compression)
        else:
            result = self._plain_write(lsize, psize, txg, compression)
        if self.store_payloads:
            payload = codec.compress(data) if psize < lsize else data
            self._blockstore.setdefault(result.bp.checksum, payload)
        return result

    def write_virtual(
        self,
        signature: int,
        *,
        lsize: int,
        psize: int,
        txg: int,
        compression: str,
        dedup: bool = True,
        is_hole: bool = False,
    ) -> WriteResult:
        """Write one procedural block described by its grain signature."""
        if is_hole or psize == 0:
            return WriteResult(
                BlockPointer(None, lsize, 0, txg, compression), deduped=False, allocated=0
            )
        if psize < 0 or psize > lsize:
            raise StorageError(f"virtual psize {psize} outside (0, lsize={lsize}]")
        checksum = virtual_checksum_key(signature)
        if dedup:
            return self._dedup_write(checksum, lsize, psize, txg, compression)
        return self._plain_write(lsize, psize, txg, compression)

    def _dedup_write(
        self, checksum: str, lsize: int, psize: int, txg: int, compression: str
    ) -> WriteResult:
        entry = self.ddt.lookup(checksum)
        if entry is not None:
            self.ddt.add_ref(checksum)
            bp = BlockPointer(checksum, lsize, entry.psize, txg, compression)
            return WriteResult(bp, deduped=True, allocated=0)
        dva = self.space.allocate(psize)
        self.ddt.insert(checksum, psize=psize, lsize=lsize, dva=dva, txg=txg)
        bp = BlockPointer(checksum, lsize, psize, txg, compression)
        return WriteResult(bp, deduped=False, allocated=psize)

    def _plain_write(
        self, lsize: int, psize: int, txg: int, compression: str
    ) -> WriteResult:
        self._plain_serial += 1
        checksum = f"a:{self._plain_serial:016x}"
        dva = self.space.allocate(psize)
        self.plain.insert(checksum, psize=psize, lsize=lsize, dva=dva, txg=txg)
        bp = BlockPointer(checksum, lsize, psize, txg, compression)
        return WriteResult(bp, deduped=False, allocated=psize)

    # -- free path ----------------------------------------------------------

    def release(self, bp: BlockPointer) -> int:
        """Drop one reference to ``bp``; returns bytes freed (0 if still shared)."""
        if bp.is_hole:
            return 0
        table = self.ddt if bp.checksum.startswith(("b:", "v:")) else self.plain
        dead = table.remove_ref(bp.checksum)
        if dead is None:
            return 0
        self._blockstore.pop(bp.checksum, None)
        return self.space.free(dead.dva)

    # -- read path ----------------------------------------------------------

    def dva_of(self, bp: BlockPointer) -> int:
        """On-disk location of ``bp``'s single stored copy (for seek modelling)."""
        if bp.is_hole:
            raise StorageError("holes have no DVA")
        table = self.ddt if bp.checksum.startswith(("b:", "v:")) else self.plain
        entry = table.lookup(bp.checksum)
        if entry is None:
            raise StorageError(f"dangling block pointer {bp.checksum}")
        return entry.dva

    def read_bytes(self, bp: BlockPointer) -> bytes:
        """Return the logical bytes of a materialised block pointer."""
        if bp.is_hole:
            return bytes(bp.lsize)
        payload = self._blockstore.get(bp.checksum)
        if payload is None:
            raise StorageError(
                f"no stored payload for {bp.checksum} "
                "(virtual blocks are read through their image provider)"
            )
        if bp.psize < bp.lsize:
            codec = get_codec(bp.compression)
            data = codec.decompress(payload, bp.lsize)
        else:
            data = payload
        if bp.checksum.startswith("b:") and byte_checksum_key(hash_bytes(data)) != bp.checksum:
            raise StorageError(f"checksum mismatch reading {bp.checksum}")
        return data

    @property
    def blockstore_bytes(self) -> int:
        """Payload bytes held for the read path (test/diagnostic metric)."""
        return sum(len(p) for p in self._blockstore.values())
