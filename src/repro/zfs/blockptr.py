"""Block pointers — the unit of reference in the ZFS substrate.

A :class:`BlockPointer` describes one logical block of one object version:
its checksum (the dedup key), logical and physical sizes, compression, and
*logical birth transaction group* (the txg in which this reference was
written). Holes (unwritten / all-zero ranges) are block pointers too, with no
checksum and zero physical size — exactly how ZFS represents sparse files.

Checksums are opaque strings. Two disjoint key spaces are used so that the
functional byte path and the accounting path can never collide:

* ``"b:<hex>"`` — blake2b digest of materialised bytes,
* ``"v:<u64>"`` — folded grain signature of a procedural (virtual) block.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BlockPointer", "HOLE", "byte_checksum_key", "virtual_checksum_key"]


def byte_checksum_key(digest_hex: str) -> str:
    """Checksum key for a materialised-bytes block."""
    return f"b:{digest_hex}"


def virtual_checksum_key(signature: int) -> str:
    """Checksum key for a procedural (grain-signature) block."""
    return f"v:{signature:016x}"


@dataclass(frozen=True, slots=True)
class BlockPointer:
    """An immutable reference to one block (or hole)."""

    checksum: str | None  #: dedup key; None for holes
    lsize: int  #: logical (uncompressed) size in bytes
    psize: int  #: physical (allocated) size in bytes; 0 for holes
    birth_txg: int  #: logical birth: txg in which this reference was written
    compression: str = "off"  #: codec name used to produce psize

    @property
    def is_hole(self) -> bool:
        """True for unwritten/all-zero ranges: no storage is allocated."""
        return self.checksum is None

    def with_birth(self, txg: int) -> "BlockPointer":
        """Copy of this pointer reborn in ``txg`` (used by send-stream receive)."""
        return BlockPointer(self.checksum, self.lsize, self.psize, txg, self.compression)


#: Canonical zero-length hole pointer (ranges never written).
HOLE = BlockPointer(checksum=None, lsize=0, psize=0, birth_txg=0)
