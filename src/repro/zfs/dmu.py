"""DMU objects — files as block-pointer arrays.

A :class:`FileObject` is the object layer's view of one file: an ordered list
of block pointers at the dataset's record size, supporting sparse holes,
random block writes (for copy-on-read caches), and exact space accounting.
Content never lives here; blocks are owned by the pool via the ZIO pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import StorageError
from .blockptr import HOLE, BlockPointer

__all__ = ["FileObject"]


@dataclass
class FileObject:
    """One file of a dataset."""

    name: str
    record_size: int
    blocks: list[BlockPointer] = field(default_factory=list)
    #: txg in which this object was created. Distinguishes a file that
    #: merely changed from one that was deleted and re-created under the
    #: same name between two snapshots — the latter must be replicated as
    #: unlink + fresh writes, or stale blocks survive on replicas.
    created_txg: int = 0
    #: memoised snapshot_view(); every mutation drops it, so snapshotting a
    #: dataset whose files are mostly unchanged shares one tuple per file
    #: instead of re-copying every block list (snapshots are O(changed data),
    #: matching the deadlist design above the object layer)
    _view: "tuple[BlockPointer, ...] | None" = field(
        default=None, repr=False, compare=False
    )

    def block_count(self) -> int:
        return len(self.blocks)

    def get_block(self, index: int) -> BlockPointer:
        """Block pointer at ``index``; reads past EOF are holes."""
        if index < 0:
            raise StorageError(f"negative block index {index}")
        if index >= len(self.blocks):
            return HOLE
        return self.blocks[index]

    def set_block(self, index: int, bp: BlockPointer) -> BlockPointer:
        """Install ``bp`` at ``index`` (growing with holes); returns the old bp."""
        if index < 0:
            raise StorageError(f"negative block index {index}")
        self._view = None
        while len(self.blocks) <= index:
            self.blocks.append(HOLE)
        old = self.blocks[index]
        self.blocks[index] = bp
        return old

    def truncate(self, block_count: int) -> list[BlockPointer]:
        """Resize to exactly ``block_count`` records (growing with holes);
        returns the block pointers dropped from the tail, for the caller to
        kill against its deadlists."""
        if block_count < 0:
            raise StorageError(f"negative block count {block_count}")
        self._view = None
        dropped: list[BlockPointer] = []
        while len(self.blocks) > block_count:
            dropped.append(self.blocks.pop())
        while len(self.blocks) < block_count:
            self.blocks.append(HOLE)
        return dropped

    @property
    def logical_size(self) -> int:
        """Apparent file size (holes included), in bytes."""
        if not self.blocks:
            return 0
        # all records are record_size except possibly the last
        full = (len(self.blocks) - 1) * self.record_size
        last = self.blocks[-1]
        return full + (last.lsize if last.lsize else self.record_size)

    @property
    def referenced_psize(self) -> int:
        """Physical bytes referenced by this file (before dedup)."""
        return sum(bp.psize for bp in self.blocks)

    @property
    def nonzero_lsize(self) -> int:
        """Logical bytes excluding holes — the paper's 'nonzero' measure."""
        return sum(bp.lsize for bp in self.blocks if not bp.is_hole)

    def snapshot_view(self) -> tuple[BlockPointer, ...]:
        """Immutable copy of the block list for snapshot capture (memoised
        until the next mutation, so unchanged files share one view)."""
        view = self._view
        if view is None:
            view = self._view = tuple(self.blocks)
        return view
