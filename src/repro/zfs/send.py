"""ZFS send/receive — full and incremental snapshot replication streams.

Squirrel propagates new VMI caches by generating the diff between the newest
scVolume snapshot and the previous one (``zfs send -i prev snap``) and
multicasting it to every compute node (paper Section 3.2/3.5). This module
produces those streams and applies them.

A stream is a list of records:

* ``WRITE``    — one block of one file: carries the block pointer identity
  (checksum, lsize, psize) and, for materialised blocks, the compressed
  payload. Virtual blocks travel as signature + sizes (the receiver's pool
  re-runs the same dedup bookkeeping).
* ``TRUNCATE`` — a file shrank (or was created fresh): gives new block count.
* ``UNLINK``   — a file disappeared between the two snapshots.

Stream ``size_bytes`` models ``zfs send -c`` (compressed send): psize per
written block plus a fixed per-record header, which is what travels the wire
in the propagation experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable

from ..common.errors import SendStreamError
from .blockptr import BlockPointer
from .dataset import Dataset, Snapshot

__all__ = ["RecordKind", "SendRecord", "SendStream", "generate_send", "receive"]

#: per-record wire overhead (drr header in real ZFS is 312 bytes; diffs here
#: are dominated by payloads, so a compact fixed header is used)
RECORD_HEADER_BYTES = 48


class RecordKind(Enum):
    """Kind of one send-stream record."""

    WRITE = "write"
    TRUNCATE = "truncate"
    UNLINK = "unlink"


@dataclass(frozen=True)
class SendRecord:
    kind: RecordKind
    file_name: str
    block_index: int = 0
    checksum: str | None = None
    lsize: int = 0
    psize: int = 0
    compression: str = "off"
    payload: bytes | None = None  #: logical bytes for materialised blocks
    block_count: int = 0  #: for TRUNCATE

    @property
    def wire_bytes(self) -> int:
        if self.kind is RecordKind.WRITE:
            return RECORD_HEADER_BYTES + self.psize
        return RECORD_HEADER_BYTES


@dataclass
class SendStream:
    """A replication stream between two snapshots of one dataset."""

    dataset_name: str
    from_snapshot: str | None  #: None for a full send
    to_snapshot: str
    records: list[SendRecord] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        """Bytes on the wire (compressed send)."""
        return sum(record.wire_bytes for record in self.records)

    @property
    def logical_bytes(self) -> int:
        """Uncompressed bytes represented by the stream's writes."""
        return sum(
            record.lsize for record in self.records if record.kind is RecordKind.WRITE
        )

    def write_count(self) -> int:
        return sum(1 for r in self.records if r.kind is RecordKind.WRITE)


def _snapshot_or_error(dataset: Dataset, name: str) -> Snapshot:
    return dataset.get_snapshot(name)


def generate_send(
    dataset: Dataset,
    to_snapshot: str,
    *,
    from_snapshot: str | None = None,
    include_payloads: bool = True,
) -> SendStream:
    """Build a (full or incremental) send stream.

    An incremental stream contains every block of ``to_snapshot`` whose birth
    txg is newer than ``from_snapshot``'s txg — exactly ZFS's rule — plus
    unlink/truncate records for namespace changes. ``include_payloads=False``
    skips copying materialised payload bytes (accounting-only streams).
    """
    to_snap = _snapshot_or_error(dataset, to_snapshot)
    if from_snapshot is None:
        from_txg = 0
        from_files: dict[str, tuple[BlockPointer, ...]] = {}
    else:
        from_snap = _snapshot_or_error(dataset, from_snapshot)
        if from_snap.txg >= to_snap.txg:
            raise SendStreamError(
                f"incremental source @{from_snapshot} is not older than @{to_snapshot}"
            )
        from_txg = from_snap.txg
        from_files = from_snap.files

    stream = SendStream(
        dataset_name=dataset.name,
        from_snapshot=from_snapshot,
        to_snapshot=to_snapshot,
    )
    for file_name in sorted(from_files.keys() - to_snap.files.keys()):
        stream.records.append(SendRecord(RecordKind.UNLINK, file_name))
    for file_name in sorted(to_snap.files):
        blocks = to_snap.files[file_name]
        old_blocks = from_files.get(file_name)
        # a file created after the source snapshot is brand new even when a
        # same-named file existed before (delete + re-create between the two
        # snapshots): the replica must drop the old object first
        created_txg = to_snap.file_created.get(file_name, 0)
        is_new_file = old_blocks is None or created_txg > from_txg
        if old_blocks is not None and is_new_file:
            stream.records.append(SendRecord(RecordKind.UNLINK, file_name))
        if is_new_file or len(blocks) != len(old_blocks):
            stream.records.append(
                SendRecord(
                    RecordKind.TRUNCATE, file_name, block_count=len(blocks)
                )
            )
        for index, bp in enumerate(blocks):
            if bp.birth_txg <= from_txg:
                continue
            if bp.is_hole:
                # a hole newer than from_txg means the range was zeroed
                stream.records.append(
                    SendRecord(
                        RecordKind.WRITE,
                        file_name,
                        block_index=index,
                        checksum=None,
                        lsize=bp.lsize,
                        psize=0,
                        compression=bp.compression,
                    )
                )
                continue
            payload: bytes | None = None
            if include_payloads and bp.checksum.startswith(("b:", "a:")):
                payload = dataset.pool.zio.read_bytes(bp)
            stream.records.append(
                SendRecord(
                    RecordKind.WRITE,
                    file_name,
                    block_index=index,
                    checksum=bp.checksum,
                    lsize=bp.lsize,
                    psize=bp.psize,
                    compression=bp.compression,
                    payload=payload,
                )
            )
    return stream


def receive(dataset: Dataset, stream: SendStream) -> Snapshot:
    """Apply a stream to ``dataset`` and create the target snapshot.

    Enforces ZFS's receive preconditions: a full stream requires an empty
    dataset with no snapshots; an incremental stream requires the receiver's
    newest snapshot to be the stream's source.
    """
    if dataset.has_snapshot(stream.to_snapshot):
        raise SendStreamError(
            f"target snapshot @{stream.to_snapshot} already exists on {dataset.name}"
        )
    if stream.from_snapshot is None:
        if dataset.file_names() or dataset.snapshots():
            raise SendStreamError(
                f"full receive into non-empty dataset {dataset.name}"
            )
    else:
        latest = dataset.latest_snapshot()
        if latest is None or latest.name != stream.from_snapshot:
            have = latest.name if latest else "none"
            raise SendStreamError(
                f"incremental receive needs snapshot @{stream.from_snapshot}; "
                f"receiver has @{have}"
            )
    for record in stream.records:
        _apply_record(dataset, record)
    return dataset.snapshot(stream.to_snapshot)


def _apply_record(dataset: Dataset, record: SendRecord) -> None:
    if record.kind is RecordKind.UNLINK:
        if dataset.has_file(record.file_name):
            dataset.delete_file(record.file_name)
        return
    if record.kind is RecordKind.TRUNCATE:
        _apply_truncate(dataset, record)
        return
    # WRITE
    if record.checksum is None:
        dataset.write_block_virtual(
            record.file_name,
            record.block_index,
            signature=0,
            lsize=record.lsize,
            psize=0,
            is_hole=True,
        )
    elif record.payload is not None:
        dataset.write_block(record.file_name, record.block_index, record.payload)
    elif record.checksum.startswith("v:"):
        signature = int(record.checksum[2:], 16)
        dataset.write_block_virtual(
            record.file_name,
            record.block_index,
            signature=signature,
            lsize=record.lsize,
            psize=record.psize,
        )
    else:
        raise SendStreamError(
            f"materialised record for {record.file_name}#{record.block_index} "
            "has no payload"
        )


def _apply_truncate(dataset: Dataset, record: SendRecord) -> None:
    if not dataset.has_file(record.file_name):
        dataset.create_file(record.file_name)
    obj = dataset.file(record.file_name)
    for bp in obj.truncate(record.block_count):
        dataset._kill(bp)  # noqa: SLF001 - dataset-internal cooperation


def iter_write_checksums(stream: SendStream) -> Iterable[str]:
    """Checksums carried by a stream's write records (diagnostics)."""
    for record in stream.records:
        if record.kind is RecordKind.WRITE and record.checksum is not None:
            yield record.checksum
