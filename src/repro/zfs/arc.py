"""Adaptive Replacement Cache (ARC).

ZFS caches blocks in an ARC (Megiddo & Modha, FAST'03): two LRU lists — T1
(recently used once) and T2 (frequently used) — plus ghost lists B1/B2 that
remember recently evicted keys and adaptively steer the target size ``p`` of
T1. This is a faithful implementation of the original algorithm, generalised
to variable-sized entries by charging bytes instead of slots.

The boot simulator uses it for the ZFS read path; the pool charges its
resident bytes as memory consumption.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

__all__ = ["AdaptiveReplacementCache", "ArcStats"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class ArcStats:
    """Per-tier hit/miss/eviction counters.

    ``hits``/``misses`` stay the coarse totals earlier callers rely on; the
    tier counters split them the way latency attribution needs: a T1 hit is a
    recency win, a T2 hit a frequency win, a ghost hit a miss that still
    steered the adaptive target ``p``, and evictions say which list paid.
    """

    hits: int = 0
    misses: int = 0
    t1_hits: int = 0
    t2_hits: int = 0
    b1_ghost_hits: int = 0
    b2_ghost_hits: int = 0
    t1_evictions: int = 0
    t2_evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def ghost_hits(self) -> int:
        return self.b1_ghost_hits + self.b2_ghost_hits

    @property
    def evictions(self) -> int:
        return self.t1_evictions + self.t2_evictions

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view with sorted-stable keys for reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "t1_hits": self.t1_hits,
            "t2_hits": self.t2_hits,
            "b1_ghost_hits": self.b1_ghost_hits,
            "b2_ghost_hits": self.b2_ghost_hits,
            "t1_evictions": self.t1_evictions,
            "t2_evictions": self.t2_evictions,
        }


class AdaptiveReplacementCache(Generic[K, V]):
    """Byte-budgeted ARC.

    ``capacity`` is a byte budget; each entry carries its own size. Ghost
    lists hold keys only (no values) and are bounded to the same byte budget,
    mirroring the c-slot bound of the slot-based original.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"ARC capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._p = 0  # adaptive target size (bytes) for T1
        self._t1: OrderedDict[K, tuple[V, int]] = OrderedDict()
        self._t2: OrderedDict[K, tuple[V, int]] = OrderedDict()
        self._b1: OrderedDict[K, int] = OrderedDict()  # key -> size
        self._b2: OrderedDict[K, int] = OrderedDict()
        self._t1_bytes = 0
        self._t2_bytes = 0
        self._b1_bytes = 0
        self._b2_bytes = 0
        self.stats = ArcStats()

    # -- public API ---------------------------------------------------------

    def get(self, key: K) -> V | None:
        """Look up ``key``; promotes hits to T2 (frequency list)."""
        if key in self._t1:
            value, size = self._t1.pop(key)
            self._t1_bytes -= size
            self._t2[key] = (value, size)
            self._t2_bytes += size
            self.stats.hits += 1
            self.stats.t1_hits += 1
            return value
        if key in self._t2:
            self._t2.move_to_end(key)
            self.stats.hits += 1
            self.stats.t2_hits += 1
            return self._t2[key][0]
        self.stats.misses += 1
        return None

    def put(self, key: K, value: V, size: int) -> None:
        """Insert ``key`` after a miss (the ARC 'on miss' path)."""
        if size <= 0:
            raise ValueError(f"entry size must be positive, got {size}")
        if size > self.capacity:
            return  # larger than the whole cache: bypass
        if key in self._t1 or key in self._t2:
            # overwrite in place (value refresh)
            self._remove_resident(key)
        if key in self._b1:
            # ghost hit in B1: favour recency — grow p
            self.stats.b1_ghost_hits += 1
            delta = max(1, self._b2_bytes // max(1, self._b1_bytes)) * size
            self._p = min(self.capacity, self._p + delta)
            self._b1_bytes -= self._b1.pop(key)
            self._replace(in_b2=False, incoming=size)
            self._t2[key] = (value, size)
            self._t2_bytes += size
            return
        if key in self._b2:
            # ghost hit in B2: favour frequency — shrink p
            self.stats.b2_ghost_hits += 1
            delta = max(1, self._b1_bytes // max(1, self._b2_bytes)) * size
            self._p = max(0, self._p - delta)
            self._b2_bytes -= self._b2.pop(key)
            self._replace(in_b2=True, incoming=size)
            self._t2[key] = (value, size)
            self._t2_bytes += size
            return
        # brand-new key
        l1_bytes = self._t1_bytes + self._b1_bytes
        if l1_bytes >= self.capacity:
            if self._t1_bytes < self.capacity:
                self._evict_ghost(self._b1, "_b1_bytes", l1_bytes - self.capacity + size)
                self._replace(in_b2=False, incoming=size)
            else:
                # T1 alone fills L1: evict its LRU entries, remembering them
                # in the B1 ghost list so an early re-reference still steers p
                self._evict_t1_to_ghost(needed=size)
        else:
            total = l1_bytes + self._t2_bytes + self._b2_bytes
            if total >= self.capacity:
                self._evict_ghost(
                    self._b2, "_b2_bytes", total - 2 * self.capacity + size
                )
            self._replace(in_b2=False, incoming=size)
        self._t1[key] = (value, size)
        self._t1_bytes += size

    def __contains__(self, key: K) -> bool:
        return key in self._t1 or key in self._t2

    @property
    def resident_bytes(self) -> int:
        """Bytes held by cached values (T1 + T2)."""
        return self._t1_bytes + self._t2_bytes

    @property
    def p(self) -> int:
        """Adaptive target size (bytes) of T1 — the recency/frequency dial;
        scenario drivers sample it as a gauge."""
        return self._p

    def tier_bytes(self) -> dict[str, int]:
        """Resident/ghost bytes per list, for telemetry."""
        return {
            "t1": self._t1_bytes,
            "t2": self._t2_bytes,
            "b1": self._b1_bytes,
            "b2": self._b2_bytes,
        }

    def clear(self) -> None:
        """Drop all cached data and ghosts (e.g. node reboot)."""
        self._t1.clear()
        self._t2.clear()
        self._b1.clear()
        self._b2.clear()
        self._t1_bytes = self._t2_bytes = self._b1_bytes = self._b2_bytes = 0
        self._p = 0

    # -- internals ----------------------------------------------------------

    def _remove_resident(self, key: K) -> None:
        if key in self._t1:
            _, size = self._t1.pop(key)
            self._t1_bytes -= size
        elif key in self._t2:
            _, size = self._t2.pop(key)
            self._t2_bytes -= size

    def _replace(self, *, in_b2: bool, incoming: int) -> None:
        """Make room for ``incoming`` bytes by demoting from T1 or T2."""
        while self._t1_bytes + self._t2_bytes + incoming > self.capacity:
            t1_nonempty = bool(self._t1)
            prefer_t1 = t1_nonempty and (
                self._t1_bytes > self._p or (in_b2 and self._t1_bytes == self._p)
            )
            if prefer_t1 or not self._t2:
                if not self._t1:
                    break
                key, (_, size) = self._t1.popitem(last=False)
                self._t1_bytes -= size
                self._b1[key] = size
                self._b1_bytes += size
                self.stats.t1_evictions += 1
            else:
                key, (_, size) = self._t2.popitem(last=False)
                self._t2_bytes -= size
                self._b2[key] = size
                self._b2_bytes += size
                self.stats.t2_evictions += 1

    def _evict_t1_to_ghost(self, needed: int) -> None:
        """Evict T1 LRU entries until ``needed`` bytes fit; evicted keys land
        in the B1 ghost list (ARC's |T1| = c case), so a prompt re-reference
        is recognised as a recency miss and grows ``p``."""
        while self._t1 and self._t1_bytes + self._t2_bytes + needed > self.capacity:
            key, (_, size) = self._t1.popitem(last=False)
            self._t1_bytes -= size
            self._b1[key] = size
            self._b1_bytes += size
            self.stats.t1_evictions += 1

    def _evict_ghost(self, ghost: OrderedDict, counter: str, overflow: int) -> None:
        shed = 0
        while ghost and shed < overflow:
            _, size = ghost.popitem(last=False)
            setattr(self, counter, getattr(self, counter) - size)
            shed += size
