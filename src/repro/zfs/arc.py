"""Adaptive Replacement Cache (ARC).

ZFS caches blocks in an ARC (Megiddo & Modha, FAST'03): two LRU lists — T1
(recently used once) and T2 (frequently used) — plus ghost lists B1/B2 that
remember recently evicted keys and adaptively steer the target size ``p`` of
T1. This is a faithful implementation of the original algorithm, generalised
to variable-sized entries by charging bytes instead of slots.

The boot simulator uses it for the ZFS read path; the pool charges its
resident bytes as memory consumption.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Generic, Hashable, TypeVar

__all__ = ["AdaptiveReplacementCache", "ArcStats"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class ArcStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class AdaptiveReplacementCache(Generic[K, V]):
    """Byte-budgeted ARC.

    ``capacity`` is a byte budget; each entry carries its own size. Ghost
    lists hold keys only (no values) and are bounded to the same byte budget,
    mirroring the c-slot bound of the slot-based original.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"ARC capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._p = 0  # adaptive target size (bytes) for T1
        self._t1: OrderedDict[K, tuple[V, int]] = OrderedDict()
        self._t2: OrderedDict[K, tuple[V, int]] = OrderedDict()
        self._b1: OrderedDict[K, int] = OrderedDict()  # key -> size
        self._b2: OrderedDict[K, int] = OrderedDict()
        self._t1_bytes = 0
        self._t2_bytes = 0
        self._b1_bytes = 0
        self._b2_bytes = 0
        self.stats = ArcStats()

    # -- public API ---------------------------------------------------------

    def get(self, key: K) -> V | None:
        """Look up ``key``; promotes hits to T2 (frequency list)."""
        if key in self._t1:
            value, size = self._t1.pop(key)
            self._t1_bytes -= size
            self._t2[key] = (value, size)
            self._t2_bytes += size
            self.stats.hits += 1
            return value
        if key in self._t2:
            self._t2.move_to_end(key)
            self.stats.hits += 1
            return self._t2[key][0]
        self.stats.misses += 1
        return None

    def put(self, key: K, value: V, size: int) -> None:
        """Insert ``key`` after a miss (the ARC 'on miss' path)."""
        if size <= 0:
            raise ValueError(f"entry size must be positive, got {size}")
        if size > self.capacity:
            return  # larger than the whole cache: bypass
        if key in self._t1 or key in self._t2:
            # overwrite in place (value refresh)
            self._remove_resident(key)
        if key in self._b1:
            # ghost hit in B1: favour recency — grow p
            delta = max(1, self._b2_bytes // max(1, self._b1_bytes)) * size
            self._p = min(self.capacity, self._p + delta)
            self._b1_bytes -= self._b1.pop(key)
            self._replace(in_b2=False, incoming=size)
            self._t2[key] = (value, size)
            self._t2_bytes += size
            return
        if key in self._b2:
            # ghost hit in B2: favour frequency — shrink p
            delta = max(1, self._b1_bytes // max(1, self._b2_bytes)) * size
            self._p = max(0, self._p - delta)
            self._b2_bytes -= self._b2.pop(key)
            self._replace(in_b2=True, incoming=size)
            self._t2[key] = (value, size)
            self._t2_bytes += size
            return
        # brand-new key
        l1_bytes = self._t1_bytes + self._b1_bytes
        if l1_bytes >= self.capacity:
            if self._t1_bytes < self.capacity:
                self._evict_ghost(self._b1, "_b1_bytes", l1_bytes - self.capacity + size)
                self._replace(in_b2=False, incoming=size)
            else:
                self._evict_lru(self._t1, "_t1_bytes", ghost=None, needed=size)
        else:
            total = l1_bytes + self._t2_bytes + self._b2_bytes
            if total >= self.capacity:
                self._evict_ghost(
                    self._b2, "_b2_bytes", total - 2 * self.capacity + size
                )
            self._replace(in_b2=False, incoming=size)
        self._t1[key] = (value, size)
        self._t1_bytes += size

    def __contains__(self, key: K) -> bool:
        return key in self._t1 or key in self._t2

    @property
    def resident_bytes(self) -> int:
        """Bytes held by cached values (T1 + T2)."""
        return self._t1_bytes + self._t2_bytes

    def clear(self) -> None:
        """Drop all cached data and ghosts (e.g. node reboot)."""
        self._t1.clear()
        self._t2.clear()
        self._b1.clear()
        self._b2.clear()
        self._t1_bytes = self._t2_bytes = self._b1_bytes = self._b2_bytes = 0
        self._p = 0

    # -- internals ----------------------------------------------------------

    def _remove_resident(self, key: K) -> None:
        if key in self._t1:
            _, size = self._t1.pop(key)
            self._t1_bytes -= size
        elif key in self._t2:
            _, size = self._t2.pop(key)
            self._t2_bytes -= size

    def _replace(self, *, in_b2: bool, incoming: int) -> None:
        """Make room for ``incoming`` bytes by demoting from T1 or T2."""
        while self._t1_bytes + self._t2_bytes + incoming > self.capacity:
            t1_nonempty = bool(self._t1)
            prefer_t1 = t1_nonempty and (
                self._t1_bytes > self._p or (in_b2 and self._t1_bytes == self._p)
            )
            if prefer_t1 or not self._t2:
                if not self._t1:
                    break
                key, (_, size) = self._t1.popitem(last=False)
                self._t1_bytes -= size
                self._b1[key] = size
                self._b1_bytes += size
            else:
                key, (_, size) = self._t2.popitem(last=False)
                self._t2_bytes -= size
                self._b2[key] = size
                self._b2_bytes += size

    def _evict_lru(self, lru: OrderedDict, counter: str, ghost, needed: int) -> None:
        while lru and self._t1_bytes + self._t2_bytes + needed > self.capacity:
            _key, (_, size) = lru.popitem(last=False)
            setattr(self, counter, getattr(self, counter) - size)

    def _evict_ghost(self, ghost: OrderedDict, counter: str, overflow: int) -> None:
        shed = 0
        while ghost and shed < overflow:
            _, size = ghost.popitem(last=False)
            setattr(self, counter, getattr(self, counter) - size)
            shed += size
