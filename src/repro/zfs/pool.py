"""The ZPool facade — what a node mounts.

Owns the space map, the (charged) dedup table, the plain allocation table,
the ARC, and the dataset namespace; hands out transaction groups. The
resource metrics the paper reports per node are properties here:

* ``disk_used_bytes``  — data after dedup+compression **plus** the on-disk
  DDT (the overhead measured in Figure 9);
* ``memory_used_bytes`` — resident DDT plus ARC bytes (Figure 10's metric).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ObjectNotFoundError, StorageError
from ..common.units import GiB, SQUIRREL_BLOCK_SIZE
from .arc import AdaptiveReplacementCache
from .dataset import Dataset
from .ddt import DedupTable
from .spa import SpaceMap
from .zio import ZioPipeline

__all__ = ["ZPool", "PoolStats"]


@dataclass(frozen=True)
class PoolStats:
    """Point-in-time resource snapshot of a pool."""

    data_bytes: int  #: allocated block data (after dedup + compression)
    ddt_disk_bytes: int
    ddt_core_bytes: int
    arc_bytes: int
    ddt_entries: int

    @property
    def disk_used_bytes(self) -> int:
        return self.data_bytes + self.ddt_disk_bytes

    @property
    def memory_used_bytes(self) -> int:
        return self.ddt_core_bytes + self.arc_bytes


class ZPool:
    """One storage pool (one per node in Squirrel deployments)."""

    def __init__(
        self,
        name: str = "tank",
        *,
        capacity: int = 1024 * GiB,
        arc_capacity: int = 1 * GiB,
        store_payloads: bool = True,
    ) -> None:
        self.name = name
        self.space = SpaceMap(capacity=capacity)
        self.ddt = DedupTable()
        self.plain = DedupTable()
        self.arc: AdaptiveReplacementCache[str, bytes] = AdaptiveReplacementCache(
            arc_capacity
        )
        self.zio = ZioPipeline(
            self.space, self.ddt, self.plain, store_payloads=store_payloads
        )
        self._datasets: dict[str, Dataset] = {}
        self._txg = 0

    # -- transaction groups ---------------------------------------------------

    def advance_txg(self) -> int:
        """Open the next transaction group and return its id."""
        self._txg += 1
        return self._txg

    @property
    def current_txg(self) -> int:
        return self._txg

    # -- dataset namespace ----------------------------------------------------

    def create_dataset(
        self,
        name: str,
        *,
        record_size: int = SQUIRREL_BLOCK_SIZE,
        compression: str = "gzip6",
        dedup: bool = True,
    ) -> Dataset:
        if name in self._datasets:
            raise StorageError(f"dataset {name!r} already exists in pool {self.name}")
        dataset = Dataset(
            self,
            name,
            record_size=record_size,
            compression=compression,
            dedup=dedup,
        )
        self._datasets[name] = dataset
        return dataset

    def dataset(self, name: str) -> Dataset:
        ds = self._datasets.get(name)
        if ds is None:
            raise ObjectNotFoundError(f"no dataset {name!r} in pool {self.name}")
        return ds

    def has_dataset(self, name: str) -> bool:
        return name in self._datasets

    def destroy_dataset(self, name: str) -> None:
        self.dataset(name).destroy()
        del self._datasets[name]

    def dataset_names(self) -> list[str]:
        return sorted(self._datasets)

    # -- accounting -----------------------------------------------------------

    @property
    def data_bytes(self) -> int:
        """Block data allocated after dedup + compression (sector-aligned)."""
        return self.space.allocated_bytes

    @property
    def disk_used_bytes(self) -> int:
        return self.data_bytes + self.ddt.on_disk_bytes

    @property
    def memory_used_bytes(self) -> int:
        return self.ddt.in_core_bytes + self.arc.resident_bytes

    def stats(self) -> PoolStats:
        return PoolStats(
            data_bytes=self.data_bytes,
            ddt_disk_bytes=self.ddt.on_disk_bytes,
            ddt_core_bytes=self.ddt.in_core_bytes,
            arc_bytes=self.arc.resident_bytes,
            ddt_entries=self.ddt.entry_count,
        )

    def dedup_ratio(self) -> float:
        return self.ddt.dedup_ratio()

    def describe(self) -> str:
        """``zfs list``-style report of the pool and its datasets."""
        from ..common.units import format_bytes

        lines = [
            f"pool {self.name}: {format_bytes(self.disk_used_bytes)} used "
            f"({format_bytes(self.data_bytes)} data + "
            f"{format_bytes(self.ddt.on_disk_bytes)} DDT), "
            f"{format_bytes(self.memory_used_bytes)} in core, "
            f"dedup {self.dedup_ratio():.2f}x",
            f"{'NAME':<24}{'FILES':>7}{'SNAPS':>7}{'REFER':>12}{'LSIZE':>12}",
        ]
        for name in self.dataset_names():
            dataset = self.dataset(name)
            lines.append(
                f"{name:<24}{len(dataset.file_names()):>7}"
                f"{len(dataset.snapshots()):>7}"
                f"{format_bytes(dataset.referenced_psize):>12}"
                f"{format_bytes(dataset.logical_size):>12}"
            )
        return "\n".join(lines)
