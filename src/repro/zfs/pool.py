"""The ZPool facade — what a node mounts.

Owns the space map, the (charged) dedup table, the plain allocation table,
the ARC, and the dataset namespace; hands out transaction groups. The
resource metrics the paper reports per node are properties here:

* ``disk_used_bytes``  — data after dedup+compression **plus** the on-disk
  DDT (the overhead measured in Figure 9);
* ``memory_used_bytes`` — resident DDT plus ARC bytes (Figure 10's metric).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import ObjectNotFoundError, StorageError
from ..common.units import GiB, SQUIRREL_BLOCK_SIZE
from .arc import AdaptiveReplacementCache
from .dataset import Dataset
from .ddt import DedupTable
from .spa import SpaceMap
from .zio import ZioPipeline

__all__ = ["ZPool", "PoolStats"]


@dataclass(frozen=True)
class PoolStats:
    """Point-in-time resource snapshot of a pool."""

    data_bytes: int  #: allocated block data (after dedup + compression)
    ddt_disk_bytes: int
    ddt_core_bytes: int
    arc_bytes: int
    ddt_entries: int

    @property
    def disk_used_bytes(self) -> int:
        return self.data_bytes + self.ddt_disk_bytes

    @property
    def memory_used_bytes(self) -> int:
        return self.ddt_core_bytes + self.arc_bytes


class ZPool:
    """One storage pool (one per node in Squirrel deployments)."""

    def __init__(
        self,
        name: str = "tank",
        *,
        capacity: int = 1024 * GiB,
        arc_capacity: int = 1 * GiB,
        store_payloads: bool = True,
    ) -> None:
        self.name = name
        self.space = SpaceMap(capacity=capacity)
        self.ddt = DedupTable()
        self.plain = DedupTable()
        self.arc: AdaptiveReplacementCache[str, bytes] = AdaptiveReplacementCache(
            arc_capacity
        )
        self.zio = ZioPipeline(
            self.space, self.ddt, self.plain, store_payloads=store_payloads
        )
        self._store_payloads = store_payloads
        #: named dedup *domains*: each is an independent DedupTable (plus a
        #: pipeline over the shared space map). ``None``/absent -> the global
        #: ``self.ddt``/``self.zio`` every dataset used before sharding.
        self._domains: dict[str, tuple[DedupTable, ZioPipeline]] = {}
        self._datasets: dict[str, Dataset] = {}
        self._txg = 0

    # -- dedup domains --------------------------------------------------------

    def domain(self, name: str) -> tuple[DedupTable, ZioPipeline]:
        """Get or create the named dedup domain."""
        entry = self._domains.get(name)
        if entry is None:
            ddt = DedupTable()
            zio = ZioPipeline(
                self.space,
                ddt,
                DedupTable(),
                store_payloads=self._store_payloads,
            )
            entry = self._domains[name] = (ddt, zio)
        return entry

    def domain_ddt(self, name: str) -> DedupTable:
        return self.domain(name)[0]

    def domain_zio(self, name: str) -> ZioPipeline:
        return self.domain(name)[1]

    def domain_names(self) -> list[str]:
        return sorted(self._domains)

    def peek_domain_ddt(self, name: str) -> DedupTable | None:
        """The named domain's DDT, or ``None`` — never creates the domain
        (safe for metric scrapes, which must not mutate pool state)."""
        entry = self._domains.get(name)
        return entry[0] if entry is not None else None

    # -- transaction groups ---------------------------------------------------

    def advance_txg(self) -> int:
        """Open the next transaction group and return its id."""
        self._txg += 1
        return self._txg

    @property
    def current_txg(self) -> int:
        return self._txg

    # -- dataset namespace ----------------------------------------------------

    def create_dataset(
        self,
        name: str,
        *,
        record_size: int = SQUIRREL_BLOCK_SIZE,
        compression: str = "gzip6",
        dedup: bool = True,
        domain: str | None = None,
    ) -> Dataset:
        if name in self._datasets:
            raise StorageError(f"dataset {name!r} already exists in pool {self.name}")
        dataset = Dataset(
            self,
            name,
            record_size=record_size,
            compression=compression,
            dedup=dedup,
            zio=self.domain_zio(domain) if domain is not None else None,
        )
        self._datasets[name] = dataset
        return dataset

    def dataset(self, name: str) -> Dataset:
        ds = self._datasets.get(name)
        if ds is None:
            raise ObjectNotFoundError(f"no dataset {name!r} in pool {self.name}")
        return ds

    def has_dataset(self, name: str) -> bool:
        return name in self._datasets

    def destroy_dataset(self, name: str) -> None:
        self.dataset(name).destroy()
        del self._datasets[name]

    def dataset_names(self) -> list[str]:
        return sorted(self._datasets)

    # -- accounting -----------------------------------------------------------

    @property
    def data_bytes(self) -> int:
        """Block data allocated after dedup + compression (sector-aligned)."""
        return self.space.allocated_bytes

    @property
    def ddt_entries_total(self) -> int:
        """DDT entries across the global domain and every named domain."""
        return self.ddt.entry_count + sum(
            ddt.entry_count for ddt, _zio in self._domains.values()
        )

    @property
    def ddt_core_bytes_total(self) -> int:
        """Resident DDT bytes across all dedup domains."""
        return self.ddt.in_core_bytes + sum(
            ddt.in_core_bytes for ddt, _zio in self._domains.values()
        )

    @property
    def ddt_disk_bytes_total(self) -> int:
        """On-disk DDT bytes across all dedup domains."""
        return self.ddt.on_disk_bytes + sum(
            ddt.on_disk_bytes for ddt, _zio in self._domains.values()
        )

    @property
    def disk_used_bytes(self) -> int:
        return self.data_bytes + self.ddt_disk_bytes_total

    @property
    def memory_used_bytes(self) -> int:
        return self.ddt_core_bytes_total + self.arc.resident_bytes

    def stats(self) -> PoolStats:
        return PoolStats(
            data_bytes=self.data_bytes,
            ddt_disk_bytes=self.ddt_disk_bytes_total,
            ddt_core_bytes=self.ddt_core_bytes_total,
            arc_bytes=self.arc.resident_bytes,
            ddt_entries=self.ddt_entries_total,
        )

    def dedup_ratio(self) -> float:
        if not self._domains:
            return self.ddt.dedup_ratio()
        referenced = self.ddt.referenced_psize + sum(
            ddt.referenced_psize for ddt, _zio in self._domains.values()
        )
        allocated = self.ddt.allocated_psize + sum(
            ddt.allocated_psize for ddt, _zio in self._domains.values()
        )
        return referenced / allocated if allocated else 1.0

    def describe(self) -> str:
        """``zfs list``-style report of the pool and its datasets."""
        from ..common.units import format_bytes

        lines = [
            f"pool {self.name}: {format_bytes(self.disk_used_bytes)} used "
            f"({format_bytes(self.data_bytes)} data + "
            f"{format_bytes(self.ddt_disk_bytes_total)} DDT), "
            f"{format_bytes(self.memory_used_bytes)} in core, "
            f"dedup {self.dedup_ratio():.2f}x",
            f"{'NAME':<24}{'FILES':>7}{'SNAPS':>7}{'REFER':>12}{'LSIZE':>12}",
        ]
        for name in self.dataset_names():
            dataset = self.dataset(name)
            lines.append(
                f"{name:<24}{len(dataset.file_names()):>7}"
                f"{len(dataset.snapshots()):>7}"
                f"{format_bytes(dataset.referenced_psize):>12}"
                f"{format_bytes(dataset.logical_size):>12}"
            )
        return "\n".join(lines)
