"""Storage pool allocator (SPA) — vdev space management.

A deliberately simple but honest model: a single concatenated vdev with a
bump allocator and byte-accurate accounting. Offsets are handed out in write
order and never reused, which reproduces the on-disk behaviour the paper's
boot analysis depends on (Section 4.2.3): blocks written by *other* images
earlier sit between a file's logically adjacent blocks, so deduplicated reads
seek. Frees return capacity (accounting) without compacting.

All allocations are rounded up to the 512-byte sector, matching how ZFS
charges ``asize``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import PoolFullError
from ..common.units import align_up

__all__ = ["SpaceMap", "SECTOR_SIZE"]

SECTOR_SIZE: int = 512


@dataclass
class SpaceMap:
    """Byte-accurate vdev space accounting with write-order placement."""

    capacity: int
    _cursor: int = 0
    _allocated: int = 0
    _freed: int = 0
    _allocation_count: int = 0
    #: live allocation sizes by DVA, for exact frees
    _sizes: dict[int, int] = field(default_factory=dict, repr=False)

    def allocate(self, psize: int) -> int:
        """Allocate ``psize`` bytes; returns the DVA (byte offset)."""
        if psize <= 0:
            raise ValueError(f"allocation size must be positive, got {psize}")
        asize = align_up(psize, SECTOR_SIZE)
        if self._allocated + asize > self.capacity:
            raise PoolFullError(
                f"pool full: {self._allocated}/{self.capacity} bytes allocated, "
                f"cannot place {asize}"
            )
        dva = self._cursor
        self._cursor += asize
        self._allocated += asize
        self._allocation_count += 1
        self._sizes[dva] = asize
        return dva

    def free(self, dva: int) -> int:
        """Free the allocation at ``dva``; returns the reclaimed byte count."""
        asize = self._sizes.pop(dva, None)
        if asize is None:
            raise PoolFullError(f"free of unknown DVA {dva}")
        self._allocated -= asize
        self._freed += asize
        return asize

    @property
    def allocated_bytes(self) -> int:
        """Currently allocated bytes (sector-aligned)."""
        return self._allocated

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._allocated

    @property
    def high_water_offset(self) -> int:
        """Largest offset ever written — the extent of on-disk spread."""
        return self._cursor

    @property
    def allocation_count(self) -> int:
        """Number of live allocations."""
        return len(self._sizes)

    @property
    def total_allocations(self) -> int:
        """Number of allocations ever made (live + freed)."""
        return self._allocation_count
