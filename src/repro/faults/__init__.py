"""Fault injection on the event engine (paper Section 6's availability story).

Node crashes, link flaps and brick failures as first-class
:mod:`repro.sim` processes, driven by seeded deterministic schedules —
timed scenarios measure *recovery time*, not just healthy steady state.
"""

from .injector import FaultInjector
from .plan import FaultKind, FaultPlan, FaultSpec

__all__ = ["FaultInjector", "FaultKind", "FaultPlan", "FaultSpec"]
