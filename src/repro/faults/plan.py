"""Fault schedules: what breaks, when, for how long.

A :class:`FaultPlan` is an immutable, fully deterministic list of
:class:`FaultSpec` entries. Three ways to build one:

* :meth:`FaultPlan.fixed` — explicit specs (tests, acceptance scenarios),
* :meth:`FaultPlan.parse` — the CLI's compact DSL, e.g.
  ``"crash:compute1@40+30,flap:compute2@50+10,brick:storage0@60+20"``
  (``kind:target@start+duration`` in seconds, comma-separated),
* :meth:`FaultPlan.exponential` — seeded exponential MTBF/MTTR draws per
  target, the classic availability model; the same seed always yields the
  same schedule.

The plan is pure data — :class:`~repro.faults.injector.FaultInjector` turns
it into engine processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

from ..common.errors import ConfigError
from ..common.rng import stream as rng_stream

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind(Enum):
    """The three fault classes of the paper's availability argument."""

    NODE_CRASH = "crash"  #: compute node dies, reboots, rejoins via resync
    LINK_FLAP = "flap"  #: a NIC/uplink's bandwidth drops to zero and back
    BRICK_FAIL = "brick"  #: a storage brick fails; reads degrade onto survivors


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: ``target`` breaks at ``at_s`` for ``duration_s``."""

    kind: FaultKind
    target: str  #: node name ("compute3", "storage0")
    at_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ConfigError("fault start must be >= 0")
        if self.duration_s <= 0:
            raise ConfigError("fault duration must be positive")

    def render(self) -> str:
        """The parseable form (round-trips through :meth:`FaultPlan.parse`)."""
        return f"{self.kind.value}:{self.target}@{self.at_s:g}+{self.duration_s:g}"


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults, sorted by start time."""

    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.faults, key=lambda f: (f.at_s, f.kind.value, f.target))
        )
        object.__setattr__(self, "faults", ordered)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def of_kind(self, kind: FaultKind) -> tuple[FaultSpec, ...]:
        return tuple(f for f in self.faults if f.kind is kind)

    def render(self) -> str:
        return ",".join(f.render() for f in self.faults)

    # -- constructors -------------------------------------------------------------

    @classmethod
    def fixed(cls, specs: Iterable[FaultSpec]) -> "FaultPlan":
        return cls(faults=tuple(specs))

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI DSL: ``kind:target@start+duration`` entries joined
        by commas; kinds are ``crash``, ``flap``, ``brick``."""
        specs = []
        for raw in text.split(","):
            entry = raw.strip()
            if not entry:
                continue
            try:
                kind_s, rest = entry.split(":", 1)
                target, when = rest.split("@", 1)
                at_s, duration_s = when.split("+", 1)
                spec = FaultSpec(
                    kind=FaultKind(kind_s.strip()),
                    target=target.strip(),
                    at_s=float(at_s),
                    duration_s=float(duration_s),
                )
            except (ValueError, ConfigError) as exc:
                raise ConfigError(
                    f"bad fault spec {entry!r} (want kind:target@start+duration, "
                    f"kinds: {', '.join(k.value for k in FaultKind)}): {exc}"
                ) from None
            specs.append(spec)
        if not specs:
            raise ConfigError("empty fault plan")
        return cls.fixed(specs)

    @classmethod
    def exponential(
        cls,
        *,
        seed: int | str,
        horizon_s: float,
        targets: Sequence[str],
        mtbf_s: float,
        mttr_s: float,
        kind: FaultKind = FaultKind.NODE_CRASH,
    ) -> "FaultPlan":
        """Seeded exponential failure/repair schedule per target.

        Each target alternates up (Exp(mtbf)) and down (Exp(mttr)) phases
        from its own named RNG stream; faults whose repair would cross the
        horizon are dropped, so every scheduled fault also recovers inside
        the scenario. Deterministic per ``(seed, target)``.
        """
        if horizon_s <= 0 or mtbf_s <= 0 or mttr_s <= 0:
            raise ConfigError("horizon, MTBF and MTTR must all be positive")
        specs = []
        for target in targets:
            rng = rng_stream("fault-plan", seed, kind.value, target)
            t = float(rng.exponential(mtbf_s))
            while t < horizon_s:
                duration = float(rng.exponential(mttr_s))
                if t + duration >= horizon_s:
                    break
                specs.append(
                    FaultSpec(kind=kind, target=target, at_s=t, duration_s=duration)
                )
                t += duration + float(rng.exponential(mtbf_s))
        return cls.fixed(specs)
