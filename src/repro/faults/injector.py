"""The fault injector: a :class:`FaultPlan` as engine processes.

One process per scheduled fault, running against a
:class:`~repro.workload.TimedSquirrel` rig:

* **node crash** — the compute node goes offline (registrations skip it),
  its NIC blocks, and every boot in flight on it is preempted
  (:meth:`repro.sim.Process.interrupt`). After the outage the NIC unblocks
  and the node rejoins through Squirrel's offline catch-up
  (:meth:`~repro.core.Squirrel.resync_node` replays every missed
  incremental in snapshot order); only then are the waiting boots released.
* **link flap** — the target's pipe (compute NIC or storage brick uplink)
  blocks for the duration: in-flight transfers stall in place and resume,
  nothing is lost.
* **brick failure** — the brick leaves the glusterfs read rotation
  (degraded reads route onto its group's survivors), its uplink blocks, and
  boots with a fetch in flight *from that brick* are preempted so their
  retry re-plans around the dead brick.

Every state change lands in the rig's :class:`~repro.sim.Timeline`:
``node_crashes`` / ``node_rejoins`` / ``link_flaps`` / ``brick_failures``
counters and the ``node_recovery_s`` histogram (crash → resynced), which
scenario reports surface next to boot latency. Each fault also opens a span
(``fault.crash`` / ``fault.flap`` / ``fault.brick``) on the rig's tracer,
so the outage window renders right above the boots it preempted; a node
crash additionally wipes the node's in-memory ARC — the reboot loses it.
"""

from __future__ import annotations

from ..common.errors import ConfigError
from ..sim import Engine, Event, Timeline
from .plan import FaultKind, FaultPlan, FaultSpec

__all__ = ["FaultInjector"]


class FaultInjector:
    """Drives one fault plan through a timed rig; also the down-state oracle
    boots consult (``is_down`` / ``rejoin_event``)."""

    def __init__(self, timed, plan: FaultPlan) -> None:
        self.timed = timed
        self.plan = plan
        self.engine: Engine = timed.engine
        self.timeline: Timeline = timed.timeline
        #: crashed nodes -> event triggered once the node is back *and* resynced
        self._rejoin: dict[str, Event] = {}
        self._validate()
        timed.faults = self
        # fault telemetry on the rig's registry: the sampler tracks the
        # down-node count through every outage window, and per-kind counters
        # record how much of the plan actually fired (overlaps are skipped)
        self._m_injected = timed.metrics.counter(
            "faults_injected_total", "Faults fired by kind", labels=("kind",)
        )
        for kind in ("brick", "crash", "flap"):
            self._m_injected.labels(kind=kind)
        timed.metrics.gauge(
            "faults_nodes_down", "Compute nodes currently crashed"
        ).set_function(lambda: float(len(self._rejoin)))

    def _validate(self) -> None:
        cluster = self.timed.squirrel.cluster
        compute = {node.name for node in cluster.compute}
        storage = {node.name for node in cluster.storage.nodes}
        for fault in self.plan:
            if fault.kind is FaultKind.NODE_CRASH and fault.target not in compute:
                raise ConfigError(f"crash target {fault.target!r} is not a compute node")
            if fault.kind is FaultKind.BRICK_FAIL and fault.target not in storage:
                raise ConfigError(f"brick target {fault.target!r} is not a storage node")
            if fault.kind is FaultKind.LINK_FLAP and fault.target not in compute | storage:
                raise ConfigError(f"flap target {fault.target!r} is not a cluster node")

    def start(self) -> None:
        """Spawn one engine process per scheduled fault."""
        runners = {
            FaultKind.NODE_CRASH: self._node_crash,
            FaultKind.LINK_FLAP: self._link_flap,
            FaultKind.BRICK_FAIL: self._brick_fail,
        }
        for fault in self.plan:
            self.engine.process(
                runners[fault.kind](fault), label=f"fault:{fault.render()}"
            )

    # -- the down-state oracle (consulted by TimedSquirrel boots) ------------------

    def is_down(self, node_name: str) -> bool:
        return node_name in self._rejoin

    def rejoin_event(self, node_name: str) -> Event:
        """Event triggered when the crashed node has rebooted *and* caught
        up via offline propagation; boots delayed by the crash wait on it."""
        return self._rejoin[node_name]

    # -- fault processes -----------------------------------------------------------

    def _node_crash(self, fault: FaultSpec):
        engine, timed = self.engine, self.timed
        yield engine.timeout(fault.at_s)
        if fault.target in self._rejoin:
            self.timeline.count("faults_skipped")  # already down: overlap
            return
        crashed_at = engine.now
        self.timeline.count("node_crashes")
        self._m_injected.labels(kind="crash").inc()
        span = timed.tracer.span(
            "fault.crash", track=fault.target, node=fault.target,
            duration_s=fault.duration_s,
        )
        self._rejoin[fault.target] = engine.event(f"rejoin:{fault.target}")
        node = timed.squirrel.cluster.node(fault.target)
        node.online = False
        timed.nic[fault.target].block()
        # the reboot loses the node's in-memory ARC along with the boots
        timed.arc[fault.target].clear()
        # preempt every boot in flight on the dead host; each retries after
        # the rejoin event (and cancels its own half-done transfers)
        preempted = 0
        for boot in timed.inflight(fault.target):
            boot.process.interrupt("node-crash")
            preempted += 1
        # placement redirects streaming *from* this host die with it too;
        # their retry re-picks a surviving holder from the directory
        for boot in timed.inflight_from_peer(fault.target):
            boot.process.interrupt("peer-crash")
            preempted += 1
        yield engine.timeout(fault.duration_s)
        timed.nic[fault.target].unblock()
        # reboot done; catch up on everything registered while away (replays
        # ALL missed incrementals in snapshot order, or re-replicates when
        # the base snapshot fell out of the GC window)
        yield timed.resync(fault.target)
        self.timeline.count("node_rejoins")
        self.timeline.observe("node_recovery_s", engine.now - crashed_at)
        span.end(preempted_boots=preempted)
        self._rejoin.pop(fault.target).succeed()

    def _link_flap(self, fault: FaultSpec):
        engine, timed = self.engine, self.timed
        yield engine.timeout(fault.at_s)
        pipe = (
            timed.nic[fault.target]
            if fault.target in timed.nic
            else timed.brick[fault.target]
        )
        self.timeline.count("link_flaps")
        self._m_injected.labels(kind="flap").inc()
        span = timed.tracer.span(
            "fault.flap", track=fault.target, link=fault.target,
            duration_s=fault.duration_s,
        )
        pipe.block()
        yield engine.timeout(fault.duration_s)
        pipe.unblock()
        span.end()
        self.timeline.count("link_restores")

    def _brick_fail(self, fault: FaultSpec):
        engine, timed = self.engine, self.timed
        gluster = timed.squirrel.cluster.storage.gluster
        yield engine.timeout(fault.at_s)
        if not gluster.is_alive(fault.target):
            self.timeline.count("faults_skipped")
            return
        self.timeline.count("brick_failures")
        self._m_injected.labels(kind="brick").inc()
        span = timed.tracer.span(
            "fault.brick", track=fault.target, brick=fault.target,
            duration_s=fault.duration_s,
        )
        gluster.fail_node(fault.target)
        timed.brick[fault.target].block()
        # fetches being served by the dead brick are lost mid-stream; the
        # preempted boots re-read immediately through the degraded plan
        preempted = 0
        for boot in timed.inflight_on_brick(fault.target):
            boot.process.interrupt("brick-failure")
            preempted += 1
        yield engine.timeout(fault.duration_s)
        gluster.restore_node(fault.target)
        timed.brick[fault.target].unblock()
        span.end(preempted_boots=preempted)
        self.timeline.count("brick_restores")
