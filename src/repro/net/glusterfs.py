"""A glusterfs-like striped + replicated parallel file system.

The paper's storage backend (Section 4.4): 4 storage nodes, "two levels of
striping and two levels of replication" — files are striped over two
replica groups, each group mirroring across two nodes, giving random-access
parallelism over four disks and single-disk fault tolerance.

The model answers: which storage node serves each byte range of a file
(reads pick one replica round-robin), and records the resulting transfers in
the ledger. Writes fan out to every replica of the stripe's group.

Fault model (paper Section 6): a brick can fail and be restored
(:meth:`GlusterVolume.fail_node` / :meth:`GlusterVolume.restore_node`).
Degraded reads route around dead bricks — any surviving replica of a stripe
group serves its ranges — and only losing *every* replica of a group makes
that group's ranges unreadable. Writes during degradation land on the
surviving replicas only (self-healing of the stale replica on restore is
out of scope: the cVolume workload re-reads, never patches).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import NetworkError
from .topology import Node, NodeKind, TransferLedger

__all__ = ["GlusterVolume"]

#: glusterfs default stripe unit
STRIPE_UNIT = 128 * 1024


@dataclass
class _FileMeta:
    name: str
    size: int


class GlusterVolume:
    """One striped+replicated volume over a set of storage nodes."""

    def __init__(
        self,
        storage_nodes: list[Node],
        *,
        stripe_count: int = 2,
        replica_count: int = 2,
        stripe_unit: int = STRIPE_UNIT,
        ledger: TransferLedger | None = None,
    ) -> None:
        if stripe_count * replica_count != len(storage_nodes):
            raise NetworkError(
                f"{stripe_count}x striping with {replica_count}x replication needs "
                f"{stripe_count * replica_count} storage nodes, got {len(storage_nodes)}"
            )
        for node in storage_nodes:
            if node.kind is not NodeKind.STORAGE:
                raise NetworkError(f"{node.name} is not a storage node")
        self.stripe_count = stripe_count
        self.replica_count = replica_count
        self.stripe_unit = stripe_unit
        self.ledger = ledger or TransferLedger()
        #: replica groups: group g holds nodes [g*replica : (g+1)*replica]
        self.groups = [
            storage_nodes[g * replica_count : (g + 1) * replica_count]
            for g in range(stripe_count)
        ]
        self._files: dict[str, _FileMeta] = {}
        #: per-group round-robin cursors (a shared cursor would alias with
        #: the stripe alternation and starve one replica)
        self._read_rr = [0] * stripe_count
        #: names of failed bricks (degraded mode while non-empty)
        self._dead: set[str] = set()
        self._names = {node.name for group in self.groups for node in group}
        #: running bytes-served tally per brick — O(1) to read, unlike the
        #: full ledger walk in :meth:`storage_read_load`, so gauges can
        #: scrape it every sampling tick
        self._served: dict[str, int] = {name: 0 for name in sorted(self._names)}
        #: purposes that have flowed through the brick read path; the
        #: served-bytes verifier filters the ledger to exactly these, so
        #: storage-sourced traffic that bypasses the bricks (snapshot
        #: multicast, placement seeding) never counts as brick service
        self._read_purposes: set[str] = set()

    # -- fault injection ----------------------------------------------------------

    def fail_node(self, name: str) -> None:
        """Take one brick down; reads degrade onto its group's survivors."""
        if name not in self._names:
            raise NetworkError(f"no storage node {name!r}")
        self._dead.add(name)

    def restore_node(self, name: str) -> None:
        """Bring a failed brick back into the read rotation."""
        if name not in self._names:
            raise NetworkError(f"no storage node {name!r}")
        self._dead.discard(name)

    def is_alive(self, name: str) -> bool:
        if name not in self._names:
            raise NetworkError(f"no storage node {name!r}")
        return name not in self._dead

    @property
    def degraded(self) -> bool:
        return bool(self._dead)

    # -- namespace ---------------------------------------------------------------

    def create_file(self, name: str, size: int, *, writer: str | None = None) -> None:
        """Create a file; when ``writer`` is given, records the upload traffic
        (size × replica_count leaves the writer)."""
        if name in self._files:
            raise NetworkError(f"file {name!r} already exists")
        self._files[name] = _FileMeta(name, size)
        if writer is not None:
            for group in self.groups:
                for replica in group:
                    if replica.name in self._dead:
                        continue  # degraded write: survivors only
                    share = size // self.stripe_count
                    self.ledger.record(writer, replica.name, share, "upload")

    def has_file(self, name: str) -> bool:
        return name in self._files

    def file_size(self, name: str) -> int:
        meta = self._files.get(name)
        if meta is None:
            raise NetworkError(f"no file {name!r}")
        return meta.size

    # -- data path ---------------------------------------------------------------

    def serving_node(self, offset: int) -> Node:
        """Storage node that serves a read at ``offset``: round-robin over
        the *alive* replicas of the owning stripe group (degraded reads fall
        onto the survivors; a fully dead group is unreadable)."""
        group_index = (offset // self.stripe_unit) % self.stripe_count
        group = self.groups[group_index]
        alive = [node for node in group if node.name not in self._dead]
        if not alive:
            raise NetworkError(
                f"stripe group {group_index} lost: every replica "
                f"({', '.join(n.name for n in group)}) has failed"
            )
        self._read_rr[group_index] += 1
        return alive[self._read_rr[group_index] % len(alive)]

    def read(self, name: str, offset: int, length: int, *, reader: str,
             purpose: str = "boot-read") -> int:
        """Read a byte range to ``reader``; returns bytes moved over the net."""
        moved, _plan = self.read_with_plan(
            name, offset, length, reader=reader, purpose=purpose
        )
        return moved

    def read_with_plan(
        self, name: str, offset: int, length: int, *, reader: str,
        purpose: str = "boot-read",
    ) -> tuple[int, list[tuple[Node, int]]]:
        """Read a byte range and also return the per-brick service plan.

        The plan aggregates the stripe-unit chunks by serving storage node —
        the service-time hook the event engine drives: each ``(node, bytes)``
        entry becomes a timed transfer through that brick's uplink pipe,
        while the ledger accounting stays identical to a plain :meth:`read`.
        """
        meta = self._files.get(name)
        if meta is None:
            raise NetworkError(f"no file {name!r}")
        if offset < 0 or offset + length > meta.size:
            raise NetworkError(f"read past end of {name!r}")
        moved = 0
        position = offset
        end = offset + length
        self._read_purposes.add(purpose)
        per_node: dict[str, int] = {}
        nodes: dict[str, Node] = {}
        while position < end:
            stripe_end = (position // self.stripe_unit + 1) * self.stripe_unit
            chunk = min(end, stripe_end) - position
            node = self.serving_node(position)
            self.ledger.record(node.name, reader, chunk, purpose)
            self._served[node.name] += chunk
            per_node[node.name] = per_node.get(node.name, 0) + chunk
            nodes[node.name] = node
            moved += chunk
            position += chunk
        plan = [(nodes[name_], per_node[name_]) for name_ in sorted(per_node)]
        return moved, plan

    def served_bytes(self, name: str) -> int:
        """Running bytes-served tally for one brick (O(1) — the gauge-scrape
        counterpart of :meth:`storage_read_load`)."""
        if name not in self._names:
            raise NetworkError(f"no storage node {name!r}")
        return self._served[name]

    def storage_read_load(self) -> dict[str, int]:
        """Bytes served per storage node (the storage-bottleneck view)."""
        load: dict[str, int] = {}
        for group in self.groups:
            for node in group:
                load[node.name] = self.ledger.bytes_out_of(node.name)
        return load

    def verify_served_accounting(self) -> dict[str, int]:
        """Cross-check the O(1) served tallies against the ledger.

        Recomputes each brick's service bytes from the ledger records the
        read path actually produced — transfers sourced at a brick under a
        purpose that has flowed through :meth:`read_with_plan` — and raises
        :class:`~repro.common.errors.NetworkError` on any divergence. This
        pins two invariants at once: degraded reads re-route a dead brick's
        ranges onto its group's survivors exactly once (no loss, no double
        count), and storage-sourced traffic that bypasses the bricks
        (snapshot multicast, placement seeding) or never touches them
        (compute-to-compute peer redirects) cannot inflate a brick tally.
        Only meaningful while the ledger covers the volume's whole history
        (i.e. it has not been cleared since construction).
        """
        computed = {name: 0 for name in sorted(self._names)}
        for transfer in self.ledger.transfers:
            if (
                transfer.src in self._names
                and transfer.purpose in self._read_purposes
            ):
                computed[transfer.src] += transfer.n_bytes
        if computed != self._served:
            drift = {
                name: (self._served[name], computed[name])
                for name in sorted(self._names)
                if self._served[name] != computed[name]
            }
            raise NetworkError(
                "served-bytes tallies diverge from the ledger "
                f"(tally, ledger): {drift}"
            )
        return computed
