"""Cluster topology: nodes, NICs, and the transfer ledger.

The evaluation cluster (DAS-4/VU, Section 4) is a star: up to 68 nodes on a
commodity 1 GbE switch plus QDR InfiniBand. Figure 18's metric is *bytes
moved to compute nodes*, so the first-class object here is the
:class:`TransferLedger` — every simulated byte movement is recorded with its
endpoints and purpose, and the figure queries the ledger.

Timing is intentionally coarse (bandwidth/latency bounds with a many-to-one
contention factor): the paper's network experiment reports transfer *sizes*,
and timing only needs to be plausible for the propagation examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..common.errors import NetworkError

__all__ = [
    "LinkProfile",
    "GBE_1",
    "IB_QDR",
    "NodeKind",
    "Node",
    "Transfer",
    "TransferLedger",
]


@dataclass(frozen=True)
class LinkProfile:
    """A NIC/link technology."""

    name: str
    bandwidth_bps: float  #: payload bandwidth, bits per second
    latency_s: float
    #: protocol efficiency (headers, TCP dynamics): fraction of raw bandwidth
    efficiency: float = 0.9

    @property
    def bytes_per_s(self) -> float:
        return self.bandwidth_bps * self.efficiency / 8.0

    def transfer_time(self, n_bytes: int, *, streams: int = 1) -> float:
        """Seconds to move ``n_bytes`` when ``streams`` flows share the link."""
        if n_bytes < 0:
            raise NetworkError("negative transfer size")
        return self.latency_s + n_bytes * max(1, streams) / self.bytes_per_s

    def make_pipe(self, engine, *, name: str | None = None, timeline=None):
        """Service-time hook for the event engine: this link as a shared
        :class:`repro.sim.Pipe` (processor-sharing at the NIC's payload
        rate), so concurrent timed transfers contend realistically instead
        of using the closed-form ``transfer_time`` bound. With a
        ``timeline``, the pipe observes per-flow contention overhead."""
        from ..sim import Pipe  # local import: keep repro.net importable alone

        return Pipe(
            engine, self.bytes_per_s, latency_s=self.latency_s,
            name=name or self.name, timeline=timeline,
        )


#: commodity gigabit Ethernet (DAS-4's default fabric)
GBE_1 = LinkProfile("1GbE", 1e9, 120e-6)
#: QDR InfiniBand, 32 Gb/s theoretical (Section 4)
IB_QDR = LinkProfile("QDR-IB", 32e9, 2e-6, efficiency=0.8)


class NodeKind(Enum):
    """Role of a cluster node."""

    COMPUTE = "compute"
    STORAGE = "storage"


@dataclass(frozen=True)
class Node:
    """One cluster node."""

    name: str
    kind: NodeKind
    link: LinkProfile = GBE_1


@dataclass(frozen=True)
class Transfer:
    """One recorded byte movement."""

    src: str
    dst: str
    n_bytes: int
    purpose: str  #: e.g. "boot-read", "cache-propagation", "registration"
    duration_s: float = 0.0


@dataclass
class TransferLedger:
    """Append-only record of all network transfers in an experiment."""

    transfers: list[Transfer] = field(default_factory=list)

    def record(
        self, src: str, dst: str, n_bytes: int, purpose: str, duration_s: float = 0.0
    ) -> Transfer:
        if n_bytes < 0:
            raise NetworkError("negative transfer size")
        transfer = Transfer(src, dst, n_bytes, purpose, duration_s)
        self.transfers.append(transfer)
        return transfer

    # -- queries (Figure 18's metrics) ----------------------------------------

    def bytes_into(self, node_name: str, *, purpose: str | None = None) -> int:
        return sum(
            t.n_bytes
            for t in self.transfers
            if t.dst == node_name and (purpose is None or t.purpose == purpose)
        )

    def bytes_out_of(self, node_name: str, *, purpose: str | None = None) -> int:
        return sum(
            t.n_bytes
            for t in self.transfers
            if t.src == node_name and (purpose is None or t.purpose == purpose)
        )

    def total_bytes(self, *, purpose: str | None = None) -> int:
        return sum(
            t.n_bytes
            for t in self.transfers
            if purpose is None or t.purpose == purpose
        )

    def compute_ingress_bytes(
        self, compute_nodes: list[Node] | list[str], *, purpose: str | None = None
    ) -> int:
        """Cumulative bytes received by compute nodes — Figure 18's y-axis."""
        names = {n.name if isinstance(n, Node) else n for n in compute_nodes}
        return sum(
            t.n_bytes
            for t in self.transfers
            if t.dst in names and (purpose is None or t.purpose == purpose)
        )

    def clear(self) -> None:
        self.transfers.clear()
