"""Cluster topology: nodes, NICs, and the transfer ledger.

The evaluation cluster (DAS-4/VU, Section 4) is a star: up to 68 nodes on a
commodity 1 GbE switch plus QDR InfiniBand. Figure 18's metric is *bytes
moved to compute nodes*, so the first-class object here is the
:class:`TransferLedger` — every simulated byte movement is recorded with its
endpoints and purpose, and the figure queries the ledger.

Timing is intentionally coarse (bandwidth/latency bounds with a many-to-one
contention factor): the paper's network experiment reports transfer *sizes*,
and timing only needs to be plausible for the propagation examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..common.errors import NetworkError

__all__ = [
    "LinkProfile",
    "GBE_1",
    "IB_QDR",
    "NodeKind",
    "Node",
    "Transfer",
    "TransferLedger",
]


@dataclass(frozen=True)
class LinkProfile:
    """A NIC/link technology."""

    name: str
    bandwidth_bps: float  #: payload bandwidth, bits per second
    latency_s: float
    #: protocol efficiency (headers, TCP dynamics): fraction of raw bandwidth
    efficiency: float = 0.9

    @property
    def bytes_per_s(self) -> float:
        return self.bandwidth_bps * self.efficiency / 8.0

    def transfer_time(self, n_bytes: int, *, streams: int = 1) -> float:
        """Seconds to move ``n_bytes`` when ``streams`` flows share the link."""
        if n_bytes < 0:
            raise NetworkError("negative transfer size")
        return self.latency_s + n_bytes * max(1, streams) / self.bytes_per_s

    def make_pipe(self, engine, *, name: str | None = None, timeline=None):
        """Service-time hook for the event engine: this link as a shared
        :class:`repro.sim.Pipe` (processor-sharing at the NIC's payload
        rate), so concurrent timed transfers contend realistically instead
        of using the closed-form ``transfer_time`` bound. With a
        ``timeline``, the pipe observes per-flow contention overhead."""
        from ..sim import Pipe  # local import: keep repro.net importable alone

        return Pipe(
            engine, self.bytes_per_s, latency_s=self.latency_s,
            name=name or self.name, timeline=timeline,
        )


#: commodity gigabit Ethernet (DAS-4's default fabric)
GBE_1 = LinkProfile("1GbE", 1e9, 120e-6)
#: QDR InfiniBand, 32 Gb/s theoretical (Section 4)
IB_QDR = LinkProfile("QDR-IB", 32e9, 2e-6, efficiency=0.8)


class NodeKind(Enum):
    """Role of a cluster node."""

    COMPUTE = "compute"
    STORAGE = "storage"


@dataclass(frozen=True)
class Node:
    """One cluster node."""

    name: str
    kind: NodeKind
    link: LinkProfile = GBE_1


@dataclass(frozen=True, slots=True)
class Transfer:
    """One recorded byte movement."""

    src: str
    dst: str
    n_bytes: int
    purpose: str  #: e.g. "boot-read", "cache-propagation", "registration"
    duration_s: float = 0.0


@dataclass
class TransferLedger:
    """Append-only record of all network transfers in an experiment.

    Alongside the raw rows, :meth:`record` maintains running per-endpoint
    sums keyed on ``(name, purpose)`` — a fleet-wide multicast appends
    one row per receiver, so at 10k nodes the ledger holds millions of
    rows and the Figure 18 queries must not rescan them per call.
    """

    transfers: list[Transfer] = field(default_factory=list)
    #: (dst, purpose) -> bytes; and (dst, None) -> bytes across purposes
    _into: dict[tuple[str, str | None], int] = field(default_factory=dict)
    _out_of: dict[tuple[str, str | None], int] = field(default_factory=dict)
    _totals: dict[str | None, int] = field(default_factory=dict)

    def record(
        self, src: str, dst: str, n_bytes: int, purpose: str, duration_s: float = 0.0
    ) -> Transfer:
        if n_bytes < 0:
            raise NetworkError("negative transfer size")
        transfer = Transfer(src, dst, n_bytes, purpose, duration_s)
        self.transfers.append(transfer)
        into, out_of, totals = self._into, self._out_of, self._totals
        for key in ((dst, purpose), (dst, None)):
            into[key] = into.get(key, 0) + n_bytes
        for key in ((src, purpose), (src, None)):
            out_of[key] = out_of.get(key, 0) + n_bytes
        for key in (purpose, None):
            totals[key] = totals.get(key, 0) + n_bytes
        return transfer

    def record_fanout(
        self,
        src: str,
        dsts: list[str],
        n_bytes: int,
        purpose: str,
        duration_s: float = 0.0,
    ) -> None:
        """One sender, many receivers (a multicast): exactly the rows and
        aggregates ``record`` would produce per receiver, batched — a
        fleet-wide propagation is the ledger's hottest path at 10k nodes
        and per-call overhead dominates it."""
        if n_bytes < 0:
            raise NetworkError("negative transfer size")
        self.transfers.extend(
            Transfer(src, dst, n_bytes, purpose, duration_s) for dst in dsts
        )
        into = self._into
        for dst in dsts:
            key = (dst, purpose)
            into[key] = into.get(key, 0) + n_bytes
            key = (dst, None)
            into[key] = into.get(key, 0) + n_bytes
        total = n_bytes * len(dsts)
        out_of, totals = self._out_of, self._totals
        for key in ((src, purpose), (src, None)):
            out_of[key] = out_of.get(key, 0) + total
        for key in (purpose, None):
            totals[key] = totals.get(key, 0) + total

    # -- queries (Figure 18's metrics) ----------------------------------------

    def bytes_into(self, node_name: str, *, purpose: str | None = None) -> int:
        return self._into.get((node_name, purpose), 0)

    def bytes_out_of(self, node_name: str, *, purpose: str | None = None) -> int:
        return self._out_of.get((node_name, purpose), 0)

    def total_bytes(self, *, purpose: str | None = None) -> int:
        return self._totals.get(purpose, 0)

    def compute_ingress_bytes(
        self, compute_nodes: list[Node] | list[str], *, purpose: str | None = None
    ) -> int:
        """Cumulative bytes received by compute nodes — Figure 18's y-axis."""
        into = self._into
        names = {n.name if isinstance(n, Node) else n for n in compute_nodes}
        return sum(into.get((name, purpose), 0) for name in names)

    def clear(self) -> None:
        self.transfers.clear()
        self._into.clear()
        self._out_of.clear()
        self._totals.clear()
