"""Data-center network substrate: topology, parallel FS, multicast, P2P."""

from .glusterfs import GlusterVolume
from .multicast import MulticastResult, multicast, unicast_fanout
from .p2p import SwarmResult, swarm_distribute
from .topology import (
    GBE_1,
    IB_QDR,
    LinkProfile,
    Node,
    NodeKind,
    Transfer,
    TransferLedger,
)

__all__ = [
    "GBE_1",
    "IB_QDR",
    "GlusterVolume",
    "LinkProfile",
    "MulticastResult",
    "Node",
    "NodeKind",
    "SwarmResult",
    "Transfer",
    "TransferLedger",
    "multicast",
    "swarm_distribute",
    "unicast_fanout",
]
