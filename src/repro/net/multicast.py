"""One-to-many distribution: IP multicast and unicast fan-out baselines.

Squirrel propagates each new cache's snapshot diff from a storage node to
every online compute node (Section 3.2). With IP multicast the payload
crosses the sender's link once and arrives at every receiver; with naive
unicast the sender pays ``n_receivers × size``. The paper notes a diff of
O(100 MB) multicasts in a couple of seconds on 1 GbE.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import NetworkError
from .topology import LinkProfile, Node, TransferLedger

__all__ = ["MulticastResult", "multicast", "unicast_fanout"]


@dataclass(frozen=True)
class MulticastResult:
    n_bytes: int
    n_receivers: int
    duration_s: float
    sender_bytes: int  #: bytes that crossed the sender's uplink


def multicast(
    ledger: TransferLedger,
    sender: Node,
    receivers: list[Node],
    n_bytes: int,
    *,
    purpose: str = "cache-propagation",
    loss_retransmit_factor: float = 1.02,
) -> MulticastResult:
    """Multicast ``n_bytes`` from ``sender`` to ``receivers``.

    Every receiver ingests the payload (recorded in the ledger); the sender
    transmits it once (plus a small NACK/retransmit overhead). The duration
    is bounded by the slowest link in the group — multicast runs at the rate
    of its slowest member.
    """
    if n_bytes < 0:
        raise NetworkError("negative multicast size")
    if not receivers:
        return MulticastResult(n_bytes, 0, 0.0, 0)
    wire_bytes = int(n_bytes * loss_retransmit_factor)
    # a fleet usually shares one LinkProfile object; dedup by identity
    # (keeping first-occurrence order, so ties resolve as before) instead
    # of evaluating the bytes_per_s property once per receiver
    links: dict[int, LinkProfile] = {id(sender.link): sender.link}
    for r in receivers:
        link = r.link
        if id(link) not in links:
            links[id(link)] = link
    slowest: LinkProfile = min(links.values(), key=lambda l: l.bytes_per_s)
    duration = slowest.transfer_time(wire_bytes)
    ledger.record_fanout(
        sender.name, [r.name for r in receivers], n_bytes, purpose, duration
    )
    return MulticastResult(
        n_bytes=n_bytes,
        n_receivers=len(receivers),
        duration_s=duration,
        sender_bytes=wire_bytes,
    )


def unicast_fanout(
    ledger: TransferLedger,
    sender: Node,
    receivers: list[Node],
    n_bytes: int,
    *,
    purpose: str = "cache-propagation",
) -> MulticastResult:
    """Baseline: send the payload to each receiver separately (e.g. rsync).

    The sender's uplink serialises the copies — the many-to-one bottleneck
    Section 3.5 argues against.
    """
    if not receivers:
        return MulticastResult(n_bytes, 0, 0.0, 0)
    duration = sender.link.transfer_time(n_bytes, streams=len(receivers))
    for receiver in receivers:
        ledger.record(sender.name, receiver.name, n_bytes, purpose, duration)
    return MulticastResult(
        n_bytes=n_bytes,
        n_receivers=len(receivers),
        duration_s=duration * len(receivers),
        sender_bytes=n_bytes * len(receivers),
    )
