"""Peer-to-peer distribution baseline (BitTorrent/VMTorrent-style).

Related-work comparators (Section 5.2.1) move VMI content between compute
nodes in a swarm. For the network-transfer analysis the relevant property is
that every receiver still *ingests* the full payload, and peers additionally
*upload* shares of it — so compute-node traffic is at least ``n × size``
even though the origin's uplink is relieved. Squirrel's claim (Figure 18) is
zero boot-time traffic, which no swarm can match.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import NetworkError
from .topology import Node, TransferLedger

__all__ = ["SwarmResult", "swarm_distribute"]


@dataclass(frozen=True)
class SwarmResult:
    n_bytes: int
    n_receivers: int
    duration_s: float
    origin_bytes: int  #: bytes served by the origin (seed)
    peer_upload_bytes: int  #: bytes served peer-to-peer


def swarm_distribute(
    ledger: TransferLedger,
    origin: Node,
    receivers: list[Node],
    n_bytes: int,
    *,
    purpose: str = "p2p-distribution",
    origin_share: float | None = None,
) -> SwarmResult:
    """Distribute ``n_bytes`` to ``receivers`` through a swarm.

    The origin seeds roughly ``size × (1 + log2 n)`` pieces (each piece must
    leave the seed once, and early pieces fan out through the swarm); peers
    source the rest from each other. Per receiver the ingress is always the
    full payload. Completion time approximates the classic flash-crowd
    bound: pipelined piece exchange finishes in ``O(size/bw × (1 + log n /
    pieces))`` ≈ one payload time once the swarm is warm.
    """
    import math

    if n_bytes < 0:
        raise NetworkError("negative swarm size")
    n = len(receivers)
    if n == 0:
        return SwarmResult(n_bytes, 0, 0.0, 0, 0)
    if origin_share is None:
        origin_share = min(1.0, (1.0 + math.log2(max(1, n))) / n)
    origin_bytes = int(n_bytes * max(1.0, origin_share * n) / n * n) if n else 0
    origin_bytes = min(origin_bytes, n_bytes * n)
    peer_bytes = n_bytes * n - origin_bytes
    # ledger: each receiver ingests the payload; sources split origin/peers
    origin_fraction = origin_bytes / (n_bytes * n)
    duration = origin.link.transfer_time(n_bytes) * (1.0 + math.log2(max(1, n)) / 16.0)
    for index, receiver in enumerate(receivers):
        from_origin = int(n_bytes * origin_fraction)
        from_peers = n_bytes - from_origin
        ledger.record(origin.name, receiver.name, from_origin, purpose, duration)
        if from_peers > 0:
            peer = receivers[(index + 1) % n]
            ledger.record(peer.name, receiver.name, from_peers, purpose, duration)
    return SwarmResult(
        n_bytes=n_bytes,
        n_receivers=n,
        duration_s=duration,
        origin_bytes=origin_bytes,
        peer_upload_bytes=peer_bytes,
    )
