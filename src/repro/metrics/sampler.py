"""The sampler: a simulation process that scrapes gauges on a cadence.

A :class:`Sampler` runs *inside* the event engine: every ``interval_s``
simulated seconds it reads every gauge of its registry (callback gauges
evaluate live simulation state) and appends one sample per series into the
:class:`~repro.metrics.store.TimeSeriesStore`. Scraping is a pure read —
it never mutates simulation state — so enabling it cannot change any
byte-accounting result, and because its wake-ups go through the engine's
deterministic queue the sampled trajectories are bit-reproducible per seed.

Termination: the sampler scrapes once at start, then re-arms only while
other events are pending; the tick that finds the queue otherwise drained
takes the final snapshot and exits, so ``Engine.run()`` still terminates.
This also means the cadence *persists through faults*: a crashed node
stops producing boot events but the fleet keeps getting sampled for as
long as anything (the outage timer included) is still in flight.
"""

from __future__ import annotations

from ..common.errors import ConfigError
from ..sim import Engine, Process
from .instruments import MetricsRegistry
from .store import TimeSeriesStore

__all__ = ["Sampler"]


class Sampler:
    """Periodically scrapes a registry's gauges into a time-series store."""

    def __init__(
        self,
        engine: Engine,
        registry: MetricsRegistry,
        store: TimeSeriesStore,
        *,
        interval_s: float = 5.0,
    ) -> None:
        if interval_s <= 0:
            raise ConfigError(f"sample interval must be > 0, got {interval_s}")
        self.engine = engine
        self.registry = registry
        self.store = store
        self.interval_s = float(interval_s)
        #: scrape rounds completed (each touches every gauge once)
        self.scrapes = 0

    def scrape(self) -> None:
        """One scrape round: read every gauge, stamp with the sim clock."""
        now = self.engine.now
        for family in self.registry.families():
            if family.kind != "gauge":
                continue
            for label_values, gauge in family.samples():
                self.store.append(
                    family.name,
                    tuple(zip(family.label_names, label_values)),
                    now,
                    gauge.read(),
                )
        self.scrapes += 1

    def start(self) -> Process:
        """Spawn the sampling process (call before ``engine.run()``)."""
        return self.engine.process(self._run(), label="metrics.sampler")

    def _run(self):
        while True:
            self.scrape()
            if self.engine.drained:
                return self.scrapes  # everything else settled: final snapshot
            yield self.engine.timeout(self.interval_s)
