"""Fleet-wide deterministic time-series metrics.

The scenario engine answers *what happened*; this package records *how the
cluster evolved while it happened*. Four pieces:

* :mod:`.instruments` — typed instruments (:class:`Counter`,
  :class:`Gauge`, :class:`Histogram` with fixed, declared bucket layouts)
  grouped into labelled families on a per-run :class:`MetricsRegistry`,
* :mod:`.store` — the columnar :class:`TimeSeriesStore` ring buffer the
  sampler writes into,
* :mod:`.sampler` — the :class:`Sampler` engine process scraping every
  registered gauge each N *simulated* seconds,
* :mod:`.export` — Prometheus text exposition, JSONL series dumps, and the
  canonical JSON block reports embed,
* :mod:`.summarize` — health rollups (``python -m repro metrics``) over a
  stored run or sweep.

Everything is deterministic by construction: instruments iterate in sorted
order, bucket layouts are declared up front, samples are stamped with the
simulated clock, and all serialisation funnels through
:func:`repro.common.report.dumps_canonical` — so two same-seed runs (and a
sweep at any ``--workers`` count) emit byte-identical exports.
"""

from .export import (
    collect_metric_blocks,
    ensure_export_dir,
    export_name,
    metrics_block,
    prometheus_text,
    series_jsonl,
    write_run_exports,
)
from .instruments import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    format_number,
)
from .sampler import Sampler
from .store import TimeSeriesStore
from .summarize import render_rollups, rollup, summarize_path

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Sampler",
    "TimeSeriesStore",
    "collect_metric_blocks",
    "ensure_export_dir",
    "export_name",
    "format_number",
    "metrics_block",
    "prometheus_text",
    "render_rollups",
    "rollup",
    "series_jsonl",
    "summarize_path",
    "write_run_exports",
]
