"""Health rollups over stored metrics (``python -m repro metrics PATH``).

Consumes what :func:`repro.metrics.export.write_run_exports` (or the sweep
result store) persisted and answers the questions an operator would put to
a dashboard: how hot did the network links run, how did the ARC hit rate
evolve, how much RAM did dedup tables claim at their worst, and how many
nodes were down at once. Pure reads over the canonical block — no live
registry needed, so it works equally on a fresh run directory, a single
``report.json``, or a whole sweep's merged report.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..common.errors import ConfigError
from .export import collect_metric_blocks, export_name

__all__ = ["render_rollups", "rollup", "summarize_path"]


def _series_of(block: dict, name: str) -> list[dict]:
    return [s for s in block.get("series", ()) if s["name"] == name]


def _instrument(block: dict, name: str) -> dict | None:
    for family in block.get("instruments", ()):
        if family["name"] == name:
            return family
    return None


def _peak(series_list: list[dict]) -> tuple[float, float, dict] | None:
    """(value, time, labels) of the single largest sample, ties going to
    the earliest time then the lexicographically first series."""
    best: tuple[float, float, dict] | None = None
    for series in series_list:
        for t, v in zip(series["t"], series["v"]):
            if best is None or v > best[0] or (v == best[0] and t < best[1]):
                best = (v, t, series["labels"])
    return best


def _pointwise_mean(series_list: list[dict]) -> tuple[list[float], list[float]]:
    """Mean across series at each shared scrape time (series sampled by one
    sampler share their time axis; stragglers are averaged where present)."""
    acc: dict[float, list[float]] = {}
    for series in series_list:
        for t, v in zip(series["t"], series["v"]):
            acc.setdefault(t, []).append(v)
    times = sorted(acc)
    return times, [sum(acc[t]) / len(acc[t]) for t in times]


def _pointwise_sum(series_list: list[dict]) -> tuple[list[float], list[float]]:
    acc: dict[float, float] = {}
    for series in series_list:
        for t, v in zip(series["t"], series["v"]):
            acc[t] = acc.get(t, 0.0) + v
    times = sorted(acc)
    return times, [acc[t] for t in times]


def _curve_points(times: list[float], values: list[float]) -> list[list[float]]:
    """First / middle / last points of a curve (fewer if short)."""
    if not times:
        return []
    picks = sorted({0, len(times) // 2, len(times) - 1})
    return [[times[i], values[i]] for i in picks]


def rollup(block: dict) -> dict:
    """Compute the headline health numbers for one metrics block."""
    out: dict = {}

    util = _series_of(block, "net_pipe_utilization")
    peak = _peak(util)
    if peak is not None:
        out["peak_link_utilization"] = {
            "value": peak[0],
            "t": peak[1],
            "link": peak[2].get("link", "?"),
            "tier": peak[2].get("tier", "?"),
        }

    hit_rate = _series_of(block, "zfs_arc_hit_rate")
    if hit_rate:
        times, means = _pointwise_mean(hit_rate)
        out["arc_hit_rate_curve"] = _curve_points(times, means)

    ddt = _series_of(block, "zfs_ddt_core_bytes")
    if ddt:
        times, totals = _pointwise_sum(ddt)
        high = max(range(len(times)), key=lambda i: (totals[i], -times[i]))
        out["ddt_core_bytes_high_water"] = {
            "bytes": totals[high],
            "t": times[high],
        }

    down = _series_of(block, "faults_nodes_down")
    if down:
        peak_down = _peak(down)
        if peak_down is not None:
            out["peak_nodes_down"] = {"value": peak_down[0], "t": peak_down[1]}

    boots = _instrument(block, "squirrel_boots_total")
    if boots is not None:
        out["boots"] = sum(s["value"] for s in boots["samples"])
    latency = _instrument(block, "squirrel_boot_latency_seconds")
    if latency is not None and latency["samples"]:
        sample = latency["samples"][0]
        out["boot_latency"] = {
            "count": sample["count"],
            "mean_s": sample["sum"] / sample["count"] if sample["count"] else 0.0,
        }

    out["n_series"] = len(block.get("series", ()))
    out["scrapes"] = block.get("scrapes")
    return out


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} TiB"


def render_rollups(rollups: dict[str, dict]) -> str:
    """Human-readable rendering of ``{block name: rollup}`` maps."""
    lines: list[str] = []
    for name in sorted(rollups):
        roll = rollups[name]
        lines.append(f"== {name} ==")
        peak = roll.get("peak_link_utilization")
        if peak:
            lines.append(
                f"  peak link utilization  {peak['value'] * 100:6.1f}%  "
                f"({peak['tier']}:{peak['link']} @ t={peak['t']:.0f}s)"
            )
        curve = roll.get("arc_hit_rate_curve")
        if curve:
            pts = "  ->  ".join(
                f"{v * 100:.1f}% @ t={t:.0f}s" for t, v in curve
            )
            lines.append(f"  ARC hit-rate curve     {pts}")
        ddt = roll.get("ddt_core_bytes_high_water")
        if ddt:
            lines.append(
                f"  DDT RAM high-water     {_fmt_bytes(ddt['bytes'])} "
                f"@ t={ddt['t']:.0f}s"
            )
        down = roll.get("peak_nodes_down")
        if down:
            lines.append(
                f"  peak nodes down        {int(down['value'])} "
                f"@ t={down['t']:.0f}s"
            )
        if "boots" in roll:
            lines.append(f"  boots completed        {int(roll['boots'])}")
        lat = roll.get("boot_latency")
        if lat:
            lines.append(
                f"  boot latency           n={lat['count']} "
                f"mean={lat['mean_s']:.2f}s"
            )
        lines.append(
            f"  series sampled         {roll['n_series']}"
            + (
                f"  ({roll['scrapes']} scrapes)"
                if roll.get("scrapes") is not None
                else ""
            )
        )
    return "\n".join(lines) + "\n"


def _load_payload(path: Path) -> dict:
    if path.is_dir():
        report = path / "report.json"
        if not report.is_file():
            raise ConfigError(f"no report.json under {path}")
        path = report
    if not path.is_file():
        raise ConfigError(f"no such metrics file: {path}")
    with path.open(encoding="utf-8") as fh:
        return json.load(fh)


def summarize_path(path: str | Path) -> dict[str, dict]:
    """Rollups for a stored run or sweep directory (or report file).

    Accepts the directory ``--metrics`` wrote, a sweep result directory
    (``report.json`` holding ``points``), or a report file directly.
    Returns ``{block name: rollup}``; sweep points are prefixed with their
    point index (``point3.squirrel``).
    """
    payload = _load_payload(Path(path))
    rollups: dict[str, dict] = {}
    points = payload.get("points") if isinstance(payload, dict) else None
    if isinstance(points, list):
        for i, point in enumerate(points):
            blocks = collect_metric_blocks(point, "report")
            for block_path, block in blocks.items():
                rollups[f"point{i}.{export_name(block_path)}"] = rollup(block)
    else:
        blocks = collect_metric_blocks(payload, "report")
        for block_path, block in blocks.items():
            rollups[export_name(block_path)] = rollup(block)
    if not rollups:
        raise ConfigError(f"no metrics blocks found under {path}")
    return rollups
