"""Columnar ring-buffer storage for sampled time series.

One :class:`TimeSeriesStore` per run holds every series the
:class:`~repro.metrics.sampler.Sampler` scrapes: a series is identified by
``(metric name, label assignment)`` and stored as two parallel columns —
sample times (simulated seconds) and values — bounded by a ring capacity.
When the ring wraps, the *oldest* samples fall off and the series records
how many were dropped, so a truncated trajectory is visible instead of
silently passing for a complete one.
"""

from __future__ import annotations

from collections import deque

from ..common.errors import ConfigError

__all__ = ["TimeSeriesStore"]


class _Series:
    """One (name, labels) series: parallel time/value ring columns."""

    __slots__ = ("t", "v", "dropped")

    def __init__(self, capacity: int) -> None:
        self.t: deque[float] = deque(maxlen=capacity)
        self.v: deque[float] = deque(maxlen=capacity)
        self.dropped = 0


class TimeSeriesStore:
    """Bounded, deterministic storage for every sampled series of a run."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ConfigError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._series: dict[tuple[str, tuple[tuple[str, str], ...]], _Series] = {}

    def append(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        t: float,
        value: float,
    ) -> None:
        """Record one sample of one series at simulated time ``t``."""
        key = (name, tuple(sorted(labels)))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Series(self.capacity)
        if len(series.t) == self.capacity:
            series.dropped += 1
        series.t.append(float(t))
        series.v.append(float(value))

    @property
    def n_series(self) -> int:
        return len(self._series)

    @property
    def n_samples(self) -> int:
        """Samples currently resident (drops excluded)."""
        return sum(len(series.t) for series in self._series.values())

    def series(self) -> list[dict]:
        """Every series as a JSON-able dict, sorted by (name, labels) —
        the deterministic order the JSONL exporter and the canonical block
        rely on. Columns come out as plain lists."""
        out = []
        for (name, labels), series in sorted(self._series.items()):
            out.append(
                {
                    "name": name,
                    "labels": dict(labels),
                    "t": list(series.t),
                    "v": list(series.v),
                    "dropped": series.dropped,
                }
            )
        return out

    def get(self, name: str, **labels: str) -> dict | None:
        """One series dict (or None) — convenience for tests/rollups."""
        key = (name, tuple((k, str(v)) for k, v in sorted(labels.items())))
        series = self._series.get(key)
        if series is None:
            return None
        return {
            "name": name,
            "labels": dict(key[1]),
            "t": list(series.t),
            "v": list(series.v),
            "dropped": series.dropped,
        }
