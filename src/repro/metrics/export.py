"""Exporters: Prometheus text, JSONL series, and the canonical JSON block.

All three render from the same source of truth — the **canonical metrics
block** (:func:`metrics_block`): a plain JSON-able dict with the end-of-run
instrument snapshot plus every sampled series. Reports embed the block
(``StormSide.metrics``, ``DayReport.metrics``, …), which makes it ride
through ``--json``, the sweep manifest and the result store for free; the
text exporters (:func:`prometheus_text`, :func:`series_jsonl`) re-render it
on demand, so an export written from a stored run is byte-identical to one
written live.

Determinism: family/sample/series ordering is sorted at block-build time,
numbers render through one canonical formatter, and the JSON side funnels
through :func:`repro.common.report.dumps_canonical`.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any

from ..common.errors import ConfigError
from ..common.report import dumps_canonical, to_jsonable
from ..obs import runtime as obs_runtime
from .instruments import MetricsRegistry, format_number
from .store import TimeSeriesStore

__all__ = [
    "collect_metric_blocks",
    "ensure_export_dir",
    "metrics_block",
    "prometheus_text",
    "series_jsonl",
    "write_run_exports",
]


def ensure_export_dir(path: str | Path, *, flag: str) -> Path:
    """Validate an export directory named by CLI ``flag`` *before* a run.

    Creates the directory (parents included) and checks writability, so a
    bad ``--metrics``/``--store``/``--out`` target fails up front with a
    :class:`~repro.common.errors.ConfigError` naming the flag — not after
    minutes of simulation when the exporter first touches the path.
    """
    target = Path(path)
    try:
        target.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise ConfigError(
            f"{flag} {str(target)!r}: cannot create export directory "
            f"({error})"
        ) from error
    if not os.access(target, os.W_OK):
        raise ConfigError(
            f"{flag} {str(target)!r}: export directory is not writable"
        )
    return target


def metrics_block(
    registry: MetricsRegistry,
    store: TimeSeriesStore | None = None,
    *,
    interval_s: float | None = None,
    scrapes: int | None = None,
) -> dict:
    """The canonical JSON block for one run's metrics.

    ``instruments`` is the end-of-run snapshot (counters/gauges as values,
    histograms as cumulative bucket rows); ``series`` is the sampled
    trajectory data from the store. Both are fully sorted.
    """
    instruments = []
    for family in registry.families():
        samples = []
        for label_values, child in family.samples():
            labels = dict(zip(family.label_names, label_values))
            if family.kind == "histogram":
                samples.append(
                    {
                        "labels": labels,
                        "buckets": [list(row) for row in child.cumulative()],
                        "sum": child.sum,
                        "count": child.count,
                    }
                )
            elif family.kind == "gauge":
                samples.append({"labels": labels, "value": child.read()})
            else:
                samples.append({"labels": labels, "value": child.value})
        instruments.append(
            {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "samples": samples,
            }
        )
    block: dict[str, Any] = {
        "instruments": instruments,
        "series": store.series() if store is not None else [],
    }
    if interval_s is not None:
        block["interval_s"] = float(interval_s)
    if scrapes is not None:
        block["scrapes"] = int(scrapes)
    return block


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + inner + "}"


def prometheus_text(block: dict) -> str:
    """Render a metrics block as Prometheus text exposition format."""
    lines: list[str] = []
    for family in block["instruments"]:
        name = family["name"]
        if family["help"]:
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['kind']}")
        for sample in family["samples"]:
            labels = dict(sample["labels"])
            if family["kind"] == "histogram":
                for le, cum in sample["buckets"]:
                    lines.append(
                        f"{name}_bucket{_label_str({**labels, 'le': le})} {cum}"
                    )
                lines.append(
                    f"{name}_sum{_label_str(labels)} "
                    f"{format_number(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_label_str(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_label_str(labels)} "
                    f"{format_number(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


def series_jsonl(block: dict) -> str:
    """Render a metrics block's sampled series as canonical JSONL — one
    line per series, columns as parallel ``t``/``v`` arrays."""
    lines = [dumps_canonical(series) for series in block["series"]]
    return "\n".join(lines) + ("\n" if lines else "")


def _is_block(node: Any) -> bool:
    return (
        isinstance(node, dict) and "instruments" in node and "series" in node
    )


def collect_metric_blocks(payload: Any, prefix: str = "") -> dict[str, dict]:
    """Find every embedded metrics block in a JSON-able report payload.

    Returns ``{dotted path: block}`` — e.g. a storm report yields
    ``{"report.squirrel.metrics": …, "report.baseline.metrics": …}``.
    """
    found: dict[str, dict] = {}
    if _is_block(payload):
        found[prefix] = payload
        return found
    if isinstance(payload, dict):
        for key in sorted(payload):
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            found.update(collect_metric_blocks(payload[key], child_prefix))
    return found


def export_name(path: str) -> str:
    """Filename stem for one block path: strip the ``report``/``metrics``
    scaffolding (``report.squirrel.metrics`` → ``squirrel``); a bare
    ``report.metrics`` (single-sided scenarios) becomes ``run``."""
    parts = [
        part
        for part in path.split(".")
        if part not in ("report", "metrics", "result")
    ]
    return "-".join(parts) if parts else "run"


def write_run_exports(out_dir: str | Path, result: Any) -> dict[str, Path]:
    """Persist one run under ``out_dir`` (the ``--metrics PATH`` surface).

    Writes, per embedded metrics block, ``<side>.prom`` (Prometheus text)
    and ``<side>.jsonl`` (series dump), plus ``report.json`` — the full
    canonical report the ``python -m repro metrics`` summarizer reads.
    ``result`` is a Report (or an already JSON-able payload).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    payload = result.to_dict() if hasattr(result, "to_dict") else result
    payload = to_jsonable(payload)
    blocks = collect_metric_blocks(payload, "report")
    written: dict[str, Path] = {}
    for path, block in blocks.items():
        stem = export_name(path)
        prom = out / f"{stem}.prom"
        prom.write_text(prometheus_text(block), encoding="utf-8")
        written[f"{stem}.prom"] = prom
        jsonl = out / f"{stem}.jsonl"
        jsonl.write_text(series_jsonl(block), encoding="utf-8")
        written[f"{stem}.jsonl"] = jsonl
    report = out / "report.json"
    report.write_text(dumps_canonical(payload) + "\n", encoding="utf-8")
    written["report.json"] = report
    profiler = obs_runtime.current()
    if profiler is not None:
        # host telemetry lands *next to* the canonical exports, never in
        # them: runtime.json carries wall-clock measurements and is
        # excluded from byte-identity comparisons (CI diffs the run
        # directories with --exclude=runtime.json)
        runtime_path = out / "runtime.json"
        runtime_path.write_text(
            dumps_canonical(to_jsonable(profiler.block())) + "\n",
            encoding="utf-8",
        )
        written["runtime.json"] = runtime_path
    return written
