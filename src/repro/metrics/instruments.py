"""Typed metric instruments and the per-run registry.

Three instrument kinds, Prometheus-shaped:

* :class:`Counter` — a monotonic accumulator (boots started, bytes fetched),
* :class:`Gauge` — an instantaneous value, either set imperatively or read
  through a callback at scrape time (ARC ``p``, pipe utilisation, boots in
  flight),
* :class:`Histogram` — observations bucketed into a **fixed, declared**
  layout (cumulative bucket counts + sum + count). The layout is part of
  the family declaration, never derived from the data, so the exposition is
  seed-deterministic and diffable across runs.

Instruments live in labelled :class:`MetricFamily` groups
(``node=``/``tier=``/``replica=``…) owned by one :class:`MetricsRegistry`
per simulated rig. Determinism rules: family names are unique and
validated, children are keyed by their label-value tuple, and every
iteration (:meth:`MetricsRegistry.families`, :meth:`MetricFamily.samples`)
is sorted — the raw material of byte-identical exports.
"""

from __future__ import annotations

import bisect
import math
import re
from typing import Any, Callable, Iterable

from ..common.errors import ConfigError

__all__ = ["Counter", "Gauge", "Histogram", "MetricFamily", "MetricsRegistry"]

#: Prometheus metric/label name grammar
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_KINDS = ("counter", "gauge", "histogram")


def _check_name(name: str, *, label: bool = False) -> str:
    pattern = _LABEL_RE if label else _NAME_RE
    if not pattern.match(name):
        kind = "label" if label else "metric"
        raise ConfigError(f"invalid {kind} name {name!r}")
    return name


class Counter:
    """Monotonic accumulator; decrements are rejected."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (>= 0) to the running total."""
        if n < 0:
            raise ConfigError(f"counter increment must be >= 0, got {n}")
        self.value += n


class Gauge:
    """Instantaneous value: set imperatively or read via a callback.

    A callback gauge (:meth:`set_function`) is evaluated at scrape time, so
    the sampler sees live simulation state without the instrumented code
    having to push updates on every change.
    """

    __slots__ = ("_value", "_fn")

    def __init__(self) -> None:
        self._value = 0.0
        self._fn: Callable[[], float] | None = None

    def set(self, value: float) -> None:
        """Set the gauge to ``value`` (clears any callback)."""
        self._fn = None
        self._value = float(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Read the gauge through ``fn`` from now on (scrape-time pull)."""
        self._fn = fn

    def read(self) -> float:
        """The current value (evaluates the callback, if any)."""
        return float(self._fn()) if self._fn is not None else self._value


class Histogram:
    """Observations over a fixed bucket layout (cumulative on export).

    ``bounds`` are the finite upper bounds (``le``) in strictly increasing
    order; an implicit ``+Inf`` bucket catches the tail. Invariant: the
    per-bucket counts sum to ``count`` — checked by the test suite, relied
    on by the exposition format.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Iterable[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ConfigError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ConfigError("histogram bucket bounds must be finite")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigError(
                f"histogram bucket bounds must strictly increase: {bounds}"
            )
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[str, int]]:
        """Prometheus-style ``(le, cumulative count)`` rows, ending at
        ``+Inf`` whose count equals the total observation count."""
        rows: list[tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            rows.append((format_number(bound), running))
        rows.append(("+Inf", running + self.bucket_counts[-1]))
        return rows


def format_number(value: float) -> str:
    """Canonical number rendering shared by the exporters: integral floats
    render without a fraction, everything else via ``repr`` (shortest
    round-trip form — deterministic across runs and platforms)."""
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


class MetricFamily:
    """One named metric with a fixed label schema and typed children.

    Children are created on first use (:meth:`labels`) or pre-declared for
    a stable exposition; a family with no labels has a single anonymous
    child reachable through the convenience :meth:`inc`/:meth:`set`/
    :meth:`observe` passthroughs.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        *,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        if kind not in _KINDS:
            raise ConfigError(f"unknown metric kind {kind!r}")
        if kind == "histogram" and buckets is None:
            raise ConfigError(f"histogram family {name!r} needs buckets")
        if kind != "histogram" and buckets is not None:
            raise ConfigError(f"{kind} family {name!r} takes no buckets")
        self.name = _check_name(name)
        self.kind = kind
        self.help = help
        self.label_names = tuple(
            _check_name(label, label=True) for label in label_names
        )
        self.buckets = tuple(float(b) for b in buckets) if buckets else None
        self._children: dict[tuple[str, ...], Any] = {}

    def _make_child(self) -> Any:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets)

    def labels(self, **labels: Any) -> Any:
        """The child instrument at one label assignment (created on first
        use). Label names must match the declared schema exactly."""
        if set(labels) != set(self.label_names):
            raise ConfigError(
                f"family {self.name!r} takes labels "
                f"({', '.join(self.label_names) or 'none'}), "
                f"got ({', '.join(sorted(labels)) or 'none'})"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def samples(self) -> list[tuple[tuple[str, ...], Any]]:
        """``(label values, instrument)`` pairs in sorted label order."""
        return sorted(self._children.items())

    # -- no-label conveniences -----------------------------------------------------

    def inc(self, n: float = 1.0) -> None:
        """Increment the anonymous child of a label-less counter family."""
        self.labels().inc(n)

    def set(self, value: float) -> None:
        """Set the anonymous child of a label-less gauge family."""
        self.labels().set(value)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Attach a callback to the anonymous child of a gauge family."""
        self.labels().set_function(fn)

    def observe(self, value: float) -> None:
        """Observe into the anonymous child of a histogram family."""
        self.labels().observe(value)


class MetricsRegistry:
    """One run's metric families, keyed and iterated by name.

    Re-declaring a family with the identical signature returns the existing
    one (instrumented layers can declare independently); any mismatch in
    kind, labels or bucket layout is a :class:`ConfigError`.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _declare(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if (
                existing.kind != kind
                or existing.label_names != tuple(label_names)
                or existing.buckets != (tuple(buckets) if buckets else None)
            ):
                raise ConfigError(
                    f"metric family {name!r} re-declared with a different "
                    "kind, label schema or bucket layout"
                )
            return existing
        family = MetricFamily(name, kind, help, tuple(label_names), buckets=buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> MetricFamily:
        """Declare (or fetch) a counter family."""
        return self._declare(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> MetricFamily:
        """Declare (or fetch) a gauge family."""
        return self._declare(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = (),
        labels: tuple[str, ...] = (),
    ) -> MetricFamily:
        """Declare (or fetch) a histogram family with a fixed layout."""
        return self._declare(name, "histogram", help, labels, tuple(buckets))

    def family(self, name: str) -> MetricFamily:
        """Look up one family; :class:`ConfigError` if undeclared."""
        try:
            return self._families[name]
        except KeyError:
            raise ConfigError(f"no metric family {name!r}") from None

    def families(self) -> list[MetricFamily]:
        """Every declared family, sorted by name (the iteration order all
        exports and the sampler use)."""
        return [self._families[name] for name in sorted(self._families)]
