"""The paper's storage metrics (Sections 2.2 and 4.3.1).

* **deduplication ratio** — ``|N| / |U|``: nonzero blocks over unique blocks
  [12],
* **compression ratio** — raw bytes over compressed bytes across the set of
  *unique* blocks (the paper's Section 2.2 formula is written as the mean
  compressed fraction, i.e. the reciprocal; its figures plot the
  bigger-is-better orientation used here),
* **combined compression ratio (CCR)** — their product,
* **cross-similarity** — for every unique block, count the number of
  *files* it appears in when that number is ≥ 2 ("repetition", else 0);
  cross-similarity is ``Σ repetitions / Σ_i |U_i|``. 1 ⇔ all files
  identical, 0 ⇔ no block shared between any two files.

All functions consume :class:`~repro.vmi.streams.BlockView` objects and are
single numpy passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..codecs import SizeEstimator
from ..vmi.streams import BlockView

__all__ = [
    "MetricsResult",
    "dedup_ratio",
    "compression_ratio",
    "combined_compression_ratio",
    "cross_similarity",
    "dataset_metrics",
]


@dataclass(frozen=True)
class MetricsResult:
    """All Section 2.2 / 4.3.1 metrics for one (dataset, block size) point."""

    block_size: int
    n_blocks: int  #: nonzero blocks |N|
    n_unique: int  #: unique blocks |U|
    dedup_ratio: float
    compression_ratio: float
    cross_similarity: float
    unique_raw_bytes: int
    unique_compressed_bytes: int

    @property
    def ccr(self) -> float:
        """Combined compression ratio = dedup × compression (Section 2.2)."""
        return self.dedup_ratio * self.compression_ratio


def _nonzero_signatures(view: BlockView) -> np.ndarray:
    return view.signatures[~view.is_hole]


def dedup_ratio(views: Sequence[BlockView]) -> float:
    """``|N| / |U|`` over the nonzero blocks of all views."""
    sigs = np.concatenate([_nonzero_signatures(v) for v in views])
    if sigs.size == 0:
        return 1.0
    return sigs.size / np.unique(sigs).size


def compression_ratio(
    views: Sequence[BlockView], estimator: SizeEstimator
) -> float:
    """Raw/compressed over the *unique* blocks of all views."""
    raw, compressed = _unique_sizes(views, estimator)
    return raw / compressed if compressed else 1.0


def combined_compression_ratio(
    views: Sequence[BlockView], estimator: SizeEstimator
) -> float:
    """CCR = dedup ratio x compression ratio (Section 2.2)."""
    return dedup_ratio(views) * compression_ratio(views, estimator)


def cross_similarity(views: Sequence[BlockView]) -> float:
    """Block sharing across files (Section 4.3.1's metric)."""
    per_file_unique = [
        u for u in (np.unique(_nonzero_signatures(v)) for v in views) if u.size
    ]
    if not per_file_unique:
        return 0.0
    stacked = np.concatenate(per_file_unique)
    _, counts = np.unique(stacked, return_counts=True)
    repetitions = counts[counts >= 2].sum()
    return float(repetitions) / float(stacked.size)


def _unique_sizes(
    views: Sequence[BlockView], estimator: SizeEstimator
) -> tuple[int, int]:
    """(raw bytes, compressed bytes) summed over unique nonzero blocks."""
    sigs_parts, lsize_parts, psize_parts = [], [], []
    for view in views:
        mask = ~view.is_hole
        sigs_parts.append(view.signatures[mask])
        lsize_parts.append(view.lsizes[mask])
        psize_parts.append(view.psizes(estimator)[mask])
    sigs = np.concatenate(sigs_parts)
    if sigs.size == 0:
        return 0, 0
    lsizes = np.concatenate(lsize_parts)
    psizes = np.concatenate(psize_parts)
    _, first_index = np.unique(sigs, return_index=True)
    return int(lsizes[first_index].sum()), int(psizes[first_index].sum())


def dataset_metrics(
    views: Sequence[BlockView], estimator: SizeEstimator
) -> MetricsResult:
    """Every metric in one pass (shares the unique-block computation)."""
    if not views:
        raise ValueError("no views")
    block_size = views[0].block_size
    sigs = np.concatenate([_nonzero_signatures(v) for v in views])
    n_unique = int(np.unique(sigs).size) if sigs.size else 0
    raw, compressed = _unique_sizes(views, estimator)
    dedup = sigs.size / n_unique if n_unique else 1.0
    compression = raw / compressed if compressed else 1.0
    return MetricsResult(
        block_size=block_size,
        n_blocks=int(sigs.size),
        n_unique=n_unique,
        dedup_ratio=float(dedup),
        compression_ratio=float(compression),
        cross_similarity=cross_similarity(views),
        unique_raw_bytes=raw,
        unique_compressed_bytes=compressed,
    )
