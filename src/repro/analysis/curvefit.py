"""Curve fitting and extrapolation (paper Section 4.3.2).

The paper models resource consumption vs cache count with three candidate
curves — linear regression, Morgan-Mercer-Flodin, and Hoerl:

.. math::

    \\mathrm{MMF}(x)   = \\frac{a b + c x^d}{b + x^d} \\qquad
    \\mathrm{hoerl}(x) = a\\, b^x\\, x^c

and selects per metric by a train-on-half / score-on-all RMSE protocol:
fit each candidate on the first half of the points, compute RMSE over *all*
points, pick the lowest, then refit the winner on all points for
extrapolation. The paper finds linear best for disk and MMF best for memory
(Tables 3, 4); the same protocol here reproduces that selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy.optimize import curve_fit

from ..common.errors import FitError

__all__ = [
    "FittedCurve",
    "fit_linear",
    "fit_mmf",
    "fit_hoerl",
    "rmse",
    "CURVE_FITTERS",
    "select_best_curve",
    "SelectionResult",
]


@dataclass(frozen=True)
class FittedCurve:
    """One fitted candidate curve."""

    name: str
    params: tuple[float, ...]
    _fn: Callable[..., np.ndarray]

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        return self._fn(np.asarray(x, dtype=np.float64), *self.params)


def _linear(x: np.ndarray, a: float, b: float) -> np.ndarray:
    return a + b * x


def _mmf(x: np.ndarray, a: float, b: float, c: float, d: float) -> np.ndarray:
    xd = np.power(np.maximum(x, 1e-9), d)
    return (a * b + c * xd) / (b + xd)


def _hoerl(x: np.ndarray, a: float, b: float, c: float) -> np.ndarray:
    xs = np.maximum(x, 1e-9)
    return a * np.power(b, xs) * np.power(xs, c)


def fit_linear(x: Sequence[float], y: Sequence[float]) -> FittedCurve:
    """Ordinary least squares ``y = a + b x``."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size < 2:
        raise FitError("linear fit needs at least 2 points")
    b, a = np.polyfit(x, y, 1)
    return FittedCurve("linear", (float(a), float(b)), _linear)


def fit_mmf(x: Sequence[float], y: Sequence[float]) -> FittedCurve:
    """Morgan-Mercer-Flodin sigmoid fit (scipy Levenberg-Marquardt)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size < 5:
        raise FitError("MMF fit needs at least 5 points")
    y_max = float(y.max())
    p0 = (float(y.min()), float(max(x.mean(), 1.0)), 2.0 * y_max, 1.0)
    try:
        params, _ = curve_fit(
            _mmf,
            x,
            y,
            p0=p0,
            maxfev=20_000,
            bounds=(
                (-np.inf, 1e-9, -np.inf, 0.05),
                (np.inf, np.inf, np.inf, 8.0),
            ),
        )
    except (RuntimeError, ValueError) as exc:
        raise FitError(f"MMF fit failed: {exc}") from exc
    return FittedCurve("MMF", tuple(float(p) for p in params), _mmf)


def fit_hoerl(x: Sequence[float], y: Sequence[float]) -> FittedCurve:
    """Hoerl fit, linearised in log space.

    ``log y = log a + x log b + c log x`` is linear in ``(1, x, log x)``, so
    the fit is a closed-form least squares — far more robust than fitting
    ``b**x`` directly (which overflows for x in the hundreds).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size < 3:
        raise FitError("Hoerl fit needs at least 3 points")
    if (y <= 0).any() or (x <= 0).any():
        raise FitError("Hoerl fit needs positive data")
    design = np.column_stack([np.ones_like(x), x, np.log(x)])
    coeffs, *_ = np.linalg.lstsq(design, np.log(y), rcond=None)
    log_a, log_b, c = coeffs
    return FittedCurve(
        "hoerl", (float(np.exp(log_a)), float(np.exp(log_b)), float(c)), _hoerl
    )


CURVE_FITTERS: dict[str, Callable[[Sequence[float], Sequence[float]], FittedCurve]] = {
    "linear": fit_linear,
    "MMF": fit_mmf,
    "hoerl": fit_hoerl,
}


def rmse(curve: FittedCurve, x: Sequence[float], y: Sequence[float]) -> float:
    """Root-mean-square error of ``curve`` over the given points."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    predicted = np.asarray(curve.predict(x), dtype=np.float64)
    return float(np.sqrt(np.mean((predicted - y) ** 2)))


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of the paper's train-on-half model-selection protocol."""

    winner: FittedCurve  #: winning curve type refit on ALL points
    half_fits: dict[str, FittedCurve]  #: candidates trained on the first half
    rmse_all: dict[str, float]  #: candidate RMSE over all points

    @property
    def winner_name(self) -> str:
        return self.winner.name


def select_best_curve(
    x: Sequence[float],
    y: Sequence[float],
    *,
    candidates: Sequence[str] = ("linear", "MMF", "hoerl"),
) -> SelectionResult:
    """Section 4.3.2's four-step protocol.

    1. train each candidate on the first half of the points,
    2. score each by RMSE over *all* points,
    3. pick the lowest,
    4. refit the winning curve type on all points (that fit extrapolates).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    half = max(2, x.size // 2)
    half_fits: dict[str, FittedCurve] = {}
    scores: dict[str, float] = {}
    for name in candidates:
        try:
            fit = CURVE_FITTERS[name](x[:half], y[:half])
            half_fits[name] = fit
            scores[name] = rmse(fit, x, y)
        except FitError:
            continue
    if not scores:
        raise FitError("no candidate curve could be fitted")
    winner_name = min(scores, key=scores.get)
    winner = CURVE_FITTERS[winner_name](x, y)
    return SelectionResult(winner=winner, half_fits=half_fits, rmse_all=scores)
