"""Text rendering of tables and figure series.

Benchmarks print the same rows/series the paper reports; these helpers keep
that output consistent: fixed-width ASCII tables and x/y series blocks that
read like the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["TextTable", "Series", "render_series"]


@dataclass
class TextTable:
    """A fixed-width table with a title (e.g. ``Table 3``)."""

    title: str
    headers: list[str]
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                return f"{cell:.2f}"
            return str(cell)

        grid = [self.headers] + [[fmt(c) for c in row] for row in self.rows]
        widths = [max(len(row[i]) for row in grid) for i in range(len(self.headers))]
        lines = [self.title, "-" * len(self.title)]
        for index, row in enumerate(grid):
            lines.append(
                "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
            if index == 0:
                lines.append("  ".join("-" * width for width in widths))
        return "\n".join(lines)


@dataclass
class Series:
    """One line of a figure: a name and (x, y) points."""

    name: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))

    def ys(self) -> list[float]:
        return [y for _, y in self.points]

    def xs(self) -> list[float]:
        return [x for x, _ in self.points]


def render_series(
    title: str,
    series: Sequence[Series],
    *,
    x_label: str = "x",
    y_format: str = "{:.2f}",
) -> str:
    """Render figure series as a column-per-line table keyed by x."""
    xs = sorted({x for s in series for x, _ in s.points})
    lines = [title, "-" * len(title)]
    name_width = max(len(x_label), *(len(s.name) for s in series)) if series else 8
    header = x_label.ljust(name_width) + "".join(f"{x:>12g}" for x in xs)
    lines.append(header)
    lines.append("-" * len(header))
    for s in series:
        lookup = dict(s.points)
        cells = "".join(
            f"{y_format.format(lookup[x]):>12}" if x in lookup else f"{'-':>12}"
            for x in xs
        )
        lines.append(s.name.ljust(name_width) + cells)
    return "\n".join(lines)
