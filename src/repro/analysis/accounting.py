"""Vectorised pool accounting for dataset-scale experiments.

Figures 8-10 and 13 measure the ZFS pool (data + DDT, disk + memory) while
storing hundreds of images. Routing tens of millions of blocks through the
per-block object pipeline would dominate runtime, so this module reproduces
the pool's *accounting* — identical formulas and per-entry constants as
:mod:`repro.zfs.ddt`/:mod:`repro.zfs.spa` — with numpy batch updates.
``tests/test_analysis_accounting.py`` proves batch and object pipelines
agree bit-for-bit on shared inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codecs import SizeEstimator
from ..common.units import align_up
from ..vmi.streams import BlockView
from ..zfs.ddt import DDT_ENTRY_CORE_BYTES, DDT_ENTRY_DISK_BYTES, DDT_FIXED_CORE_BYTES
from ..zfs.spa import SECTOR_SIZE

__all__ = ["PoolAccountant", "PoolSnapshot"]


@dataclass(frozen=True)
class PoolSnapshot:
    """Pool resource usage after some number of files were added."""

    files: int
    ddt_entries: int
    data_bytes: int  #: allocated (deduped + compressed, sector-aligned)
    referenced_blocks: int

    @property
    def ddt_disk_bytes(self) -> int:
        return self.ddt_entries * DDT_ENTRY_DISK_BYTES

    @property
    def ddt_core_bytes(self) -> int:
        if self.ddt_entries == 0:
            return 0
        return DDT_FIXED_CORE_BYTES + self.ddt_entries * DDT_ENTRY_CORE_BYTES

    @property
    def disk_used_bytes(self) -> int:
        return self.data_bytes + self.ddt_disk_bytes

    @property
    def memory_used_bytes(self) -> int:
        return self.ddt_core_bytes


class PoolAccountant:
    """Incremental dedup+compression accounting over block views.

    ``add_view`` ingests one file's :class:`BlockView`; duplicate signatures
    (within the view or against everything seen before) allocate nothing.
    State is one python-set of signatures plus running byte counters —
    O(blocks) per file, no per-block objects.
    """

    def __init__(self, estimator: SizeEstimator) -> None:
        self.estimator = estimator
        self._seen: set[int] = set()
        self._data_bytes = 0
        self._blocks = 0
        self._files = 0

    def add_view(self, view: BlockView) -> PoolSnapshot:
        mask = ~view.is_hole
        signatures = view.signatures[mask]
        psizes = view.psizes(self.estimator)[mask]
        # first occurrence within this view
        unique_sigs, first_index = np.unique(signatures, return_index=True)
        unique_psizes = psizes[first_index]
        seen = self._seen
        new_data = 0
        for signature, psize in zip(unique_sigs.tolist(), unique_psizes.tolist()):
            if signature not in seen:
                seen.add(signature)
                new_data += align_up(int(psize), SECTOR_SIZE)
        self._data_bytes += new_data
        self._blocks += int(signatures.size)
        self._files += 1
        return self.snapshot()

    def snapshot(self) -> PoolSnapshot:
        return PoolSnapshot(
            files=self._files,
            ddt_entries=len(self._seen),
            data_bytes=self._data_bytes,
            referenced_blocks=self._blocks,
        )
