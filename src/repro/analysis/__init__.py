"""Metrics, pool accounting, curve fitting and report rendering."""

from .accounting import PoolAccountant, PoolSnapshot
from .curvefit import (
    CURVE_FITTERS,
    FittedCurve,
    SelectionResult,
    fit_hoerl,
    fit_linear,
    fit_mmf,
    rmse,
    select_best_curve,
)
from .metrics import (
    MetricsResult,
    combined_compression_ratio,
    compression_ratio,
    cross_similarity,
    dataset_metrics,
    dedup_ratio,
)
from .report import Series, TextTable, render_series

__all__ = [
    "CURVE_FITTERS",
    "FittedCurve",
    "MetricsResult",
    "PoolAccountant",
    "PoolSnapshot",
    "SelectionResult",
    "Series",
    "TextTable",
    "combined_compression_ratio",
    "compression_ratio",
    "cross_similarity",
    "dataset_metrics",
    "dedup_ratio",
    "fit_hoerl",
    "fit_linear",
    "fit_mmf",
    "render_series",
    "rmse",
    "select_best_curve",
]
