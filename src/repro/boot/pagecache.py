"""Host (Linux) page-cache model.

A byte-budgeted LRU of 4 KB pages keyed by ``(file_id, page_index)``. The
paper's "free prefetch" effect (Section 4.2.3) rides on this cache: QCOW2
turns small guest reads into 64 KB cluster-sized reads of the backing file,
the host page cache keeps the whole cluster, and neighbouring boot-working-
set sectors are served from memory moments later.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["PageCache", "PAGE_SIZE"]

PAGE_SIZE: int = 4096


class PageCache:
    """LRU page cache over (file, page) keys."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < PAGE_SIZE:
            raise ValueError("page cache needs at least one page")
        self.capacity_pages = capacity_bytes // PAGE_SIZE
        self._pages: OrderedDict[tuple[int, int], None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, file_id: int, offset: int, length: int) -> list[tuple[int, int]]:
        """Touch a byte range; returns the missing (sub-)ranges.

        Present pages are refreshed (LRU); missing pages are returned as
        coalesced ``(offset, length)`` ranges and inserted (the caller is
        assumed to read them).
        """
        if length <= 0:
            return []
        first = offset // PAGE_SIZE
        last = (offset + length - 1) // PAGE_SIZE
        missing_pages: list[int] = []
        for page in range(first, last + 1):
            key = (file_id, page)
            if key in self._pages:
                self._pages.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
                missing_pages.append(page)
                self._pages[key] = None
                if len(self._pages) > self.capacity_pages:
                    self._pages.popitem(last=False)
        return _coalesce(missing_pages)

    def contains(self, file_id: int, offset: int) -> bool:
        return (file_id, offset // PAGE_SIZE) in self._pages

    def drop(self) -> None:
        """``echo 3 > drop_caches`` — used between measured boots."""
        self._pages.clear()

    @property
    def resident_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _coalesce(pages: list[int]) -> list[tuple[int, int]]:
    """Merge consecutive page indices into (offset, length) byte ranges."""
    if not pages:
        return []
    ranges: list[tuple[int, int]] = []
    run_start = pages[0]
    prev = pages[0]
    for page in pages[1:]:
        if page != prev + 1:
            ranges.append((run_start * PAGE_SIZE, (prev - run_start + 1) * PAGE_SIZE))
            run_start = page
        prev = page
    ranges.append((run_start * PAGE_SIZE, (prev - run_start + 1) * PAGE_SIZE))
    return ranges
