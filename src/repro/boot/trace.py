"""Boot traces: the I/O + CPU sequence a VM issues while booting.

A trace alternates CPU bursts (kernel decompression, init scripts, service
start-up) with reads of the boot working set. Reads come in *runs* — the
guest walks a file (kernel, a library, a config directory) mostly
sequentially, then jumps to the next file. Run lengths and read sizes follow
the shape reported for VM boots in the VMTorrent/VM-image literature: many
4-16 KB reads, runs of O(100 KB), ~10-20 s of CPU work for a typical Linux
boot (the paper's images boot in <20 s on average, Section 3.2).

Traces are expressed in the *cache region* offset space of an image and are
deterministic per image spec.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..common.rng import stream as rng_stream
from ..vmi.image import ImageSpec

__all__ = ["OpKind", "TraceOp", "BootTrace", "generate_boot_trace", "TraceConfig"]


class OpKind(Enum):
    """Kind of one trace operation."""

    READ = "read"
    CPU = "cpu"


@dataclass(frozen=True, slots=True)
class TraceOp:
    kind: OpKind
    offset: int = 0  #: byte offset in the cache region (READ)
    length: int = 0  #: bytes (READ)
    seconds: float = 0.0  #: burst duration (CPU)


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of trace synthesis."""

    mean_read_bytes: int = 12 * 1024
    max_read_bytes: int = 64 * 1024
    mean_run_bytes: int = 192 * 1024
    #: fraction of run transitions that jump backwards (re-reads, symbol
    #: lookups); the rest move forward through the working set
    backward_jump_fraction: float = 0.2
    #: total CPU time of the boot, split across bursts between runs
    cpu_seconds_mean: float = 15.2
    cpu_seconds_sigma: float = 0.08


@dataclass
class BootTrace:
    """A concrete boot trace for one image."""

    image_id: int
    cache_bytes: int
    ops: list[TraceOp]

    @property
    def read_bytes(self) -> int:
        return sum(op.length for op in self.ops if op.kind is OpKind.READ)

    @property
    def cpu_seconds(self) -> float:
        return sum(op.seconds for op in self.ops if op.kind is OpKind.CPU)

    def read_ops(self) -> list[TraceOp]:
        return [op for op in self.ops if op.kind is OpKind.READ]


def generate_boot_trace(
    spec: ImageSpec, config: TraceConfig | None = None
) -> BootTrace:
    """Synthesise the boot trace of one image.

    The trace touches (essentially) the whole cache region once — by
    definition the cache *is* what boot reads — in runs with occasional
    backward jumps, with the boot's CPU time spread over the run boundaries.
    """
    cfg = config or TraceConfig()
    rng = rng_stream("boot-trace", spec.seed)
    cache_bytes = spec.cache_bytes
    ops: list[TraceOp] = []

    # carve the region into runs (files read in sequence)
    n_runs = max(1, int(round(cache_bytes / cfg.mean_run_bytes)))
    boundaries = np.sort(rng.integers(0, cache_bytes, size=max(0, n_runs - 1)))
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [cache_bytes]])
    order = np.arange(n_runs)
    # visit mostly in order, with some runs visited out of order (backward
    # jumps when a later run is taken early or re-visited)
    n_jumps = int(cfg.backward_jump_fraction * n_runs)
    if n_jumps:
        swap_a = rng.integers(0, n_runs, size=n_jumps)
        swap_b = rng.integers(0, n_runs, size=n_jumps)
        for a, b in zip(swap_a, swap_b):
            order[a], order[b] = order[b], order[a]

    # the CPU draw comes from its own stream keyed only by the image, so a
    # given image spends identical CPU in every storage configuration
    cpu_rng = rng_stream("boot-cpu", spec.seed)
    total_cpu = float(
        np.clip(cpu_rng.lognormal(np.log(cfg.cpu_seconds_mean), cfg.cpu_seconds_sigma),
                5.0, 60.0)
    )
    cpu_weights = rng.dirichlet(np.ones(n_runs))

    for run_idx in order:
        run_start = int(starts[run_idx])
        run_end = int(ends[run_idx])
        ops.append(TraceOp(OpKind.CPU, seconds=total_cpu * float(cpu_weights[run_idx])))
        position = run_start
        while position < run_end:
            size = int(
                np.clip(rng.exponential(cfg.mean_read_bytes), 2048, cfg.max_read_bytes)
            )
            size = min(size, run_end - position)
            ops.append(TraceOp(OpKind.READ, offset=position, length=size))
            position += size
    return BootTrace(image_id=spec.image_id, cache_bytes=cache_bytes, ops=ops)
