"""Storage backends a VM cache/image chain can be backed by.

Each backend turns ``read_range(offset, length)`` into simulated seconds
using the disk, page-cache, and (for cVolumes) ZFS cost models. Figure 11's
four configurations map to:

* ``qcow2 - xfs``        → :class:`XfsFileBackend` over the full VMI (boot
  blocks scattered across a multi-GB file),
* ``warm caches - xfs``  → :class:`XfsFileBackend` over a compact cache file,
* ``cold caches - xfs``  → the same plus copy-on-read write-back
  (handled by the CoR QCOW2 layer on top),
* ``warm caches - zfs``  → :class:`CVolumeBackend` over a deduplicated +
  compressed cVolume at the swept block size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import BootError
from ..disk import MultiStreamDisk
from ..zfs import AdaptiveReplacementCache, Dataset
from .pagecache import PageCache

__all__ = ["XfsFileBackend", "CVolumeBackend", "ZfsCostModel"]


class XfsFileBackend:
    """A file stored contiguously on a plain local filesystem.

    ``span_offset`` places the file on the platter; the file's blocks are
    laid out linearly, so intra-file distance equals on-disk distance — a
    compact cache file seeks short, a 30 GB VMI seeks long.
    """

    def __init__(
        self,
        name: str,
        size: int,
        disk: MultiStreamDisk,
        page_cache: PageCache,
        *,
        span_offset: int = 0,
        file_id: int | None = None,
    ) -> None:
        self.name = name
        self.size = size
        self.disk = disk
        self.page_cache = page_cache
        self.span_offset = span_offset
        self.file_id = file_id if file_id is not None else hash(name) & 0x7FFFFFFF
        self.disk_reads = 0

    def read_range(self, offset: int, length: int) -> float:
        if offset < 0 or offset + length > self.size:
            raise BootError(f"read past end of {self.name}")
        elapsed = 0.0
        for miss_offset, miss_length in self.page_cache.access(
            self.file_id, offset, length
        ):
            self.disk_reads += 1
            elapsed += self.disk.read(self.span_offset + miss_offset, miss_length)
        return elapsed


@dataclass(frozen=True)
class ZfsCostModel:
    """Per-block CPU/metadata costs of the ZFS read path.

    Calibrated against the boot-time levels of Figure 11; the *trends* come
    from the block counts, the DDT size, and real DVA layout, not from these
    constants.
    """

    #: fixed per-block pipeline cost: block pointer walk, checksum verify,
    #: decompress call setup (dominates at small block sizes)
    per_block_cpu_s: float = 80e-6
    #: in-memory DDT/ZAP lookup
    ddt_lookup_s: float = 4e-6
    #: decompression throughput of the node CPU (gzip-6, one core)
    decompress_bytes_per_s: float = 250e6
    #: a DDT entry that misses the metadata cache costs a small random read;
    #: amortised below raw rotational latency because NCQ overlaps the queue
    ddt_miss_penalty_s: float = 0.3e-3
    #: metadata (DDT) bytes the ARC can keep resident
    ddt_cache_budget_bytes: int = 1 << 30
    #: fraction of mechanical positioning time hidden by ZFS's file-level
    #: prefetcher (zfetch): the cache file is read mostly sequentially at the
    #: logical level, so upcoming blocks are fetched asynchronously and their
    #: seek latency overlaps guest CPU and decompression
    prefetch_hide_fraction: float = 0.65


class CVolumeBackend:
    """A cache file stored in a deduplicated + compressed cVolume.

    Reads resolve the file's block pointers, charge the ZFS pipeline costs,
    and hit the disk at the blocks' *actual* DVAs in the shared pool — so
    dedup-induced scattering, DDT pressure, and decompression all emerge
    from the stored state rather than being assumed.
    """

    def __init__(
        self,
        dataset: Dataset,
        file_name: str,
        disk: MultiStreamDisk,
        cost_model: ZfsCostModel | None = None,
        *,
        arc_bytes: int = 256 << 20,
        size_scale: float = 1.0,
    ) -> None:
        self.dataset = dataset
        self.file_name = file_name
        self.disk = disk
        self.costs = cost_model or ZfsCostModel()
        #: caches decompressed blocks by index (per-node ARC share)
        self.arc: AdaptiveReplacementCache[int, bool] = AdaptiveReplacementCache(arc_bytes)
        #: >1 inflates the DDT-resident estimate when booting against a
        #: scaled-down dataset (the production DDT is 1/scale larger)
        self.size_scale = size_scale
        self.blocks_read = 0
        self.bytes_decompressed = 0
        self._file = dataset.file(file_name)
        self._record = dataset.record_size
        pool = dataset.pool
        self._ddt_resident_fraction = self._resident_fraction(pool)

    def _resident_fraction(self, pool) -> float:
        ddt_core = pool.ddt.in_core_bytes * self.size_scale
        budget = self.costs.ddt_cache_budget_bytes
        if ddt_core <= budget:
            return 1.0
        return budget / ddt_core

    def read_range(self, offset: int, length: int) -> float:
        if length <= 0:
            return 0.0
        first = offset // self._record
        last = (offset + length - 1) // self._record
        elapsed = 0.0
        pool = self.dataset.pool
        for index in range(first, last + 1):
            bp = self._file.get_block(index)
            if bp.is_hole:
                continue
            if self.arc.get(index) is not None:
                continue  # decompressed block cached: free
            elapsed += self.costs.per_block_cpu_s + self.costs.ddt_lookup_s
            # DDT working set beyond the metadata budget pages from disk
            miss_probability = 1.0 - self._ddt_resident_fraction
            elapsed += miss_probability * self.costs.ddt_miss_penalty_s
            dva = pool.zio.dva_of(bp)
            disk_time = self.disk.read(dva, bp.psize)
            transfer = bp.psize / self.disk.profile.sequential_bw
            positioning = max(0.0, disk_time - transfer)
            elapsed += transfer + positioning * (
                1.0 - self.costs.prefetch_hide_fraction
            )
            if bp.psize < bp.lsize:
                elapsed += bp.lsize / self.costs.decompress_bytes_per_s
                self.bytes_decompressed += bp.lsize
            self.blocks_read += 1
            self.arc.put(index, True, bp.lsize)
        return elapsed
