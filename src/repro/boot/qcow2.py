"""QCOW2 copy-on-write image model (cluster-granular).

Models what the paper's boot analysis needs from QCOW2 (Section 4.2.3,
citing [22]): the image is divided into clusters (64 KB by default); writes
allocate local clusters (copy-on-write), reads of unallocated ranges fall
through to the backing file as **cluster-rounded** requests — the behaviour
that turns small guest reads into 64 KB backing-file reads and produces the
free-prefetch effect through the host page cache.

The chain CoW → VMI cache → base VMI (Figure 1/7) is built by pointing
``backing`` at another :class:`Qcow2Image` or any object with a
``read_range`` method.
"""

from __future__ import annotations

from typing import Protocol

from ..common.errors import BootError
from ..common.units import QCOW2_CLUSTER_SIZE, ceil_div

__all__ = ["Backing", "Qcow2Image"]


class Backing(Protocol):
    """Anything a QCOW2 image can be backed by."""

    def read_range(self, offset: int, length: int) -> float:
        """Serve a read; returns simulated seconds."""
        ...


class Qcow2Image:
    """One CoW image in a backing chain."""

    def __init__(
        self,
        name: str,
        virtual_size: int,
        *,
        backing: "Backing | None" = None,
        cluster_size: int = QCOW2_CLUSTER_SIZE,
        copy_on_read: bool = False,
        local_write_cost_s_per_byte: float = 0.0,
    ) -> None:
        if cluster_size <= 0 or cluster_size & (cluster_size - 1):
            raise BootError(f"cluster size must be a power of two, got {cluster_size}")
        self.name = name
        self.virtual_size = virtual_size
        self.backing = backing
        self.cluster_size = cluster_size
        self.copy_on_read = copy_on_read
        self.local_write_cost = local_write_cost_s_per_byte
        self._allocated: set[int] = set()
        self.backing_reads = 0
        self.backing_bytes = 0
        self.cor_bytes = 0

    # -- guest-facing API ------------------------------------------------------

    def read_range(self, offset: int, length: int) -> float:
        """Guest read: local clusters are free (page-cache handled upstream);
        missing clusters are fetched cluster-rounded from the backing."""
        if offset < 0 or length < 0 or offset + length > self.virtual_size:
            raise BootError(
                f"read [{offset}, {offset + length}) outside image of "
                f"{self.virtual_size} bytes"
            )
        if length == 0:
            return 0.0
        elapsed = 0.0
        first = offset // self.cluster_size
        last = (offset + length - 1) // self.cluster_size
        run_start: int | None = None
        for cluster in range(first, last + 1):
            if cluster in self._allocated:
                if run_start is not None:
                    elapsed += self._fetch_clusters(run_start, cluster)
                    run_start = None
            elif run_start is None:
                run_start = cluster
        if run_start is not None:
            elapsed += self._fetch_clusters(run_start, last + 1)
        return elapsed

    def write_range(self, offset: int, length: int) -> float:
        """Guest write: allocates local clusters (COW)."""
        if length <= 0:
            return 0.0
        first = offset // self.cluster_size
        last = (offset + length - 1) // self.cluster_size
        for cluster in range(first, last + 1):
            self._allocated.add(cluster)
        return length * self.local_write_cost

    def _fetch_clusters(self, first_cluster: int, end_cluster: int) -> float:
        """Fetch [first, end) clusters from the backing, cluster-rounded."""
        if self.backing is None:
            return 0.0  # unallocated with no backing: reads as zeros
        start = first_cluster * self.cluster_size
        length = (end_cluster - first_cluster) * self.cluster_size
        length = min(length, max(0, self.virtual_size - start))
        self.backing_reads += 1
        self.backing_bytes += length
        elapsed = self.backing.read_range(start, length)
        if self.copy_on_read:
            # populate this image so the next boot finds a warm cache
            for cluster in range(first_cluster, end_cluster):
                self._allocated.add(cluster)
            self.cor_bytes += length
            elapsed += length * self.local_write_cost
        return elapsed

    # -- state inspection ------------------------------------------------------

    @property
    def allocated_clusters(self) -> int:
        return len(self._allocated)

    @property
    def allocated_bytes(self) -> int:
        return len(self._allocated) * self.cluster_size

    def is_warm_for(self, offset: int, length: int) -> bool:
        """True when the whole range is locally allocated (a warm cache)."""
        first = offset // self.cluster_size
        last = (offset + max(length, 1) - 1) // self.cluster_size
        return all(c in self._allocated for c in range(first, last + 1))

    def warm_fraction(self, working_set_bytes: int) -> float:
        """Fraction of a working set already cached."""
        needed = ceil_div(working_set_bytes, self.cluster_size)
        return min(1.0, len(self._allocated) / needed) if needed else 1.0
