"""Boot timing simulation — the machinery behind Figure 11.

For each configuration the simulator builds the storage chain of Figure 1/7
(CoW image → optional VMI cache → base store), replays the image's boot
trace through it, and reports ``cpu + io`` seconds. The IO component is
computed at the dataset scale and multiplied back by ``1/scale``: IO cost is
(block count × per-block cost + bytes × per-byte cost), both linear in the
cache size, so the scaled measurement extrapolates linearly while the trace's
CPU time stays absolute. DESIGN.md records this substitution.

Configurations (paper names):

* ``qcow2-xfs``   — CoW over the full VMI on local XFS (the baseline),
* ``warm-xfs``    — CoW over a warm cache file on local XFS,
* ``cold-xfs``    — CoW over a cold copy-on-read cache on XFS, backed by the
  VMI (first boot: populates the cache),
* ``warm-zfs``    — CoW over a warm cache stored in the deduplicated +
  compressed cVolume at a given block size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import BootError
from ..common.units import GiB, MiB
from ..disk import DAS4_RAID0, MultiStreamDisk
from ..vmi.image import ImageSpec
from ..zfs import Dataset
from .backends import CVolumeBackend, XfsFileBackend, ZfsCostModel
from .pagecache import PageCache
from .qcow2 import Qcow2Image
from .trace import BootTrace, OpKind, TraceConfig, generate_boot_trace

__all__ = ["BootResult", "BootSimulator", "BOOT_CONFIGS"]

BOOT_CONFIGS = ("qcow2-xfs", "warm-xfs", "cold-xfs", "warm-zfs")

#: where the cache's blocks sit inside the full VMI: for the baseline, boot
#: reads scatter over the VMI's logical span instead of a compact file
_VMI_SPREAD_FACTOR = 96

#: decompressed-block ARC bytes effectively available to one booting VM
#: (the node's ARC is shared by all caches' metadata and neighbours' I/O);
#: small enough that 128 KB records straddling trace runs get re-read —
#: the paper's 64 KB-cluster read-amplification effect at 128 KB
_PER_BOOT_ARC_BYTES = 32 * MiB


@dataclass(frozen=True)
class BootResult:
    """Outcome of one simulated boot."""

    image_id: int
    config: str
    cpu_seconds: float
    io_seconds: float
    blocks_read: int = 0

    @property
    def total_seconds(self) -> float:
        return self.cpu_seconds + self.io_seconds


class BootSimulator:
    """Replays boot traces against the four storage configurations."""

    def __init__(
        self,
        *,
        trace_config: TraceConfig | None = None,
        zfs_costs: ZfsCostModel | None = None,
        page_cache_bytes: int = 4 * GiB,
        io_scale: float = 1.0,
    ) -> None:
        self.trace_config = trace_config or TraceConfig()
        self.zfs_costs = zfs_costs or ZfsCostModel()
        self.page_cache_bytes = page_cache_bytes
        #: dataset scale of the stored caches; IO seconds are divided by it
        self.io_scale = io_scale

    # -- public API -------------------------------------------------------------

    def boot_plain(self, spec: ImageSpec, config: str) -> BootResult:
        """Boot one image from XFS-backed storage (baseline configurations).

        Plain configurations need no stored pool state, so they run at the
        image's *full-scale* sizes directly (``spec`` sizes are divided by
        ``io_scale``).
        """
        if config not in ("qcow2-xfs", "warm-xfs", "cold-xfs"):
            raise BootError(f"boot_plain cannot run config {config!r}")
        spec = _upscale_spec(spec, self.io_scale)
        trace = generate_boot_trace(spec, self.trace_config)
        disk = MultiStreamDisk(DAS4_RAID0, span_bytes=1 << 40)
        page_cache = PageCache(self.page_cache_bytes)

        if config == "qcow2-xfs":
            # boot blocks live inside the multi-GB VMI: same bytes, spread
            # over a span proportional to the image's raw size
            span = max(spec.cache_bytes * _VMI_SPREAD_FACTOR, 256 * MiB)
            backing = _SpreadBackend(
                XfsFileBackend("vmi", span, disk, page_cache, span_offset=8 * GiB),
                spread=span / max(1, spec.cache_bytes),
                limit=span,
            )
            chain = Qcow2Image("cow", span, backing=backing)
            io_seconds = self._replay(trace, chain)
        elif config == "warm-xfs":
            cache_file = XfsFileBackend(
                "cache", spec.cache_bytes, disk, page_cache, span_offset=2 * GiB
            )
            chain = Qcow2Image("cow", spec.cache_bytes, backing=cache_file)
            io_seconds = self._replay(trace, chain)
        else:  # cold-xfs: copy-on-read into an empty cache backed by the VMI
            span = max(spec.cache_bytes * _VMI_SPREAD_FACTOR, 256 * MiB)
            vmi = _SpreadBackend(
                XfsFileBackend("vmi", span, disk, page_cache, span_offset=8 * GiB),
                spread=span / max(1, spec.cache_bytes),
                limit=span,
            )
            cor_cache = Qcow2Image(
                "cache",
                spec.cache_bytes,
                backing=vmi,
                copy_on_read=True,
                # CoR writes are sequential appends to a fresh file; cheap but
                # not free (the paper found CoR competitive with CoW)
                local_write_cost_s_per_byte=1.0 / (110 * MiB),
            )
            chain = Qcow2Image("cow", spec.cache_bytes, backing=cor_cache)
            io_seconds = self._replay(trace, chain)

        return BootResult(
            image_id=spec.image_id,
            config=config,
            cpu_seconds=trace.cpu_seconds,
            io_seconds=io_seconds,
        )

    def boot_from_cvolume(
        self,
        spec: ImageSpec,
        dataset: Dataset,
        file_name: str,
    ) -> BootResult:
        """Boot one image whose warm cache lives in a cVolume (``warm-zfs``).

        ``dataset`` is the ccVolume holding *all* caches; ``file_name`` is
        this image's cache file in it. The trace is generated in the scaled
        cache's offset space so it addresses real stored blocks.
        """
        trace = generate_boot_trace(spec, _scaled_trace_config(
            self.trace_config, self.io_scale))
        disk = MultiStreamDisk(DAS4_RAID0, span_bytes=1 << 40)
        backend = CVolumeBackend(
            dataset,
            file_name,
            disk,
            self.zfs_costs,
            arc_bytes=max(
                4 * dataset.record_size, int(_PER_BOOT_ARC_BYTES * self.io_scale)
            ),
            size_scale=1.0 / self.io_scale,
        )
        # the guest/host page cache absorbs repeat cluster reads, so each
        # cluster reaches the cVolume once — which is exactly what makes
        # 128 KB records pay for their second 64 KB half when run ordering
        # splits it (the paper's 64 KB-cluster regression at 128 KB)
        cached = _PageCachedBackend(
            backend,
            PageCache(max(PAGE_SIZE_FLOOR, int(self.page_cache_bytes * self.io_scale))),
        )
        chain = Qcow2Image("cow", max(spec.cache_bytes, 1), backing=cached)
        io_seconds = self._replay(trace, chain) / self.io_scale
        return BootResult(
            image_id=spec.image_id,
            config="warm-zfs",
            cpu_seconds=trace.cpu_seconds,
            io_seconds=io_seconds,
            blocks_read=backend.blocks_read,
        )

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _replay(trace: BootTrace, chain: Qcow2Image) -> float:
        io_seconds = 0.0
        for op in trace.ops:
            if op.kind is OpKind.READ:
                io_seconds += chain.read_range(op.offset, op.length)
        return io_seconds


#: smallest useful page-cache budget for a scaled boot
PAGE_SIZE_FLOOR = 1 << 20


class _PageCachedBackend:
    """Page cache in front of a backend (one file)."""

    def __init__(self, inner, page_cache: PageCache, file_id: int = 1) -> None:
        self.inner = inner
        self.page_cache = page_cache
        self.file_id = file_id

    def read_range(self, offset: int, length: int) -> float:
        elapsed = 0.0
        for miss_offset, miss_length in self.page_cache.access(
            self.file_id, offset, length
        ):
            elapsed += self.inner.read_range(miss_offset, miss_length)
        return elapsed


class _SpreadBackend:
    """Maps compact working-set offsets onto their positions inside the full
    VMI file (the baseline's scattering).

    Files are contiguous inside the image, so the mapping is *segment-wise*:
    within a ``segment`` the layout is preserved (sequential reads of one
    file stay sequential on disk); segment bases are spread across the VMI's
    span (consecutive boot files live far apart)."""

    SEGMENT = 384 << 10  # ~ one boot file (kernel modules, libs, units)

    def __init__(self, inner: XfsFileBackend, *, spread: float, limit: int) -> None:
        self.inner = inner
        self.spread = spread
        self.limit = limit

    def read_range(self, offset: int, length: int) -> float:
        segment, within = divmod(offset, self.SEGMENT)
        base = int(segment * self.SEGMENT * self.spread) % max(
            self.SEGMENT, self.limit - 2 * self.SEGMENT
        )
        spread_offset = min(base + within, max(0, self.limit - length))
        return self.inner.read_range(spread_offset, length)


def _upscale_spec(spec: ImageSpec, io_scale: float) -> ImageSpec:
    """Restore full-scale byte sizes of a spec from a scaled dataset."""
    if io_scale == 1.0:
        return spec
    from dataclasses import replace

    return replace(
        spec,
        raw_bytes=int(spec.raw_bytes / io_scale),
        nonzero_bytes=int(spec.nonzero_bytes / io_scale),
        cache_bytes=int(spec.cache_bytes / io_scale),
    )


def _scaled_trace_config(cfg: TraceConfig, io_scale: float) -> TraceConfig:
    """Shrink run lengths with the dataset scale so run *counts* stay
    realistic; read sizes stay absolute (the guest still reads 4-64 KB)."""
    if io_scale == 1.0:
        return cfg
    return TraceConfig(
        mean_read_bytes=cfg.mean_read_bytes,
        max_read_bytes=cfg.max_read_bytes,
        mean_run_bytes=max(cfg.max_read_bytes, int(cfg.mean_run_bytes * io_scale)),
        backward_jump_fraction=cfg.backward_jump_fraction,
        cpu_seconds_mean=cfg.cpu_seconds_mean,
        cpu_seconds_sigma=cfg.cpu_seconds_sigma,
    )
