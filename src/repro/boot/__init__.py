"""Boot simulation: QCOW2 chains, copy-on-read caches, page cache, timing."""

from .backends import CVolumeBackend, XfsFileBackend, ZfsCostModel
from .bootsim import BOOT_CONFIGS, BootResult, BootSimulator
from .pagecache import PAGE_SIZE, PageCache
from .qcow2 import Qcow2Image
from .trace import BootTrace, OpKind, TraceConfig, TraceOp, generate_boot_trace

__all__ = [
    "BOOT_CONFIGS",
    "PAGE_SIZE",
    "BootResult",
    "BootSimulator",
    "BootTrace",
    "CVolumeBackend",
    "OpKind",
    "PageCache",
    "Qcow2Image",
    "TraceConfig",
    "TraceOp",
    "XfsFileBackend",
    "ZfsCostModel",
    "generate_boot_trace",
]
