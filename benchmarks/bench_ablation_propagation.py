"""Ablation: multicast vs unicast (rsync-style) vs P2P cache propagation.

Section 3.5 argues for multicasting snapshot diffs over per-node rsync. This
bench distributes one registration diff to 64 nodes under all three
mechanisms and compares sender load and completion time.
"""

from repro.net import (
    Node,
    NodeKind,
    TransferLedger,
    multicast,
    swarm_distribute,
    unicast_fanout,
)


def test_ablation_propagation(benchmark, record_result):
    diff_bytes = 10 << 20  # an O(10 MB) cVolume diff (Section 5.3)
    sender = Node("storage0", NodeKind.STORAGE)
    receivers = [Node(f"c{i}", NodeKind.COMPUTE) for i in range(64)]

    def run():
        outcomes = {}
        for name, fn in (
            ("multicast", multicast),
            ("unicast", unicast_fanout),
            ("p2p", swarm_distribute),
        ):
            ledger = TransferLedger()
            result = fn(ledger, sender, receivers, diff_bytes)
            outcomes[name] = (
                result.duration_s,
                result.sender_bytes if hasattr(result, "sender_bytes")
                else result.origin_bytes,
                sum(ledger.bytes_out_of(r.name) for r in receivers),
            )
        return outcomes

    result = benchmark.pedantic(run, rounds=1)
    lines = [
        "Ablation: propagating a 10 MB diff to 64 nodes",
        "-" * 47,
        f"{'mechanism':>10s} {'time':>9s} {'origin sends':>13s} {'peer uploads':>13s}",
    ]
    for name, (duration, origin, peer) in result.items():
        lines.append(
            f"{name:>10s} {duration * 1e3:>7.0f}ms {origin / 2**20:>11.1f}MB "
            f"{peer / 2**20:>11.1f}MB"
        )
    record_result("ablation_propagation", "\n".join(lines))
    # multicast: origin pays ~1x, nodes upload nothing, fastest completion
    assert result["multicast"][1] < 1.1 * diff_bytes
    assert result["multicast"][2] == 0
    assert result["multicast"][0] < result["unicast"][0]
    # unicast: origin pays 64x
    assert result["unicast"][1] == 64 * diff_bytes
    # p2p: origin relieved but compute nodes burn uplink (SLA interference)
    assert result["p2p"][2] > 0
