"""Ablation: clustered vs scattered per-image mutations.

DESIGN.md decision 1: per-image divergence comes as *clustered regions*
(a replaced kernel, a rewritten package DB), not iid grain flips. Scattering
the same mutation budget over tiny regions destroys large-block dedup (every
128 KB block gets hit) while leaving 1 KB dedup unchanged — the clustering
is what spreads Figure 2's slope across the sweep.
"""

from dataclasses import replace

import numpy as np

from repro.experiments import default_context
from repro.vmi import block_view, cache_stream
from repro.vmi.image import MutationProfile


def _dedup(streams, block_size):
    sigs = np.concatenate(
        [
            view.signatures[~view.is_hole]
            for view in (block_view(s, block_size) for s in streams)
        ]
    )
    return sigs.size / np.unique(sigs).size


def test_ablation_mutation_clustering(benchmark, record_result):
    ctx = default_context()
    specs = ctx.specs[::5][:100]

    def scattered(spec):
        profile = MutationProfile(
            boot_rate=spec.mutation.boot_rate,
            body_rate=spec.mutation.body_rate,
            region_mean_grains=2.0,  # same budget, tiny regions
            region_sigma=0.3,
        )
        return replace(spec, mutation=profile)

    def run():
        clustered = [cache_stream(s) for s in specs]
        spread = [cache_stream(scattered(s)) for s in specs]
        return {
            "clustered": {bs: _dedup(clustered, bs) for bs in (1024, 131072)},
            "scattered": {bs: _dedup(spread, bs) for bs in (1024, 131072)},
        }

    result = benchmark.pedantic(run, rounds=1)
    lines = ["Ablation: clustered vs scattered mutation regions", "-" * 50]
    for variant, values in result.items():
        lines.append(
            f"{variant:>9s}: dedup @1 KB = {values[1024]:.2f}, "
            f"@128 KB = {values[131072]:.2f}"
        )
    record_result("ablation_mutation_clustering", "\n".join(lines))
    # same grain-level budget: 1 KB dedup in the same band (scattered regions
    # overlap less, so their effective coverage runs somewhat higher)
    ratio_1k = result["scattered"][1024] / result["clustered"][1024]
    assert 0.45 < ratio_1k < 1.35
    # scattering guts 128 KB dedup
    assert result["scattered"][131072] < result["clustered"][131072] * 0.75
