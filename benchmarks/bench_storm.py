"""Timed boot storm: latency percentiles for the 64x8 flash crowd.

The acceptance bar for the event engine: the full 512-VM storm (both sides)
simulates in under 30 s of wall clock, Squirrel's compute ingress is zero,
and a same-seed re-run reproduces the Timeline bit-for-bit.
"""

import time

from repro.experiments import storm_timeline as exp
from repro.workload import StormConfig, boot_storm


def test_storm_timeline(benchmark, record_result):
    started = time.perf_counter()
    result = benchmark.pedantic(exp.run, rounds=1)
    wall = time.perf_counter() - started
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    report = result.report

    assert wall < 30.0, f"64x8 storm took {wall:.1f}s wall-clock"
    # Squirrel: every boot a local hit, zero bytes into compute nodes
    assert report.squirrel.boots == 512
    assert report.squirrel.cache_hits == 512
    assert report.squirrel.compute_ingress_bytes == 0
    # both sides report full percentile ladders
    for side in (report.squirrel, report.baseline):
        stats = side.latency
        assert 0.0 < stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum
    # the storm is the point: cold reads queue behind four bricks
    assert report.baseline.latency.p50 > 50 * report.squirrel.latency.p50

    # same seed, fresh rig: bit-identical Timeline on both sides
    again = boot_storm(result.config)
    assert again.squirrel.summary == report.squirrel.summary
    assert again.baseline.summary == report.baseline.summary


def test_storm_smoke_4node(record_result):
    """CI-sized smoke: 4 compute nodes, seconds of wall clock."""
    config = StormConfig(n_nodes=4, vms_per_node=4, ramp_s=10.0, seed=7)
    report = boot_storm(config)
    record_result(
        "storm_smoke",
        exp.render(exp.StormTimelineResult(config=config, report=report)),
    )
    assert report.squirrel.boots == 16
    assert report.squirrel.compute_ingress_bytes == 0
    assert report.baseline.latency.p50 > report.squirrel.latency.p50
