"""Figure 13: incremental resource consumption while adding files (64 KB)."""

import numpy as np

from repro.experiments import default_context, fig13_incremental as exp


def test_fig13_incremental(benchmark, record_result):
    result = benchmark.pedantic(exp.run, args=(default_context(),), rounds=1)
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    # image slopes are much steeper than cache slopes (both disk and memory)
    assert result.slope_ratio_disk() > 10.0
    assert result.images_memory_mb[-1] > 3 * result.caches_memory_mb[-1]
    # trajectories are monotone non-decreasing
    assert (np.diff(result.caches_disk_gb) >= -1e-9).all()
    assert (np.diff(result.caches_memory_mb) >= -1e-9).all()
