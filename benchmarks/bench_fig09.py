"""Figure 9: dedup-table size on disk vs block size."""

from repro.experiments import default_context, fig09_ddt_disk as exp


def test_fig09_ddt_disk(benchmark, record_result):
    result = benchmark.pedantic(exp.run, args=(default_context(),), rounds=1)
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    # DDT-on-disk grows steeply as blocks shrink (the Figure 8 overhead)
    assert result.images_ddt_gb[0] > 5 * result.images_ddt_gb[-1]
    assert result.caches_ddt_gb[0] > 5 * result.caches_ddt_gb[-1]
    # and images carry far more table than caches
    assert all(
        i > 10 * c for i, c in zip(result.images_ddt_gb, result.caches_ddt_gb)
    )
