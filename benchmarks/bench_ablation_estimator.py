"""Ablation: calibrated size estimator vs exact codec output.

DESIGN.md decision 3 trades exact per-block compression for a calibrated
per-class model so million-block sweeps stay tractable. This bench
quantifies the trade: estimated vs real gzip-6 compressed sizes over a
sample of mixed-content blocks.
"""

import numpy as np

from repro.codecs import get_codec
from repro.experiments import default_context
from repro.vmi import block_view, cache_stream, materialize_block


def _aggregate_error(ctx, block_size: int, n_blocks: int = 48):
    estimator = ctx.estimator("gzip6", (block_size,))
    codec = get_codec("gzip6")
    specs = ctx.specs[::71][:6]
    estimated_total = 0
    real_total = 0
    per_block_errors = []
    for spec in specs:
        stream = cache_stream(spec)
        view = block_view(stream, block_size)
        psizes = view.psizes(estimator)
        grains_per_block = block_size // 1024
        count = 0
        for index in range(view.n_blocks):
            if view.is_hole[index] or count >= n_blocks // len(specs):
                continue
            grains = stream[index * grains_per_block : (index + 1) * grains_per_block]
            real = codec.effective_size(materialize_block(grains))
            estimated = int(psizes[index])
            estimated_total += estimated
            real_total += real
            per_block_errors.append(abs(estimated - real) / real)
            count += 1
    return estimated_total / real_total, float(np.mean(per_block_errors))


def test_ablation_estimator_accuracy(benchmark, record_result):
    ctx = default_context()

    def run():
        return {bs: _aggregate_error(ctx, bs) for bs in (4096, 65536)}

    result = benchmark.pedantic(run, rounds=1)
    lines = ["Ablation: estimator vs exact gzip-6 sizes", "-" * 42]
    for bs, (aggregate_ratio, mean_block_error) in result.items():
        lines.append(
            f"block {bs // 1024:>3d} KB: aggregate est/real = {aggregate_ratio:.3f}, "
            f"mean per-block error = {mean_block_error:.1%}"
        )
    record_result("ablation_estimator", "\n".join(lines))
    for aggregate_ratio, mean_block_error in result.values():
        # aggregate sizes (what the figures use) stay within 15%
        assert 0.85 < aggregate_ratio < 1.15
        # individual blocks may vary more, but not wildly
        assert mean_block_error < 0.35
