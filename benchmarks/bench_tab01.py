"""Table 1: the storage reduction chain at 128 KB block size."""

from repro.common.units import GiB, TiB
from repro.experiments import default_context, tab01_storage_chain as exp


def test_tab01_storage_chain(benchmark, record_result):
    result = benchmark.pedantic(exp.run, args=(default_context(),), rounds=1)
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    # the three input columns reproduce the paper by dataset construction
    assert abs(result.original_bytes - 16.4 * TiB) / (16.4 * TiB) < 0.02
    assert abs(result.nonzero_bytes - 1.4 * TiB) / (1.4 * TiB) < 0.02
    assert abs(result.caches_nonzero_bytes - 78.5 * GiB) / (78.5 * GiB) < 0.02
    # the computed column: paper measured 15.1 GB — same ballpark required
    assert 8 * GiB < result.caches_ccr_bytes < 25 * GiB
