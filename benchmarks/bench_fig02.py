"""Figure 2: dedup & gzip-6 compression ratio of images and caches."""

from repro.experiments import default_context, fig02_compression_ratio as exp


def test_fig02_compression_ratio(benchmark, record_result):
    result = benchmark.pedantic(exp.run, args=(default_context(),), rounds=1)
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    # paper shape: dedup rises as blocks shrink, gzip falls; caches >> images
    assert result.caches_dedup[0] > result.caches_dedup[-1]
    assert result.caches_gzip6[0] < result.caches_gzip6[-1]
    # caches dedup better than images throughout the 1-128 KB band (at the
    # 256 KB-1 MB tail a scaled-down cache is only a few blocks long, so the
    # comparison there is noise)
    assert all(
        c > i
        for c, i, bs in zip(
            result.caches_dedup, result.images_dedup, result.block_sizes
        )
        if bs <= 128 * 1024
    )
