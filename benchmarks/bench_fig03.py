"""Figure 3: cache compression ratio per codec (gzip6/gzip9/lzjb/lz4)."""

from repro.experiments import default_context, fig03_codecs as exp


def test_fig03_codecs(benchmark, record_result):
    result = benchmark.pedantic(exp.run, args=(default_context(),), rounds=1)
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    # paper shape: gzip9 compresses about as well as gzip6 (slightly better);
    # lz4 and lzjb are faster codecs with clearly lower ratios
    for i, _bs in enumerate(result.block_sizes):
        assert result.by_codec["gzip9"][i] >= result.by_codec["gzip6"][i] * 0.98
        assert result.by_codec["gzip6"][i] > result.by_codec["lz4"][i]
        assert result.by_codec["gzip6"][i] > result.by_codec["lzjb"][i]
