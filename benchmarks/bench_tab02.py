"""Table 2: OS diversity census (Azure vs EC2)."""

from repro.experiments import default_context, tab02_os_diversity as exp


def test_tab02_os_diversity(benchmark, record_result):
    result = benchmark.pedantic(exp.run, args=(default_context(),), rounds=1)
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    assert result.matches_paper
    assert sum(result.azure_measured.values()) == 607
