"""Extension: LRU cache replacement vs full replication (scatter hoarding).

The paper's introduction rejects "traditional" cache-replacement policies in
favour of full replication. This bench quantifies why: on a Zipf boot
workload, an LRU node given *exactly* the raw disk Squirrel needs for all
caches keeps missing on the long tail, while Squirrel never touches the
network. Dedup + compression are what turn 78.5 GB of caches into a budget a
node can fully replicate.
"""

from repro.analysis import PoolAccountant
from repro.common.units import GiB
from repro.core import ZipfBootWorkload, run_policy_comparison
from repro.experiments import default_context
from repro.vmi import block_view


def test_ablation_lru_policy(benchmark, record_result):
    ctx = default_context()

    def run():
        # measure Squirrel's actual 64 KB footprint for this dataset
        accountant = PoolAccountant(ctx.estimator("gzip6", (65536,)))
        for stream in ctx.streams("caches"):
            accountant.add_view(block_view(stream, 65536))
        footprint = accountant.snapshot().disk_used_bytes
        comparison = run_policy_comparison(
            ctx.dataset,
            squirrel_footprint_bytes=footprint,
            workload=ZipfBootWorkload(n_boots=3000),
        )
        return footprint, comparison

    footprint, comparison = benchmark.pedantic(run, rounds=1)
    scale_up = ctx.dataset.scaled_up
    lines = [
        "Extension: LRU replacement vs scatter hoarding (same disk budget)",
        "-" * 66,
        f"disk budget (Squirrel's measured cVolume): "
        f"{scale_up(footprint) / GiB:.1f} GB",
        f"{'policy':>10s} {'hit rate':>9s} {'miss traffic':>13s}",
        f"{'lru':>10s} {comparison.lru.hit_rate:>8.1%} "
        f"{scale_up(comparison.lru.miss_network_bytes) / GiB:>11.1f} GB",
        f"{'squirrel':>10s} {comparison.squirrel.hit_rate:>8.1%} "
        f"{scale_up(comparison.squirrel.miss_network_bytes) / GiB:>11.1f} GB",
    ]
    record_result("ablation_lru_policy", "\n".join(lines))
    assert comparison.squirrel.hit_rate == 1.0
    assert comparison.lru.hit_rate < 0.95
    assert comparison.lru.miss_network_bytes > 0
