"""Figure 17: memory-consumption extrapolation to 3000 caches."""

from repro.experiments import default_context, fits


def test_fig17_memory_extrapolation(benchmark, record_result):
    result = benchmark.pedantic(fits.run_memory, args=(default_context(),), rounds=1)
    record_result("fig17", fits.render_extrapolation(result, figure="Figure 17"))
    outcome = result.outcome_64k()
    # paper: ~85 MB of memory dedups 1200+ caches at 64 KB — modest either way
    at_1214 = outcome.extrapolate(1214)
    assert 20.0 < at_1214 < 170.0
    # memory saturates: going 1214 -> 3000 caches must grow sublinearly
    growth = outcome.extrapolate(3000) / at_1214
    assert growth < 3000 / 1214
