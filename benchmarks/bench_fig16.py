"""Figure 16 + Table 4: memory-consumption curve fitting."""

from repro.experiments import default_context, fits


def test_fig16_tab04_memory_fit(benchmark, record_result):
    result = benchmark.pedantic(fits.run_memory, args=(default_context(),), rounds=1)
    rendered = (
        fits.render_fit_quality(result, figure="Figure 16")
        + "\n\n"
        + fits.render_rmse_table(result, table="Table 4")
    )
    record_result("fig16_tab04", rendered)
    # the paper's Table 4 outcome: MMF estimates memory best at 64 KB
    assert result.outcome_64k().winner_name == "MMF"
