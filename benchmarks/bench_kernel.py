"""Event-core benchmark: events/second, heap vs calendar queue.

Two measurements, both deterministic workloads:

* raw queue throughput — push/pop a pre-generated schedule through each
  :class:`~repro.sim.EventQueue` implementation alone;
* engine throughput — a contended mini-cluster (pipes + resources +
  same-instant collisions) driven end-to-end through :class:`Engine`
  under each queue kind, with the byte-identity of the two traces
  asserted as part of the bench (the fast core is only fast if it is
  also *right*).

The rendering lands in ``benchmarks/results/kernel.txt`` and the raw
numbers in ``BENCH_kernel.json`` at the repo root, which is what CI
archives to track the kernel's perf trajectory.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.obs import runtime as obs_runtime
from repro.sim import Engine, Pipe, Resource, make_queue, QUEUE_KINDS

REPO_ROOT = pathlib.Path(__file__).parent.parent

#: raw-queue schedule size and engine workload shape (events ≈ VMS × OPS)
N_SCHEDULE = 200_000
N_VMS = 2_000
N_OPS = 5


def _schedule(n: int) -> list[tuple]:
    rng = np.random.default_rng(7)
    times = rng.exponential(0.5, size=n).cumsum()
    # mix in same-instant runs: every 16th entry collides with its neighbour
    times[::16] = times[1::16][: times[::16].size]
    tiebreaks = rng.integers(0, 1 << 62, size=n)
    return [
        (float(t), int(tb), seq, None, None)
        for seq, (t, tb) in enumerate(zip(times, tiebreaks))
    ]


def _raw_queue_rate(kind: str, entries: list[tuple]) -> float:
    queue = make_queue(kind)
    started = time.perf_counter()
    for entry in entries:
        queue.push(entry)
    drained = []
    while len(queue):
        drained.append(queue.pop())
    elapsed = time.perf_counter() - started
    assert drained == sorted(entries), f"{kind} queue broke the total order"
    return 2 * len(entries) / elapsed  # one push + one pop per entry


def _engine_run(kind: str) -> tuple[float, int, list]:
    # the runtime profiler does the measuring: the engine reports its own
    # wall time and exact processed-event count through the observer hooks
    profiler = obs_runtime.RuntimeProfiler()
    with obs_runtime.profiled(profiler):
        engine = Engine(seed=3, queue=kind)
        obs_runtime.attach(engine)
        pipe = Pipe(engine, 1e6, name="link")
        cores = Resource(engine, capacity=4, name="cores")
        counted = 0

        def vm(i):
            nonlocal counted
            yield engine.timeout(float(i % 7))
            for _ in range(N_OPS):
                yield pipe.transfer(1000)
                yield cores.request()
                yield engine.timeout(0.01)
                cores.release()
                counted += 1

        for i in range(N_VMS):
            engine.process(vm(i), label=f"vm:{i}")
        horizon = engine.run()
    stats = profiler.engine_stats()
    return stats["wall_s"], int(stats["events"]), [horizon, counted]


def test_kernel_events_per_second(benchmark, record_result):
    entries = _schedule(N_SCHEDULE)

    wall = {}

    def run():
        started = time.perf_counter()
        result = {}
        for kind in QUEUE_KINDS:
            raw = _raw_queue_rate(kind, entries)
            elapsed, events, digest = _engine_run(kind)
            result[kind] = {
                "raw_queue_ops_per_s": raw,
                "engine_events_per_s": events / elapsed,
                "engine_elapsed_s": elapsed,
                "engine_events": events,
                "digest": digest,
            }
        wall["s"] = time.perf_counter() - started
        return result

    result = benchmark.pedantic(run, rounds=1)
    digests = {kind: result[kind].pop("digest") for kind in result}
    assert digests["heap"] == digests["calendar"], (
        "queue kinds diverged: " + repr(digests)
    )

    lines = [
        "Simulation kernel: events/second by queue implementation",
        "-" * 56,
        f"{'queue':>10s}  {'raw ops/s':>12s}  {'engine ev/s':>12s}",
    ]
    for kind in QUEUE_KINDS:
        row = result[kind]
        lines.append(
            f"{kind:>10s}  {row['raw_queue_ops_per_s']:>12.0f}  "
            f"{row['engine_events_per_s']:>12.0f}"
        )
    lines.append(
        f"(workload: {N_SCHEDULE} scheduled entries raw; "
        f"{N_VMS} VMs x {N_OPS} contended ops through the engine)"
    )
    record_result("kernel", "\n".join(lines))

    payload = {
        "benchmark": "kernel",
        "workload": {
            "raw_entries": N_SCHEDULE,
            "engine_vms": N_VMS,
            "engine_ops_per_vm": N_OPS,
        },
        "queues": result,
        # host-side runtime telemetry: machine-dependent, so the CI perf
        # gate diffs only the throughput metrics (--metric per_s)
        "runtime": {
            "bench_wall_s": wall["s"],
            "rss_high_water_bytes": obs_runtime.rss_high_water_bytes(),
        },
    }
    (REPO_ROOT / "BENCH_kernel.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
