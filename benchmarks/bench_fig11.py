"""Figure 11: average boot time from dedup+compressed VMI caches."""

from repro.experiments import default_context, fig11_boot_time as exp


def test_fig11_boot_time(benchmark, record_result):
    result = benchmark.pedantic(exp.run, args=(default_context(),), rounds=1)
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    # paper shapes:
    # 1. tiny blocks boot badly (1 KB far above the baseline)
    assert result.warm_zfs_at(1024) > 1.4 * result.qcow2_xfs_seconds
    # 2. the curve bottoms out at 32-128 KB and beats the local-VMI baseline
    assert result.fastest_block_size() >= 32 * 1024
    assert result.warm_zfs_at(65536) < result.qcow2_xfs_seconds
    # 3. 128 KB does not meaningfully improve on 64 KB (QCOW2's 64 KB
    #    clusters cap the useful record size; at full scale it regresses)
    assert result.warm_zfs_at(131072) >= result.warm_zfs_at(65536) * 0.97
    # 4. reference lines: warm < baseline < cold
    assert result.warm_xfs_seconds < result.qcow2_xfs_seconds
    assert result.cold_xfs_seconds > result.warm_xfs_seconds
    # 5. boots are tens of seconds, not minutes (Section 3.2: < 20 s avg)
    assert result.warm_xfs_seconds < 20.0
