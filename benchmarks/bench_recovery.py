"""Faulted boot storm: the recovery-time acceptance bar.

The headline fault scenario: the 64x8 flash crowd loses ``compute1`` for
45 s mid-storm while ``compute3``'s NIC flaps — and still completes every
boot. Asserts full completion on both sides, populated recovery
percentiles, exactly one crash/rejoin cycle, and bit-identical reports on
a same-seed re-run.
"""

import time

from repro.experiments import recovery_timeline as exp
from repro.workload import boot_storm


def test_recovery_timeline(benchmark, record_result):
    started = time.perf_counter()
    result = benchmark.pedantic(exp.run, rounds=1)
    wall = time.perf_counter() - started
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    report = result.report

    assert wall < 60.0, f"faulted 64x8 storm took {wall:.1f}s wall-clock"
    # every boot completes despite the crash and the flap
    for side in (report.squirrel, report.baseline):
        assert side.boots == 512
        assert side.latency.count == 512
    # one crash, one rejoin, and the recovery ladder is populated
    for side in (report.squirrel, report.baseline):
        counters = side.summary["counters"]
        assert counters["node_crashes"] == 1
        assert counters["node_rejoins"] == 1
        assert side.node_recovery.count == 1
        assert side.node_recovery.p50 >= 45.0  # downtime + catch-up
    # boots were actually disturbed (the crash lands mid-crowd)
    disturbed = (
        report.baseline.interrupted_boots + report.baseline.delayed_boots
    )
    assert disturbed > 0
    assert report.baseline.recovery.count == disturbed

    # same seed, fresh rig: bit-identical report including recovery stats
    again = boot_storm(result.config)
    assert again.squirrel.summary == report.squirrel.summary
    assert again.baseline.summary == report.baseline.summary


def test_recovery_smoke_4node(record_result):
    """CI-sized smoke: 4 nodes, one crash + one flap, seconds of wall clock."""
    from repro.experiments.storm_timeline import StormTimelineResult
    from repro.faults import FaultPlan
    from repro.workload import StormConfig

    config = StormConfig(
        n_nodes=4, vms_per_node=2, ramp_s=10.0, seed=3,
        faults=FaultPlan.parse("crash:compute1@5+30,flap:compute2@8+10"),
    )
    report = boot_storm(config)
    record_result(
        "recovery_smoke",
        exp.render(StormTimelineResult(config=config, report=report)),
    )
    assert report.squirrel.boots == report.squirrel.latency.count == 8
    assert report.baseline.boots == report.baseline.latency.count == 8
    assert report.squirrel.summary["counters"]["node_rejoins"] == 1
