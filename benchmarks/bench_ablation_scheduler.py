"""Extension: cache-aware VM scheduling vs Squirrel's full replication.

The paper's introduction dismisses both LRU replacement *and* cache-aware
scheduling in favour of scatter hoarding. `bench_ablation_lru_policy`
quantifies the first; this bench quantifies the second: a scheduler that
steers VMs to warm nodes improves hit rates over random placement but still
misses (popular nodes fill up, spills land cold) and skews load — Squirrel
gets 100 % hits *and* unconstrained load balancing.
"""

from repro.common.units import GiB
from repro.core import SCHEDULING_POLICIES, generate_arrivals, simulate_policy
from repro.experiments import default_context


def test_ablation_scheduler(benchmark, record_result):
    ctx = default_context()

    def run():
        events = generate_arrivals(ctx.dataset, n_vms=3000, horizon_ticks=1200)
        return {
            policy: simulate_policy(ctx.dataset, events, policy)
            for policy in SCHEDULING_POLICIES
        }

    outcomes = benchmark.pedantic(run, rounds=1)
    scale_up = ctx.dataset.scaled_up
    lines = [
        "Extension: scheduling policies on a 16-node cluster (3000 VM arrivals)",
        "-" * 70,
        f"{'policy':>12s} {'hit rate':>9s} {'miss traffic':>13s} {'load CV':>9s} "
        f"{'rejected':>9s}",
    ]
    for policy, outcome in outcomes.items():
        lines.append(
            f"{policy:>12s} {outcome.hit_rate:>8.1%} "
            f"{scale_up(outcome.miss_network_bytes) / GiB:>11.1f} GB "
            f"{outcome.load_imbalance:>9.3f} {outcome.rejected:>9d}"
        )
    record_result("ablation_scheduler", "\n".join(lines))

    random_outcome = outcomes["random"]
    aware = outcomes["cache-aware"]
    squirrel = outcomes["squirrel"]
    # cache-awareness helps hit rate over random placement...
    assert aware.hit_rate > random_outcome.hit_rate
    # ...but cannot reach full replication, which also never moves a byte
    assert squirrel.hit_rate == 1.0 > aware.hit_rate
    assert squirrel.miss_network_bytes == 0 < aware.miss_network_bytes
    # and Squirrel's placement balances load at least as well
    assert squirrel.load_imbalance <= aware.load_imbalance + 1e-9
