"""Figure 10: DDT memory consumption vs block size."""

from repro.experiments import default_context, fig10_ddt_memory as exp


def test_fig10_ddt_memory(benchmark, record_result):
    result = benchmark.pedantic(exp.run, args=(default_context(),), rounds=1)
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    # headline claim: cache DDT memory is below ~100 MB at >= 32 KB blocks
    for block_size in (32768, 65536, 131072):
        assert result.cache_memory_mb_at(block_size) < 100.0
    # image DDT memory grows at an alarming rate as blocks shrink
    assert result.images_memory_gb[0] > 8 * result.images_memory_gb[-1]
