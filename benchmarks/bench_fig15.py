"""Figure 15: disk-consumption extrapolation to 3000 caches."""

from repro.experiments import default_context, fits


def test_fig15_disk_extrapolation(benchmark, record_result):
    result = benchmark.pedantic(fits.run_disk, args=(default_context(),), rounds=1)
    record_result("fig15", fits.render_extrapolation(result, figure="Figure 15"))
    outcome = result.outcome_64k()
    # paper: ~18 GB of disk stores 1200+ caches at 64 KB
    at_1214 = outcome.extrapolate(1214)
    assert 10.0 < at_1214 < 30.0
    # extrapolation grows with cache count and stays sane at 3000
    assert outcome.extrapolate(3000) > at_1214
    assert outcome.extrapolate(3000) < 120.0
