"""Sweep runner: serial vs. multiprocess wall clock, identical bytes.

The determinism contract is the headline: a 4-point storm grid merged
from 2 worker processes must serialise byte-identically to the same grid
run serially. The recorded result shows both wall clocks and the speedup
(on a single-core box the pool only buys overlap with dataset synthesis,
so the honest number may hover around 1x; on multi-core CI it should
approach the worker count).
"""

import time

from repro.common.report import dumps_canonical
from repro.sweep import SweepSpec, run_sweep

GRID = "nodes=4,8 seed=0,1"
FIXED = {"vms_per_node": 2}


def _timed(workers: int) -> tuple[float, str]:
    spec = SweepSpec.from_grid("storm", GRID, FIXED)
    started = time.perf_counter()
    result = run_sweep(spec, workers=workers, scale=512.0)
    return time.perf_counter() - started, dumps_canonical(result.to_dict())


def test_sweep_speedup(record_result):
    serial_s, serial_bytes = _timed(1)
    parallel_s, parallel_bytes = _timed(2)

    # the contract: worker count never changes the merged report
    assert serial_bytes == parallel_bytes

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    record_result(
        "sweep",
        "\n".join(
            [
                f"storm sweep {GRID!r} ({FIXED}), 4 points:",
                f"  --workers 1: {serial_s:8.1f} s",
                f"  --workers 2: {parallel_s:8.1f} s",
                f"  speedup: {speedup:.2f}x",
                f"  merged report: {len(serial_bytes)} bytes, "
                "byte-identical across worker counts",
            ]
        ),
    )
