"""Figure 8: ZFS disk consumption (dedup+gzip6) vs block size."""

from repro.common.units import GiB
from repro.experiments import default_context, fig08_disk_consumption as exp


def test_fig08_disk_consumption(benchmark, record_result):
    result = benchmark.pedantic(exp.run, args=(default_context(),), rounds=1)
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    # headline claim: all 607 caches fit in ~10 GB at 64 KB block size
    at_64k = result.caches_disk_gb[result.block_sizes.index(65536)]
    assert 5.0 < at_64k < 16.0
    # the in-filesystem optimum shifts right of the pure-CCR optimum: disk
    # use at 4 KB must NOT be the minimum (DDT overhead bites)
    assert min(result.caches_disk_gb) < result.caches_disk_gb[0] or (
        min(result.images_disk_gb) < result.images_disk_gb[0]
    )
    # images dwarf caches everywhere
    assert all(
        i > 10 * c for i, c in zip(result.images_disk_gb, result.caches_disk_gb)
    )
