"""Shared benchmark fixtures.

Every bench runs its experiment once (``benchmark.pedantic`` with one round:
these are end-to-end reproductions, not micro-benchmarks), prints the
paper-style rendering, and archives it under ``benchmarks/results/``.

Experiments share one memoising context (`repro.experiments.default_context`),
so figures that reuse the same sweep (e.g. Figures 8-10) only pay for it
once per pytest session; the first bench touching a sweep carries its cost.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Write one experiment's rendering to disk and echo it."""

    def _record(experiment_id: str, rendered: str) -> None:
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(rendered + "\n")
        print(f"\n{rendered}\n[saved to {path}]")

    return _record
