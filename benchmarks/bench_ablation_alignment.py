"""Ablation: release-stable layout (boot-span padding) on vs off.

DESIGN.md's image model keeps the base body at a release-constant stream
position (users modify a copied VHD in place, they do not shift it). This
bench removes the padding — shifting every image's body by its own cache
length — and shows large-block dedup across sibling images collapsing,
while 1 KB dedup (position-independent) barely moves.
"""

from dataclasses import replace

import numpy as np

from repro.experiments import default_context
from repro.vmi import block_view, image_stream


def _dedup(streams, block_size):
    sigs = np.concatenate(
        [
            view.signatures[~view.is_hole]
            for view in (block_view(s, block_size) for s in streams)
        ]
    )
    return sigs.size / np.unique(sigs).size


def test_ablation_alignment(benchmark, record_result):
    ctx = default_context()
    specs = ctx.specs[::7][:60]

    def run():
        aligned = [image_stream(s) for s in specs]
        shifted = [
            image_stream(replace(s, boot_span_grains=0)) for s in specs
        ]
        return {
            "aligned": {bs: _dedup(aligned, bs) for bs in (1024, 131072)},
            "shifted": {bs: _dedup(shifted, bs) for bs in (1024, 131072)},
        }

    result = benchmark.pedantic(run, rounds=1)
    lines = ["Ablation: release-stable layout vs per-image shifts", "-" * 52]
    for variant, values in result.items():
        lines.append(
            f"{variant:>8s}: dedup @1 KB = {values[1024]:.2f}, "
            f"@128 KB = {values[131072]:.2f}"
        )
    record_result("ablation_alignment", "\n".join(lines))
    # 1 KB dedup is position-independent: nearly unchanged
    assert abs(result["aligned"][1024] - result["shifted"][1024]) < 0.15 * (
        result["aligned"][1024]
    )
    # 128 KB dedup needs the alignment: it must drop visibly without it
    assert result["shifted"][131072] < result["aligned"][131072] * 0.9
