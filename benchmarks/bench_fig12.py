"""Figure 12: cross-similarity of images and caches."""

from repro.experiments import default_context, fig12_cross_similarity as exp


def test_fig12_cross_similarity(benchmark, record_result):
    result = benchmark.pedantic(exp.run, args=(default_context(),), rounds=1)
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    # the paper's theorem: caches share far more than their images do
    for cache_sim, image_sim in zip(
        result.caches_similarity[:8], result.images_similarity[:8]
    ):
        assert cache_sim > image_sim
    # strong cache similarity at small blocks, weak image similarity
    assert result.caches_similarity[0] > 0.6
    assert result.images_similarity[0] < 0.6
    # similarity decreases with block size
    assert result.caches_similarity[0] > result.caches_similarity[-1]
