"""Figure 14 + Table 3: disk-consumption curve fitting (train on half)."""

from repro.analysis import rmse
from repro.experiments import default_context, fits


def test_fig14_tab03_disk_fit(benchmark, record_result):
    result = benchmark.pedantic(fits.run_disk, args=(default_context(),), rounds=1)
    rendered = (
        fits.render_fit_quality(result, figure="Figure 14")
        + "\n\n"
        + fits.render_rmse_table(result, table="Table 3")
    )
    record_result("fig14_tab03", rendered)
    outcome = result.outcome_64k()
    # all three candidates fit (the paper plots all three against 'real')
    assert set(outcome.half_fits) == {"linear", "MMF", "hoerl"}
    # every candidate tracks the data within 20% of its range
    span = outcome.y.max() - outcome.y.min()
    for name, fit in outcome.half_fits.items():
        assert rmse(fit, outcome.x, outcome.y) < 0.2 * span, name
