"""Figure 4: combined compression ratio (CCR) of images and caches."""

from repro.experiments import default_context, fig04_ccr as exp


def test_fig04_ccr(benchmark, record_result):
    result = benchmark.pedantic(exp.run, args=(default_context(),), rounds=1)
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    # paper shape: an optimisation point exists — smaller blocks do NOT
    # always compress better once dedup and gzip are combined
    assert result.caches_ccr[0] < max(result.caches_ccr)
    # CCR declines toward huge blocks for both subjects...
    assert result.caches_ccr[-1] < max(result.caches_ccr)
    assert result.images_ccr[-1] < max(result.images_ccr)
    # ...and the peaks sit at small (but not necessarily minimal) block sizes
    assert result.peak_block_size("images") <= 16 * 1024
    assert 2 * 1024 <= result.peak_block_size("caches") <= 32 * 1024
