"""Figure 18: network transfer with and without Squirrel (boot storm)."""

from repro.experiments import default_context, fig18_network_transfer as exp


def test_fig18_network_transfer(benchmark, record_result):
    result = benchmark.pedantic(exp.run, args=(default_context(),), rounds=1)
    record_result(exp.EXPERIMENT_ID, exp.render(result))
    # Squirrel: zero network bytes at every point
    assert all(v == 0.0 for v in result.with_caches)
    assert result.cache_hit_rate == 1.0
    # without caches: traffic grows with both axes
    for vms in (1, 2, 4, 8):
        series = result.without_caches[vms]
        assert all(b >= a for a, b in zip(series, series[1:]))
    at_64 = {vms: result.without_caches[vms][-1] for vms in (1, 2, 4, 8)}
    assert at_64[8] > 3.5 * at_64[2]
    # the extreme case: 512 VMs pull on the order of 100+ GB (paper: ~180 GB)
    assert 60.0 < at_64[8] < 320.0
