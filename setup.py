"""Legacy setup shim: the offline environment lacks the `wheel` package, so
PEP-517 editable installs (which require bdist_wheel) fail; this enables the
classic `pip install -e .` path."""

from setuptools import setup

setup()
