#!/usr/bin/env python3
"""What if Windows images were in the mix? (paper Section 4.1)

The Azure community images contain no Windows distributions (licensing), and
the paper remarks that adding them would only add "a constant factor" to
Squirrel's storage: Windows boot working sets would deduplicate with *each
other*, not with Linux. This experiment builds that hypothetical — the 607
Linux images plus a synthetic Windows family — and measures the cVolume
before and after.

Run:  python examples/windows_what_if.py
"""

from dataclasses import replace

import numpy as np

from repro.analysis import PoolAccountant
from repro.common.units import GiB, MiB
from repro.vmi import (
    AzureCommunityDataset,
    DatasetConfig,
    block_view,
    cache_stream,
    make_estimator,
)
from repro.vmi.distro import Release
from repro.vmi.image import MutationProfile

BLOCK = 65536
SCALE = 1 / 256
N_WINDOWS = 100


def windows_specs(dataset):
    """Synthesise a Windows family: two releases, bigger boot sets, no
    content shared with any Linux family (separate grain pools)."""
    releases = [
        Release("windows", "server-2008r2", family_share=0.6, share_run_grains=6),
        Release("windows", "server-2012", family_share=0.6, share_run_grains=6),
    ]
    rng = np.random.default_rng(99)
    template = dataset.images[0]
    specs = []
    for index in range(N_WINDOWS):
        release = releases[index % 2]
        cache = int(280 * MiB * SCALE * rng.lognormal(0, 0.2))  # larger boot sets
        specs.append(
            replace(
                template,
                image_id=10_000 + index,
                release=release,
                seed=int(rng.integers(1, 2**60)),
                cache_bytes=cache,
                nonzero_bytes=cache * 12,
                raw_bytes=cache * 120,
                mutation=MutationProfile(
                    boot_rate=0.25, body_rate=0.2,
                    region_mean_grains=256, region_sigma=1.8,
                ),
                boot_span_grains=-(-cache // 1024 // 1024) * 1024,
            )
        )
    return specs


def footprint(streams, estimator):
    accountant = PoolAccountant(estimator)
    for stream in streams:
        accountant.add_view(block_view(stream, BLOCK))
    snap = accountant.snapshot()
    return snap.disk_used_bytes, snap.memory_used_bytes


def main() -> None:
    dataset = AzureCommunityDataset(DatasetConfig(scale=SCALE))
    estimator = make_estimator("gzip6", (BLOCK,))
    linux_streams = [cache_stream(spec) for spec in dataset]
    windows_streams = [cache_stream(spec) for spec in windows_specs(dataset)]

    disk_linux, memory_linux = footprint(linux_streams, estimator)
    disk_both, memory_both = footprint(linux_streams + windows_streams, estimator)
    scale_up = dataset.scaled_up

    print(f"cVolume @64 KB, {len(dataset)} Linux caches:")
    print(f"  disk {scale_up(disk_linux) / GiB:6.1f} GB   "
          f"memory {scale_up(memory_linux) / MiB:6.1f} MB")
    print(f"adding {N_WINDOWS} Windows caches (two releases, bigger boot sets):")
    print(f"  disk {scale_up(disk_both) / GiB:6.1f} GB   "
          f"memory {scale_up(memory_both) / MiB:6.1f} MB")
    added_disk = scale_up(disk_both - disk_linux) / GiB
    raw_windows = scale_up(sum(len(s) * 1024 for s in windows_streams)) / GiB
    print(
        f"\nWindows added {added_disk:.1f} GB for {raw_windows:.1f} GB of raw "
        f"caches — a constant factor from intra-Windows dedup, exactly as the "
        f"paper predicts: the mix does not break scatter hoarding."
    )


if __name__ == "__main__":
    main()
