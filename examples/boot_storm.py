#!/usr/bin/env python3
"""Boot storm: 512 VMs on 64 nodes, with and without Squirrel.

Re-enacts the paper's network experiment (Figure 18): 64 compute nodes and 4
glusterfs storage nodes; every VM boots from a *different* image. Without
caches the data-center network carries every boot working set; with Squirrel
the compute nodes stay silent. Also prints the per-storage-node load, the
bottleneck Squirrel removes.

Run:  python examples/boot_storm.py
"""

from repro.common.units import GiB
from repro.core import IaaSCluster, Squirrel, full_copy_transfer_bytes, run_boot_storm
from repro.vmi import AzureCommunityDataset, DatasetConfig, make_estimator

BLOCK_SIZE = 65536


def main() -> None:
    dataset = AzureCommunityDataset(DatasetConfig(scale=1 / 512))
    cluster = IaaSCluster.build(n_compute=64, n_storage=4, block_size=BLOCK_SIZE)
    squirrel = Squirrel(
        cluster=cluster, estimator=make_estimator("gzip6", (BLOCK_SIZE,))
    )
    print("registering 512 images (one per VM slot)...")
    for spec in dataset.images[:512]:
        squirrel.register(spec)

    scale_up = dataset.scaled_up
    print(f"{'nodes':>6} {'VMs':>5} {'w/o caches':>12} {'w/ Squirrel':>12}")
    for nodes in (8, 16, 32, 64):
        cluster.ledger.clear()
        without = run_boot_storm(
            squirrel, dataset, n_nodes=nodes, vms_per_node=8, with_caches=False
        )
        cluster.ledger.clear()
        with_caches = run_boot_storm(
            squirrel, dataset, n_nodes=nodes, vms_per_node=8, with_caches=True
        )
        print(
            f"{nodes:>6} {nodes * 8:>5} "
            f"{scale_up(without.compute_ingress_bytes) / GiB:>10.1f} GB "
            f"{scale_up(with_caches.compute_ingress_bytes) / GiB:>10.1f} GB"
        )

    cluster.ledger.clear()
    run_boot_storm(squirrel, dataset, n_nodes=64, vms_per_node=8, with_caches=False)
    print("\nper-storage-node egress during the 512-VM storm (w/o caches):")
    for name, load in sorted(cluster.storage.gluster.storage_read_load().items()):
        print(f"  {name}: {scale_up(load) / GiB:.1f} GB")

    full_copy = full_copy_transfer_bytes(dataset, n_nodes=64, vms_per_node=8)
    print(
        f"\nfor reference, pre-copying whole images (pre-CoW practice) would "
        f"move {scale_up(full_copy) / GiB:.0f} GB"
    )


if __name__ == "__main__":
    main()
