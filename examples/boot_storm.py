#!/usr/bin/env python3
"""Boot storm: 512 VMs on 64 nodes, with and without Squirrel.

Re-enacts the paper's network experiment (Figure 18) twice over:

* **bytes** — 64 compute nodes, 4 glusterfs storage nodes, every VM booting
  a different image; without caches the data-center network carries every
  boot working set, with Squirrel the compute nodes stay silent;
* **time** — the same flash crowd through the discrete-event engine
  (``repro.sim`` + ``repro.workload``), which adds what the byte ledger
  can't show: boot-latency percentiles while 512 cold reads queue behind
  four storage uplinks, versus local-cache boots that never notice the
  crowd.

Run:  python examples/boot_storm.py
"""

from repro.common.units import GiB
from repro.core import IaaSCluster, Squirrel, full_copy_transfer_bytes, run_boot_storm
from repro.vmi import AzureCommunityDataset, DatasetConfig, make_estimator
from repro.workload import StormConfig, boot_storm

BLOCK_SIZE = 65536


def accounting_sweep() -> None:
    """Figure 18 proper: cumulative compute-node ingress, instantaneous."""
    dataset = AzureCommunityDataset(DatasetConfig(scale=1 / 512))
    cluster = IaaSCluster.build(n_compute=64, n_storage=4, block_size=BLOCK_SIZE)
    squirrel = Squirrel(
        cluster=cluster, estimator=make_estimator("gzip6", (BLOCK_SIZE,))
    )
    print("registering 512 images (one per VM slot)...")
    for spec in dataset.images[:512]:
        squirrel.register(spec)

    scale_up = dataset.scaled_up
    print(f"{'nodes':>6} {'VMs':>5} {'w/o caches':>12} {'w/ Squirrel':>12}")
    for nodes in (8, 16, 32, 64):
        cluster.ledger.clear()
        without = run_boot_storm(
            squirrel, dataset, n_nodes=nodes, vms_per_node=8, with_caches=False
        )
        cluster.ledger.clear()
        with_caches = run_boot_storm(
            squirrel, dataset, n_nodes=nodes, vms_per_node=8, with_caches=True
        )
        print(
            f"{nodes:>6} {nodes * 8:>5} "
            f"{scale_up(without.compute_ingress_bytes) / GiB:>10.1f} GB "
            f"{scale_up(with_caches.compute_ingress_bytes) / GiB:>10.1f} GB"
        )

    cluster.ledger.clear()
    run_boot_storm(squirrel, dataset, n_nodes=64, vms_per_node=8, with_caches=False)
    print("\nper-storage-node egress during the 512-VM storm (w/o caches):")
    for name, load in sorted(cluster.storage.gluster.storage_read_load().items()):
        print(f"  {name}: {scale_up(load) / GiB:.1f} GB")

    full_copy = full_copy_transfer_bytes(dataset, n_nodes=64, vms_per_node=8)
    print(
        f"\nfor reference, pre-copying whole images (pre-CoW practice) would "
        f"move {scale_up(full_copy) / GiB:.0f} GB"
    )


def timed_storm() -> None:
    """The same crowd on the event engine: what the tenants feel."""
    print("\nsimulating the flash crowd (30 s ramp, 1 GbE, multi-tenant zipf)...")
    report = boot_storm(StormConfig())
    print(f"{'side':<12} {'p50':>8} {'p95':>8} {'p99':>8} {'last boot':>10}")
    for label, side in (
        ("w/ caches", report.squirrel),
        ("w/o caches", report.baseline),
    ):
        stats = side.latency
        print(
            f"{label:<12} {stats.p50:>7.2f}s {stats.p95:>7.2f}s "
            f"{stats.p99:>7.2f}s {side.horizon_s:>9.1f}s"
        )
    print(
        f"Squirrel served {report.squirrel.cache_hits}/{report.squirrel.boots} "
        f"boots from local caches ({report.squirrel.compute_ingress_bytes} "
        "bytes over the network)"
    )


def main() -> None:
    accounting_sweep()
    timed_storm()


if __name__ == "__main__":
    main()
