#!/usr/bin/env python3
"""Fault injection walkthrough: a flash crowd that survives a node crash.

The paper's availability story (Sections 3.5 and 6) is that Squirrel has no
central state to lose: every node hoards every cache, a crashed node
catches up by replaying the snapshots it missed, and the striped+replicated
parallel FS keeps serving reads when a brick dies. This example breaks all
three things mid-storm and shows every boot still completing:

* ``compute1`` crashes 15 s into the crowd and is down for 40 s — boots in
  flight on it are preempted (their half-done transfers cancelled), boots
  aimed at it queue until the node has rebooted *and* resynced;
* ``compute2``'s NIC flaps for 10 s — its transfers stall in place and
  resume, nothing is retried;
* ``storage0`` fails for 20 s — stripe reads degrade onto each replica
  group's survivors.

Run:  python examples/faulted_storm.py
"""

from repro.experiments.storm_timeline import StormTimelineResult, render
from repro.faults import FaultKind, FaultPlan
from repro.workload import StormConfig, boot_storm

PLAN = "crash:compute1@15+40,flap:compute2@8+10,brick:storage0@5+20"


def faulted_crowd() -> None:
    """An 8x4 crowd under the full fault plan, both sides."""
    config = StormConfig(
        n_nodes=8, vms_per_node=4, seed=3, faults=FaultPlan.parse(PLAN)
    )
    print(f"fault plan: {config.faults.render()}\n")
    report = boot_storm(config)
    print(render(StormTimelineResult(config=config, report=report)))

    side = report.baseline
    print(
        f"\nbaseline: {side.interrupted_boots} boots preempted, "
        f"{side.delayed_boots} queued on the dead host — and still "
        f"{side.latency.count}/{side.boots} completed"
    )
    counters = side.summary["counters"]
    print(
        f"node recovery (crash -> rebooted + resynced): "
        f"{side.node_recovery.p50:.1f} s; "
        f"{counters['brick_failures']:.0f} brick failure, "
        f"{counters['link_flaps']:.0f} link flap, all restored"
    )


def exponential_schedule() -> None:
    """Seeded MTBF/MTTR schedules instead of fixed times."""
    plan = FaultPlan.exponential(
        seed=42, horizon_s=300.0, targets=["compute0", "compute1"],
        mtbf_s=120.0, mttr_s=20.0, kind=FaultKind.NODE_CRASH,
    )
    print("\nexponential crash schedule (seed 42, MTBF 120 s, MTTR 20 s):")
    for spec in plan:
        print(f"  {spec.render()}")
    print("same seed, same schedule — faulted runs stay reproducible")


def main() -> None:
    faulted_crowd()
    exponential_schedule()


if __name__ == "__main__":
    main()
