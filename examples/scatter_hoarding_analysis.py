#!/usr/bin/env python3
"""Scatter-hoarding feasibility analysis over the Azure community images.

Answers the paper's central question for a dataset you configure: *how much
disk and memory does it cost to keep every image's boot cache on every
compute node?* Sweeps block sizes, reports dedup/gzip/CCR/cross-similarity,
and prints the storage-reduction chain of Table 1 plus the per-node cost at
the 64 KB sweet spot.

Run:  python examples/scatter_hoarding_analysis.py [scale-denominator]
      (default 128; e.g. 32 reproduces the benchmark-scale numbers)
"""

import sys

from repro.analysis import Series, dataset_metrics, render_series
from repro.analysis.accounting import PoolAccountant
from repro.common.units import GiB, MiB, format_bytes
from repro.vmi import (
    AzureCommunityDataset,
    DatasetConfig,
    block_view,
    cache_stream,
    make_estimator,
)

BLOCK_SIZES = tuple(1024 << i for i in range(8))  # 1 KB .. 128 KB


def main() -> None:
    denominator = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    dataset = AzureCommunityDataset(DatasetConfig(scale=1.0 / denominator))
    print(
        f"dataset: {len(dataset)} images, "
        f"{format_bytes(dataset.scaled_up(dataset.total_raw_bytes))} raw, "
        f"{format_bytes(dataset.scaled_up(dataset.total_cache_bytes))} of caches "
        f"(scale 1/{denominator})\n"
    )

    streams = [cache_stream(spec) for spec in dataset]
    dedup_line, gzip_line, ccr_line, sim_line = (
        Series("dedup"), Series("gzip6"), Series("CCR"), Series("similarity"),
    )
    for block_size in BLOCK_SIZES:
        estimator = make_estimator("gzip6", (block_size,))
        views = [block_view(s, block_size) for s in streams]
        metrics = dataset_metrics(views, estimator)
        kb = block_size // 1024
        dedup_line.add(kb, metrics.dedup_ratio)
        gzip_line.add(kb, metrics.compression_ratio)
        ccr_line.add(kb, metrics.ccr)
        sim_line.add(kb, metrics.cross_similarity)
    print(
        render_series(
            "VMI cache storage metrics vs block size",
            [dedup_line, gzip_line, ccr_line, sim_line],
            x_label="block KB",
        )
    )

    # the per-node bill at the 64 KB sweet spot
    block_size = 65536
    estimator = make_estimator("gzip6", (block_size,))
    accountant = PoolAccountant(estimator)
    for stream in streams:
        accountant.add_view(block_view(stream, block_size))
    snap = accountant.snapshot()
    disk = dataset.scaled_up(snap.disk_used_bytes)
    memory = dataset.scaled_up(snap.memory_used_bytes)
    print(
        f"\nper-compute-node bill for hoarding ALL {len(dataset)} caches @64 KB:"
        f"\n  disk:   {disk / GiB:6.1f} GB  (data + dedup table)"
        f"\n  memory: {memory / MiB:6.1f} MB  (resident dedup table)"
        f"\n  (paper: ~10 GB disk, ~60 MB memory)"
    )


if __name__ == "__main__":
    main()
