#!/usr/bin/env python3
"""Partial hoarding: what does NOT replicating everything everywhere cost?

The paper's Squirrel hoards every VM image's cache on every compute node —
maximum hit rate, maximum disk. This example runs the same 16-node flash
crowd under all four placement policies and prints the tradeoff frontier:
fleet-wide hoarded bytes, boot-time hit rate, peer-redirect traffic (cold
reads served by a neighbouring holder instead of the glusterfs origin), and
the p95 boot latency the tenants actually feel.

Expected shape: ``full`` hits 100% with the largest hoard; ``top_k`` and
``zipf_weighted`` cut the hoard roughly in half and pay for it with peer
redirects (cheap — a one-hop copy) rather than origin reads (expensive —
contended storage uplinks), so p95 degrades gently, not cliff-like.

Run:  python examples/partial_hoarding.py
"""

from repro.common.units import GiB
from repro.experiments import placement_storm
from repro.placement import POLICY_NAMES

NODES = 16
VMS_PER_NODE = 4


def main() -> None:
    print(
        f"== {NODES} nodes x {VMS_PER_NODE} VMs/node flash crowd, "
        "four placement policies ==\n"
    )
    header = (
        f"{'policy':<14} {'hoarded GB':>10} {'of full %':>9} {'hit %':>6} "
        f"{'redirects':>9} {'redirect GB':>11} {'p95 s':>7}"
    )
    print(header)
    for policy in POLICY_NAMES:
        result = placement_storm.run(
            policy=policy,
            transport="swarm",
            nodes=NODES,
            vms_per_node=VMS_PER_NODE,
        )
        block = result.placement
        scale_up = 1.0 / result.config.scale
        to_gb = scale_up / GiB
        print(
            f"{policy:<14} {block['hoarded_bytes'] * to_gb:>10.1f} "
            f"{100 * block['hoarded_fraction']:>9.1f} "
            f"{100 * block['hit_rate']:>6.1f} "
            f"{block['peer_redirects']:>9} "
            f"{block['redirect_bytes'] * to_gb:>11.2f} "
            f"{result.report.squirrel.latency.p95:>7.2f}"
        )
    print(
        "\nReading the table: partial policies trade hoarded disk for "
        "peer redirects;\nthe redirect bytes replace origin reads, so the "
        "glusterfs uplinks stay idle\nand p95 stays near the full-"
        "replication floor."
    )


if __name__ == "__main__":
    main()
