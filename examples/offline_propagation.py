#!/usr/bin/env python3
"""Offline propagation and garbage collection over a 30-day timeline.

Walks the scenario of paper Sections 3.4-3.5: registrations arrive daily, a
compute node goes down, garbage collection (the daily cron job) expires old
snapshots, and the node returns — first inside the propagation window (cheap
incremental resync), then after it (full scVolume re-replication, still only
a few GB thanks to dedup + compression).

Run:  python examples/offline_propagation.py
"""

from repro.common.units import format_bytes
from repro.core import IaaSCluster, Squirrel
from repro.vmi import AzureCommunityDataset, DatasetConfig, make_estimator

BLOCK_SIZE = 65536


def main() -> None:
    dataset = AzureCommunityDataset(DatasetConfig(scale=1 / 512))
    cluster = IaaSCluster.build(n_compute=4, n_storage=4, block_size=BLOCK_SIZE)
    squirrel = Squirrel(
        cluster=cluster,
        estimator=make_estimator("gzip6", (BLOCK_SIZE,)),
        gc_window_days=7,
    )
    images = iter(dataset.images)

    print("== day 0-2: normal operation, one registration per day ==")
    for day in range(3):
        record = squirrel.register(next(images))
        print(
            f"day {squirrel.clock_days:4.0f}: registered image "
            f"{record.image_id} (diff {format_bytes(record.diff_bytes)})"
        )
        squirrel.advance_time(1)

    print("\n== day 3: compute3 crashes ==")
    cluster.node("compute3").online = False

    for _ in range(3):
        record = squirrel.register(next(images))
        print(
            f"day {squirrel.clock_days:4.0f}: registered image "
            f"{record.image_id} while compute3 is down"
        )
        squirrel.advance_time(1)

    print("\n== day 6: compute3 returns (within the 7-day window) ==")
    moved = squirrel.resync_node("compute3")
    print(f"incremental resync: {format_bytes(moved)}")

    print("\n== compute3 crashes again; three quiet weeks pass ==")
    cluster.node("compute3").online = False
    squirrel.advance_time(21)
    record = squirrel.register(next(images))
    print(f"day {squirrel.clock_days:4.0f}: registered image {record.image_id}")
    victims = squirrel.collect_garbage()
    print(f"daily GC destroyed snapshots: {victims}")

    print("\n== compute3 returns after the window: full re-replication ==")
    moved = squirrel.resync_node("compute3")
    print(f"full scVolume replication: {format_bytes(moved)}")
    node = cluster.node("compute3")
    missing = [
        image_id
        for image_id in squirrel.registered_ids()
        if not node.ccvolume.has_file(squirrel.cache_file_of(image_id))
    ]
    print(f"caches missing on compute3 after resync: {missing or 'none'}")
    print(
        f"compute3 ccVolume: {format_bytes(node.pool.disk_used_bytes)} disk, "
        f"{format_bytes(node.pool.memory_used_bytes)} memory"
    )


if __name__ == "__main__":
    main()
