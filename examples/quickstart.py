#!/usr/bin/env python3
"""Quickstart: deploy Squirrel on a small cluster and boot VMs for free.

Builds a 8-compute-node IaaS cluster, registers ten community images (the
register workflow of paper Figure 6: boot once on a storage node, store the
cache in the scVolume, snapshot, multicast the diff), then boots VMs and
shows that warm boots move zero network bytes while a node that missed a
registration pays the copy-on-read cost exactly once.

Run:  python examples/quickstart.py
"""

from repro.common.units import format_bytes
from repro.core import IaaSCluster, Squirrel
from repro.vmi import AzureCommunityDataset, DatasetConfig, make_estimator

BLOCK_SIZE = 65536  # the paper's 64 KB sweet spot


def main() -> None:
    # a small dataset: the full 607-image Azure mix, scaled down 1/512
    dataset = AzureCommunityDataset(DatasetConfig(scale=1 / 512))
    cluster = IaaSCluster.build(n_compute=8, n_storage=4, block_size=BLOCK_SIZE)
    estimator = make_estimator("gzip6", (BLOCK_SIZE,))
    squirrel = Squirrel(cluster=cluster, estimator=estimator)

    print("== register ten images ==")
    for spec in dataset.images[:10]:
        record = squirrel.register(spec)
        print(
            f"image {record.image_id:3d} ({spec.release.family} "
            f"{spec.release.name:>6s}): cache {format_bytes(record.cache_bytes)}, "
            f"diff multicast {format_bytes(record.diff_bytes)} "
            f"to {record.receivers} nodes in {record.propagation_seconds * 1e3:.0f} ms"
        )

    scvol_pool = cluster.storage.pool
    print(
        f"\nscVolume after 10 registrations: "
        f"{format_bytes(scvol_pool.disk_used_bytes)} on disk, "
        f"{format_bytes(scvol_pool.memory_used_bytes)} of DDT in memory, "
        f"dedup ratio {scvol_pool.dedup_ratio():.2f}x"
    )

    print("\n== boot storms ==")
    for image_id in (0, 3, 7):
        outcome = squirrel.boot(image_id, "compute2")
        print(
            f"boot image {image_id} on compute2: cache_hit={outcome.cache_hit}, "
            f"network={format_bytes(outcome.network_bytes)}"
        )

    print("\n== a node that missed a registration ==")
    cluster.node("compute5").online = False
    late = dataset.images[10]
    squirrel.register(late)
    cluster.node("compute5").online = True
    cold = squirrel.boot(late.image_id, "compute5")
    print(
        f"cold boot on compute5: cache_hit={cold.cache_hit}, "
        f"network={format_bytes(cold.network_bytes)}"
    )
    moved = squirrel.resync_node("compute5")
    print(f"resync compute5: received {format_bytes(moved)} snapshot diff")
    warm = squirrel.boot(late.image_id, "compute5")
    print(
        f"boot after resync: cache_hit={warm.cache_hit}, "
        f"network={format_bytes(warm.network_bytes)}"
    )

    total = cluster.compute_ingress_bytes(purpose="boot-read")
    print(f"\ntotal boot-time network traffic into compute nodes: {format_bytes(total)}")


if __name__ == "__main__":
    main()
