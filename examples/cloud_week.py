#!/usr/bin/env python3
"""A simulated week of a Squirrel-operated IaaS cloud.

Drives every subsystem end-to-end over seven simulated days: daily image
registrations (multicast snapshot diffs), daily boot storms, a node failure
mid-week with catch-up on return, deregistrations, the nightly garbage
collector, and a closing pool scrub proving the storage stayed consistent.

Run:  python examples/cloud_week.py
"""

from repro.common.units import format_bytes
from repro.core import IaaSCluster, Squirrel, run_boot_storm
from repro.vmi import AzureCommunityDataset, DatasetConfig, make_estimator
from repro.zfs import scrub

BLOCK = 65536


def main() -> None:
    dataset = AzureCommunityDataset(DatasetConfig(scale=1 / 512))
    cluster = IaaSCluster.build(n_compute=8, n_storage=4, block_size=BLOCK)
    squirrel = Squirrel(
        cluster=cluster,
        estimator=make_estimator("gzip6", (BLOCK,)),
        gc_window_days=3,
    )
    images = iter(dataset.images)
    failed_node = cluster.node("compute5")

    print(f"{'day':>4} {'event':<34} {'boot traffic':>13} {'scVol disk':>11} "
          f"{'snaps':>6}")
    for day in range(1, 8):
        events = []
        # a few new community images arrive every day
        for _ in range(4):
            record = squirrel.register(next(images))
            events.append(f"+img {record.image_id}")
        # day 3: a node dies; day 5: it returns
        if day == 3:
            failed_node.online = False
            events.append("compute5 DOWN")
        if day == 5:
            moved = squirrel.resync_node("compute5")
            events.append(f"compute5 resync {format_bytes(moved)}")
        # a stale image gets retired mid-week
        if day == 4:
            victim = squirrel.registered_ids()[0]
            squirrel.deregister(victim)
            events.append(f"-img {victim}")
        # the daily boot storm: every node boots 4 VMs from distinct images
        before = cluster.compute_ingress_bytes(purpose="boot-read")
        storm = run_boot_storm(
            squirrel, dataset, n_nodes=8, vms_per_node=4, with_caches=True
        )
        traffic = cluster.compute_ingress_bytes(purpose="boot-read") - before
        # nightly cron
        victims = squirrel.collect_garbage()
        if victims:
            events.append(f"gc -{len(victims)} snaps")
        squirrel.advance_time(1)
        pool = cluster.storage.pool
        print(
            f"{day:>4} {'; '.join(events):<34} {format_bytes(traffic):>13} "
            f"{format_bytes(pool.disk_used_bytes):>11} "
            f"{len(cluster.storage.scvolume.snapshots()):>6}"
        )
        assert storm.boots == 32

    print("\nclosing scrub of every pool...")
    for pool in [cluster.storage.pool] + [n.pool for n in cluster.compute]:
        scrub(pool, verify_payloads=False).raise_if_dirty()
    print("all pools consistent.")
    total = cluster.compute_ingress_bytes(purpose="boot-read")
    print(f"week's total boot traffic into compute nodes: {format_bytes(total)}")


if __name__ == "__main__":
    main()
