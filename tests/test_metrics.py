"""Fleet metrics: instruments, sampler cadence, deterministic exports,
and the persistent result store.

The contracts under test are the PR's acceptance criteria: same-seed runs
export byte-identical Prometheus/JSONL files, the boot-latency histogram
accounts for every completed boot, the sampler keeps its cadence through
node crashes, stored sweeps round-trip, and ``--workers N`` leaves every
stored byte identical to ``--workers 1``.
"""

import json

import pytest

from repro.common.errors import ConfigError
from repro.common.report import dumps_canonical, to_jsonable
from repro.experiments import registry
from repro.faults import FaultPlan
from repro.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sampler,
    TimeSeriesStore,
    collect_metric_blocks,
    export_name,
    format_number,
    metrics_block,
    prometheus_text,
    series_jsonl,
    write_run_exports,
)
from repro.metrics.summarize import rollup, summarize_path
from repro.sim import Engine
from repro.sweep import SweepSpec, load_manifest, persist_sweep, run_sweep
from repro.workload import StormConfig, boot_storm


# -- instruments ----------------------------------------------------------------------


class TestCounter:
    def test_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrement(self):
        with pytest.raises(ConfigError, match=">= 0"):
            Counter().inc(-1)


class TestGauge:
    def test_set_and_read(self):
        g = Gauge()
        g.set(7)
        assert g.read() == 7.0

    def test_callback_evaluates_at_read_time(self):
        state = {"v": 1.0}
        g = Gauge()
        g.set_function(lambda: state["v"])
        assert g.read() == 1.0
        state["v"] = 9.0
        assert g.read() == 9.0

    def test_set_clears_callback(self):
        g = Gauge()
        g.set_function(lambda: 5.0)
        g.set(2.0)
        assert g.read() == 2.0


class TestHistogram:
    def test_bucket_invariants(self):
        h = Histogram((1.0, 5.0, 10.0))
        for value in (0.5, 0.5, 3.0, 7.0, 50.0):
            h.observe(value)
        # per-bucket counts sum to the total observation count
        assert sum(h.bucket_counts) == h.count == 5
        rows = h.cumulative()
        # cumulative counts are monotone and end at (+Inf, count)
        assert [cum for _, cum in rows] == sorted(cum for _, cum in rows)
        assert rows[-1] == ("+Inf", 5)
        assert h.sum == pytest.approx(61.0)

    def test_boundary_lands_in_le_bucket(self):
        h = Histogram((1.0, 5.0))
        h.observe(1.0)  # le="1" is inclusive, Prometheus-style
        assert h.cumulative()[0] == ("1", 1)

    @pytest.mark.parametrize("bounds", [(), (1.0, 1.0), (5.0, 1.0),
                                        (float("inf"),)])
    def test_rejects_bad_layouts(self, bounds):
        with pytest.raises(ConfigError):
            Histogram(bounds)


class TestFormatNumber:
    def test_integral_floats_render_without_fraction(self):
        assert format_number(5.0) == "5"
        assert format_number(0.0) == "0"

    def test_non_integral_uses_repr(self):
        assert format_number(0.25) == "0.25"
        assert format_number(1e18) == "1e+18"


class TestRegistry:
    def test_redeclare_identical_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("boots_total", labels=("node",))
        b = reg.counter("boots_total", labels=("node",))
        assert a is b

    def test_redeclare_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ConfigError, match="re-declared"):
            reg.gauge("x_total")
        reg.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ConfigError, match="re-declared"):
            reg.histogram("lat", buckets=(1.0, 3.0))

    def test_label_schema_enforced(self):
        family = MetricsRegistry().counter("y_total", labels=("node",))
        with pytest.raises(ConfigError, match="takes labels"):
            family.labels(tier="t1")

    def test_invalid_names_rejected(self):
        with pytest.raises(ConfigError, match="invalid metric name"):
            MetricsRegistry().counter("bad name")
        with pytest.raises(ConfigError, match="invalid label name"):
            MetricsRegistry().counter("ok_total", labels=("bad-label",))

    def test_families_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zz_total")
        reg.gauge("aa")
        assert [f.name for f in reg.families()] == ["aa", "zz_total"]


# -- time-series store ----------------------------------------------------------------


class TestTimeSeriesStore:
    def test_round_trip(self):
        store = TimeSeriesStore(capacity=8)
        store.append("u", (("node", "c0"),), 0.0, 1.0)
        store.append("u", (("node", "c0"),), 5.0, 2.0)
        series = store.get("u", node="c0")
        assert series["t"] == [0.0, 5.0]
        assert series["v"] == [1.0, 2.0]
        assert series["dropped"] == 0

    def test_label_order_is_normalised(self):
        store = TimeSeriesStore()
        store.append("u", (("b", "2"), ("a", "1")), 0.0, 1.0)
        store.append("u", (("a", "1"), ("b", "2")), 1.0, 2.0)
        assert store.n_series == 1
        assert store.get("u", a="1", b="2")["v"] == [1.0, 2.0]

    def test_ring_drops_oldest_and_counts(self):
        store = TimeSeriesStore(capacity=3)
        for t in range(5):
            store.append("u", (), float(t), float(t))
        series = store.get("u")
        assert series["t"] == [2.0, 3.0, 4.0]
        assert series["dropped"] == 2

    def test_series_sorted(self):
        store = TimeSeriesStore()
        store.append("z", (), 0.0, 0.0)
        store.append("a", (("node", "c1"),), 0.0, 0.0)
        store.append("a", (("node", "c0"),), 0.0, 0.0)
        names = [(s["name"], s["labels"]) for s in store.series()]
        assert names == [("a", {"node": "c0"}), ("a", {"node": "c1"}),
                         ("z", {})]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigError):
            TimeSeriesStore(capacity=0)


# -- sampler --------------------------------------------------------------------------


class TestSampler:
    def _rig(self, interval_s=5.0):
        engine = Engine(seed=0)
        reg = MetricsRegistry()
        reg.gauge("clock").set_function(lambda: engine.now)
        store = TimeSeriesStore()
        sampler = Sampler(engine, reg, store, interval_s=interval_s)
        return engine, store, sampler

    def test_scrapes_on_cadence_and_terminates(self):
        engine, store, sampler = self._rig()

        def workload():
            yield engine.timeout(12.0)

        engine.process(workload())
        sampler.start()
        engine.run()
        series = store.get("clock")
        # t=0 start scrape, 5, 10, then the queue-drained final snapshot
        assert series["t"] == [0.0, 5.0, 10.0, 15.0]
        assert series["v"] == series["t"]  # callback saw live sim time
        assert sampler.scrapes == 4

    def test_idle_engine_gets_exactly_one_snapshot(self):
        engine, store, sampler = self._rig()
        sampler.start()
        engine.run()
        assert store.get("clock")["t"] == [0.0]
        assert sampler.scrapes == 1

    def test_rejects_nonpositive_interval(self):
        engine = Engine(seed=0)
        with pytest.raises(ConfigError):
            Sampler(engine, MetricsRegistry(), TimeSeriesStore(),
                    interval_s=0.0)


# -- exporters ------------------------------------------------------------------------


def _toy_block():
    reg = MetricsRegistry()
    reg.counter("boots_total", "Boots", labels=("node",))
    reg.family("boots_total").labels(node="c0").inc(3)
    reg.gauge("arc_p", "ARC p").set(0.25)
    reg.histogram("lat_seconds", "Latency", buckets=(1.0, 5.0))
    reg.family("lat_seconds").observe(0.5)
    reg.family("lat_seconds").observe(9.0)
    store = TimeSeriesStore()
    store.append("arc_p", (), 0.0, 0.1)
    store.append("arc_p", (), 5.0, 0.25)
    return metrics_block(reg, store, interval_s=5.0, scrapes=2)


class TestExporters:
    def test_block_shape(self):
        block = _toy_block()
        assert sorted(block) == ["instruments", "interval_s", "scrapes",
                                 "series"]
        by_name = {fam["name"]: fam for fam in block["instruments"]}
        assert by_name["boots_total"]["samples"][0] == {
            "labels": {"node": "c0"}, "value": 3.0,
        }
        hist = by_name["lat_seconds"]["samples"][0]
        assert hist["buckets"] == [["1", 1], ["5", 1], ["+Inf", 2]]
        assert hist["count"] == 2

    def test_prometheus_text(self):
        text = prometheus_text(_toy_block())
        assert "# TYPE boots_total counter" in text
        assert 'boots_total{node="c0"} 3' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert "arc_p 0.25" in text
        assert text.endswith("\n")

    def test_series_jsonl_parses(self):
        lines = series_jsonl(_toy_block()).splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["arc_p"]
        assert json.loads(lines[0])["v"] == [0.1, 0.25]

    def test_exports_are_pure_functions_of_the_block(self):
        a, b = _toy_block(), _toy_block()
        assert prometheus_text(a) == prometheus_text(b)
        assert dumps_canonical(a) == dumps_canonical(b)

    def test_collect_metric_blocks_finds_nested(self):
        block = _toy_block()
        payload = {"report": {"squirrel": {"metrics": block}, "boots": 8}}
        found = collect_metric_blocks(payload)
        assert list(found) == ["report.squirrel.metrics"]

    @pytest.mark.parametrize("path,stem", [
        ("report.squirrel.metrics", "squirrel"),
        ("report.metrics", "run"),
        ("result.report.baseline.metrics", "baseline"),
    ])
    def test_export_name(self, path, stem):
        assert export_name(path) == stem


# -- faulted-storm metrics (the acceptance-criteria scenario) -------------------------


def _storm_config(**overrides):
    base = dict(
        n_nodes=4, vms_per_node=2, scale=1 / 4096, seed=3,
        faults=FaultPlan.parse("crash:compute1@5+30"),
    )
    base.update(overrides)
    return StormConfig(**base)


@pytest.fixture(scope="module")
def storm_report():
    return boot_storm(_storm_config())


class TestStormMetrics:
    def test_block_rides_the_report(self, storm_report):
        for side in (storm_report.squirrel, storm_report.baseline):
            block = side.metrics
            assert block["scrapes"] > 0
            assert block["interval_s"] == 5.0
            assert block["series"]  # the sampler stored trajectories

    def test_boot_histogram_totals_match_completed_boots(self, storm_report):
        for side in (storm_report.squirrel, storm_report.baseline):
            by_name = {f["name"]: f for f in side.metrics["instruments"]}
            hist = by_name["squirrel_boot_latency_seconds"]["samples"][0]
            assert hist["count"] == side.boots == 8
            assert hist["buckets"][-1] == ["+Inf", side.boots]
            boots = sum(
                s["value"]
                for s in by_name["squirrel_boots_total"]["samples"]
            )
            assert boots == side.boots

    def test_sampler_cadence_survives_the_crash(self, storm_report):
        block = storm_report.squirrel.metrics
        down = next(
            s for s in block["series"] if s["name"] == "faults_nodes_down"
        )
        # the outage (5s..35s) is visible, and sampling continued past it
        assert max(down["v"]) == 1.0
        assert down["v"][0] == 0.0 and down["v"][-1] == 0.0
        deltas = [b - a for a, b in zip(down["t"], down["t"][1:])]
        assert all(d == pytest.approx(5.0) for d in deltas[:-1])

    def test_timeline_gauges_surface_in_summary(self, storm_report):
        gauges = storm_report.squirrel.summary["gauges"]
        assert any(name.startswith("arc_p:") for name in gauges)

    def test_same_seed_exports_are_byte_identical(self, storm_report,
                                                  tmp_path):
        again = boot_storm(_storm_config())
        a = write_run_exports(tmp_path / "a", storm_report)
        b = write_run_exports(tmp_path / "b", again)
        assert sorted(a) == sorted(b)
        for name in a:
            assert a[name].read_bytes() == b[name].read_bytes()

    def test_seed_changes_the_series(self, storm_report):
        other = boot_storm(_storm_config(seed=4))
        assert (to_jsonable(other.squirrel.metrics)
                != to_jsonable(storm_report.squirrel.metrics))

    def test_export_files_and_summarizer(self, storm_report, tmp_path):
        written = write_run_exports(tmp_path, storm_report)
        assert sorted(written) == [
            "baseline.jsonl", "baseline.prom", "report.json",
            "squirrel.jsonl", "squirrel.prom",
        ]
        rollups = summarize_path(tmp_path)
        assert sorted(rollups) == ["baseline", "squirrel"]
        assert rollups["squirrel"]["boots"] == 8
        assert rollups["squirrel"]["peak_nodes_down"]["value"] == 1.0

    def test_rollup_fields(self, storm_report):
        roll = rollup(storm_report.squirrel.metrics)
        assert roll["boot_latency"]["count"] == 8
        assert roll["scrapes"] == storm_report.squirrel.metrics["scrapes"]
        assert 0.0 <= roll["peak_link_utilization"]["value"] <= 1.0

    def test_summarize_path_rejects_missing(self, tmp_path):
        with pytest.raises(ConfigError):
            summarize_path(tmp_path / "nope")

    def test_node_detail_cap_folds_large_fleets(self):
        from repro.workload.scenarios import METRICS_NODE_DETAIL

        n = METRICS_NODE_DETAIL + 6
        report = boot_storm(
            _storm_config(n_nodes=n, vms_per_node=1, faults=None)
        )
        side = report.squirrel
        by_name = {f["name"]: f for f in side.metrics["instruments"]}
        boot_nodes = {
            s["labels"]["node"]
            for s in by_name["squirrel_boots_total"]["samples"]
        }
        # exactly the detail set plus the fold child — never one series
        # per node of a large fleet
        assert len(boot_nodes) == METRICS_NODE_DETAIL + 1
        assert "_other" in boot_nodes
        # fleet totals stay exact across the fold
        boots = sum(
            s["value"] for s in by_name["squirrel_boots_total"]["samples"]
        )
        assert boots == side.boots == n
        other = next(
            s for s in by_name["squirrel_boots_total"]["samples"]
            if s["labels"]["node"] == "_other"
        )
        assert other["value"] == n - METRICS_NODE_DETAIL
        # dropped per-node gauges are replaced by one _fleet aggregate
        ddt_nodes = {
            s["labels"]["node"]
            for s in by_name["zfs_ddt_entries"]["samples"]
        }
        assert "_fleet" in ddt_nodes
        assert len(ddt_nodes) == METRICS_NODE_DETAIL + 2  # detail+storage+fleet

    def test_node_detail_cap_leaves_small_fleets_alone(self, storm_report):
        by_name = {
            f["name"]: f
            for f in storm_report.squirrel.metrics["instruments"]
        }
        nodes = {
            s["labels"]["node"]
            for s in by_name["squirrel_boots_total"]["samples"]
        }
        assert nodes == {f"compute{i}" for i in range(4)}


# -- promoted experiments -------------------------------------------------------------


class TestPromotedExperiments:
    @pytest.mark.parametrize("exp_id", ["day", "churn"])
    def test_registered_with_gridable_params(self, exp_id):
        exp = registry.get(exp_id)
        gridable = {spec.name for spec in exp.params if spec.gridable}
        assert {"nodes", "seed"} <= gridable
        assert {"faults", "trace", "metrics"} <= {
            spec.name for spec in exp.params
        }

    def test_day_runs_and_exports(self, tmp_path):
        exp = registry.get("day")
        result = exp.run(None, nodes=4, boots=20, tenants=4,
                         registrations=2, seed=0,
                         metrics=str(tmp_path / "day"))
        assert result.report.boots > 0
        assert (tmp_path / "day" / "run.prom").exists()
        assert "Steady-state day" in exp.render(result)

    def test_churn_runs_under_faults(self):
        exp = registry.get("churn")
        result = exp.run(
            None, nodes=4, days=0.25, registrations_per_day=8.0,
            downtimes_per_node=1.0, seed=1,
        )
        assert result.report.registrations > 0
        blocks = collect_metric_blocks(to_jsonable(result.to_dict()))
        assert blocks  # the metrics block rides the churn report too
        assert "Registration churn" in exp.render(result)


# -- sweep store + manifest header ----------------------------------------------------


def _tiny_sweep():
    return SweepSpec.from_grid("storm", "nodes=2 seed=0,1",
                               {"vms_per_node": 1})


class TestSweepStore:
    def test_workers_do_not_change_stored_bytes(self, tmp_path):
        spec = _tiny_sweep()
        serial = run_sweep(spec, workers=1, scale=4096.0)
        parallel = run_sweep(spec, workers=2, scale=4096.0)
        a = persist_sweep(tmp_path / "w1", spec, serial)
        b = persist_sweep(tmp_path / "w2", spec, parallel)
        for name in ("spec.json", "report.json", "metrics.jsonl"):
            assert a[name].read_bytes() == b[name].read_bytes()

    def test_store_round_trip(self, tmp_path):
        spec = _tiny_sweep()
        result = run_sweep(spec, workers=1, scale=4096.0)
        written = persist_sweep(tmp_path, spec, result)
        stored = json.loads(written["report.json"].read_text())
        assert stored == to_jsonable(result.to_dict())
        lines = written["metrics.jsonl"].read_text().splitlines()
        assert len(lines) == len(result.points)
        first = json.loads(lines[0])
        assert first["index"] == 0 and first["metrics"]
        # the stored sweep feeds the summarizer directly
        rollups = summarize_path(tmp_path)
        assert any(key.startswith("point0.") for key in rollups)

    def test_manifest_header_written_and_skipped(self, tmp_path):
        manifest = tmp_path / "manifest.jsonl"
        spec = _tiny_sweep()
        run_sweep(spec, workers=1, manifest_path=str(manifest),
                  scale=4096.0, header={"spec_file": None, "out": None})
        lines = manifest.read_text().splitlines()
        assert len(lines) == 3  # header + two points
        head = json.loads(lines[0])
        assert head["manifest_version"] == 1
        assert head["experiment"] == "storm"
        completed = load_manifest(str(manifest), "storm")
        assert len(completed) == 2  # the header is not a point
        resumed = run_sweep(
            spec, workers=1, manifest_path=str(manifest), resume=True,
            scale=4096.0, header={"spec_file": None, "out": None},
        )
        assert to_jsonable(resumed.to_dict())["points"]

    def test_no_header_keeps_manifest_points_only(self, tmp_path):
        manifest = tmp_path / "manifest.jsonl"
        run_sweep(_tiny_sweep(), workers=1, manifest_path=str(manifest),
                  scale=4096.0)
        lines = manifest.read_text().splitlines()
        assert len(lines) == 2
        assert all("manifest_version" not in json.loads(l) for l in lines)

    def test_cli_store_anchors_on_spec_file(self, tmp_path, capsys,
                                            monkeypatch):
        from repro.__main__ import main

        spec_file = tmp_path / "sweeps" / "tiny.toml"
        spec_file.parent.mkdir()
        spec_file.write_text(
            'experiment = "storm"\nseeds = [0]\n'
            "[params]\nvms_per_node = 1\nnodes = 2\n"
        )
        monkeypatch.chdir(tmp_path)  # results must NOT land in the CWD
        assert main(["sweep", "--spec", str(spec_file),
                     "--store", "tiny"]) == 0
        capsys.readouterr()
        store = spec_file.parent / "benchmarks" / "results" / "tiny"
        for name in ("spec.json", "report.json", "metrics.jsonl",
                     "manifest.jsonl"):
            assert (store / name).exists(), name
        head = json.loads(
            (store / "manifest.jsonl").read_text().splitlines()[0]
        )
        assert head["manifest_version"] == 1
        assert head["spec_file"] == str(spec_file.resolve())
        assert head["out"] == str(store)


class TestSamplerRearmEdges:
    """Re-arm edge cases: horizons, zero-length work, sole survivor."""

    def _rig(self, interval_s=5.0):
        engine = Engine(seed=0)
        reg = MetricsRegistry()
        reg.gauge("clock").set_function(lambda: engine.now)
        store = TimeSeriesStore()
        sampler = Sampler(engine, reg, store, interval_s=interval_s)
        return engine, store, sampler

    def test_until_horizon_pauses_and_resumes_the_cadence(self):
        engine, store, sampler = self._rig()

        def workload():
            yield engine.timeout(12.0)

        engine.process(workload())
        sampler.start()
        engine.run(until=7.0)  # stop mid-cadence: re-arm still queued
        assert engine.now == 7.0
        assert not engine.drained
        assert store.get("clock")["t"] == [0.0, 5.0]
        engine.run()  # resume: cadence continues, then final snapshot
        assert store.get("clock")["t"] == [0.0, 5.0, 10.0, 15.0]
        assert engine.drained

    def test_zero_length_workload_still_rearms_once(self):
        engine, store, sampler = self._rig()

        def workload():
            yield engine.timeout(0.0)

        engine.process(workload())
        sampler.start()
        engine.run()
        # the t=0 scrape sees the pending zero-timeout, so one re-arm
        # happens before the drained tick takes the final snapshot
        assert store.get("clock")["t"] == [0.0, 5.0]
        assert sampler.scrapes == 2

    def test_sampler_as_sole_process_exits_immediately(self):
        engine, store, sampler = self._rig()
        sampler.start()
        engine.run()
        assert engine.drained
        assert store.get("clock")["t"] == [0.0]
        assert sampler.scrapes == 1
        # a second run finds nothing queued and moves no clock
        assert engine.run() == 0.0
        assert sampler.scrapes == 1


class TestRuntimeBlockStaysOutOfExports:
    """runtime.json appears only for profiled runs and never changes the
    canonical export bytes."""

    def test_no_profiler_no_runtime_file(self, tmp_path, storm_report):
        written = write_run_exports(tmp_path / "plain", storm_report)
        assert "runtime.json" not in written
        assert not (tmp_path / "plain" / "runtime.json").exists()

    def test_profiled_run_adds_runtime_json_without_touching_reports(
        self, tmp_path, storm_report
    ):
        from repro.obs import runtime as obs_runtime

        plain = write_run_exports(tmp_path / "plain", storm_report)
        with obs_runtime.profiled(obs_runtime.RuntimeProfiler()):
            profiled = write_run_exports(tmp_path / "profiled", storm_report)
        assert "runtime.json" in profiled
        block = json.loads(profiled["runtime.json"].read_text())
        assert block["schema"] == "repro.runtime/1"
        for name in plain:
            assert plain[name].read_bytes() == profiled[name].read_bytes()
