"""Unit and property tests for repro.common.hashing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import hashing


class TestHashBytes:
    def test_deterministic(self):
        assert hashing.hash_bytes(b"abc") == hashing.hash_bytes(b"abc")

    def test_distinct_inputs_distinct_digests(self):
        assert hashing.hash_bytes(b"abc") != hashing.hash_bytes(b"abd")

    def test_digest_is_128_bit_hex(self):
        digest = hashing.hash_bytes(b"")
        assert len(digest) == 32
        int(digest, 16)  # parses as hex


class TestMix64:
    def test_scalar_roundtrip_type(self):
        out = hashing.mix64(5)
        assert isinstance(out, np.uint64)

    def test_array_elementwise_matches_scalar(self):
        values = np.arange(100, dtype=np.uint64)
        mixed = hashing.mix64(values)
        for i in (0, 1, 50, 99):
            assert mixed[i] == hashing.mix64(int(values[i]))

    def test_avalanche(self):
        # flipping one input bit flips roughly half the output bits
        a = int(hashing.mix64(12345))
        b = int(hashing.mix64(12345 ^ 1))
        flipped = bin(a ^ b).count("1")
        assert 16 <= flipped <= 48

    def test_no_trivial_collisions(self):
        values = hashing.mix64(np.arange(100_000, dtype=np.uint64))
        assert len(np.unique(values)) == 100_000

    def test_pair_order_sensitive(self):
        assert hashing.mix64_pair(1, 2) != hashing.mix64_pair(2, 1)


class TestFoldGrainSignatures:
    def test_one_signature_per_block(self):
        ids = np.arange(64, dtype=np.uint64)
        sigs = hashing.fold_grain_signatures(ids, 8)
        assert sigs.shape == (8,)

    def test_partial_tail_block_padded(self):
        ids = np.arange(10, dtype=np.uint64)
        sigs = hashing.fold_grain_signatures(ids, 8)
        assert sigs.shape == (2,)

    def test_equal_blocks_equal_signatures(self):
        ids = np.concatenate([np.arange(8), np.arange(8)]).astype(np.uint64)
        sigs = hashing.fold_grain_signatures(ids, 8)
        assert sigs[0] == sigs[1]

    def test_permuted_block_differs(self):
        a = np.arange(8, dtype=np.uint64)
        b = a[::-1].copy()
        sigs = hashing.fold_grain_signatures(np.concatenate([a, b]), 8)
        assert sigs[0] != sigs[1]

    def test_padding_equals_explicit_hole_grains(self):
        # a short tail padded with zeros equals a full block that really ends
        # in zero-grains: both describe "rest of block is the hole grain"
        short = hashing.fold_grain_signatures(np.array([7, 8], dtype=np.uint64), 4)
        explicit = hashing.fold_grain_signatures(
            np.array([7, 8, 0, 0], dtype=np.uint64), 4
        )
        assert short[0] == explicit[0]

    def test_rejects_nonpositive_block(self):
        with pytest.raises(ValueError):
            hashing.fold_grain_signatures(np.arange(4, dtype=np.uint64), 0)

    @given(
        ids=st.lists(st.integers(min_value=0, max_value=2**63), min_size=1, max_size=200),
        grains=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_deterministic_and_shape(self, ids, grains):
        arr = np.asarray(ids, dtype=np.uint64)
        first = hashing.fold_grain_signatures(arr, grains)
        second = hashing.fold_grain_signatures(arr, grains)
        assert np.array_equal(first, second)
        assert first.shape[0] == -(-len(ids) // grains)


class TestDeriveSeed:
    def test_deterministic_across_runs(self):
        assert hashing.derive_seed("vmi", 3) == hashing.derive_seed("vmi", 3)

    def test_sensitive_to_each_part(self):
        assert hashing.derive_seed("vmi", 3) != hashing.derive_seed("vmi", 4)
        assert hashing.derive_seed("vmi", 3) != hashing.derive_seed("boot", 3)

    def test_order_sensitive(self):
        assert hashing.derive_seed("a", "b") != hashing.derive_seed("b", "a")

    def test_string_hash_is_stable_not_pythons(self):
        # a fixed regression value: guards against accidentally using hash()
        assert hashing.derive_seed("stable") == hashing.derive_seed("stable")
        assert 0 <= hashing.derive_seed("stable") < 2**64
