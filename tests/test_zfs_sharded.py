"""ShardedPool contracts: the adopted single shard is byte-for-byte the
plain pool, multi-shard domains isolate dedup, quotas evict in insertion
order, and cross-shard dedup loss is accounted exactly."""

import pytest

from repro.common.errors import ConfigError
from repro.zfs import ShardedPool, ZPool


@pytest.fixture
def pool():
    return ZPool(capacity=64 << 20, arc_capacity=1 << 20)


def _payload(tag: str, n: int = 4096) -> bytes:
    return (tag.encode() * n)[:n]


class TestAdoptedSingleShard:
    """shards=1 wraps the existing volume + global DDT: no new objects."""

    def test_adopt_reuses_existing_objects(self, pool):
        ds = pool.create_dataset("scvol", record_size=4096)
        sp = ShardedPool.adopt(pool, "scvol", "s00")
        assert sp.dataset("s00") is ds
        assert sp.ddt("s00") is pool.ddt
        assert pool.dataset_names() == ["scvol"]
        assert pool.domain_names() == []

    def test_adopted_accounting_equals_plain_pool(self):
        """Writing through the adopted facade leaves every pool counter
        exactly where the same writes leave an untouched pool."""
        plain = ZPool(capacity=64 << 20, arc_capacity=1 << 20)
        wrapped = ZPool(capacity=64 << 20, arc_capacity=1 << 20)
        pds = plain.create_dataset("scvol", record_size=4096)
        wds = wrapped.create_dataset("scvol", record_size=4096)
        sp = ShardedPool.adopt(wrapped, "scvol", "s00")
        for name in ("a", "b"):
            pds.write_file(name, _payload(name, 8192))
            sp.dataset("s00").write_file(name, _payload(name, 8192))
        assert wrapped.stats() == plain.stats()
        assert wrapped.dedup_ratio() == plain.dedup_ratio()
        assert wds.referenced_psize == pds.referenced_psize

    def test_quota_zero_never_evicts(self, pool):
        pool.create_dataset("scvol", record_size=4096)
        sp = ShardedPool.adopt(pool, "scvol", "s00")
        sp.dataset("s00").write_file("a", _payload("a"))
        sp.note_file("s00", "a")
        assert sp.ensure_quota("s00") == []
        assert sp.quota_pressure("s00") == 0.0


class TestMultiShardDomains:
    def test_create_makes_shard_datasets_with_domains(self, pool):
        sp = ShardedPool.create(pool, "scvol", ("s00", "s01"), record_size=4096)
        assert pool.has_dataset("scvol/s00") and pool.has_dataset("scvol/s01")
        assert pool.domain_names() == ["s00", "s01"]
        assert sp.ddt("s00") is not sp.ddt("s01")
        assert sp.ddt("s00") is not pool.ddt

    def test_identical_blocks_duplicate_across_shards(self, pool):
        """The same content written to two shards costs two DDT entries —
        the dedup loss a global domain would not pay."""
        sp = ShardedPool.create(pool, "scvol", ("s00", "s01"), record_size=4096)
        data = _payload("x") + _payload("y")  # two distinct 4 KiB records
        sp.dataset("s00").write_file("f", data)
        assert sp.dedup_loss_bytes() == 0
        sp.dataset("s01").write_file("f", data)
        assert sp.duplicate_entries() == 2  # both checksums live in both DDTs
        assert sp.dedup_loss_bytes() > 0
        # aggregate pool accounting sums the default domain + every shard
        assert pool.ddt_entries_total == (
            sp.ddt("s00").entry_count + sp.ddt("s01").entry_count
        )

    def test_within_shard_dedup_still_works(self, pool):
        sp = ShardedPool.create(pool, "scvol", ("s00",), record_size=4096)
        sp.dataset("s00").write_file("a", _payload("y"))
        entries = sp.ddt("s00").entry_count
        sp.dataset("s00").write_file("b", _payload("y"))
        assert sp.ddt("s00").entry_count == entries  # refcount, not a copy

    def test_peek_domain_does_not_create(self, pool):
        assert pool.peek_domain_ddt("ghost") is None
        assert pool.domain_names() == []


class TestQuotaEviction:
    def _sharded(self, pool, quota):
        return ShardedPool.create(
            pool, "scvol", ("s00",), record_size=4096, quota_bytes=quota
        )

    def test_evicts_oldest_first(self, pool):
        sp = self._sharded(pool, quota=1)  # any write busts a 1-byte quota
        ds = sp.dataset("s00")
        for name in ("old", "mid", "new"):
            ds.write_file(name, _payload(name))
            sp.note_file("s00", name)
        evicted = sp.ensure_quota("s00", keep=("new",))
        assert evicted == ["old", "mid"]
        assert ds.file_names() == ["new"]
        assert sp.evictions("s00") == 2
        assert sp.evicted_bytes("s00") > 0

    def test_keep_protects_the_fresh_hoard(self, pool):
        sp = self._sharded(pool, quota=1)
        ds = sp.dataset("s00")
        ds.write_file("only", _payload("o"))
        sp.note_file("s00", "only")
        assert sp.ensure_quota("s00", keep=("only",)) == []
        assert ds.has_file("only")

    def test_quota_pressure_tracks_referenced_bytes(self, pool):
        sp = ShardedPool.create(
            pool, "scvol", ("s00",), record_size=4096, quota_bytes=1 << 20
        )
        assert sp.quota_pressure("s00") == 0.0
        sp.dataset("s00").write_file("a", _payload("a"))
        assert sp.quota_pressure("s00") > 0.0

    def test_core_high_water_is_monotone(self, pool):
        sp = self._sharded(pool, quota=1)
        ds = sp.dataset("s00")
        ds.write_file("a", _payload("a"))
        sp.note_file("s00", "a")
        sp.refresh("s00")
        high = sp.ddt_core_high_bytes("s00")
        assert high > 0
        ds.write_file("b", _payload("b"))
        sp.note_file("s00", "b")
        sp.refresh("s00")
        sp.ensure_quota("s00")  # evicts everything; live core drops
        sp.refresh("s00")
        assert sp.ddt_core_high_bytes("s00") >= high

    def test_stats_block_shape(self, pool):
        sp = self._sharded(pool, quota=1 << 20)
        block = sp.shard_stats()
        assert set(block) == {"s00"}
        assert {
            "files", "referenced_bytes", "ddt_entries", "ddt_core_bytes",
            "ddt_core_high_bytes", "ddt_disk_bytes", "quota_bytes",
            "quota_pressure", "evictions", "evicted_bytes",
        } <= set(block["s00"])


class TestConstruction:
    def test_empty_shards_rejected(self, pool):
        with pytest.raises(ConfigError):
            ShardedPool(pool, (), {}, {})
