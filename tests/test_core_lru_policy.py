"""Unit tests for the LRU cache-replacement baseline."""

import pytest

from repro.core import LruCacheNode, ZipfBootWorkload, run_policy_comparison
from repro.vmi import AzureCommunityDataset, DatasetConfig


class TestLruCacheNode:
    def test_first_boot_misses(self):
        node = LruCacheNode(1000)
        assert not node.boot(1, 100)
        assert node.miss_bytes == 100

    def test_second_boot_hits(self):
        node = LruCacheNode(1000)
        node.boot(1, 100)
        assert node.boot(1, 100)
        assert node.hits == 1

    def test_lru_eviction_order(self):
        node = LruCacheNode(250)
        node.boot(1, 100)
        node.boot(2, 100)
        node.boot(1, 100)  # refresh image 1
        node.boot(3, 100)  # evicts 2 (LRU), not 1
        assert node.boot(1, 100)  # still resident
        assert not node.boot(2, 100)  # was evicted
        assert node.evictions >= 1

    def test_budget_never_exceeded(self):
        node = LruCacheNode(500)
        for image_id in range(20):
            node.boot(image_id, 120)
            assert node.resident_bytes <= 500

    def test_oversized_cache_never_admitted(self):
        node = LruCacheNode(100)
        node.boot(1, 500)
        assert node.resident_images == 0

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            LruCacheNode(0)


class TestWorkload:
    def test_zipf_skew(self):
        workload = ZipfBootWorkload(n_boots=5000, zipf_exponent=1.0)
        draws = workload.draw(100)
        counts = sorted(
            [int((draws == i).sum()) for i in range(100)], reverse=True
        )
        # the top image is requested far more often than the median one
        assert counts[0] > 5 * max(1, counts[50])

    def test_deterministic(self):
        workload = ZipfBootWorkload(n_boots=100)
        assert (workload.draw(50) == workload.draw(50)).all()


class TestComparison:
    @pytest.fixture(scope="class")
    def dataset(self):
        return AzureCommunityDataset(DatasetConfig(scale=1 / 2048))

    def test_squirrel_always_hits(self, dataset):
        result = run_policy_comparison(
            dataset, squirrel_footprint_bytes=dataset.total_cache_bytes // 8
        )
        assert result.squirrel.hit_rate == 1.0
        assert result.squirrel.miss_network_bytes == 0

    def test_lru_misses_on_the_tail(self, dataset):
        """With Squirrel's (small) footprint as raw LRU budget, the long
        tail of a multi-tenant workload keeps missing — the motivation for
        scatter hoarding."""
        result = run_policy_comparison(
            dataset, squirrel_footprint_bytes=dataset.total_cache_bytes // 8
        )
        assert result.lru.hit_rate < 1.0
        assert result.lru.miss_network_bytes > 0

    def test_bigger_budget_fewer_misses(self, dataset):
        small = run_policy_comparison(
            dataset, squirrel_footprint_bytes=dataset.total_cache_bytes // 16
        )
        large = run_policy_comparison(
            dataset, squirrel_footprint_bytes=dataset.total_cache_bytes // 2
        )
        assert large.lru.hit_rate > small.lru.hit_rate
