"""Tests for the lazy image catalog: protocol, budget, byte-identity.

The contract that keeps every pinned experiment honest: synthesis is a
pure function of the spec, so a lazy catalog — including one that evicted
and re-synthesised an entry — yields streams and views bit-identical to
the eager dataset path.
"""

import pickle

import numpy as np
import pytest

from repro.common.errors import ConfigError
from repro.vmi import (
    AzureCommunityDataset,
    CatalogConfig,
    DatasetConfig,
    ImageCatalog,
    LazyImageCatalog,
    as_catalog,
    block_view,
    cache_stream,
    image_stream,
)

TINY = DatasetConfig(scale=1 / 4096)


@pytest.fixture(scope="module")
def catalog():
    return LazyImageCatalog(TINY)


@pytest.fixture(scope="module")
def eager():
    return AzureCommunityDataset(TINY)


class TestProtocol:
    def test_lazy_catalog_satisfies_protocol(self, catalog):
        assert isinstance(catalog, ImageCatalog)

    def test_specs_match_eager_dataset(self, catalog, eager):
        assert len(catalog) == len(eager)
        for lazy_spec, eager_spec in zip(catalog.specs, eager.images):
            assert lazy_spec == eager_spec

    def test_spec_lookup(self, catalog):
        spec = catalog.spec(3)
        assert spec.image_id == 3
        with pytest.raises(ConfigError):
            catalog.spec(10_000)

    def test_dataset_facade_shares_specs(self, catalog):
        assert catalog.dataset.images is catalog.specs
        assert catalog.dataset.scaled_up(1.0) == catalog.scaled_up(1.0)

    def test_as_catalog(self, catalog, eager):
        assert as_catalog(None) is None
        assert as_catalog(catalog) is catalog
        adapted = as_catalog(eager)
        assert adapted.specs is eager.images  # shared, not recomputed
        with pytest.raises(ConfigError):
            as_catalog(42)

    def test_config_picklable(self):
        config = CatalogConfig(dataset=TINY, budget_bytes=1 << 20)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert LazyImageCatalog(clone).spec(0) == LazyImageCatalog(config).spec(0)

    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigError):
            CatalogConfig(budget_bytes=0)


class TestByteIdentity:
    def test_streams_match_inline_synthesis(self, catalog):
        for image_id in (0, 5, 100):
            spec = catalog.spec(image_id)
            np.testing.assert_array_equal(
                catalog.grain_stream(image_id, "caches"), cache_stream(spec)
            )
            np.testing.assert_array_equal(
                catalog.grain_stream(image_id, "images"), image_stream(spec)
            )

    def test_views_match_inline_synthesis(self, catalog):
        spec = catalog.spec(7)
        lazy = catalog.block_view(7, 4096, "caches")
        inline = block_view(cache_stream(spec), 4096)
        np.testing.assert_array_equal(lazy.signatures, inline.signatures)
        np.testing.assert_array_equal(lazy.lsizes, inline.lsizes)
        np.testing.assert_array_equal(lazy.is_hole, inline.is_hole)

    def test_memo_returns_same_object(self, catalog):
        assert catalog.grain_stream(9) is catalog.grain_stream(9)
        assert catalog.block_view(9, 8192) is catalog.block_view(9, 8192)

    def test_eviction_resynthesises_bit_identical(self):
        tight = LazyImageCatalog(CatalogConfig(dataset=TINY, budget_bytes=1))
        first = tight.grain_stream(0).copy()
        tight.grain_stream(1)  # evicts image 0 (budget of 1 byte)
        assert ("caches", 0) not in tight._memo
        np.testing.assert_array_equal(tight.grain_stream(0), first)


class TestBudget:
    def test_resident_bounded_by_budget(self):
        budget = 64 << 10
        tight = LazyImageCatalog(CatalogConfig(dataset=TINY, budget_bytes=budget))
        for spec in tight.specs[:50]:
            tight.grain_stream(spec.image_id)
            tight.block_view(spec.image_id, 4096)
        # the bound is budget OR a single entry, whichever is larger
        largest = max(tight._memo_bytes.values())
        assert tight.resident_bytes <= max(budget, largest)
        assert tight.peak_resident_bytes >= tight.resident_bytes

    def test_never_evicts_sole_entry(self):
        tight = LazyImageCatalog(CatalogConfig(dataset=TINY, budget_bytes=1))
        stream = tight.grain_stream(0)
        assert tight.grain_stream(0) is stream  # still memoised

    def test_drop_by_subject(self, catalog):
        catalog.grain_stream(2, "caches")
        catalog.grain_stream(2, "images")
        catalog.drop("caches")
        assert not any(k[0] == "caches" for k in catalog._memo)
        assert any(k[0] == "images" for k in catalog._memo)
        catalog.drop()
        assert not catalog._memo
        assert catalog.resident_bytes == 0
