"""Integration tests for the Squirrel core: register / boot / deregister,
garbage collection, offline propagation."""

import pytest

from repro.common.errors import RegistrationError
from repro.core import IaaSCluster, Squirrel, run_boot_storm
from repro.vmi import AzureCommunityDataset, DatasetConfig, make_estimator

SCALE = 1 / 1024
BLOCK = 65536


@pytest.fixture(scope="module")
def dataset():
    return AzureCommunityDataset(DatasetConfig(scale=SCALE))


@pytest.fixture
def rig(dataset):
    cluster = IaaSCluster.build(n_compute=6, n_storage=4, block_size=BLOCK)
    estimator = make_estimator("gzip6", (BLOCK,), samples_per_point=2)
    squirrel = Squirrel(cluster=cluster, estimator=estimator, gc_window_days=7)
    return squirrel, dataset


class TestRegister:
    def test_register_propagates_to_all_online_nodes(self, rig):
        squirrel, dataset = rig
        spec = dataset.images[0]
        record = squirrel.register(spec)
        assert record.receivers == 6
        cache = squirrel.cache_file_of(spec.image_id)
        for node in squirrel.cluster.compute:
            assert node.ccvolume.has_file(cache)

    def test_register_creates_snapshot_chain(self, rig):
        squirrel, dataset = rig
        for spec in dataset.images[:3]:
            squirrel.register(spec)
        snaps = squirrel.cluster.storage.scvolume.snapshots()
        assert [s.name for s in snaps] == ["v00001", "v00002", "v00003"]

    def test_duplicate_registration_rejected(self, rig):
        squirrel, dataset = rig
        squirrel.register(dataset.images[0])
        with pytest.raises(RegistrationError):
            squirrel.register(dataset.images[0])

    def test_diff_smaller_than_cache(self, rig):
        """The cVolume diff is O(10 MB) for an O(100 MB) cache (Section 5.3):
        dedup + compression shrink what actually travels."""
        squirrel, dataset = rig
        # register several images of the same release: later diffs dedup hard
        ubuntu = [
            s for s in dataset.images
            if s.release.family == "ubuntu" and s.release.name == "13.10"
        ][:4]
        records = [squirrel.register(spec) for spec in ubuntu]
        for record in records:
            assert record.diff_bytes < record.cache_bytes
        # later registrations benefit from cross-cache dedup on the receiver
        assert records[-1].diff_bytes < records[-1].cache_bytes * 0.8

    def test_propagation_seconds_modest(self, rig):
        """Section 3.2: the whole workflow is not in the boot critical path
        and the diff multicast takes a couple of seconds at most."""
        squirrel, dataset = rig
        record = squirrel.register(dataset.images[0])
        assert record.propagation_seconds < 2.0


class TestBoot:
    def test_warm_boot_moves_zero_bytes(self, rig):
        squirrel, dataset = rig
        spec = dataset.images[0]
        squirrel.register(spec)
        before = squirrel.cluster.compute_ingress_bytes(purpose="boot-read")
        outcome = squirrel.boot(spec.image_id, "compute0")
        assert outcome.cache_hit
        assert outcome.network_bytes == 0
        assert squirrel.cluster.compute_ingress_bytes(purpose="boot-read") == before

    def test_unregistered_boot_rejected(self, rig):
        squirrel, _ = rig
        with pytest.raises(RegistrationError):
            squirrel.boot(42, "compute0")

    def test_cold_boot_reads_boot_set_over_network(self, rig):
        squirrel, dataset = rig
        spec = dataset.images[0]
        squirrel.cluster.node("compute3").online = False
        squirrel.register(spec)
        squirrel.cluster.node("compute3").online = True
        outcome = squirrel.boot(spec.image_id, "compute3")
        assert not outcome.cache_hit
        assert outcome.network_bytes >= min(spec.cache_bytes, spec.nonzero_bytes)


class TestDeregisterAndGC:
    def test_deregister_removes_cache(self, rig):
        squirrel, dataset = rig
        spec = dataset.images[0]
        squirrel.register(spec)
        squirrel.deregister(spec.image_id)
        assert not squirrel.cluster.storage.scvolume.has_file(
            squirrel.cache_file_of(spec.image_id)
        )

    def test_deregistration_propagates_with_next_snapshot(self, rig):
        """Section 3.4: no snapshot on delete; the unlink rides the next
        registration's diff."""
        squirrel, dataset = rig
        first, second = dataset.images[0], dataset.images[1]
        squirrel.register(first)
        squirrel.deregister(first.image_id)
        node = squirrel.cluster.compute[0]
        assert node.ccvolume.has_file(squirrel.cache_file_of(first.image_id))
        squirrel.register(second)  # new snapshot carries the unlink
        assert not node.ccvolume.has_file(squirrel.cache_file_of(first.image_id))

    def test_gc_keeps_window_and_latest(self, rig):
        squirrel, dataset = rig
        for day, spec in enumerate(dataset.images[:5]):
            squirrel.register(spec)
            squirrel.advance_time(3)
        victims = squirrel.collect_garbage()  # clock=15, window=7 => cutoff=8
        scvol = squirrel.cluster.storage.scvolume
        names = [s.name for s in scvol.snapshots()]
        assert "v00005" in names  # latest always kept
        assert victims  # something old was collected
        for victim in victims:
            assert victim not in names

    def test_gc_frees_space_of_dead_caches(self, rig):
        squirrel, dataset = rig
        spec = dataset.images[0]
        squirrel.register(spec)
        squirrel.deregister(spec.image_id)
        squirrel.advance_time(30)
        squirrel.register(dataset.images[1])  # snapshot carrying the unlink
        pool = squirrel.cluster.storage.pool
        used_before_gc = pool.data_bytes
        squirrel.collect_garbage()
        assert pool.data_bytes < used_before_gc


class TestOfflinePropagation:
    def test_incremental_resync_within_window(self, rig):
        squirrel, dataset = rig
        squirrel.register(dataset.images[0])
        node = squirrel.cluster.node("compute2")
        node.online = False
        squirrel.register(dataset.images[1])
        squirrel.register(dataset.images[2])
        moved = squirrel.resync_node("compute2")
        assert moved > 0
        for spec in dataset.images[:3]:
            assert node.ccvolume.has_file(squirrel.cache_file_of(spec.image_id))

    def test_resync_is_noop_when_in_sync(self, rig):
        squirrel, dataset = rig
        squirrel.register(dataset.images[0])
        assert squirrel.resync_node("compute1") == 0

    def test_full_replication_after_window_expires(self, rig):
        squirrel, dataset = rig
        squirrel.register(dataset.images[0])
        node = squirrel.cluster.node("compute2")
        node.online = False
        squirrel.advance_time(30)  # node misses a whole month
        squirrel.register(dataset.images[1])
        squirrel.collect_garbage()  # v00001 falls out of the window
        moved = squirrel.resync_node("compute2")
        assert moved > 0
        assert node.ccvolume.has_file(squirrel.cache_file_of(0))
        assert node.ccvolume.has_file(squirrel.cache_file_of(1))
        assert node.synced_snapshot == "v00002"

    def test_new_node_receives_everything(self, rig):
        squirrel, dataset = rig
        node = squirrel.cluster.node("compute5")
        node.online = False
        node.synced_snapshot = None
        for spec in dataset.images[:3]:
            squirrel.register(spec)
        squirrel.resync_node("compute5")
        for spec in dataset.images[:3]:
            assert node.ccvolume.has_file(squirrel.cache_file_of(spec.image_id))


class TestOfflineCatchupReplay:
    """Regression: catch-up must replay *all* missed incremental sends in
    snapshot order, leaving the replica's snapshot chain identical to the
    scVolume's — a node that misses two registration rounds used to receive
    one jump diff and end up without the intermediate snapshot."""

    def test_two_missed_rounds_replayed_in_order(self, rig):
        squirrel, dataset = rig
        squirrel.register(dataset.images[0])
        node = squirrel.cluster.node("compute3")
        node.online = False
        squirrel.register(dataset.images[1])  # v00002 — missed
        squirrel.register(dataset.images[2])  # v00003 — missed
        moved = squirrel.resync_node("compute3")
        assert moved > 0
        scvol_names = [
            s.name for s in squirrel.cluster.storage.scvolume.snapshots()
        ]
        cc_names = [s.name for s in node.ccvolume.snapshots()]
        assert scvol_names == ["v00001", "v00002", "v00003"]
        assert cc_names == scvol_names
        assert node.synced_snapshot == "v00003"
        # replica content identical to a never-offline peer's
        peer = squirrel.cluster.node("compute1")
        assert sorted(node.ccvolume.file_names()) == sorted(
            peer.ccvolume.file_names()
        )
        # and the next multicast diff applies cleanly to the caught-up node
        squirrel.register(dataset.images[3])
        assert node.ccvolume.has_file(squirrel.cache_file_of(3))

    def test_stale_online_node_is_skipped_not_corrupted(self, rig):
        squirrel, dataset = rig
        squirrel.register(dataset.images[0])
        node = squirrel.cluster.node("compute2")
        node.online = False
        squirrel.register(dataset.images[1])
        node.online = True  # re-onlined without resync: stale synced_snapshot
        record = squirrel.register(dataset.images[2])
        assert record.receivers == 5  # the stale node is skipped, not crashed
        assert not node.ccvolume.has_file(squirrel.cache_file_of(2))
        squirrel.resync_node("compute2")
        for image_id in (0, 1, 2):
            assert node.ccvolume.has_file(squirrel.cache_file_of(image_id))


class TestBootStorm:
    def test_squirrel_eliminates_boot_traffic(self, rig):
        squirrel, dataset = rig
        for spec in dataset.images[:12]:
            squirrel.register(spec)
        result = run_boot_storm(
            squirrel, dataset, n_nodes=4, vms_per_node=3, with_caches=True
        )
        assert result.compute_ingress_bytes == 0
        assert result.cache_hits == result.boots == 12

    def test_baseline_traffic_grows_with_vms(self, rig):
        squirrel, dataset = rig
        for spec in dataset.images[:12]:
            squirrel.register(spec)
        one = run_boot_storm(
            squirrel, dataset, n_nodes=4, vms_per_node=1, with_caches=False
        )
        many = run_boot_storm(
            squirrel, dataset, n_nodes=4, vms_per_node=3, with_caches=False
        )
        assert many.compute_ingress_bytes > 2 * one.compute_ingress_bytes


class TestRegistrationWorkflowTime:
    def test_workflow_under_a_minute(self, rig):
        """Section 3.2: the registration workflow takes no more than a
        minute (boot once + snapshot + multicast the diff)."""
        squirrel, dataset = rig
        record = squirrel.register(dataset.images[0])
        assert record.workflow_seconds < 60.0


class TestPoolDescribe:
    def test_zfs_list_style_report(self, rig):
        squirrel, dataset = rig
        squirrel.register(dataset.images[0])
        report = squirrel.cluster.storage.pool.describe()
        assert "scvol" in report
        assert "dedup" in report
        assert "DDT" in report
