"""Unit tests for grain content generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codecs import get_codec
from repro.vmi.content import (
    GRAIN_SIZE,
    N_CLASSES,
    ContentClass,
    PoolKind,
    class_of,
    materialize_block,
    materialize_grain,
    sample_block,
    tag_with_classes,
)


class TestClassTagging:
    def test_class_encoded_in_low_bits(self):
        base = np.array([0xDEADBEEF00 << 3], dtype=np.uint64)
        tagged = tag_with_classes(base, PoolKind.BOOT)
        assert 1 <= int(tagged[0] & np.uint64(7)) <= N_CLASSES

    def test_same_base_same_class_any_kind_position(self):
        """A grain shared across releases keeps one identity per kind."""
        base = np.array([123456789], dtype=np.uint64)
        a = tag_with_classes(base, PoolKind.BOOT)
        b = tag_with_classes(base, PoolKind.BOOT)
        assert a[0] == b[0]

    def test_distribution_roughly_matches_mix(self):
        rng = np.random.default_rng(0)
        base = rng.integers(1, 1 << 62, size=50_000, dtype=np.uint64)
        tagged = tag_with_classes(base, PoolKind.USER)
        classes = class_of(tagged)
        packed_fraction = (classes == ContentClass.PACKED).mean()
        assert 0.45 < packed_fraction < 0.55  # USER mix has 50% packed

    def test_kinds_differ_in_mix(self):
        rng = np.random.default_rng(0)
        base = rng.integers(1, 1 << 62, size=50_000, dtype=np.uint64)
        boot_packed = (class_of(tag_with_classes(base, PoolKind.BOOT)) == 4).mean()
        user_packed = (class_of(tag_with_classes(base, PoolKind.USER)) == 4).mean()
        assert user_packed > boot_packed + 0.2

    def test_class_of_hole_is_zero(self):
        assert class_of(np.array([0], dtype=np.uint64))[0] == 0


class TestMaterialisation:
    def test_grain_is_1kb(self):
        for gid in (0, (123 << 3) | 1, (456 << 3) | 2, (789 << 3) | 3, (999 << 3) | 4):
            assert len(materialize_grain(gid)) == GRAIN_SIZE

    def test_deterministic(self):
        gid = (424242 << 3) | 2
        assert materialize_grain(gid) == materialize_grain(gid)

    def test_distinct_ids_distinct_bytes(self):
        a = materialize_grain((1 << 3) | 2)
        b = materialize_grain((2 << 3) | 2)
        assert a != b

    def test_hole_grain_is_zeros(self):
        assert materialize_grain(0) == bytes(GRAIN_SIZE)

    def test_block_concatenates(self):
        gids = np.array([(1 << 3) | 1, (2 << 3) | 2], dtype=np.uint64)
        blob = materialize_block(gids)
        assert len(blob) == 2 * GRAIN_SIZE
        assert blob[:GRAIN_SIZE] == materialize_grain(int(gids[0]))

    @pytest.mark.parametrize(
        ("class_id", "low", "high"),
        [
            (int(ContentClass.TEXT), 2.0, 8.0),
            (int(ContentClass.BINARY), 1.5, 5.0),
            (int(ContentClass.STRUCTURED), 4.0, 40.0),
            (int(ContentClass.PACKED), 0.9, 1.15),
        ],
    )
    def test_class_compressibility_bands(self, class_id, low, high):
        """Each class must land in its designed gzip-6 compressibility band."""
        rng = np.random.default_rng(7)
        codec = get_codec("gzip6")
        block = sample_block(class_id, 65536, rng)
        ratio = len(block) / codec.compressed_size(block)
        assert low <= ratio <= high, f"class {class_id}: ratio {ratio:.2f}"

    def test_class_ordering_text_vs_packed(self):
        rng = np.random.default_rng(3)
        codec = get_codec("gzip6")
        text = codec.compressed_size(sample_block(1, 32768, rng))
        packed = codec.compressed_size(sample_block(4, 32768, rng))
        assert text < packed

    @given(seed=st.integers(min_value=1, max_value=2**40))
    @settings(max_examples=20, deadline=None)
    def test_property_grain_size_and_determinism(self, seed):
        gid = (seed << 3) | (seed % 4 + 1)
        data = materialize_grain(gid)
        assert len(data) == GRAIN_SIZE
        assert data == materialize_grain(gid)


class TestSampleBlock:
    def test_size_validated(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_block(1, 1000, rng)

    def test_block_is_pure_class(self):
        rng = np.random.default_rng(0)
        block = sample_block(3, 4096, rng)
        assert len(block) == 4096
