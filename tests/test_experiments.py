"""Tests for the experiments package (context + selected experiments).

These run at a very small dataset scale — shape assertions live in the
benchmarks; here we test the machinery: memoisation, rendering, and the
paper-anchored invariants that hold at any scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentContext,
    consumption,
    fig02_compression_ratio,
    fig04_ccr,
    fig12_cross_similarity,
    fig18_network_transfer,
    fits,
    tab01_storage_chain,
    tab02_os_diversity,
)
from repro.common.units import GiB, TiB


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        ExperimentConfig(scale=1 / 2048, quick=4, calibration_samples=2)
    )


class TestContext:
    def test_specs_respect_quick(self, ctx):
        assert len(ctx.specs) == len(ctx.dataset.images[::4])

    def test_streams_cached(self, ctx):
        first = ctx.streams("caches")
        second = ctx.streams("caches")
        assert all(a is b for a, b in zip(first, second))

    def test_metrics_memoised(self, ctx):
        first = ctx.metrics("caches", 4096)
        second = ctx.metrics("caches", 4096)
        assert first is second

    def test_drop_streams(self, ctx):
        ctx.streams("caches")
        catalog = ctx.catalog()
        assert catalog.resident_bytes > 0
        ctx.drop_streams("caches")
        assert not any(key[0] == "caches" for key in catalog._memo)  # noqa: SLF001

    def test_catalog_dataset_shares_specs(self, ctx):
        dataset = ctx.catalog(ctx.config.scale).dataset
        assert dataset.images is ctx.catalog().specs

    def test_views_not_retained(self, ctx):
        views = ctx.views("caches", 8192)
        assert views is not ctx.views("caches", 8192)


class TestTab02:
    def test_census_matches(self, ctx):
        # quick-subsampling changes counts, so build a full tiny context
        full = ExperimentContext(ExperimentConfig(scale=1 / 2048, quick=1))
        result = tab02_os_diversity.run(full)
        assert result.matches_paper
        assert "matches the paper" in tab02_os_diversity.render(result)


class TestTab01:
    def test_chain_is_strictly_decreasing(self, ctx):
        result = tab01_storage_chain.run(ctx)
        assert (
            result.original_bytes
            > result.nonzero_bytes
            > result.caches_nonzero_bytes
            > result.caches_ccr_bytes
        )

    def test_render_contains_all_columns(self, ctx):
        rendered = tab01_storage_chain.render(tab01_storage_chain.run(ctx))
        assert "Caches/CCR" in rendered and "TB" in rendered


class TestMetricExperiments:
    def test_fig02_shapes(self, ctx):
        result = fig02_compression_ratio.run(ctx)
        assert len(result.caches_dedup) == 11
        # monotone trends hold even at tiny scale
        assert result.caches_dedup[0] >= result.caches_dedup[-1]
        assert result.caches_gzip6[0] <= result.caches_gzip6[-1]

    def test_fig04_consistent_with_fig02(self, ctx):
        fig2 = fig02_compression_ratio.run(ctx)
        fig4 = fig04_ccr.run(ctx)
        for i in range(11):
            assert fig4.caches_ccr[i] == pytest.approx(
                fig2.caches_dedup[i] * fig2.caches_gzip6[i]
            )

    def test_fig12_caches_above_images(self, ctx):
        result = fig12_cross_similarity.run(ctx)
        assert result.caches_similarity[0] > result.images_similarity[0]

    def test_renders_mention_block_sizes(self, ctx):
        rendered = fig02_compression_ratio.render(fig02_compression_ratio.run(ctx))
        assert "1024" in rendered and "block KB" in rendered


class TestConsumption:
    def test_memoised(self, ctx):
        first = consumption("caches", 65536, ctx)
        second = consumption("caches", 65536, ctx)
        assert first is second

    def test_trajectory_monotone(self, ctx):
        trajectory = consumption("caches", 65536, ctx)
        assert (np.diff(trajectory.disk_bytes) >= 0).all()
        assert trajectory.files == len(ctx.specs)

    def test_smaller_blocks_more_ddt(self, ctx):
        small = consumption("caches", 16384, ctx)
        large = consumption("caches", 131072, ctx)
        assert small.ddt_disk_bytes[-1] > large.ddt_disk_bytes[-1]


class TestFits:
    def test_disk_fits_produce_winner_per_block_size(self, ctx):
        result = fits.run_disk(ctx)
        assert set(result.outcomes) == set(fits.FIT_BLOCK_SIZES)
        for outcome in result.outcomes.values():
            assert outcome.winner_name in ("linear", "MMF", "hoerl")
            assert outcome.extrapolate(3000) > 0

    def test_memory_extrapolation_modest(self, ctx):
        result = fits.run_memory(ctx)
        outcome = result.outcome_64k()
        # "modest memory": even at 3000 caches, well under a GB
        assert outcome.extrapolate(3000) < 1024.0  # MB

    def test_render_pipeline(self, ctx):
        result = fits.run_disk(ctx)
        assert "Table 3" in fits.render_rmse_table(result, table="Table 3")
        assert "Figure 14" in fits.render_fit_quality(result, figure="Figure 14")
        assert "Figure 15" in fits.render_extrapolation(result, figure="Figure 15")


class TestFig18:
    def test_squirrel_zero_baseline_grows(self):
        small = ExperimentContext(ExperimentConfig(scale=1 / 4096, quick=1))
        result = fig18_network_transfer.run(small)
        assert all(v == 0.0 for v in result.with_caches)
        for vms in (1, 8):
            series = result.without_caches[vms]
            assert series[-1] > series[0]
        rendered = fig18_network_transfer.render(result)
        assert "w/ caches" in rendered


class TestFig18Fabrics:
    def test_transfer_sizes_fabric_independent(self):
        """Paper footnote 5: 1 GbE and InfiniBand results are essentially
        the same — the figure's metric is bytes, not time."""
        from repro.experiments import fig18_network_transfer as exp

        ctx = ExperimentContext(ExperimentConfig(scale=1 / 4096, quick=1))
        ib = exp.run(ctx, fabric="32GbIB")
        gbe = exp.run(ctx, fabric="1GbE")
        for vms in exp.VMS_PER_NODE:
            assert ib.without_caches[vms] == gbe.without_caches[vms]
        assert ib.with_caches == gbe.with_caches
