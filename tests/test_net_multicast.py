"""Unit tests for multicast / unicast / swarm distribution."""

import pytest

from repro.net import (
    GBE_1,
    Node,
    NodeKind,
    TransferLedger,
    multicast,
    swarm_distribute,
    unicast_fanout,
)


def cluster(n_compute=8):
    sender = Node("storage0", NodeKind.STORAGE)
    receivers = [Node(f"c{i}", NodeKind.COMPUTE) for i in range(n_compute)]
    return sender, receivers


class TestMulticast:
    def test_every_receiver_ingests_payload(self):
        ledger = TransferLedger()
        sender, receivers = cluster(8)
        result = multicast(ledger, sender, receivers, 100 << 20)
        for r in receivers:
            assert ledger.bytes_into(r.name) == 100 << 20
        assert result.n_receivers == 8

    def test_sender_pays_once(self):
        ledger = TransferLedger()
        sender, receivers = cluster(64)
        result = multicast(ledger, sender, receivers, 100 << 20)
        assert result.sender_bytes < 1.1 * (100 << 20)

    def test_duration_independent_of_receiver_count(self):
        ledger = TransferLedger()
        sender, receivers = cluster(64)
        few = multicast(ledger, sender, receivers[:2], 100 << 20)
        many = multicast(ledger, sender, receivers, 100 << 20)
        assert many.duration_s == pytest.approx(few.duration_s)

    def test_100mb_in_couple_of_seconds(self):
        """Section 3.2's claim for commodity 1 GbE."""
        ledger = TransferLedger()
        sender, receivers = cluster(64)
        result = multicast(ledger, sender, receivers, 100 << 20)
        assert result.duration_s < 2.0

    def test_empty_receivers(self):
        ledger = TransferLedger()
        sender, _ = cluster()
        result = multicast(ledger, sender, [], 1000)
        assert result.duration_s == 0.0
        assert ledger.total_bytes() == 0


class TestUnicastFanout:
    def test_sender_pays_n_times(self):
        ledger = TransferLedger()
        sender, receivers = cluster(8)
        result = unicast_fanout(ledger, sender, receivers, 10 << 20)
        assert result.sender_bytes == 8 * (10 << 20)

    def test_slower_than_multicast(self):
        ledger = TransferLedger()
        sender, receivers = cluster(16)
        uni = unicast_fanout(ledger, sender, receivers, 50 << 20)
        multi = multicast(ledger, sender, receivers, 50 << 20)
        assert uni.duration_s > 4 * multi.duration_s


class TestSwarm:
    def test_receivers_ingest_full_payload(self):
        ledger = TransferLedger()
        sender, receivers = cluster(16)
        swarm_distribute(ledger, sender, receivers, 10 << 20)
        for r in receivers:
            assert ledger.bytes_into(r.name) == 10 << 20

    def test_origin_relieved_vs_unicast(self):
        ledger = TransferLedger()
        sender, receivers = cluster(64)
        result = swarm_distribute(ledger, sender, receivers, 10 << 20)
        assert result.origin_bytes < 64 * (10 << 20) / 4

    def test_peers_upload(self):
        ledger = TransferLedger()
        sender, receivers = cluster(32)
        result = swarm_distribute(ledger, sender, receivers, 10 << 20)
        assert result.peer_upload_bytes > 0
        # compute-node egress is the cost Squirrel avoids
        peer_egress = sum(ledger.bytes_out_of(r.name) for r in receivers)
        assert peer_egress == result.peer_upload_bytes

    def test_total_conservation(self):
        """Bytes sourced (origin + peers) equal bytes ingested."""
        ledger = TransferLedger()
        sender, receivers = cluster(8)
        result = swarm_distribute(ledger, sender, receivers, 10 << 20)
        assert result.origin_bytes + result.peer_upload_bytes == 8 * (10 << 20)
