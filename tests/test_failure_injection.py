"""Failure-injection tests: the system under adverse conditions.

Covers pool exhaustion, mass node churn, repeated crash/recover cycles
interleaved with GC, and abusive request patterns — every failure must be a
clean, typed error or a full recovery, never silent corruption.
"""

import pytest

from repro.common.errors import PoolFullError, RegistrationError
from repro.core import IaaSCluster, Squirrel
from repro.vmi import AzureCommunityDataset, DatasetConfig, make_estimator
from repro.zfs import ZPool

BLOCK = 65536


@pytest.fixture(scope="module")
def dataset():
    return AzureCommunityDataset(DatasetConfig(scale=1 / 2048))


def make_squirrel(n_compute=4, **kwargs):
    cluster = IaaSCluster.build(n_compute=n_compute, n_storage=4, block_size=BLOCK,
                                **kwargs)
    return Squirrel(
        cluster=cluster,
        estimator=make_estimator("gzip6", (BLOCK,), samples_per_point=2),
        gc_window_days=5,
    )


class TestPoolExhaustion:
    def test_full_pool_raises_cleanly(self):
        pool = ZPool(capacity=8192)
        ds = pool.create_dataset("d", record_size=4096, compression="off")
        import numpy as np

        rng = np.random.default_rng(0)
        with pytest.raises(PoolFullError):
            for i in range(10):
                ds.write_block(
                    "f", i, bytes(rng.integers(0, 256, 4096, dtype=np.uint8))
                )

    def test_accounting_consistent_after_failure(self):
        pool = ZPool(capacity=8192)
        ds = pool.create_dataset("d", record_size=4096, compression="off")
        import numpy as np

        rng = np.random.default_rng(0)
        written = 0
        try:
            for i in range(10):
                ds.write_block(
                    "f", i, bytes(rng.integers(0, 256, 4096, dtype=np.uint8))
                )
                written += 1
        except PoolFullError:
            pass
        # every successful write is still readable; space accounting intact
        for i in range(written):
            assert len(ds.read_block("f", i)) == 4096
        assert pool.data_bytes == written * 4096


class TestNodeChurn:
    def test_all_nodes_down_registration_still_succeeds(self, dataset):
        squirrel = make_squirrel()
        for node in squirrel.cluster.compute:
            node.online = False
        record = squirrel.register(dataset.images[0])
        assert record.receivers == 0
        # nothing propagated, but the scVolume is authoritative
        assert squirrel.cluster.storage.scvolume.has_file(
            squirrel.cache_file_of(0)
        )

    def test_mass_recovery_after_total_outage(self, dataset):
        squirrel = make_squirrel()
        for node in squirrel.cluster.compute:
            node.online = False
        for spec in dataset.images[:5]:
            squirrel.register(spec)
        for node in squirrel.cluster.compute:
            squirrel.resync_node(node.name)
        for node in squirrel.cluster.compute:
            for image_id in squirrel.registered_ids():
                assert node.ccvolume.has_file(squirrel.cache_file_of(image_id))

    def test_repeated_crash_recover_cycles_with_gc(self, dataset):
        """A flapping node across many GC windows always converges."""
        squirrel = make_squirrel(n_compute=2)
        images = iter(dataset.images)
        node = squirrel.cluster.node("compute1")
        for cycle in range(4):
            node.online = False
            squirrel.register(next(images))
            squirrel.advance_time(9)  # beyond the 5-day window
            squirrel.register(next(images))
            squirrel.collect_garbage()
            moved = squirrel.resync_node("compute1")
            assert moved > 0
            expected = {
                squirrel.cache_file_of(i) for i in squirrel.registered_ids()
            }
            assert set(node.ccvolume.file_names()) == expected

    def test_resync_unknown_node_rejected(self, dataset):
        squirrel = make_squirrel()
        from repro.common.errors import NetworkError

        with pytest.raises(NetworkError):
            squirrel.resync_node("compute99")


class TestAbusivePatterns:
    def test_deregister_twice_rejected(self, dataset):
        squirrel = make_squirrel()
        squirrel.register(dataset.images[0])
        squirrel.deregister(0)
        with pytest.raises(RegistrationError):
            squirrel.deregister(0)

    def test_register_deregister_register_same_content(self, dataset):
        """Re-registering after deregistration works and re-deduplicates."""
        squirrel = make_squirrel()
        spec = dataset.images[0]
        squirrel.register(spec)
        squirrel.deregister(spec.image_id)
        squirrel.register(dataset.images[1])  # propagate the unlink
        record = squirrel.register(
            type(spec)(**{**spec.__dict__, "image_id": 999})
        )
        # identical content: the diff dedups against what nodes already hold
        assert record.diff_bytes < spec.cache_bytes

    def test_time_cannot_flow_backwards(self, dataset):
        squirrel = make_squirrel()
        with pytest.raises(RegistrationError):
            squirrel.advance_time(-1)

    def test_gc_on_empty_system_is_noop(self, dataset):
        squirrel = make_squirrel()
        assert squirrel.collect_garbage() == []

    def test_boot_on_offline_node_falls_back_to_network(self, dataset):
        squirrel = make_squirrel()
        squirrel.register(dataset.images[0])
        squirrel.cluster.node("compute2").online = False
        outcome = squirrel.boot(0, "compute2")
        # an offline node's local cache is unusable: cold path accounting
        assert not outcome.cache_hit
        assert outcome.network_bytes > 0


class TestScrubAfterChaos:
    """After any churn sequence, every pool in the cluster scrubs clean."""

    def test_all_pools_clean_after_churn(self, dataset):
        from repro.zfs import scrub

        squirrel = make_squirrel(n_compute=3)
        images = iter(dataset.images)
        node = squirrel.cluster.node("compute1")
        for _ in range(3):
            node.online = False
            squirrel.register(next(images))
            squirrel.advance_time(9)
            squirrel.register(next(images))
            squirrel.deregister(squirrel.registered_ids()[0])
            squirrel.collect_garbage()
            squirrel.resync_node("compute1")
        scrub(squirrel.cluster.storage.pool).raise_if_dirty()
        for compute in squirrel.cluster.compute:
            scrub(compute.pool).raise_if_dirty()
