"""Tests for interned replica state: flyweight pools with CoW divergence.

The invariant under test: whatever the sharing topology does internally
(in-place group mutation, repointing, copy-on-write splits), every node's
pool reads exactly what a private per-node pool would hold after the same
op sequence.
"""

import pytest

from repro.core import IaaSCluster, Squirrel
from repro.core.cluster import CCVOLUME
from repro.core.replica import Replica, ReplicaStore, apply_to_nodes
from repro.vmi import AzureCommunityDataset, DatasetConfig, make_estimator
from repro.zfs import ZPool


def blank_pool() -> ZPool:
    pool = ZPool("ccpool", capacity=1 << 40, store_payloads=False)
    pool.create_dataset(CCVOLUME, record_size=65536)
    return pool


def write(name: str, size: int = 100):
    def mutate(pool):
        pool.dataset(CCVOLUME).write_file_virtual(
            name, [(hash(name) & 0xFFFF, size, size, False)]
        )

    return mutate


class FakeNode:
    def __init__(self, replica):
        self.replica = replica

    @property
    def pool(self):
        return self.replica.pool


class TestReplicaStore:
    def test_blank_is_shared(self):
        store = ReplicaStore(blank_pool())
        nodes = [FakeNode(store.acquire_blank()) for _ in range(8)]
        assert len({id(n.replica) for n in nodes}) == 1
        assert store.distinct_replicas == 1
        assert nodes[0].replica.refs == 8

    def test_full_group_mutates_in_place(self):
        store = ReplicaStore(blank_pool())
        nodes = [FakeNode(store.acquire_blank()) for _ in range(8)]
        before = nodes[0].pool
        store.apply(nodes, ("w", "a"), write("a"))
        assert nodes[0].pool is before  # no clone
        assert store.distinct_replicas == 1
        assert all(n.pool.dataset(CCVOLUME).has_file("a") for n in nodes)

    def test_partial_group_forks_once(self):
        store = ReplicaStore(blank_pool())
        nodes = [FakeNode(store.acquire_blank()) for _ in range(8)]
        store.apply(nodes[:3], ("w", "a"), write("a"))
        assert store.distinct_replicas == 2
        assert len({id(n.replica) for n in nodes[:3]}) == 1
        assert all(n.pool.dataset(CCVOLUME).has_file("a") for n in nodes[:3])
        assert not any(n.pool.dataset(CCVOLUME).has_file("a") for n in nodes[3:])
        assert nodes[0].replica.refs == 3
        assert nodes[3].replica.refs == 5

    def test_replaying_history_repoints_to_mainline(self):
        """A rejoining node that replays the ops its peers already applied
        converges back onto the shared replica — zero pool work."""
        store = ReplicaStore(blank_pool())
        nodes = [FakeNode(store.acquire_blank()) for _ in range(4)]
        straggler = nodes[3]
        store.apply(nodes[:3], ("w", "a"), write("a"))
        store.apply(nodes[:3], ("w", "b"), write("b"))
        assert store.distinct_replicas == 2
        store.apply([straggler], ("w", "a"), write("a"))
        store.apply([straggler], ("w", "b"), write("b"))
        assert straggler.replica is nodes[0].replica
        assert store.distinct_replicas == 1

    def test_when_guard_is_per_replica(self):
        store = ReplicaStore(blank_pool())
        nodes = [FakeNode(store.acquire_blank()) for _ in range(4)]
        store.apply(nodes[:2], ("w", "a"), write("a"))
        # guarded delete: only the replica holding "a" is touched
        store.apply(
            nodes,
            ("del", "a"),
            lambda pool: pool.dataset(CCVOLUME).delete_file("a"),
            when=lambda pool: pool.dataset(CCVOLUME).has_file("a"),
        )
        assert not any(n.pool.dataset(CCVOLUME).has_file("a") for n in nodes)

    def test_same_history_same_pool_as_private_nodes(self):
        """Flyweight nodes read identically to naive one-pool-per-node."""
        store = ReplicaStore(blank_pool())
        shared = [FakeNode(store.acquire_blank()) for _ in range(3)]
        private = [FakeNode(Replica(blank_pool())) for _ in range(3)]
        for replica in (n.replica for n in private):
            replica.refs = 1
        script = [
            (slice(None), ("w", "a")),
            (slice(0, 2), ("w", "b")),
            (slice(2, 3), ("w", "c")),
            (slice(None), ("w", "d")),
        ]
        for subset, (op, name) in script:
            store.apply(shared[subset], (op, name), write(name))
            apply_to_nodes(None, private[subset], (op, name), write(name))
        for s_node, p_node in zip(shared, private):
            s_vol, p_vol = (
                n.pool.dataset(CCVOLUME) for n in (s_node, p_node)
            )
            for name in "abcd":
                assert s_vol.has_file(name) == p_vol.has_file(name)
            assert s_node.pool.ddt.entry_count == p_node.pool.ddt.entry_count


class TestClusterIntegration:
    def test_build_wires_store_and_shared_blank(self):
        cluster = IaaSCluster.build(n_compute=6, n_storage=4)
        assert cluster.replicas is not None
        assert cluster.replicas.distinct_replicas == 1
        assert len({id(n.replica) for n in cluster.compute}) == 1

    def test_fleet_register_keeps_one_replica(self):
        cluster = IaaSCluster.build(n_compute=12, n_storage=4)
        estimator = make_estimator("gzip6", (65536,), samples_per_point=2)
        squirrel = Squirrel(cluster=cluster, estimator=estimator)
        dataset = AzureCommunityDataset(DatasetConfig(scale=1 / 4096))
        for spec in dataset.images[:5]:
            squirrel.register(spec)
        assert cluster.replicas.distinct_replicas == 1
        cache = squirrel.cache_file_of(dataset.images[0].image_id)
        assert all(
            node.ccvolume.has_file(cache) for node in cluster.compute
        )

    def test_offline_node_diverges_then_catches_up(self):
        cluster = IaaSCluster.build(n_compute=6, n_storage=4)
        estimator = make_estimator("gzip6", (65536,), samples_per_point=2)
        squirrel = Squirrel(cluster=cluster, estimator=estimator)
        dataset = AzureCommunityDataset(DatasetConfig(scale=1 / 4096))
        squirrel.register(dataset.images[0])
        straggler = cluster.compute[2]
        straggler.online = False
        squirrel.register(dataset.images[1])
        assert cluster.replicas.distinct_replicas == 2
        straggler.online = True
        squirrel.resync_node(straggler.name)
        cache = squirrel.cache_file_of(dataset.images[1].image_id)
        assert straggler.ccvolume.has_file(cache)
        # replaying the same receive chain repoints back onto the mainline
        assert cluster.replicas.distinct_replicas == 1
