"""Tests for the discrete-event kernel: clock, processes, contention, metrics."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Engine, Pipe, Resource, Timeline


class TestEngineBasics:
    def test_clock_starts_at_zero_and_advances(self):
        engine = Engine()
        assert engine.now == 0.0
        engine.timeout(5.0)
        assert engine.run() == 5.0

    def test_timeout_delivers_value(self):
        engine = Engine()
        seen = []

        def proc():
            value = yield engine.timeout(1.0, "payload")
            seen.append((engine.now, value))

        engine.process(proc())
        engine.run()
        assert seen == [(1.0, "payload")]

    def test_process_return_value_becomes_event_value(self):
        engine = Engine()

        def inner():
            yield engine.timeout(2.0)
            return 42

        def outer():
            result = yield engine.process(inner())
            return result + 1

        proc = engine.process(outer())
        engine.run()
        assert proc.value == 43

    def test_all_of_gathers_values_in_input_order(self):
        engine = Engine()
        events = [engine.timeout(3.0, "slow"), engine.timeout(1.0, "fast")]
        gathered = engine.all_of(events)
        engine.run()
        assert gathered.value == ["slow", "fast"]
        assert engine.now == 3.0

    def test_run_until_stops_the_clock(self):
        engine = Engine()
        engine.timeout(10.0)
        assert engine.run(until=4.0) == 4.0
        assert engine.peek() == 10.0

    def test_yielding_non_event_is_an_error(self):
        engine = Engine()

        def proc():
            yield 17

        engine.process(proc())
        with pytest.raises(SimulationError, match="may only yield Event"):
            engine.run()

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.timeout(-1.0)

    def test_double_trigger_rejected(self):
        engine = Engine()
        event = engine.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()


class TestEngineDeterminism:
    @staticmethod
    def _race(seed: int) -> list[tuple[float, str]]:
        """Many processes all waking at the same instants."""
        engine = Engine(seed=seed, trace=True)

        def proc(i):
            yield engine.timeout(1.0, label=f"wake:{i}")
            yield engine.timeout(1.0, label=f"again:{i}")

        for i in range(20):
            engine.process(proc(i), label=f"proc:{i}")
        engine.run()
        return engine.trace

    def test_same_seed_same_total_order(self):
        assert self._race(7) == self._race(7)

    def test_different_seeds_differ_on_ties(self):
        assert self._race(7) != self._race(8)


class TestResource:
    def test_grants_in_request_order(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        order = []

        def worker(i):
            yield resource.request()
            order.append(i)
            yield engine.timeout(1.0)
            resource.release()

        def spawner():
            # sequential requests: i arrives strictly before i+1
            for i in range(3):
                engine.process(worker(i))
                yield engine.timeout(0.1)

        engine.process(spawner())
        engine.run()
        assert order == [0, 1, 2]
        assert resource.total_grants == 3
        assert resource.queue_length == 0

    def test_capacity_bounds_concurrency(self):
        engine = Engine()
        resource = Resource(engine, capacity=2)
        peak = [0]
        active = [0]

        def worker():
            yield resource.request()
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            yield engine.timeout(1.0)
            active[0] -= 1
            resource.release()

        for _ in range(6):
            engine.process(worker())
        engine.run()
        assert peak[0] == 2

    def test_release_of_idle_resource_is_an_error(self):
        engine = Engine()
        resource = Resource(engine, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()


class TestPipe:
    def test_lone_transfer_takes_bytes_over_rate(self):
        engine = Engine()
        pipe = Pipe(engine, 100.0, latency_s=0.5)
        done = pipe.transfer(200)
        engine.run()
        assert done.triggered
        assert engine.now == pytest.approx(2.5)  # 200/100 + latency

    def test_fair_sharing_halves_the_rate(self):
        engine = Engine()
        pipe = Pipe(engine, 100.0)
        finish = {}

        def flow(name, n):
            yield pipe.transfer(n)
            finish[name] = engine.now

        engine.process(flow("a", 100))
        engine.process(flow("b", 100))
        engine.run()
        # both flows share the pipe the whole way: each sees 50 B/s
        assert finish["a"] == pytest.approx(2.0)
        assert finish["b"] == pytest.approx(2.0)

    def test_late_joiner_slows_the_first_flow(self):
        engine = Engine()
        pipe = Pipe(engine, 100.0)
        finish = {}

        def flow(name, n, delay):
            yield engine.timeout(delay)
            yield pipe.transfer(n)
            finish[name] = engine.now

        engine.process(flow("early", 100, 0.0))
        engine.process(flow("late", 100, 0.5))
        engine.run()
        # early: 50 B alone (0.5 s), 50 B shared (1.0 s) -> 1.5 s total
        assert finish["early"] == pytest.approx(1.5)
        # late: 50 B shared (1.0 s), 50 B alone (0.5 s) -> finishes at 2.0 s
        assert finish["late"] == pytest.approx(2.0)

    def test_zero_byte_transfer_costs_only_latency(self):
        engine = Engine()
        pipe = Pipe(engine, 100.0, latency_s=0.25)
        pipe.transfer(0)
        assert engine.run() == pytest.approx(0.25)

    def test_many_equal_flows_all_depart(self):
        """The float-residue regression: equal flows must not stall replans."""
        engine = Engine()
        pipe = Pipe(engine, 1e9)
        events = [pipe.transfer(123_456_789) for _ in range(32)]
        engine.run()
        assert all(e.triggered for e in events)
        assert pipe.active_flows == 0

    def test_accounting(self):
        engine = Engine()
        pipe = Pipe(engine, 100.0)
        pipe.transfer(100)
        pipe.transfer(300)
        engine.run()
        assert pipe.total_bytes == 400
        assert pipe.total_flows == 2
        assert pipe.busy_seconds == pytest.approx(4.0)


class TestTimeline:
    def test_counters_gauges_histograms(self):
        engine = Engine()
        timeline = Timeline(engine)
        timeline.count("boots")
        timeline.count("boots", 2)
        timeline.gauge("queue", 5)
        for v in (1.0, 2.0, 3.0, 4.0):
            timeline.observe("latency", v)
        assert timeline.counter("boots") == 3
        assert timeline.gauge_series("queue") == [(0.0, 5.0)]
        stats = timeline.stats("latency")
        assert stats.count == 4
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.p50 == pytest.approx(2.5)
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum

    def test_empty_histogram_is_all_zero(self):
        stats = Timeline().stats("nothing")
        assert stats.count == 0
        assert stats.p99 == 0.0

    def test_summary_keys_are_sorted(self):
        timeline = Timeline()
        timeline.count("zulu")
        timeline.count("alpha")
        summary = timeline.summary()
        assert list(summary["counters"]) == ["alpha", "zulu"]

    def test_render_mentions_percentiles(self):
        timeline = Timeline()
        timeline.observe("latency", 1.0)
        assert "p95" in timeline.render()

    def test_render_includes_gauges(self):
        """Regression: gauges used to be summarised only, never rendered."""
        engine = Engine()
        timeline = Timeline(engine)
        timeline.gauge("arc_p:compute0", 128.0)
        timeline.gauge("arc_p:compute0", 256.0)
        rendered = timeline.render()
        assert "arc_p:compute0" in rendered
        assert "last=256" in rendered
        assert "n=2" in rendered
